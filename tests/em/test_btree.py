"""Tests for the B+-tree: predecessor search and canonical covers."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.em.btree import BPlusTree
from repro.em.model import EMContext


def build(keys, B=8, fanout=None):
    ctx = EMContext(B=B, M=4 * B)
    tree = BPlusTree(ctx, [(float(k), f"v{k}") for k in keys], fanout=fanout)
    return ctx, tree


class TestConstruction:
    def test_empty_tree(self):
        ctx, tree = build([])
        assert tree.root is None
        assert tree.predecessor(5.0) is None
        assert tree.canonical_cover_geq(0.0) == []

    def test_single_item(self):
        _, tree = build([7])
        assert tree.predecessor(7.0) == (7.0, "v7")
        assert tree.predecessor(6.9) is None

    def test_height_grows_logarithmically(self):
        _, small = build(range(8), B=4)
        _, large = build(range(512), B=4)
        assert small.height < large.height
        assert large.height <= math.ceil(math.log(512, 4)) + 1

    def test_unsorted_input_is_sorted(self):
        _, tree = build([5, 1, 9, 3])
        assert tree.predecessor(4.0) == (3.0, "v3")

    def test_custom_fanout(self):
        _, tree = build(range(100), fanout=3)
        assert tree.fanout == 3
        assert tree.height >= 4


class TestPredecessor:
    def test_exact_hits_and_gaps(self):
        _, tree = build([10, 20, 30, 40])
        assert tree.predecessor(10.0) == (10.0, "v10")
        assert tree.predecessor(25.0) == (20.0, "v20")
        assert tree.predecessor(45.0) == (40.0, "v40")
        assert tree.predecessor(9.0) is None

    def test_predecessor_cost_is_logarithmic(self):
        ctx, tree = build(range(4096), B=16)
        ctx.drop_cache()
        ctx.stats.reset()
        tree.predecessor(2048.5)
        # One I/O per level, cold cache.
        assert ctx.stats.reads <= tree.height + 1

    @settings(max_examples=40, deadline=None)
    @given(
        keys=st.lists(st.integers(0, 10**6), min_size=1, max_size=200, unique=True),
        probe=st.integers(-10, 10**6 + 10),
    )
    def test_matches_linear_scan(self, keys, probe):
        _, tree = build(keys, B=4)
        expected = max((k for k in keys if k <= probe), default=None)
        got = tree.predecessor(float(probe))
        if expected is None:
            assert got is None
        else:
            assert got == (float(expected), f"v{expected}")


class TestCanonicalCover:
    def test_cover_contains_exactly_the_suffix(self):
        _, tree = build(range(100), B=4)
        cover = tree.canonical_cover_geq(63.0)
        keys = []
        for node in cover:
            keys.extend(k for k, _ in tree.leaf_items_under(node.node_id))
        suffix = sorted(k for k in keys if k >= 63.0)
        assert suffix == [float(v) for v in range(63, 100)]
        # Keys below the threshold only come from the single path leaf.
        below = [k for k in keys if k < 63.0]
        path_leaf = cover[-1]
        assert all(k in path_leaf.keys for k in below)

    def test_cover_subtrees_are_disjoint(self):
        _, tree = build(range(64), B=4)
        cover = tree.canonical_cover_geq(20.0)
        seen = []
        for node in cover:
            seen.extend(k for k, _ in tree.leaf_items_under(node.node_id))
        assert len(seen) == len(set(seen))

    def test_cover_size_is_fanout_times_height(self):
        _, tree = build(range(1000), B=8)
        cover = tree.canonical_cover_geq(500.0)
        assert len(cover) <= tree.fanout * tree.height + 1

    def test_threshold_below_everything_covers_all(self):
        _, tree = build(range(50), B=4)
        cover = tree.canonical_cover_geq(-1.0)
        total = sum(len(tree.leaf_items_under(n.node_id)) for n in cover)
        assert total == 50

    def test_threshold_above_everything(self):
        _, tree = build(range(50), B=4)
        cover = tree.canonical_cover_geq(1000.0)
        keys = [k for n in cover for k, _ in tree.leaf_items_under(n.node_id)]
        assert all(k < 1000.0 for k in keys)  # only the path leaf remains


class TestNodeInvariants:
    def test_subtree_sizes_sum_to_n(self):
        _, tree = build(range(321), B=4)
        root = tree.root
        assert root.subtree_size == 321

    def test_leaf_fanout_bounded(self):
        _, tree = build(range(200), B=8)
        for node in tree.iter_nodes():
            if node.is_leaf:
                assert 1 <= len(node.keys) <= tree.fanout
            else:
                assert 1 <= len(node.children) <= tree.fanout

    def test_min_max_keys_consistent(self):
        _, tree = build(random.Random(1).sample(range(10**6), 300), B=8)
        for node in tree.iter_nodes():
            items = tree.leaf_items_under(node.node_id)
            keys = [k for k, _ in items]
            assert node.min_key == min(keys)
            assert node.max_key == max(keys)

    def test_num_blocks_counts_nodes(self):
        _, tree = build(range(100), B=4)
        assert tree.num_blocks == sum(1 for _ in tree.iter_nodes())
