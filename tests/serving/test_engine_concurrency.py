"""Concurrent admission: stats stay exact, no request lost or doubled.

Satellite regressions for the admission path's locking:

* the stats-lock test hammers ``submit`` from 8 threads against a tiny
  queue and requires shed/served counters to add up exactly — the bug
  class where unsynchronized ``+= 1`` drops increments;
* the conservation property test races submitters against drainers and
  cache flushes and requires every admitted request to be answered
  exactly once — the bug class where a queue swap loses or duplicates
  a request.
"""

from __future__ import annotations

import threading

from serving_util import make_elements, make_engine, make_requests
from repro.resilience.errors import AdmissionRejected

THREADS = 8


def run_threads(worker, count=THREADS):
    barrier = threading.Barrier(count)

    def wrapped(idx):
        barrier.wait()
        worker(idx)

    threads = [
        threading.Thread(target=wrapped, args=(i,)) for i in range(count)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


class TestStatsLock:
    def test_shed_counters_exact_under_8_submitters(self):
        """offered == admitted + shed, counter-exactly, every run."""
        engine = make_engine(
            make_elements(), max_pending=32, pool_size=0
        )
        per_thread = 400
        admitted = [0] * THREADS
        shed = [0] * THREADS
        requests = make_requests(per_thread, seed=1)

        def submitter(idx):
            for request in requests:
                try:
                    engine.submit(request.predicate, request.k)
                except AdmissionRejected:
                    shed[idx] += 1
                else:
                    admitted[idx] += 1

        run_threads(submitter)
        assert sum(admitted) + sum(shed) == THREADS * per_thread
        assert engine.stats.load_sheds == sum(shed)
        assert engine.stats.queue_sheds == sum(shed)
        assert engine.stats.deadline_sheds == 0
        assert engine.pending == sum(admitted)

    def test_deadline_sheds_counted_separately(self):
        engine = make_engine(make_elements(), max_pending=64, pool_size=0)
        engine.note_service_time(1.0)  # every queued request costs 1s
        requests = make_requests(50, seed=2)
        shed = [0] * THREADS

        def submitter(idx):
            for request in requests:
                try:
                    # Deadline 2s but the queue soon projects past it.
                    engine.submit(
                        request.predicate, request.k, deadline=2.0, now=0.0
                    )
                except AdmissionRejected as rejection:
                    assert rejection.retry_after is not None
                    assert rejection.retry_after > 0.0
                    shed[idx] += 1

        run_threads(submitter)
        stats = engine.stats
        assert stats.deadline_sheds + stats.queue_sheds == sum(shed)
        assert stats.deadline_sheds > 0
        assert stats.load_sheds == sum(shed)


class TestConservationProperty:
    def test_no_request_lost_or_answered_twice(self):
        """Racing submits, drains, and cache flushes conserve requests.

        Every admitted request must be answered exactly once:
        admitted == answered after the final drain, while sheds are
        accounted and nothing is double-served.
        """
        engine = make_engine(
            make_elements(), max_pending=48, max_batch=8, pool_size=0,
            cache_capacity=32,
        )
        per_thread = 300
        admitted = [0] * THREADS
        shed = [0] * THREADS
        answered = [0] * THREADS
        stop = threading.Event()

        def submitter(idx):
            requests = make_requests(per_thread, seed=idx)
            for request in requests:
                try:
                    engine.submit(request.predicate, request.k)
                except AdmissionRejected:
                    shed[idx] += 1
                else:
                    admitted[idx] += 1

        def drainer(idx):
            while not stop.is_set():
                answered[idx] += len(engine.drain(limit=8))

        def flusher(idx):
            while not stop.is_set():
                engine.flush_cache()

        submit_threads = [
            threading.Thread(target=submitter, args=(i,)) for i in range(4)
        ]
        drain_threads = [
            threading.Thread(target=drainer, args=(4 + i,)) for i in range(3)
        ]
        flush_thread = threading.Thread(target=flusher, args=(7,))
        for t in submit_threads + drain_threads + [flush_thread]:
            t.start()
        for t in submit_threads:
            t.join()
        stop.set()
        for t in drain_threads + [flush_thread]:
            t.join()

        # Drain whatever the racing drainers left behind.
        tail = len(engine.drain())
        total_admitted = sum(admitted)
        total_answered = sum(answered) + tail

        assert total_admitted + sum(shed) == 4 * per_thread
        assert total_answered == total_admitted       # none lost, none doubled
        assert engine.pending == 0
        assert engine.stats.queries == total_answered
        assert engine.stats.load_sheds == sum(shed)

    def test_answers_remain_correct_under_racing_flushes(self):
        """A flush mid-batch may cost a cache hit, never correctness."""
        from repro.core.problem import top_k_of

        elements = make_elements()
        engine = make_engine(
            elements, max_pending=1024, max_batch=8, pool_size=0,
            cache_capacity=32,
        )
        requests = make_requests(200, seed=9)
        collected = []
        stop = threading.Event()

        def flusher():
            while not stop.is_set():
                engine.flush_cache()

        flush_thread = threading.Thread(target=flusher)
        flush_thread.start()
        try:
            for request in requests:
                engine.submit(request.predicate, request.k)
                if engine.pending >= 8:
                    collected.extend(engine.drain(limit=8))
            collected.extend(engine.drain())
        finally:
            stop.set()
            flush_thread.join()

        assert len(collected) == len(requests)
        for request, answer in zip(requests, collected):
            assert answer == top_k_of(elements, request.predicate, request.k)
