"""Theorem 2: top-k from prioritized + max with *no* degradation.

Given a prioritized structure (space ``S_pri``, query ``Q_pri + O(t/B)``)
and a max structure (space ``S_max = O(n^2/B)``, geometrically
converging, query ``Q_max``), the paper builds a top-k structure with

    S_top = O( S_pri(n) + S_max(6n / (B * Q_max(n))) )      (expected)
    Q_top = O( Q_pri(n) + Q_max(n) ) + O(k/B)               (expected)

and updates in ``O(U_pri + U_max)`` expected I/Os.

Construction (Section 4): for ``K_i = B * Q_max(n) * (1+sigma)^{i-1}``
(``sigma = 1/20`` in the paper) take a ``(1/K_i)``-Bernoulli sample
``R_i`` of ``D`` and build a max structure on it.  A top-k query walks
the ladder from the first ``K_i >= k``, running *rounds*: probe the max
structure on ``R_j`` for the heaviest sampled match ``e``; fetch
``{matches with weight >= w(e)}`` from the prioritized structure under
cost monitoring; by Lemma 3 the fetch lands in ``(K_j, 4K_j]`` elements
with probability ``>= 0.09``, in which case k-selection finishes the
query.  Failed rounds escalate to ``j+1``; the geometric success
probability makes the expected total ``O(Q_pri + Q_max + k/B)``.

Updates keep, for every element, the list of sample levels containing it
(expected ``O(1)`` entries since the rates ``1/K_i`` sum geometrically),
so an insert/delete touches the prioritized structure once and ``O(1)``
max structures in expectation.
"""

from __future__ import annotations

import math
import random
from contextlib import contextmanager
from dataclasses import asdict
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.columnar import (
    ColumnSet,
    MatchScan,
    ScanCache,
    auto_columnar,
    columnar_enabled,
    predicate_key,
)
from repro.core.interfaces import (
    DynamicMaxIndex,
    DynamicPrioritizedIndex,
    MaxFactory,
    PrioritizedFactory,
    TopKIndex,
)
from repro.core.params import TuningParams
from repro.core.problem import Element, Predicate, require_distinct_weights
from repro.core.theorem1 import ReductionStats
from repro.em.selection import select_top_k
from repro.resilience.errors import (
    ContractViolation,
    ElementMembershipError,
    RetryBudgetExhausted,
    SerializationError,
    StaticStructureError,
)


class ExpectedTopKIndex(TopKIndex):
    """The Theorem 2 top-k structure.

    Parameters
    ----------
    elements:
        The input set ``D``.
    prioritized_factory / max_factory:
        The two black boxes being combined.  For update support both
        must produce dynamic structures (checked lazily on the first
        ``insert``/``delete``).
    params:
        Tuning constants (``sigma``, the ``4K`` slack, retry budget).
    B:
        Block size; sets ``K_1 = B * Q_max(n)``.  Use a small constant
        for RAM-model instantiations.
    q_max_bound:
        Optional override for ``Q_max(n)`` as a function of ``n``; by
        default a probe max structure on a small sample supplies its own
        :meth:`query_cost_bound`.
    """

    def __init__(
        self,
        elements: Sequence[Element],
        prioritized_factory: PrioritizedFactory,
        max_factory: MaxFactory,
        params: Optional[TuningParams] = None,
        B: int = 2,
        rng: Optional[random.Random] = None,
        seed: int = 0,
        q_max_bound: Optional[Callable[[int], float]] = None,
        columnar: Optional[bool] = None,
    ) -> None:
        self.params = params if params is not None else TuningParams()
        self.B = B
        self._prioritized_factory = prioritized_factory
        self._max_factory = max_factory
        self._q_max_bound = q_max_bound
        self._rng = rng if rng is not None else random.Random(seed)
        self.stats = ReductionStats()
        self.applied_lsn = 0
        self._memo: Optional[dict] = None
        #: ``None`` auto-detects per build (RAM ground -> on, EM -> off);
        #: an explicit bool pins the mode (tests of the ladder machinery
        #: pass ``False`` to exercise the black-box rounds).
        self._columnar_mode = columnar
        self._build(list(elements))

    # ------------------------------------------------------------------
    # Construction (also used by amortized rebuilds)
    # ------------------------------------------------------------------
    def _build(self, elements: List[Element]) -> None:
        require_distinct_weights(elements, "ExpectedTopKIndex")
        self._elements: Dict[Element, None] = dict.fromkeys(elements)
        self._weights = {element.weight for element in elements}
        n = len(elements)
        self._built_n = max(1, n)
        self._ground = self._prioritized_factory(elements)
        if self._columnar_mode is None:
            self._columnar = auto_columnar(self._ground)
        else:
            self._columnar = bool(self._columnar_mode) and columnar_enabled()
        # The ground set mirrored as weight-descending columns, plus the
        # per-predicate resumable scans over it.  Scans are dropped on
        # every update (insert/delete bump the column version and clear
        # the cache), so a scan can never serve a stale prefix.
        self._columns = ColumnSet(elements) if self._columnar else None
        self._scans = ScanCache()
        if self._q_max_bound is not None:
            q_max = self._q_max_bound(max(2, n))
        else:
            q_max = max(1.0, math.log2(max(2, n)))
        # K_i = B * Q_max(n) * (1+sigma)^{i-1}; h = largest i with K_i <= n/4.
        self._K: List[float] = []
        K = float(self.B) * q_max
        while K <= n / 4:
            self._K.append(K)
            K *= 1.0 + self.params.sigma
        # Samples are ordered dict-sets so membership updates are O(1)
        # expected — a plain list would make delete() scan |R_i|.
        self._samples: List[Dict[Element, None]] = []
        self._max_indexes: List[object] = []
        self._membership: Dict[Element, List[int]] = {}
        for i, K_i in enumerate(self._K):
            sample: Dict[Element, None] = {}
            for element in elements:
                if self._rng.random() < 1.0 / K_i:
                    sample[element] = None
                    self._membership.setdefault(element, []).append(i)
            self._samples.append(sample)
            self._max_indexes.append(self._max_factory(list(sample)))

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return len(self._elements)

    def __contains__(self, element: Element) -> bool:
        """O(1) membership — the substrate of idempotent WAL replay."""
        return element in self._elements

    def note_applied(self, lsn: int) -> None:
        """Record the highest WAL LSN folded into this in-memory state.

        Maintained by the durability/replication layers; the structure
        itself never assigns LSNs.  Lets replica schedulers compare
        index freshness without reaching into the WAL.
        """
        if lsn > self.applied_lsn:
            self.applied_lsn = lsn

    @property
    def num_levels(self) -> int:
        """Height ``h`` of the sample ladder."""
        return len(self._K)

    # ------------------------------------------------------------------
    # Durability (snapshot/restore)
    # ------------------------------------------------------------------
    SNAPSHOT_FORMAT = "expected-topk"
    SNAPSHOT_VERSION = 1

    def snapshot_state(self) -> dict:
        """Everything needed to rebuild this index *bit-for-bit*.

        The randomness is captured as *decisions*, not seeds: the exact
        membership of every sample ``R_i`` (as indices into the element
        list) plus the RNG's full state, so the restored index answers
        every query identically — including the escalation ladder's
        round outcomes — and future inserts draw the same coin flips
        the original would have.  Factories and bound callables are
        code, not state; the restorer supplies them again.
        """
        elements = list(self._elements)
        index_of = {element: i for i, element in enumerate(elements)}
        return {
            "format": self.SNAPSHOT_FORMAT,
            "version": self.SNAPSHOT_VERSION,
            "elements": elements,
            "B": self.B,
            "built_n": self._built_n,
            "K": list(self._K),
            "samples": [
                [index_of[element] for element in sample]
                for sample in self._samples
            ],
            "rng_state": self._rng.getstate(),
            "params": asdict(self.params),
        }

    @classmethod
    def restore(
        cls,
        state: dict,
        prioritized_factory: PrioritizedFactory,
        max_factory: MaxFactory,
        q_max_bound: Optional[Callable[[int], float]] = None,
    ) -> "ExpectedTopKIndex":
        """Rebuild from :meth:`snapshot_state` output.

        Re-runs the factories on the *recorded* subsets instead of
        re-sampling, so the ladder is reconstructed exactly; only the
        sub-structure internals are rebuilt (they are deterministic
        functions of their element lists).
        """
        if state.get("format") != cls.SNAPSHOT_FORMAT:
            raise SerializationError(
                f"snapshot format {state.get('format')!r} is not "
                f"{cls.SNAPSHOT_FORMAT!r}"
            )
        if state.get("version") != cls.SNAPSHOT_VERSION:
            raise SerializationError(
                f"snapshot version {state.get('version')!r} unsupported "
                f"(this build reads {cls.SNAPSHOT_VERSION})"
            )
        self = cls.__new__(cls)
        self.params = TuningParams(**state["params"])
        self.B = state["B"]
        self._prioritized_factory = prioritized_factory
        self._max_factory = max_factory
        self._q_max_bound = q_max_bound
        self._rng = random.Random()
        self._rng.setstate(state["rng_state"])
        self.stats = ReductionStats()
        self.applied_lsn = 0
        self._memo = None
        elements: List[Element] = list(state["elements"])
        require_distinct_weights(elements, "ExpectedTopKIndex.restore")
        self._elements = dict.fromkeys(elements)
        self._weights = {element.weight for element in elements}
        self._built_n = state["built_n"]
        self._ground = prioritized_factory(elements)
        # Columns are a derived mirror of the element list, not state:
        # rebuilding them deterministically keeps snapshot formats
        # unchanged while the restored index answers columnar too.
        self._columnar_mode = None
        self._columnar = auto_columnar(self._ground)
        self._columns = ColumnSet(elements) if self._columnar else None
        self._scans = ScanCache()
        self._K = list(state["K"])
        if len(state["samples"]) != len(self._K):
            raise SerializationError(
                f"snapshot has {len(state['samples'])} samples for "
                f"{len(self._K)} ladder levels"
            )
        self._samples = []
        self._max_indexes = []
        self._membership = {}
        for i, indices in enumerate(state["samples"]):
            sample: Dict[Element, None] = dict.fromkeys(
                elements[j] for j in indices
            )
            for element in sample:
                self._membership.setdefault(element, []).append(i)
            self._samples.append(sample)
            self._max_indexes.append(max_factory(list(sample)))
        return self

    @contextmanager
    def batched(self):
        """A shared-probe window for a batch of queries.

        Inside the window the escalation ladder memoizes its
        deterministic sub-probes per predicate — the step-1 monitored
        ground probe, the step-2 max-structure probe, and the step-3
        thresholded fetch — so queries the batch planner did not merge
        (or a guard retry re-running a query after a transient fault
        aborted it mid-ladder) reuse completed rounds instead of
        repeating them.  Updates inside the window clear the memo: a
        memoized probe must never survive a state change.  Nested
        windows share the outermost memo.
        """
        previous = self._memo
        self._memo = {} if previous is None else previous
        try:
            yield self
        finally:
            self._memo = previous

    def query_topk_batch(self, requests, **kwargs) -> List[List[Element]]:
        """Batched queries: one traversal per predicate group, memo on.

        See :meth:`TopKIndex.query_topk_batch` for the grouping
        contract; this override additionally opens a :meth:`batched`
        probe-memo window for the batch's duration.
        """
        from repro.serving.batch import execute_batch

        self.stats.batch_queries += len(requests)
        with self.batched():
            return execute_batch(self, requests, **kwargs)

    def query(
        self, predicate: Predicate, k: int, round_budget: Optional[int] = None
    ) -> List[Element]:
        """Exact top-k answer, heaviest first (expected cost per Theorem 2).

        ``round_budget`` optionally caps the number of escalation-ladder
        rounds this query may run.  When the cap is hit before a round
        succeeds, the query raises
        :class:`~repro.resilience.errors.RetryBudgetExhausted` instead
        of escalating further — the hook
        :class:`~repro.resilience.guard.ResilientTopKIndex` uses to
        bound per-query cost and take over with its degradation ladder.
        With the default ``None`` the ladder runs to its end and
        finishes with the step-6(b) full scan, exactly as before.
        """
        self.stats.queries += 1
        if k <= 0 or self.n == 0:
            return []
        if round_budget is None and self._columnar:
            # Columnar direct path: the ground columns are weight-
            # descending, so the first k matches of one resumable scan
            # *are* the answer — the sample ladder exists to simulate
            # exactly this scan order on black boxes that cannot
            # provide it.  Budgeted queries stay on the faithful
            # rounds: their contract is "this many ladder rounds, then
            # RetryBudgetExhausted", which a direct answer would void.
            return self._columnar_query(predicate, k)
        n = self.n
        if not self._K or k > self._K[-1]:
            # k beyond the ladder (or no ladder at all): scan D.
            return self._scan_answer(predicate, k)
        # Queries with k < K_1 are treated as top-ceil(K_1) then k-selected.
        k_eff = max(k, math.ceil(self._K[0]))
        if k_eff > self._K[-1]:
            return self._scan_answer(predicate, k)
        j = self._first_level_at_least(k_eff)
        rounds_used = 0
        while j < len(self._K):
            if round_budget is not None and rounds_used >= round_budget:
                raise RetryBudgetExhausted(
                    f"round budget {round_budget} exhausted at ladder level {j} "
                    f"of {len(self._K)}",
                    attempts=rounds_used,
                )
            answer = self._round(predicate, k, j)
            rounds_used += 1
            if answer is not None:
                return answer
            j += 1
        # Step 6(b): every round failed — read the whole of D.
        return self._scan_answer(predicate, k)

    def _columnar_query(self, predicate: Predicate, k: int) -> List[Element]:
        """Top-k via one early-exit scan of the ground columns.

        Inside a ``batched()`` window the scan itself is the memoized
        artifact — a ``(columns, frontier, match positions)`` triple,
        not a copied answer list — so the window's repeats (same
        predicate at other ``k`` values, guard retries) resume the
        traversal; a repeat already covered by the frontier is a memo
        hit.  Counters keep their meanings: a ladder-answerable ``k``
        counts one monitored probe (the scan plays the probe's role), a
        beyond-ladder ``k`` counts a full scan.
        """
        memo = self._memo
        scan: Optional[MatchScan] = None
        key = None
        if memo is not None:
            key = ("cscan", predicate_key(predicate))
            scan = memo.get(key)
            if scan is not None:
                self.stats.memo_hits += 1
        if scan is None:
            scan = self._scans.get(self._columns, predicate)
            if memo is not None:
                memo[key] = scan
        if not self._K or k > self._K[-1]:
            self.stats.full_scans += 1
        else:
            self.stats.monitored_probes += 1
        return list(scan.first(k))

    def _first_level_at_least(self, k_eff: float) -> int:
        """Smallest ladder index ``i`` (0-based) with ``K_i >= k_eff``."""
        lo, hi = 0, len(self._K) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._K[mid] >= k_eff:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def _memo_key(self, predicate: Predicate):
        """The per-predicate memo handle, or ``None`` outside a window."""
        if self._memo is None:
            return None
        return predicate_key(predicate)

    def _round(self, predicate: Predicate, k: int, j: int) -> Optional[List[Element]]:
        """One round at ladder level ``j``; ``None`` means the round failed."""
        K_j = self._K[j]
        cap = math.ceil(self.params.slack * K_j)
        memo, pkey = self._memo, self._memo_key(predicate)
        # Step 1: if |q(D)| <= 4K_j the monitored probe fetches everything.
        # Deterministic in (predicate, cap), so a batch window reuses it.
        # Visit-promoted: a cold flat scan loses to a sublinear ground
        # structure on selective predicates, so a predicate's first
        # visit stays on the structure (complete results recorded as
        # scan seeds) and repeats answer from the columns — see
        # ``theorem1._query_level`` for the full rationale.
        scan = (
            self._scans.visit(self._columns, predicate) if self._columnar else None
        )
        probe = memo.get(("probe", pkey, cap)) if memo is not None else None
        if probe is None:
            self.stats.monitored_probes += 1
            if scan is not None:
                probe = scan.probe(cap)
            else:
                probe = self._ground.query(predicate, -math.inf, limit=cap)
                if self._columnar and not probe.truncated:
                    self._scans.record_seed(probe.elements, len(self._columns))
            if memo is not None:
                memo[("probe", pkey, cap)] = probe
        else:
            self.stats.memo_hits += 1
        if not probe.truncated:
            return select_top_k(probe.elements, k)
        # Step 2: max probe on the sample R_j (memo key includes the
        # level: each R_j is its own structure).
        if memo is not None and ("max", pkey, j) in memo:
            self.stats.memo_hits += 1
            top_sampled = memo[("max", pkey, j)]
        else:
            top_sampled = self._max_indexes[j].query(predicate)
            if memo is not None:
                memo[("max", pkey, j)] = top_sampled
        tau = top_sampled.weight if top_sampled is not None else -math.inf
        # Step 3: cost-monitored prioritized fetch at threshold tau.
        fetched = memo.get(("fetch", pkey, tau, cap)) if memo is not None else None
        if fetched is None:
            self.stats.threshold_fetches += 1
            if scan is not None:
                fetched = scan.fetch(tau, limit=cap)
            else:
                fetched = self._ground.query(predicate, tau, limit=cap)
                if self._columnar and not fetched.truncated:
                    self._scans.record_seed(
                        fetched.elements, self._columns.count_at_least(tau)
                    )
            if memo is not None:
                memo[("fetch", pkey, tau, cap)] = fetched
        else:
            self.stats.memo_hits += 1
        # Step 4: the round fails if the fetch truncated (> 4K_j matches
        # above tau) or came back too small (<= K_j, not enough for k).
        if fetched.truncated or len(fetched.elements) <= K_j:
            self.stats.fallbacks += 1
            return None
        # Step 5: success — the fetch holds > K_j >= k_eff >= k elements.
        return select_top_k(fetched.elements, k)

    def _scan_answer(self, predicate: Predicate, k: int) -> List[Element]:
        """Answer by reading all of ``D`` — ``O(n/B) = O(k/B)`` here.

        Routed through the prioritized structure with ``tau = -inf`` so
        the scan's cost is *counted* (I/Os in EM mode, ops in RAM mode)
        rather than silently free; columnar mode answers from the flat
        ground columns instead (early exit at ``k`` matches).
        """
        self.stats.full_scans += 1
        if self._columnar:
            return list(self._scans.get(self._columns, predicate).first(k))
        result = self._ground.query(predicate, -math.inf)
        return select_top_k(result.elements, k)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def insert(self, element: Element) -> None:
        """Insert in ``O(U_pri + U_max)`` expected (amortized over rebuilds).

        The element enters the prioritized structure and, independently
        for each level ``i``, the sample ``R_i`` with probability
        ``1/K_i`` — expected ``O(1)`` max-structure insertions since the
        rates decrease geometrically.
        """
        if element in self._elements:
            raise ElementMembershipError(f"element already present: {element!r}")
        if element.weight in self._weights:
            raise ContractViolation(
                f"insert of weight {element.weight!r} duplicates an indexed "
                "weight, violating the distinct-weights precondition; "
                "pre-process inserts with ensure_distinct_weights()"
            )
        ground = self._require_dynamic_ground()
        if self._memo is not None:
            self._memo.clear()  # memoized probes must not survive updates
        self._scans.clear()
        self._elements[element] = None
        self._weights.add(element.weight)
        ground.insert(element)
        if self._columns is not None:
            self._columns.insert(element)
        for i, K_i in enumerate(self._K):
            if self._rng.random() < 1.0 / K_i:
                self._membership.setdefault(element, []).append(i)
                self._samples[i][element] = None
                self._dynamic_max(i).insert(element)
        self._maybe_rebuild()

    def delete(self, element: Element) -> None:
        """Delete in ``O(U_pri + U_max)`` expected (amortized over rebuilds)."""
        if element not in self._elements:
            raise ElementMembershipError(f"element not present: {element!r}")
        ground = self._require_dynamic_ground()
        if self._memo is not None:
            self._memo.clear()  # memoized probes must not survive updates
        self._scans.clear()
        del self._elements[element]
        self._weights.discard(element.weight)
        ground.delete(element)
        if self._columns is not None:
            self._columns.delete(element)
        for i in self._membership.pop(element, []):
            del self._samples[i][element]
            self._dynamic_max(i).delete(element)
        self._maybe_rebuild()

    def _require_dynamic_ground(self) -> DynamicPrioritizedIndex:
        if not isinstance(self._ground, DynamicPrioritizedIndex):
            raise StaticStructureError(
                "updates require a DynamicPrioritizedIndex; the prioritized "
                f"factory produced {type(self._ground).__name__}"
            )
        return self._ground

    def _dynamic_max(self, i: int) -> DynamicMaxIndex:
        index = self._max_indexes[i]
        if not isinstance(index, DynamicMaxIndex):
            raise StaticStructureError(
                "updates require DynamicMaxIndex instances; the max factory "
                f"produced {type(index).__name__}"
            )
        return index

    def _maybe_rebuild(self) -> None:
        """Global rebuild when ``n`` drifts by 2x — standard amortization.

        The ladder height and sampling rates depend on ``n``; rebuilding
        after ``Theta(n)`` updates charges ``O(build/n)`` amortized per
        update, which the paper's amortized-expected bounds absorb.
        """
        n = len(self._elements)
        if n > 2 * self._built_n or (n < self._built_n // 2 and self._built_n > 4):
            self._build(list(self._elements))

    # ------------------------------------------------------------------
    def space_units(self) -> int:
        """Prioritized footprint plus every ladder max structure.

        Theorem 2 bounds the ladder total by
        ``o(n/B) + O(S_max(6n/(B*Q_max)))`` with high probability —
        bench E4 audits the measured number against the bound.
        """
        total = self._ground.space_units()
        for index in self._max_indexes:
            total += index.space_units()
        return total

    def ladder_sample_sizes(self) -> List[int]:
        """Sizes of the ``R_i`` (diagnostics for the space audit)."""
        return [len(sample) for sample in self._samples]
