"""MitigationPlanner: state-aware ladders over existing levers."""

from repro.ops.detector import Anomaly
from repro.ops.incidents import Incident, MitigationRecord
from repro.ops.mitigation import (
    LEVER_FAILOVER,
    LEVER_REBALANCE,
    LEVER_REBOOT,
    LEVER_RECOVER_SHARD,
    LEVER_SCRUB,
    MitigationPlanner,
)

from ops_util import replicated_stack, sharded_stack


def incident(scope, kind="fault_spike", anomalies=()):
    inc = Incident(id=1, scope=scope, kind=kind, opened_at=1)
    inc.anomalies = [
        Anomaly(tick=1, kind=k, scope=scope, metric="m", value=1, threshold=1)
        for k in (anomalies or (kind,))
    ]
    return inc


def pulled(inc, *levers):
    for i, lever in enumerate(levers):
        inc.mitigations.append(MitigationRecord(
            tick=i + 2, lever=lever, target=inc.scope[1], outcome="ok: done"
        ))
    return inc


class TestMachineLadder:
    def test_alive_primary_gets_gentle_failover_first(self):
        _, _, cluster, _, _, _ = replicated_stack()
        planner = MitigationPlanner(cluster=cluster)
        action = planner.plan(incident(("machine", "replica-0")))
        assert action.lever == LEVER_FAILOVER

    def test_alive_follower_gets_reboot_first(self):
        _, _, cluster, _, _, _ = replicated_stack()
        planner = MitigationPlanner(cluster=cluster)
        action = planner.plan(incident(("machine", "replica-1")))
        assert action.lever == LEVER_REBOOT

    def test_corruption_gets_scrub_before_reboot(self):
        _, _, cluster, _, _, _ = replicated_stack()
        planner = MitigationPlanner(cluster=cluster)
        inc = incident(("machine", "replica-1"), kind="corruption_drip")
        assert planner.plan(inc).lever == LEVER_SCRUB
        pulled(inc, LEVER_SCRUB)
        assert planner.plan(inc).lever == LEVER_REBOOT

    def test_dead_machine_gets_reboot(self):
        _, _, cluster, _, _, _ = replicated_stack()
        cluster.replicas[1].mark_dead()
        planner = MitigationPlanner(cluster=cluster)
        action = planner.plan(incident(("machine", "replica-1")))
        assert action.lever == LEVER_REBOOT

    def test_attempted_levers_are_skipped_across_state_changes(self):
        # A failover turns the blamed primary into a follower; the next
        # escalation must not re-index into the new ladder and skip a
        # rung — it continues with the first lever not yet pulled.
        _, _, cluster, _, _, _ = replicated_stack()
        planner = MitigationPlanner(cluster=cluster)
        inc = incident(("machine", "replica-0"), kind="latency_storm")
        assert planner.plan(inc).lever == LEVER_FAILOVER
        cluster.force_failover()
        pulled(inc, LEVER_FAILOVER)
        assert planner.plan(inc).lever == LEVER_REBOOT

    def test_spent_ladder_returns_none(self):
        _, _, cluster, _, _, _ = replicated_stack()
        planner = MitigationPlanner(cluster=cluster)
        inc = pulled(incident(("machine", "replica-1")), LEVER_REBOOT, LEVER_SCRUB)
        assert planner.plan(inc) is None

    def test_deferrals_do_not_consume_rungs(self):
        _, _, cluster, _, _, _ = replicated_stack()
        planner = MitigationPlanner(cluster=cluster)
        inc = incident(("machine", "replica-1"))
        inc.mitigations.append(MitigationRecord(
            tick=2, lever="(deferred)", target="replica-1",
            outcome="deferred: flux",
        ))
        assert planner.plan(inc).lever == LEVER_REBOOT

    def test_unknown_machine_has_no_ladder(self):
        _, _, cluster, _, _, _ = replicated_stack()
        planner = MitigationPlanner(cluster=cluster)
        assert planner.plan(incident(("machine", "replica-99"))) is None


class TestShardLadder:
    def test_dead_shard_gets_recover(self):
        _, _, sharded, _, _ = sharded_stack()
        sharded.router.shards["shard-1"].machine.mark_dead()
        planner = MitigationPlanner(sharded=sharded)
        action = planner.plan(incident(("shard", "shard-1"), kind="shard_down"))
        assert action.lever == LEVER_RECOVER_SHARD

    def test_hot_shard_gets_rebalance(self):
        _, _, sharded, _, _ = sharded_stack()
        planner = MitigationPlanner(sharded=sharded)
        action = planner.plan(incident(("shard", "shard-1"), kind="hot_shard"))
        assert action.lever == LEVER_REBALANCE


class TestSubsystemLadder:
    def test_no_engine_means_no_lever(self):
        planner = MitigationPlanner()
        assert planner.plan(incident(("subsystem", "serving"))) is None
