"""2D point enclosure structures (the substrate of Theorem 5).

Problem: ``D`` is a set of weighted axis-parallel rectangles; a
predicate is a point ``q = (x, y)``, matched by every rectangle
containing it ("2D stabbing").  The paper's dating-site example: each
rectangle is a member's acceptable (age, height) box, the weight their
salary, the query a candidate's own (age, height).

Structures:

* :class:`RectanglePrioritized` — segment tree on the rectangles'
  x-projections; each canonical node stores its rectangles in a nested
  1D prioritized stabbing structure over the y-projections.  Query:
  walk the x-path (``O(log n)`` nodes), run a y-stabbing prioritized
  query at each — ``O(log^2 n + t)``.  Substitutes for Rahul's
  ``O(n log* n)``-space structure [27]; space here is ``O(n log^2 n)``.
* :class:`RectangleStabbingMax` — exactly the paper's Section 5.2
  construction: segment tree on x-projections with a static 1D stabbing
  max per node — ``O(log^2 n)`` plain, ``O(log n)`` with fractional
  cascading (:class:`CascadedRectangleStabbingMax`), as the paper
  prescribes via [14].
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.columnar import register_predicate_compiler
from repro.core.interfaces import MaxIndex, OpCounter, PrioritizedIndex, PrioritizedResult
from repro.core.problem import Element, Predicate
from repro.geometry.cascading import CascadeNode, FractionalCascading
from repro.geometry.primitives import Interval, Point, Rect
from repro.structures.interval_stabbing import (
    SegmentTreeIntervalPrioritized,
    StabbingPredicate,
    StaticIntervalStabbingMax,
    _SegmentTree,
)


@dataclass(frozen=True)
class EnclosurePredicate(Predicate):
    """Matches every rectangle containing the query point."""

    point: Point

    def matches(self, obj: Rect) -> bool:
        return obj.contains(self.point)


@register_predicate_compiler(EnclosurePredicate)
def _compile_enclosure(predicate: EnclosurePredicate):
    """Closure-specialized enclosure test: query point in locals."""
    x, y = predicate.point[0], predicate.point[1]
    return lambda obj: obj.x1 <= x <= obj.x2 and obj.y1 <= y <= obj.y2


def _x_interval(element: Element) -> Interval:
    return element.obj.x_interval


def _y_interval(element: Element) -> Interval:
    return element.obj.y_interval


class RectanglePrioritized(PrioritizedIndex):
    """Prioritized point enclosure: ``O(log^2 n + t)``, static.

    The x-segment tree's canonical nodes each carry a
    :class:`SegmentTreeIntervalPrioritized` over the y-projections of
    the rectangles assigned there, so both coordinates are resolved
    with exact output sensitivity.
    """

    def __init__(self, elements: Sequence[Element], ctx=None) -> None:
        self.ops = OpCounter()
        self.ctx = ctx
        self._n = len(elements)
        self._xtree = _SegmentTree(
            [c for e in elements for c in (e.obj.x1, e.obj.x2)], _x_interval
        )
        for element in elements:
            self._xtree.insert(element)
        # Replace each canonical list with a nested y-structure; in EM
        # mode (ctx given) the nested structures share the context, so
        # their list scans and node visits are I/O-counted.
        self._ynodes: Dict[Tuple[int, int], SegmentTreeIntervalPrioritized] = {
            key: SegmentTreeIntervalPrioritized(lst, ctx=ctx, interval_of=_y_interval)
            for key, lst in self._xtree.lists.items()
        }

    @property
    def n(self) -> int:
        return self._n

    def query_cost_bound(self) -> float:
        """``Q_pri = O(log^2 n)`` — x-path times nested y-paths."""
        log_n = max(1.0, math.log2(max(2, self._n)))
        return log_n * log_n

    def query(
        self, predicate: EnclosurePredicate, tau: float, limit: Optional[int] = None
    ) -> PrioritizedResult:
        x, y = predicate.point[0], predicate.point[1]
        y_predicate = StabbingPredicate(y)
        out: List[Element] = []
        for key, is_leaf in self._xtree.path_nodes(x):
            self.ops.node_visits += 1
            ystruct = self._ynodes.get(key)
            if ystruct is None:
                continue
            remaining = None if limit is None else limit + 1 - len(out)
            sub = ystruct.query(y_predicate, tau, limit=remaining)
            for element in sub.elements:
                # Leaf assignments may cover the x-slab partially.
                if is_leaf and not element.obj.x_interval.contains(x):
                    continue
                out.append(element)
                if limit is not None and len(out) > limit:
                    return PrioritizedResult(out, truncated=True)
        return PrioritizedResult(out, truncated=False)

    def space_units(self) -> int:
        """Nested list entries (``O(n log^2 n)`` words)."""
        return sum(ystruct.space_units() for ystruct in self._ynodes.values())


class RectangleStabbingMax(MaxIndex):
    """The paper's 2D stabbing max (Section 5.2), without cascading.

    Segment tree on x-projections; per node the folklore static 1D
    stabbing max on the y-projections.  Query: ``O(log n)`` path nodes
    x ``O(log n)`` predecessor searches = ``O(log^2 n)``.
    """

    def __init__(self, elements: Sequence[Element]) -> None:
        self.ops = OpCounter()
        self._n = len(elements)
        self._xtree = _SegmentTree(
            [c for e in elements for c in (e.obj.x1, e.obj.x2)], _x_interval
        )
        for element in elements:
            self._xtree.insert(element)
        self._ymax: Dict[Tuple[int, int], StaticIntervalStabbingMax] = {
            key: StaticIntervalStabbingMax(lst, interval_of=_y_interval)
            for key, lst in self._xtree.lists.items()
        }

    @property
    def n(self) -> int:
        return self._n

    def query_cost_bound(self) -> float:
        log_n = max(1.0, math.log2(max(2, self._n)))
        return log_n * log_n

    def query(self, predicate: EnclosurePredicate) -> Optional[Element]:
        x, y = predicate.point[0], predicate.point[1]
        y_predicate = StabbingPredicate(y)
        best: Optional[Element] = None
        for key, is_leaf in self._xtree.path_nodes(x):
            self.ops.node_visits += 1
            ystruct = self._ymax.get(key)
            if ystruct is None:
                continue
            candidate = ystruct.query(y_predicate)
            if candidate is None:
                continue
            if is_leaf and not candidate.obj.x_interval.contains(x):
                # Partial leaf assignment: fall back to scanning the
                # leaf's own (small) list exactly.
                candidate = self._leaf_exact_max(key, predicate)
                if candidate is None:
                    continue
            if best is None or candidate.weight > best.weight:
                best = candidate
        return best

    def _leaf_exact_max(
        self, key: Tuple[int, int], predicate: EnclosurePredicate
    ) -> Optional[Element]:
        best: Optional[Element] = None
        for element in self._xtree.lists.get(key, []):
            if element.obj.contains(predicate.point):
                if best is None or element.weight > best.weight:
                    best = element
        return best

    def space_units(self) -> int:
        return sum(ystruct.space_units() for ystruct in self._ymax.values())


class CascadedRectangleStabbingMax(MaxIndex):
    """2D stabbing max in ``O(log n)`` via fractional cascading.

    The paper (Section 5.2): "each 1D query performs nothing but
    predecessor search on a sorted list", so cascading the per-node
    endpoint grids along the x-path removes the inner ``log``.  This
    class builds an *explicit* x-segment tree whose nodes carry (a) the
    node's 1D stabbing-max champion table and (b) the cascade keys (the
    y endpoint grid); one :class:`FractionalCascading` preprocessing
    pass links them.

    Static and grid-aligned (no partial leaf assignments), matching the
    paper's static setting.
    """

    def __init__(self, elements: Sequence[Element]) -> None:
        self.ops = OpCounter()
        self._n = len(elements)
        self._xcoords: List[float] = sorted({c for e in elements for c in (e.obj.x1, e.obj.x2)})
        num_leaves = 2 * len(self._xcoords) + 1
        # Canonical assignment reuses the implicit segment tree, then an
        # explicit cascade-ready mirror is built over the same ranges.
        helper = _SegmentTree(self._xcoords, _x_interval)
        for element in elements:
            helper.insert(element)
        self._helper = helper
        self._root = self._build_cascade_node(0, num_leaves - 1)
        self._fc = FractionalCascading(self._root)

    def _build_cascade_node(self, lo: int, hi: int) -> CascadeNode:
        elements = self._helper.lists.get((lo, hi), [])
        table = StaticIntervalStabbingMax(elements, interval_of=_y_interval)
        node = CascadeNode(keys=list(table.endpoint_grid), payloads=[table])
        node.range = (lo, hi)  # type: ignore[attr-defined]
        if lo != hi:
            mid = (lo + hi) // 2
            node.left = self._build_cascade_node(lo, mid)
            node.right = self._build_cascade_node(mid + 1, hi)
        return node

    @property
    def n(self) -> int:
        return self._n

    def query_cost_bound(self) -> float:
        """``Q_max = O(log n)`` — one search plus O(1) per path node."""
        return max(1.0, math.log2(max(2, self._n)))

    def query(self, predicate: EnclosurePredicate) -> Optional[Element]:
        x, y = predicate.point[0], predicate.point[1]
        leaf = self._leaf_of(x)
        # Model cost of the single binary search at the cascade root;
        # each subsequent path node costs O(1) (counted as node_visits).
        root_keys = len(self._fc.root.aug_keys)
        self.ops.scanned += max(1, math.ceil(math.log2(root_keys + 2)))

        def chooser(node: CascadeNode) -> Optional[str]:
            lo, hi = node.range  # type: ignore[attr-defined]
            if lo == hi:
                return None
            mid = (lo + hi) // 2
            return "left" if leaf <= mid else "right"

        best: Optional[Element] = None
        for node, pred in self._fc.descend(y, chooser):
            self.ops.node_visits += 1
            table: StaticIntervalStabbingMax = node.payloads[0]
            candidate = table.champion_for_predecessor(pred, y)
            if candidate is not None and (best is None or candidate.weight > best.weight):
                best = candidate
        return best

    def _leaf_of(self, x: float) -> int:
        i = bisect.bisect_left(self._xcoords, x)
        if i < len(self._xcoords) and self._xcoords[i] == x:
            return 2 * i + 1
        return 2 * i

