"""Rank sampling: the probabilistic engine behind both reductions.

Two lemmas from the paper are implemented and empirically checkable:

* **Lemma 1** — in a ``p``-sample ``R`` of ``S``, the element with rank
  ``ceil(2kp)`` in ``R`` has rank between ``k`` and ``4k`` in ``S`` with
  probability ``>= 1 - delta`` whenever ``kp >= 3 ln(3/delta)`` and
  ``n >= 4k``.  Theorem 1's core-sets rest on this.
* **Lemma 3** — in a ``(1/K)``-sample, the *largest* sampled element has
  rank in ``(K, 4K]`` with probability at least ``0.09``.  Theorem 2's
  rounds rest on this (a constant success probability is enough because
  failed rounds escalate geometrically).

The module also carries the Chernoff bounds from the paper's appendix as
plain functions, used by tests to compute the predicted failure
probabilities that the Monte-Carlo bench (E10) compares against.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Sequence, Tuple, TypeVar

T = TypeVar("T")


def bernoulli_sample(
    items: Sequence[T], p: float, rng: random.Random
) -> List[T]:
    """Independently keep each item with probability ``p`` (a p-sample).

    For small ``p`` the geometric-gap trick is used so the cost is
    proportional to the sample size, not to ``len(items)`` — this keeps
    core-set construction cheap at bench scale.
    """
    return [items[i] for i in bernoulli_sample_positions(len(items), p, rng)]


def bernoulli_sample_positions(
    n: int, p: float, rng: random.Random
) -> List[int]:
    """The *positions* kept by a p-sample of ``n`` slots (ascending).

    This is :func:`bernoulli_sample` with the item indirection removed —
    columnar callers sample positions into parallel arrays directly.
    The RNG stream consumed is **identical** to :func:`bernoulli_sample`
    for every ``(n, p)``: fixed-seed builds (core-set hierarchies,
    ladder samples, snapshot replays) see the same coin flips whichever
    entry point runs.
    """
    if p >= 1.0:
        return list(range(n))
    if p <= 0.0:
        return []
    out: List[int] = []
    if p > 0.1:
        for position in range(n):
            if rng.random() < p:
                out.append(position)
        return out
    # Skip-ahead sampling: gaps between successes are geometric.
    log1p = math.log1p(-p)
    index = -1
    while True:
        gap = math.log(1.0 - rng.random()) / log1p
        if gap >= n - index:  # also catches overflow to +inf for tiny p
            return out
        index += int(gap) + 1
        if index >= n:
            return out
        out.append(index)


def chernoff_lower_tail(mu: float, alpha: float) -> float:
    """Appendix bound (16): ``Pr[X <= (1-alpha) mu] <= exp(-alpha^2 mu / 3)``."""
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0,1), got {alpha}")
    return math.exp(-(alpha**2) * mu / 3.0)


def chernoff_upper_tail(mu: float, alpha: float) -> float:
    """Appendix bound (17): ``Pr[X >= alpha mu] <= exp(-alpha mu / 6)`` for alpha >= 2."""
    if alpha < 2.0:
        raise ValueError(f"alpha must be >= 2, got {alpha}")
    return math.exp(-alpha * mu / 6.0)


def lemma1_conditions_hold(n: int, k: int, p: float, delta: float) -> bool:
    """The working conditions of Lemma 1: ``kp >= 3 ln(3/delta)``, ``n >= 4k``."""
    return k * p >= 3.0 * math.log(3.0 / delta) and n >= 4 * k


def lemma1_failure_bound(delta: float) -> float:
    """Lemma 1 guarantees success with probability at least ``1 - delta``."""
    return delta


def lemma1_sample_rank(k: int, p: float) -> int:
    """The rank ``ceil(2kp)`` probed in the sample by Lemma 1."""
    return max(1, math.ceil(2.0 * k * p))


def lemma3_success_probability() -> float:
    """Lemma 3's guaranteed success probability (``>= 0.09``).

    The proof shows failure probability at most ``2/e^4 + (1 - 1/e^2)``.
    """
    return 1.0 - (2.0 / math.e**4 + (1.0 - 1.0 / math.e**2))


def rank_of_max_in_sample(
    weights_desc: Sequence[float], sampled: Sequence[float]
) -> Optional[int]:
    """1-based rank (in the full set) of the largest sampled weight.

    Test/bench helper for Lemma 3: ``weights_desc`` is the full set in
    descending order, ``sampled`` a subset.  ``None`` if the sample is
    empty.
    """
    if not sampled:
        return None
    top = max(sampled)
    # Distinct weights: position by binary search over the descending list.
    lo, hi = 0, len(weights_desc)
    while lo < hi:
        mid = (lo + hi) // 2
        if weights_desc[mid] > top:
            lo = mid + 1
        else:
            hi = mid
    return lo + 1


def empirical_rank_window(
    n: int,
    k: int,
    p: float,
    trials: int,
    rng: random.Random,
) -> Tuple[float, float]:
    """Monte-Carlo check of Lemma 1 on the canonical weighted set.

    Samples ``{1..n}`` (rank i == value n - i + 1) ``trials`` times and
    returns ``(fraction of trials where both bullets held, average
    sample size)``.  Used by bench E10 and the property tests to compare
    the observed failure rate with the union-bound prediction.
    """
    successes = 0
    total_size = 0
    target_rank = lemma1_sample_rank(k, p)
    for _ in range(trials):
        sample = [i for i in range(1, n + 1) if rng.random() < p]
        total_size += len(sample)
        if len(sample) <= 2 * k * p:
            continue
        if target_rank > len(sample):
            continue
        # Items are ranks directly: sample is ascending rank order.
        rank_in_full = sample[target_rank - 1]
        if k <= rank_in_full <= 4 * k:
            successes += 1
    return successes / trials, total_size / trials
