"""Deterministic encoding of index state into plain disk records.

The simulated :class:`~repro.em.model.Disk` stores Python objects, but
the durability layer never writes *live* structures to it: everything
is encoded into nested tuples of primitives first.  That discipline is
what makes the format honest — snapshots are checksummable (``repr`` of
a primitive tree is stable), versionable, and readable by a process
that shares no object identity with the writer, exactly like bytes on
a real disk.

Two layers:

* :func:`encode` / :func:`decode` — one *value* to one tagged primitive
  tree.  Supported leaves: ``None``, ``bool``, ``int``, ``float``,
  ``str``, numeric ``array.array`` columns; containers: ``tuple``,
  ``list``, ``dict`` (string keys);
  domain types: :class:`~repro.core.problem.Element` and the geometry
  primitives (:class:`Interval`, :class:`Rect`, :class:`Halfplane`,
  :class:`Ball`, :class:`Line2D`).  Anything else raises
  :class:`~repro.resilience.errors.SerializationError` — the gate that
  keeps unserializable payloads out of snapshots at *write* time.
* :func:`flatten_state` / :func:`unflatten_state` — one state *dict*
  to a flat stream of O(1)-sized records, so a snapshot occupies
  ``ceil(len(stream)/B)`` blocks like any other EM data, instead of
  hiding an arbitrarily large object inside one record.
"""

from __future__ import annotations

from array import array
from typing import Any, Iterator, List, Tuple

from repro.core.problem import Element
from repro.geometry.primitives import Ball, Halfplane, Interval, Line2D, Rect
from repro.resilience.errors import SerializationError

_SCALARS = (bool, int, float, str)

# Geometry dataclasses round-trip through their constructor fields.
_GEOMETRY = {
    "Interval": (Interval, ("lo", "hi")),
    "Rect": (Rect, ("x1", "x2", "y1", "y2")),
    "Halfplane": (Halfplane, ("normal", "c")),
    "Ball": (Ball, ("center", "radius")),
    "Line2D": (Line2D, ("a", "b")),
}
_GEOMETRY_BY_TYPE = {cls: (tag, fields) for tag, (cls, fields) in _GEOMETRY.items()}


def encode(value: Any) -> Any:
    """Encode one value into a tagged tree of primitives."""
    if value is None or type(value) in (bool, int, float, str):
        return ("raw", value)
    kind = type(value)
    if kind is tuple:
        return ("tuple", tuple(encode(v) for v in value))
    if kind is list:
        return ("list", tuple(encode(v) for v in value))
    if kind is dict:
        items = []
        for key, val in value.items():
            if not isinstance(key, str):
                raise SerializationError(
                    f"dict keys must be str, got {type(key).__name__}: {key!r}"
                )
            items.append((key, encode(val)))
        return ("dict", tuple(items))
    if kind is Element:
        return ("Element", encode(value.obj), value.weight, encode(value.payload))
    if kind is array:
        # Flat numeric columns (the columnar layer's weight arrays).
        # Doubles are Python floats, so a plain float tuple round-trips
        # bit-for-bit; the typecode restores the exact array kind.
        return ("array", value.typecode, tuple(value))
    hit = _GEOMETRY_BY_TYPE.get(kind)
    if hit is not None:
        tag, fields = hit
        return (tag, tuple(encode(getattr(value, f)) for f in fields))
    raise SerializationError(
        f"cannot serialize {kind.__name__}: {value!r}; register it in "
        "repro.durability.codec or carry a primitive payload instead"
    )


def decode(encoded: Any) -> Any:
    """Invert :func:`encode`; raises on unknown tags (format drift)."""
    if not isinstance(encoded, tuple) or not encoded:
        raise SerializationError(f"malformed encoded value: {encoded!r}")
    tag = encoded[0]
    if tag == "raw":
        return encoded[1]
    if tag == "tuple":
        return tuple(decode(v) for v in encoded[1])
    if tag == "list":
        return [decode(v) for v in encoded[1]]
    if tag == "dict":
        return {key: decode(val) for key, val in encoded[1]}
    if tag == "Element":
        return Element(decode(encoded[1]), encoded[2], decode(encoded[3]))
    if tag == "array":
        return array(encoded[1], encoded[2])
    hit = _GEOMETRY.get(tag)
    if hit is not None:
        cls, _ = hit
        return cls(*(decode(v) for v in encoded[1]))
    raise SerializationError(f"unknown codec tag {tag!r} (format drift?)")


# ----------------------------------------------------------------------
# State streams: one dict -> many O(1) records
# ----------------------------------------------------------------------
def flatten_state(state: dict) -> List[Tuple]:
    """Serialize a state dict into a flat stream of O(1)-sized records.

    Containers emit a header record followed by their members' streams,
    so a list of ``n`` elements becomes ``n + 1`` records — the EM cost
    of writing it is ``ceil(n/B)`` I/Os, as the model demands.  Leaves
    go through :func:`encode` (kept whole: an Element or an RNG state
    tuple is one record of O(1) machine words).
    """
    out: List[Tuple] = []
    _flatten(state, out)
    return out


def _flatten(value: Any, out: List[Tuple]) -> None:
    if type(value) is dict:
        out.append(("D", len(value)))
        for key, val in value.items():
            if not isinstance(key, str):
                raise SerializationError(
                    f"state dict keys must be str, got {type(key).__name__}"
                )
            out.append(("K", key))
            _flatten(val, out)
    elif type(value) is list:
        out.append(("L", len(value)))
        for item in value:
            _flatten(item, out)
    else:
        out.append(("S", encode(value)))


def unflatten_state(records: List[Tuple]) -> dict:
    """Invert :func:`flatten_state` (raises on malformed streams)."""
    stream = iter(records)
    value = _unflatten(stream)
    leftover = next(stream, None)
    if leftover is not None:
        raise SerializationError(f"trailing records after state: {leftover!r}")
    if not isinstance(value, dict):
        raise SerializationError(f"state stream does not describe a dict: {value!r}")
    return value


def _unflatten(stream: Iterator[Tuple]) -> Any:
    record = next(stream, None)
    if record is None or not isinstance(record, tuple) or len(record) != 2:
        raise SerializationError(f"malformed state record: {record!r}")
    kind, arg = record
    if kind == "S":
        return decode(arg)
    if kind == "L":
        return [_unflatten(stream) for _ in range(arg)]
    if kind == "D":
        out = {}
        for _ in range(arg):
            key_record = next(stream, None)
            if not (isinstance(key_record, tuple) and len(key_record) == 2
                    and key_record[0] == "K"):
                raise SerializationError(f"expected key record, got {key_record!r}")
            out[key_record[1]] = _unflatten(stream)
        return out
    raise SerializationError(f"unknown state record kind {kind!r}")


__all__ = ["encode", "decode", "flatten_state", "unflatten_state"]
