"""ResilientTopKIndex: retry, spot-checks, degradation, health reports."""

import random

import pytest

from oracles import oracle_top_k
from repro.core.interfaces import TopKIndex
from repro.core.problem import top_k_of
from repro.core.theorem2 import ExpectedTopKIndex
from repro.resilience.errors import (
    ContractViolation,
    DegradedAnswer,
    InvalidConfiguration,
    RetryBudgetExhausted,
    TransientIOError,
)
from repro.resilience.guard import GuardPolicy, ResilientTopKIndex, resilient_index
from toy import BrokenMax, RangePredicate, ToyMax, ToyPrioritized, make_toy_elements


def random_predicate(rng, n):
    a, b = sorted((rng.uniform(0, 10 * n), rng.uniform(0, 10 * n)))
    return RangePredicate(a, b)


class ScanIndex(TopKIndex):
    """A trivially correct backend for use as a rung in tests."""

    def __init__(self, elements):
        self._elements = list(elements)

    @property
    def n(self):
        return len(self._elements)

    def query(self, predicate, k):
        return top_k_of(self._elements, predicate, k)


class FlakyIndex(ScanIndex):
    """Correct, but the first ``failures`` queries raise a transient fault."""

    def __init__(self, elements, failures=1):
        super().__init__(elements)
        self._failures = failures

    def query(self, predicate, k):
        if self._failures > 0:
            self._failures -= 1
            raise TransientIOError("injected", block_id=0)
        return super().query(predicate, k)


class DeadIndex(ScanIndex):
    def query(self, predicate, k):
        raise TransientIOError("device gone", block_id=0)


class CheatingIndex(ScanIndex):
    """Returns the *bottom*-k ascending — plausible-looking but wrong."""

    def query(self, predicate, k):
        matching = sorted(
            (e for e in self._elements if predicate.matches(e.obj)),
            key=lambda e: e.weight,
        )
        return matching[:k]


class ViolatingIndex(ScanIndex):
    def query(self, predicate, k):
        raise ContractViolation("internal invariant broken")


def build_guard(n=200, seed=0, policy=None, **kwargs):
    elements = make_toy_elements(n, seed)
    primary = ExpectedTopKIndex(elements, ToyPrioritized, ToyMax, seed=seed)
    guard = ResilientTopKIndex(
        primary, elements=elements, policy=policy, **kwargs
    )
    return elements, guard


class TestHealthyPath:
    def test_answers_match_oracle_with_clean_reports(self):
        elements, guard = build_guard(policy=GuardPolicy(spot_check_rate=0.0))
        rng = random.Random(0)
        for _ in range(15):
            p = random_predicate(rng, 200)
            answer, report = guard.query_with_report(p, 7)
            assert answer == oracle_top_k(elements, p, 7)
            assert report.attempts == 1
            assert report.degradation_level == 0
            assert not report.degraded
            assert report.answered_by == "ExpectedTopKIndex"
        assert guard.health.queries == 15
        assert guard.health.degraded_queries == 0
        assert guard.health.attempts == 15

    def test_spot_checks_pass_on_honest_backend(self):
        _, guard = build_guard(policy=GuardPolicy(spot_check_rate=1.0))
        rng = random.Random(1)
        for _ in range(10):
            guard.query(random_predicate(rng, 200), 5)
        assert guard.health.spot_checks == 10
        assert guard.health.spot_check_failures == 0


class TestRetry:
    def test_transient_fault_is_retried_on_the_same_rung(self):
        elements = make_toy_elements(100, seed=2)
        guard = ResilientTopKIndex(
            FlakyIndex(elements, failures=2),
            elements=elements,
            policy=GuardPolicy(max_attempts=3, spot_check_rate=0.0),
        )
        p = RangePredicate(0, 500)
        answer, report = guard.query_with_report(p, 4)
        assert answer == oracle_top_k(elements, p, 4)
        assert report.attempts == 3
        assert report.retries == 2
        assert report.transient_faults == 2
        assert not report.degraded  # the *primary* eventually answered

    def test_backoff_units_are_deterministic_exponential(self):
        elements = make_toy_elements(50, seed=3)
        guard = ResilientTopKIndex(
            DeadIndex(elements),
            elements=elements,
            policy=GuardPolicy(
                max_attempts=3, backoff_base=1.0, backoff_factor=2.0,
                backoff_jitter=0.0, spot_check_rate=0.0,
            ),
        )
        _, report = guard.query_with_report(RangePredicate(0, 100), 3)
        # Two retries on the dead rung: base*2^0 + base*2^1 = 3 units.
        assert report.backoff_units == 3.0
        assert report.transient_faults == 3

    def test_backoff_is_capped_and_jitter_is_seeded(self):
        elements = make_toy_elements(50, seed=3)

        def dead_guard(seed):
            return ResilientTopKIndex(
                DeadIndex(elements),
                elements=elements,
                policy=GuardPolicy(
                    max_attempts=6, backoff_base=1.0, backoff_factor=10.0,
                    backoff_cap=8.0, backoff_jitter=0.5,
                    spot_check_rate=0.0, seed=seed,
                ),
            )

        _, a = dead_guard(4).query_with_report(RangePredicate(0, 100), 3)
        _, b = dead_guard(4).query_with_report(RangePredicate(0, 100), 3)
        _, c = dead_guard(5).query_with_report(RangePredicate(0, 100), 3)
        # Deterministic for a fixed seed, decorrelated across seeds.
        assert a.backoff_units == b.backoff_units
        assert a.backoff_units != c.backoff_units
        # Five retries, each capped at 8 units before jitter shrinks it.
        assert 0.0 < a.backoff_units <= 5 * 8.0


class TestDegradation:
    def test_dead_primary_falls_to_fallback_then_scan(self):
        elements = make_toy_elements(120, seed=4)
        guard = ResilientTopKIndex(
            DeadIndex(elements),
            fallbacks=(ScanIndex(elements),),
            elements=elements,
            policy=GuardPolicy(max_attempts=2, spot_check_rate=0.0),
        )
        p = RangePredicate(0, 1200)
        answer, report = guard.query_with_report(p, 6)
        assert answer == oracle_top_k(elements, p, 6)
        assert report.degradation_level == 1
        assert report.answered_by == "ScanIndex"
        assert report.rungs_tried == ["DeadIndex", "ScanIndex"]
        assert guard.health.degraded_queries == 1

    def test_terminal_scan_rung_makes_the_guard_total(self):
        elements = make_toy_elements(80, seed=5)
        guard = ResilientTopKIndex(
            DeadIndex(elements),
            elements=elements,
            policy=GuardPolicy(max_attempts=2, spot_check_rate=0.0),
        )
        p = RangePredicate(0, 800)
        answer, report = guard.query_with_report(p, 5)
        assert answer == oracle_top_k(elements, p, 5)
        assert report.answered_by == "scan"

    def test_contract_violation_degrades_without_retry(self):
        elements = make_toy_elements(60, seed=6)
        guard = ResilientTopKIndex(
            ViolatingIndex(elements),
            elements=elements,
            policy=GuardPolicy(max_attempts=3, spot_check_rate=0.0),
        )
        _, report = guard.query_with_report(RangePredicate(0, 600), 4)
        assert report.contract_violations == 1
        assert report.attempts == 2  # one on the violator, one on the scan
        assert report.answered_by == "scan"

    def test_no_terminal_rung_raises_retry_budget_exhausted(self):
        elements = make_toy_elements(40, seed=7)
        guard = ResilientTopKIndex(
            DeadIndex(elements),
            policy=GuardPolicy(max_attempts=2, spot_check_rate=0.0),
        )
        with pytest.raises(RetryBudgetExhausted) as excinfo:
            guard.query(RangePredicate(0, 400), 3)
        assert excinfo.value.attempts == 2

    def test_raise_on_degraded_carries_answer_and_report(self):
        elements = make_toy_elements(70, seed=8)
        guard = ResilientTopKIndex(
            DeadIndex(elements),
            elements=elements,
            policy=GuardPolicy(
                max_attempts=2, spot_check_rate=0.0, raise_on_degraded=True
            ),
        )
        p = RangePredicate(0, 700)
        with pytest.raises(DegradedAnswer) as excinfo:
            guard.query(p, 5)
        assert excinfo.value.answer == oracle_top_k(elements, p, 5)
        assert excinfo.value.report.degraded


class TestSpotChecks:
    def test_lying_backend_is_caught_and_bypassed(self):
        elements = make_toy_elements(150, seed=9)
        guard = ResilientTopKIndex(
            CheatingIndex(elements),
            elements=elements,
            policy=GuardPolicy(spot_check_rate=1.0),
        )
        rng = random.Random(10)
        for _ in range(10):
            p = random_predicate(rng, 150)
            answer = guard.query(p, 5)
            assert answer == oracle_top_k(elements, p, 5)
        assert guard.health.spot_check_failures > 0
        assert guard.health.contract_violations == guard.health.spot_check_failures
        assert guard.health.degraded_queries > 0

    def test_zero_rate_never_checks(self):
        _, guard = build_guard(policy=GuardPolicy(spot_check_rate=0.0))
        rng = random.Random(11)
        for _ in range(10):
            guard.query(random_predicate(rng, 200), 3)
        assert guard.health.spot_checks == 0

    def test_policy_validates_its_knobs(self):
        with pytest.raises(InvalidConfiguration):
            GuardPolicy(max_attempts=0)
        with pytest.raises(InvalidConfiguration):
            GuardPolicy(spot_check_rate=1.5)


class TestRoundBudget:
    def test_broken_max_exhausts_budget_and_guard_degrades(self):
        """BrokenMax makes every Theorem 2 round fail its rank window; a
        round budget turns that into RetryBudgetExhausted, which the
        guard converts into a correct scan answer."""
        elements = make_toy_elements(400, seed=12)
        primary = ExpectedTopKIndex(elements, ToyPrioritized, BrokenMax, seed=12)
        assert primary.num_levels > 1
        guard = ResilientTopKIndex(
            primary,
            elements=elements,
            policy=GuardPolicy(round_budget=1, spot_check_rate=0.0),
        )
        rng = random.Random(13)
        for _ in range(8):
            p = random_predicate(rng, 400)
            answer, report = guard.query_with_report(p, 5)
            assert answer == oracle_top_k(elements, p, 5)
        assert guard.health.budget_exhaustions > 0
        assert guard.health.degraded_queries > 0

    def test_round_budget_raises_on_the_bare_index(self):
        elements = make_toy_elements(400, seed=14)
        index = ExpectedTopKIndex(elements, ToyPrioritized, BrokenMax, seed=14)
        with pytest.raises(RetryBudgetExhausted):
            # Every round fails, so a 1-round budget must trip on any
            # predicate with enough matches to enter the ladder.
            index.query(RangePredicate(0, 4000), 2, round_budget=1)

    def test_unbudgeted_broken_max_still_succeeds(self):
        elements = make_toy_elements(400, seed=15)
        primary = ExpectedTopKIndex(elements, ToyPrioritized, BrokenMax, seed=15)
        guard = ResilientTopKIndex(
            primary, elements=elements, policy=GuardPolicy(spot_check_rate=0.0)
        )
        p = RangePredicate(0, 4000)
        answer, report = guard.query_with_report(p, 5)
        assert answer == oracle_top_k(elements, p, 5)
        assert not report.degraded  # built-in terminal scan absorbed it


class TestChaosWorkload:
    """Randomized end-to-end run against EM-backed structures under a
    transient-fault plan: every answer exact, books balanced."""

    def test_faulty_em_run_matches_oracle_and_balances_books(self):
        from repro.em.model import EMContext
        from repro.resilience.faults import FaultPlan
        from repro.structures.interval_stabbing import (
            SegmentTreeIntervalPrioritized,
            StabbingPredicate,
            StaticIntervalStabbingMax,
        )
        from repro.geometry.primitives import Interval
        from repro.core.problem import Element

        rng = random.Random(42)
        elements = []
        weights = rng.sample(range(6000), 600)
        for i in range(600):
            center = rng.uniform(0, 1000)
            length = rng.uniform(5, 80)
            elements.append(
                Element(Interval(center - length, center + length), float(weights[i]))
            )

        ctx = EMContext(B=16, M=128)
        ctx.attach_fault_plan(
            FaultPlan(seed=7, read_fail_rate=0.05, corrupt_rate=0.01)
        )
        guard = resilient_index(
            elements,
            lambda subset: SegmentTreeIntervalPrioritized(subset, ctx=ctx),
            lambda subset: StaticIntervalStabbingMax(subset, ctx=ctx),
            policy=GuardPolicy(max_attempts=4, spot_check_rate=0.25, seed=1),
            ctx=ctx,
            B=ctx.B,
            seed=3,
        )
        assert guard.rung_names() == [
            "ExpectedTopKIndex",
            "WorstCaseTopKIndex",
            "scan",
        ]

        queries = 40
        for i in range(queries):
            p = StabbingPredicate(rng.uniform(0, 1000))
            k = rng.choice([1, 4, 10])
            answer, report = guard.query_with_report(p, k)
            assert answer == oracle_top_k(elements, p, k)
            assert report.io_total is not None

        summary = guard.health
        assert summary.queries == queries
        assert summary.transient_faults > 0  # the plan actually fired
        # Every attempt ended in exactly one of: success (== one per
        # query), a transient fault, a budget exhaustion, or a contract
        # violation.  The books must balance.
        assert summary.attempts == (
            summary.queries
            + summary.transient_faults
            + summary.contract_violations
            + summary.budget_exhaustions
        )
        assert guard.health.retries <= summary.transient_faults


class TestHealthSummaryConcurrency:
    def test_concurrent_records_lose_no_increments(self):
        # Regression: pre-lock, racing `+=` read-modify-writes dropped
        # increments when guards shared a summary across threads.
        import threading
        from repro.resilience.guard import HealthReport, HealthSummary

        health = HealthSummary()
        threads, per_thread = 8, 400
        barrier = threading.Barrier(threads)

        def hammer():
            barrier.wait()
            for _ in range(per_thread):
                health.record(HealthReport(attempts=2, transient_faults=1))

        workers = [threading.Thread(target=hammer) for _ in range(threads)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()

        assert health.queries == threads * per_thread
        assert health.attempts == 2 * threads * per_thread
        assert health.transient_faults == threads * per_thread

    def test_summary_still_asdict_serializable(self):
        # The lock is an instance attribute, not a dataclass field —
        # asdict() (used by the determinism harness) must keep working.
        import dataclasses
        from repro.resilience.guard import HealthReport, HealthSummary

        health = HealthSummary()
        health.record(HealthReport(attempts=1))
        as_dict = dataclasses.asdict(health)
        assert as_dict["queries"] == 1
        assert not any(key.startswith("_") for key in as_dict)

    def test_reset_preserves_the_lock(self):
        from repro.resilience.guard import HealthReport, HealthSummary

        health = HealthSummary()
        health.record(HealthReport(attempts=1))
        health.reset()
        assert health.queries == 0
        health.record(HealthReport(attempts=1))  # lock survived the reset
        assert health.queries == 1
