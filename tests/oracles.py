"""Brute-force reference oracles every structure test compares against."""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.core.problem import Element, Predicate


def oracle_prioritized(
    elements: Iterable[Element], predicate: Predicate, tau: float
) -> List[Element]:
    """Matches with weight >= tau, heaviest first."""
    out = [e for e in elements if e.weight >= tau and predicate.matches(e.obj)]
    out.sort(key=lambda e: e.weight, reverse=True)
    return out


def oracle_top_k(elements: Iterable[Element], predicate: Predicate, k: int) -> List[Element]:
    """The k heaviest matches, heaviest first (all matches if fewer)."""
    out = [e for e in elements if predicate.matches(e.obj)]
    out.sort(key=lambda e: e.weight, reverse=True)
    return out[:k] if 0 <= k < len(out) else out


def oracle_max(elements: Iterable[Element], predicate: Predicate) -> Optional[Element]:
    """The heaviest match, or None."""
    best: Optional[Element] = None
    for element in elements:
        if predicate.matches(element.obj):
            if best is None or element.weight > best.weight:
                best = element
    return best


def sorted_desc(elements: Iterable[Element]) -> List[Element]:
    """Canonical descending-weight order for set comparisons."""
    return sorted(elements, key=lambda e: e.weight, reverse=True)
