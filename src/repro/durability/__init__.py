"""Crash-consistent persistence for top-k indexes.

The durability subsystem makes the repository's indexes survive
machine death on the simulated external-memory disk:

* :mod:`~repro.durability.codec` — deterministic encoding of index
  state into primitive disk records;
* :mod:`~repro.durability.store` — sealed blocks, dual superblocks,
  forward-chained extents (:class:`DurableStore`);
* :mod:`~repro.durability.snapshot` — verified whole-index snapshots;
* :mod:`~repro.durability.wal` — the write-ahead log with group
  commit and torn-tail-safe replay;
* :mod:`~repro.durability.logstore` — :class:`LogStructuredStore`, the
  flash-aware append-only root (anchors + manifest chain + compaction);
* :mod:`~repro.durability.recovery` — the recovery driver and the
  post-recovery invariant auditor;
* :mod:`~repro.durability.durable` — :class:`DurableTopKIndex`, the
  wrapper tying it all together.

Crash injection itself lives with the rest of the chaos machinery in
:class:`repro.resilience.faults.FaultPlan` (``schedule_crash``).
"""

from repro.durability.codec import decode, encode, flatten_state, unflatten_state
from repro.durability.durable import DurableTopKIndex
from repro.durability.logstore import (
    LogStructuredStore,
    is_log_structured,
    open_store,
)
from repro.durability.recovery import (
    AuditCheck,
    AuditReport,
    RecoveryResult,
    apply_record,
    audit_index,
    recover_index,
)
from repro.durability.snapshot import read_snapshot, write_snapshot
from repro.durability.store import DurableStore, SnapshotEntry, seal, unseal
from repro.durability.wal import (
    OP_DELETE,
    OP_INSERT,
    WALRecord,
    WriteAheadLog,
    read_committed,
)

__all__ = [
    "AuditCheck",
    "AuditReport",
    "DurableStore",
    "DurableTopKIndex",
    "LogStructuredStore",
    "OP_DELETE",
    "OP_INSERT",
    "RecoveryResult",
    "SnapshotEntry",
    "WALRecord",
    "WriteAheadLog",
    "apply_record",
    "audit_index",
    "decode",
    "encode",
    "flatten_state",
    "is_log_structured",
    "open_store",
    "read_committed",
    "read_snapshot",
    "recover_index",
    "seal",
    "unflatten_state",
    "unseal",
    "write_snapshot",
]
