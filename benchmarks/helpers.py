"""Builders shared by the experiment benches (cached per process)."""

from __future__ import annotations

import functools
import math
import random
from typing import Callable, List, Tuple

from repro.bench.workloads import bounded_predicates  # noqa: F401 (re-export)
from repro.core.problem import Element
from repro.em.model import EMContext
from repro.geometry.primitives import Interval
from repro.structures.interval_stabbing import (
    SegmentTreeIntervalPrioritized,
    StabbingPredicate,
    StaticIntervalStabbingMax,
)

UNIVERSE = 1000.0


@functools.lru_cache(maxsize=None)
def interval_elements(n: int, seed: int = 0) -> Tuple[Element, ...]:
    """Cached weighted-interval datasets (hashable for lru_cache)."""
    rng = random.Random(seed)
    weights = rng.sample(range(10 * n), n)
    out = []
    for i in range(n):
        center = rng.uniform(0, UNIVERSE)
        length = math.exp(rng.uniform(math.log(0.1), math.log(UNIVERSE / 4)))
        out.append(
            Element(Interval(center - length / 2, center + length / 2), float(weights[i]))
        )
    return tuple(out)


@functools.lru_cache(maxsize=None)
def interval_elements_scaled(n: int, seed: int = 0, mean_stabs: float = 24.0) -> Tuple[Element, ...]:
    """Intervals whose expected stab count stays fixed as ``n`` grows.

    Interval lengths scale like ``mean_stabs * UNIVERSE / n``, so a
    random stabbing point matches ~``mean_stabs`` intervals at every
    ``n`` — isolating the *search term* of a query from its output
    term, which is what the E2/E5 scaling experiments need to expose.
    """
    rng = random.Random(seed)
    weights = rng.sample(range(10 * n), n)
    mean_length = mean_stabs * UNIVERSE / n
    out = []
    for i in range(n):
        center = rng.uniform(0, UNIVERSE)
        length = rng.uniform(0.2 * mean_length, 1.8 * mean_length)
        out.append(
            Element(Interval(center - length / 2, center + length / 2), float(weights[i]))
        )
    return tuple(out)


@functools.lru_cache(maxsize=None)
def rect_elements_scaled(n: int, seed: int = 0, mean_stabs: float = 24.0) -> Tuple[Element, ...]:
    """Rectangles whose expected enclosure count stays fixed as ``n`` grows.

    Side lengths scale like ``UNIVERSE * sqrt(mean_stabs / n)`` so a
    random query point falls in ~``mean_stabs`` rectangles at every
    ``n`` — the point-enclosure analogue of
    :func:`interval_elements_scaled`.
    """
    from repro.geometry.primitives import Rect

    rng = random.Random(seed)
    weights = rng.sample(range(10 * n), n)
    side = UNIVERSE * math.sqrt(mean_stabs / n)
    out = []
    for i in range(n):
        cx, cy = rng.uniform(0, UNIVERSE), rng.uniform(0, UNIVERSE)
        wx = rng.uniform(0.4 * side, 1.6 * side)
        wy = rng.uniform(0.4 * side, 1.6 * side)
        out.append(
            Element(Rect(cx - wx / 2, cx + wx / 2, cy - wy / 2, cy + wy / 2), float(weights[i]))
        )
    return tuple(out)


def stab_queries(count: int, seed: int = 0) -> List[StabbingPredicate]:
    rng = random.Random(seed)
    return [StabbingPredicate(rng.uniform(0, UNIVERSE)) for _ in range(count)]


def em_context(B: int = 16) -> EMContext:
    return EMContext(B=B, M=8 * B)


def em_interval_factories(ctx: EMContext):
    """(prioritized, max) factories sharing one EM context."""

    def prioritized(subset):
        return SegmentTreeIntervalPrioritized(subset, ctx=ctx)

    def maxi(subset):
        return StaticIntervalStabbingMax(subset, ctx=ctx)

    return prioritized, maxi


def measure_ios(ctx: EMContext, run: Callable[[], None]) -> int:
    """I/Os of ``run`` from a cold cache."""
    ctx.drop_cache()
    ctx.stats.reset()
    run()
    return ctx.stats.total


# bounded_predicates lives in the package so the CLI runner can share it.
