"""Tests for orthogonal (box) range reporting on the kd-tree."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from oracles import oracle_max, oracle_prioritized, oracle_top_k, sorted_desc
from repro.core.problem import Element
from repro.structures.kdtree import (
    CONTAINED,
    DISJOINT,
    PARTIAL,
    Box,
    KDTreeIndex,
    KDTreeMax,
    OrthogonalRangePredicate,
    classify_box,
)


def make_points(n, d, seed=0):
    rng = random.Random(seed)
    weights = rng.sample(range(10 * n), n)
    return [
        Element(tuple(rng.uniform(0, 100) for _ in range(d)), float(weights[i]))
        for i in range(n)
    ]


def random_box(rng, d):
    lo, hi = [], []
    for _ in range(d):
        a, b = sorted((rng.uniform(-5, 105), rng.uniform(-5, 105)))
        lo.append(a)
        hi.append(b)
    return Box(tuple(lo), tuple(hi))


class TestBox:
    def test_contains_closed_boundary(self):
        box = Box((0.0, 0.0), (10.0, 5.0))
        assert box.contains((0.0, 0.0)) and box.contains((10.0, 5.0))
        assert not box.contains((10.1, 2.0))

    def test_empty_box_rejected(self):
        with pytest.raises(ValueError):
            Box((5.0,), (2.0,))

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Box((0.0, 0.0), (1.0,))

    def test_dim(self):
        assert Box((0.0,) * 3, (1.0,) * 3).dim == 3


class TestClassifyBox:
    def test_contained(self):
        query = Box((0.0, 0.0), (10.0, 10.0))
        assert classify_box(query, (2, 2), (8, 8)) == CONTAINED

    def test_disjoint(self):
        query = Box((0.0, 0.0), (1.0, 1.0))
        assert classify_box(query, (5, 5), (8, 8)) == DISJOINT

    def test_partial(self):
        query = Box((0.0, 0.0), (5.0, 5.0))
        assert classify_box(query, (2, 2), (8, 8)) == PARTIAL

    def test_touching_edges_count_as_overlap(self):
        query = Box((0.0, 0.0), (5.0, 5.0))
        assert classify_box(query, (5, 0), (8, 5)) == PARTIAL


class TestQueries:
    @pytest.mark.parametrize("d", [2, 3])
    def test_prioritized_matches_oracle(self, d):
        elements = make_points(200, d, seed=d)
        index = KDTreeIndex(elements)
        rng = random.Random(d + 40)
        for _ in range(40):
            p = OrthogonalRangePredicate(random_box(rng, d))
            tau = rng.uniform(0, 2000)
            assert sorted_desc(index.query(p, tau).elements) == oracle_prioritized(
                elements, p, tau
            )

    @pytest.mark.parametrize("d", [2, 3])
    def test_max_matches_oracle(self, d):
        elements = make_points(200, d, seed=d + 5)
        index = KDTreeMax(elements)
        rng = random.Random(d + 50)
        for _ in range(50):
            p = OrthogonalRangePredicate(random_box(rng, d))
            assert index.query(p) == oracle_max(elements, p)

    def test_native_topk_matches_oracle(self):
        elements = make_points(150, 2, seed=9)
        index = KDTreeIndex(elements)
        rng = random.Random(60)
        for _ in range(20):
            p = OrthogonalRangePredicate(random_box(rng, 2))
            for k in (1, 5, 40):
                assert index.top_k(p, k) == oracle_top_k(elements, p, k)


coordinate = st.integers(0, 30)


@settings(max_examples=30, deadline=None)
@given(
    pts=st.lists(st.tuples(coordinate, coordinate), min_size=1, max_size=40),
    ax=st.integers(-2, 32),
    bx=st.integers(-2, 32),
    ay=st.integers(-2, 32),
    by=st.integers(-2, 32),
    seed=st.integers(0, 100),
)
def test_property_matches_oracle(pts, ax, bx, ay, by, seed):
    rng = random.Random(seed)
    weights = rng.sample(range(10 * len(pts)), len(pts))
    elements = [
        Element((float(p[0]), float(p[1])), float(w)) for p, w in zip(pts, weights)
    ]
    box = Box(
        (float(min(ax, bx)), float(min(ay, by))),
        (float(max(ax, bx)), float(max(ay, by))),
    )
    p = OrthogonalRangePredicate(box)
    index = KDTreeIndex(elements, leaf_size=2)
    assert sorted_desc(index.query(p, -math.inf).elements) == oracle_prioritized(
        elements, p, -math.inf
    )
    assert index.max_query(p) == oracle_max(elements, p)
