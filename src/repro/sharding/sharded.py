"""`ShardedTopKIndex`: one logical top-k index over S shard machines.

The last scaling axis: every prior layer (durability, replication,
serving) multiplies machines behind *one* copy of ``D``; this one
partitions ``D`` itself.  A :class:`~repro.sharding.partitioner.Partitioner`
places elements into virtual buckets, a
:class:`~repro.sharding.router.ShardRouter` maps buckets to shards
under an epoch-stamped map, and a
:class:`~repro.sharding.scatter.ScatterGatherExecutor` answers queries
with max-probe threshold pruning — every shard an independent machine:
either one :class:`~repro.durability.durable.DurableTopKIndex` on its
own simulated disk, or a whole
:class:`~repro.replication.cluster.ReplicaSet`.

**Updates** route through the map to one shard and follow the PR-3
write discipline: the shard's WAL commits the op before the
coordinator mirrors it into the routing summary (membership + max
structure), and a :class:`SimulatedCrash` mid-update triggers
recover-from-disk plus an idempotent retry (membership check first).

**Online splits and merges** rebalance a hot topology without a stop.
The whole change runs inside the router's ``topology_change`` window:

1. on entry the router's epoch is bumped (in-flight scatter-gathers
   planned against the old epoch will discard and retry) *and* the map
   is latched **in flux** — new snapshots and routes block until the
   final map is published, so a query can neither plan nor validate
   against half-moved shard contents;
2. the donor is checkpointed (snapshot + WAL truncation — the durable
   baseline a crash rolls back to);
3. a split builds the recipient machine from the moving bucket's
   elements (durable from birth: the wrapper checkpoints at
   construction); a merge WAL-inserts the donor's elements into the
   survivor;
4. the moving elements are WAL-deleted from the donor one committed
   record at a time; a crash mid-stream recovers the donor from its
   disk (snapshot + replayed tail) and resumes idempotently;
5. the new map is installed — one more epoch bump, releasing the
   latch — and only then do queries route to the new topology.

Failure atomicity: the recipient is built (durably) *before* any
element leaves the donor, so if the donor's disk proves unrecoverable
mid-handover the new map is installed anyway — every moving element
stays reachable on the recipient, the dead donor degrades through the
ordinary shard-loss ladder, and :class:`ShardUnavailable` surfaces to
the caller.  A change that fails before the recipient exists aborts
cleanly: the latch is released, routes are unchanged, and the entry
epoch bump already forced overlapping queries to retry.

**Shard loss ladder** (the degradation story at shard granularity):
a replicated shard fails over inside its own replica set; a durable
shard that crashes is recovered from its surviving disk on the spot;
if recovery is impossible the query either raises
:class:`~repro.resilience.errors.ShardUnavailable` or — with
``allow_partial`` — serves what the surviving shards hold, flagged via
``last_partial`` and counted in :class:`ShardingStats.partial_answers`
(mirrored into :class:`~repro.resilience.guard.HealthSummary`).

**Serving integration**: the index exposes ``read_stamp()`` (epoch =
router epoch + shard failover epochs, LSN = summed applied LSNs) so
the LSN-versioned result cache works unchanged, and
:meth:`batch_groups` fans a batch's predicate groups out across a
thread pool — each worker runs whole scatter-gathers, every machine
touch under its shard's lock, with every shard's reduction probe-memo
window (``batched()``) open for the batch's duration.
"""

from __future__ import annotations

import threading
from contextlib import ExitStack, contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.interfaces import TopKIndex
from repro.core.problem import Element, Predicate, require_distinct_weights
from repro.durability.durable import DurableTopKIndex
from repro.net.fabric import MSG_PROBE, Message, NetworkFabric
from repro.replication.cluster import ReplicaSet
from repro.replication.replica import Replica
from repro.resilience.errors import (
    ContractViolation,
    InvalidConfiguration,
    PartitionedError,
    RecoveryError,
    ReplicaUnavailable,
    ShardUnavailable,
    SimulatedCrash,
    SnapshotIntegrityError,
    TransientIOError,
)
from repro.resilience.faults import FaultPlan
from repro.sharding.partitioner import DEFAULT_BUCKETS, Partitioner
from repro.sharding.router import Shard, ShardMap, ShardRouter
from repro.sharding.scatter import ProbeTrace, ScatterGatherExecutor


@dataclass
class ShardingStats:
    """Counters of everything the sharded index did."""

    queries: int = 0
    batch_queries: int = 0
    inserts: int = 0
    deletes: int = 0
    shard_slots: int = 0       # sum over queries of shards in the map
    max_probes: int = 0
    shard_probes: int = 0      # top-k' traversals issued (escalations included)
    shards_contacted: int = 0  # distinct shards probed per query, summed
    shards_pruned: int = 0     # shards skipped by the running threshold
    shards_empty: int = 0      # shards whose bound probe matched nothing
    escalations: int = 0
    stale_map_retries: int = 0
    splits: int = 0
    merges: int = 0
    rebalances: int = 0
    shard_losses: int = 0
    shard_recoveries: int = 0
    partial_answers: int = 0
    parallel_batches: int = 0
    unreachable_probes: int = 0  # probes refused/lost by the fabric

    @property
    def contact_ratio(self) -> float:
        """Mean fraction of mapped shards contacted per query."""
        return self.shards_contacted / self.shard_slots if self.shard_slots else 0.0

    @property
    def probes_per_query(self) -> float:
        return self.shard_probes / self.queries if self.queries else 0.0


class ShardedTopKIndex(TopKIndex):
    """Horizontally partitioned top-k index (see module docstring).

    Parameters
    ----------
    elements:
        The initial set ``D`` (distinct weights enforced globally —
        cross-shard answers are rank-merged, so the precondition must
        hold across the whole set, not per shard).
    build_fn / restore_fn:
        As in :class:`ReplicaSet`: deterministic ``elements -> index``
        and its recovery counterpart.  Used per shard slice.
    max_factory:
        Builds the coordinator-side per-shard max structure — the
        pruning bound source.  Dynamic max structures update in place;
        static ones are rebuilt on membership changes.
    num_shards / strategy / num_buckets / seed:
        Initial topology and the partitioner's placement knobs.
    replicas_per_shard:
        ``1`` puts each slice on a single durable machine; ``>= 2``
        backs each slice with its own :class:`ReplicaSet`.
    B / M / commit_interval:
        Per-machine durable-store parameters.  ``commit_interval=1``
        (every op durable before it is acknowledged) is the
        configuration under which post-crash recovery provably agrees
        with the coordinator's routing summary; larger intervals trade
        that for throughput exactly as in PR-2.
    allow_partial:
        Default for the per-query flag: serve from surviving shards
        (flagged) when a shard is unrecoverable, instead of raising.
    fault_plans:
        Optional per-shard chaos schedules (durable shards only),
        bound to each shard machine's disk.
    fabric / coordinator:
        Route every scatter-gather probe over a
        :class:`~repro.net.fabric.NetworkFabric` as a ``coordinator ->
        shard`` :data:`~repro.net.fabric.MSG_PROBE` envelope.  A probe
        that cannot cross (partition, persistent loss) degrades through
        the ordinary shard-loss rungs — ``None`` with ``allow_partial``,
        :class:`ShardUnavailable` otherwise — and is counted in
        :attr:`ShardingStats.unreachable_probes`.  ``fabric=None`` (the
        default) keeps probes in-process, byte-for-byte the pre-network
        behaviour.
    """

    def __init__(
        self,
        elements: Sequence[Element],
        build_fn: Callable[[List[Element]], TopKIndex],
        restore_fn: Callable[[dict], TopKIndex],
        max_factory,
        num_shards: int = 4,
        strategy: str = "hash",
        num_buckets: int = DEFAULT_BUCKETS,
        seed: int = 0,
        replicas_per_shard: int = 1,
        B: int = 16,
        M: Optional[int] = None,
        commit_interval: int = 1,
        allow_partial: bool = False,
        escalation_factor: int = 4,
        max_map_retries: int = 4,
        fault_plans: Optional[Sequence[Optional[FaultPlan]]] = None,
        replica_set_kwargs: Optional[dict] = None,
        fabric: Optional[NetworkFabric] = None,
        coordinator: str = "coordinator",
    ) -> None:
        if num_shards < 1:
            raise InvalidConfiguration(f"num_shards must be >= 1, got {num_shards}")
        if replicas_per_shard < 1:
            raise InvalidConfiguration(
                f"replicas_per_shard must be >= 1, got {replicas_per_shard}"
            )
        elements = list(elements)
        require_distinct_weights(elements, "ShardedTopKIndex")
        plans: List[Optional[FaultPlan]] = (
            list(fault_plans) if fault_plans is not None else [None] * num_shards
        )
        if len(plans) != num_shards:
            raise InvalidConfiguration("fault_plans must match num_shards")
        self.build_fn = build_fn
        self.restore_fn = restore_fn
        self.max_factory = max_factory
        self.B = B
        self.M = M
        self.commit_interval = commit_interval
        self.replicas_per_shard = replicas_per_shard
        self.allow_partial = allow_partial
        self.replica_set_kwargs = dict(replica_set_kwargs or {})
        self.fabric = fabric
        self.coordinator = coordinator
        self._probe_serial = 0
        self.stats = ShardingStats()
        self._query_local = threading.local()
        self._weights = {element.weight for element in elements}
        self._next_shard_id = num_shards

        partitioner = Partitioner.for_elements(
            elements, strategy=strategy, num_buckets=num_buckets, seed=seed
        )
        assignment = partitioner.initial_assignment(num_shards)
        names = [f"shard-{i}" for i in range(num_shards)]
        slices: List[List[Element]] = [[] for _ in range(num_shards)]
        for element in elements:
            slices[assignment[partitioner.bucket_of(element)]].append(element)
        shards: Dict[str, Shard] = {}
        for i, name in enumerate(names):
            buckets = [b for b, owner in enumerate(assignment) if owner == i]
            shards[name] = self._make_shard(name, slices[i], buckets, plans[i])
        shard_map = ShardMap(
            epoch=0, bucket_to_shard=tuple(names[i] for i in assignment)
        )
        self.router = ShardRouter(partitioner, shard_map, shards)
        self.executor = ScatterGatherExecutor(
            self.router,
            self._probe_backend,
            escalation_factor=escalation_factor,
            max_map_retries=max_map_retries,
        )
        # One lock for every cumulative-stats mutation: the executor
        # folds traces under it, and the index's own counters join it so
        # parallel batch workers never drop increments.
        self._stats_lock = self.executor.stats_lock

    # ------------------------------------------------------------------
    # Shard construction / recovery
    # ------------------------------------------------------------------
    def _make_shard(
        self,
        name: str,
        slice_elements: List[Element],
        buckets: Sequence[int],
        plan: Optional[FaultPlan] = None,
    ) -> Shard:
        """One shard machine (or replica set) over one slice of ``D``."""
        if self.replicas_per_shard > 1:
            backend = ReplicaSet(
                slice_elements,
                self.build_fn,
                self.restore_fn,
                num_replicas=self.replicas_per_shard,
                B=self.B,
                M=self.M,
                commit_interval=self.commit_interval,
                names=[f"{name}/r{i}" for i in range(self.replicas_per_shard)],
                **self.replica_set_kwargs,
            )
            machine = None
        else:
            machine = Replica(
                name,
                self.build_fn(list(slice_elements)),
                B=self.B,
                M=self.M,
                commit_interval=self.commit_interval,
                fault_plan=plan,
            )
            backend = machine.durable
        return Shard(
            name,
            backend,
            self.max_factory(list(slice_elements)),
            slice_elements,
            buckets,
            machine=machine,
        )

    def _recover_shard(self, shard: Shard, trace: Optional[ProbeTrace] = None) -> None:
        """Reboot a dead durable shard from its surviving disk.

        The disk outlives the machine; recovery mounts it fresh and
        replays the committed WAL tail onto the newest valid snapshot
        (PR-2's sequence).  Raises :class:`ShardUnavailable` when the
        durable record itself is gone — the caller decides between
        partial service and failure.
        """
        assert shard.machine is not None
        if trace is not None:
            trace.shard_losses += 1
        else:
            with self._stats_lock:
                self.stats.shard_losses += 1
        try:
            durable = DurableTopKIndex.recover(
                shard.machine.disk,
                self.restore_fn,
                self.build_fn,
                B=self.B,
                M=self.M,
                commit_interval=self.commit_interval,
            )
        except (RecoveryError, SnapshotIntegrityError) as exc:
            raise ShardUnavailable(
                f"shard {shard.name!r} is down and its durable record is "
                "unrecoverable",
                shard=shard.name,
            ) from exc
        shard.machine = Replica.adopt(shard.name, durable)
        shard.backend = durable
        if trace is not None:
            trace.shard_recoveries += 1
        else:
            with self._stats_lock:
                self.stats.shard_recoveries += 1

    def recover_shard(self, name: str) -> bool:
        """Proactively reboot a dead shard (operator lever).

        The query path already recovers a crashed shard *reactively* —
        but only when a query happens to probe it.  The ops control
        plane calls this the moment telemetry shows the shard down, so
        recovery cost is paid off the query path.  Returns ``True`` if
        a reboot ran, ``False`` if the shard was already healthy.
        Raises :class:`ShardUnavailable` when the durable record is
        unrecoverable and :class:`InvalidConfiguration` for unknown
        names or replica-set shards (those heal through their own
        cluster machinery).
        """
        shard = self.router.shards.get(name)
        if shard is None:
            raise InvalidConfiguration(f"no shard named {name!r}")
        with shard.lock:
            if shard.machine is None:
                raise InvalidConfiguration(
                    f"shard {name!r} is replica-set backed; use the "
                    "cluster's own failover/reboot levers"
                )
            if shard.machine.alive:
                return False
            self._recover_shard(shard)
        return True

    # ------------------------------------------------------------------
    # TopKIndex surface
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return sum(shard.n for shard in self.router.shards.values())

    def space_units(self) -> int:
        """Backend space plus the coordinator's per-shard max structures."""
        total = 0
        for shard in self.router.shards.values():
            total += shard.backend.space_units() + shard.max_index.space_units()
        return total

    def __contains__(self, element: Element) -> bool:
        return element in self.router.shard_for(element).elements

    def read_stamp(self) -> Tuple[int, int]:
        """``(epoch, lsn)`` for the LSN-versioned result cache.

        The epoch folds the router's topology epoch together with every
        replicated shard's failover epoch — a split, merge, *or* any
        shard-level promotion/rebuild invalidates cached answers
        unconditionally.  The LSN is the summed applied LSN across
        shards: monotone under updates within an epoch, so the cache's
        staleness budget counts exactly the cluster-wide records a
        cached answer is behind.
        """
        epoch = self.router.epoch
        lsn = 0
        for name in self.router.map.shard_names:
            backend = self.router.shards[name].backend
            if isinstance(backend, ReplicaSet):
                shard_epoch, shard_lsn = backend.read_stamp()
                epoch += shard_epoch
                lsn += shard_lsn
            else:
                lsn += backend.applied_lsn
        return (epoch, lsn)

    @property
    def last_partial(self) -> bool:
        """Whether *this thread's* latest query served a partial answer.

        Thread-local on purpose: parallel batch workers run whole
        queries concurrently, and a shared flag would let one worker's
        partial answer masquerade as another's.  Cross-thread totals
        live in :attr:`ShardingStats.partial_answers`.
        """
        return getattr(self._query_local, "last_partial", False)

    @last_partial.setter
    def last_partial(self, value: bool) -> None:
        self._query_local.last_partial = value

    def query(
        self, predicate: Predicate, k: int, allow_partial: Optional[bool] = None
    ) -> List[Element]:
        """Exact top-k via pruned scatter-gather (module docstring)."""
        with self._stats_lock:
            self.stats.queries += 1
        self.last_partial = False
        if k <= 0:
            return []
        partial_ok = self.allow_partial if allow_partial is None else allow_partial
        result = self.executor.scatter_gather(
            predicate, k, stats=self.stats, partial_ok=partial_ok
        )
        self.last_partial = result.partial
        return result.answer

    def _probe_backend(
        self, shard: Shard, predicate: Predicate, k_prime: int, trace: ProbeTrace
    ) -> Optional[List[Element]]:
        """One fault-handled backend probe (the executor's callback).

        The shard-loss ladder lives here: replica-set shards absorb
        crashes internally (their own failover); a durable shard that
        dies is recovered from disk and re-probed once; an
        unrecoverable shard yields ``None`` (partial) or raises.  The
        partial decision is the *query's own* (``trace.partial_ok``),
        never shared index state — concurrent queries may differ on it.
        """
        for attempt in range(2):
            try:
                with shard.lock:
                    if shard.machine is not None and not shard.machine.alive:
                        raise SimulatedCrash(
                            f"shard {shard.name!r} machine is down"
                        )
                    return self._backend_query(shard, predicate, k_prime)
            except PartitionedError:
                # A link problem, not a machine problem: the shard is
                # fine, we just cannot reach it.  Degrade through the
                # same partial/raise rungs as an unrecoverable shard —
                # but touch no machine state and no recovery path.
                with self._stats_lock:
                    self.stats.unreachable_probes += 1
                if trace.partial_ok:
                    trace.shard_losses += 1
                    return None
                raise ShardUnavailable(
                    f"shard {shard.name!r} is unreachable across a "
                    "partition",
                    shard=shard.name,
                ) from None
            except SimulatedCrash:
                if shard.machine is not None:
                    shard.machine.mark_dead()
                try:
                    with shard.lock:
                        self._recover_shard(shard, trace)
                except ShardUnavailable:
                    if trace.partial_ok:
                        return None
                    raise
            except ReplicaUnavailable:
                # A replica-set shard with every machine gone and no
                # recoverable disk: same terminal rung as above.
                if trace.partial_ok:
                    trace.shard_losses += 1
                    return None
                raise ShardUnavailable(
                    f"shard {shard.name!r}: no replica can serve",
                    shard=shard.name,
                ) from None
        raise ShardUnavailable(
            f"shard {shard.name!r} died again immediately after recovery",
            shard=shard.name,
        )

    def _backend_query(
        self, shard: Shard, predicate: Predicate, k_prime: int
    ) -> List[Element]:
        """One backend probe, over the fabric when one is attached.

        The envelope's idempotency key is reused across the retry after
        an indeterminate transport verdict: a probe is a read, so a
        duplicate execution is harmless, and the shared key lets the
        receiver's dedupe cache answer for a delivery that *did* land.
        Endpoints register lazily (by shard name, resolved at receive
        time) so shards born from online splits are reachable without
        any coordination.
        """
        if self.fabric is None:
            return shard.backend.query(predicate, k_prime)
        self.fabric.register(shard.name, self._probe_receive)
        with self._stats_lock:
            self._probe_serial += 1
            serial = self._probe_serial
        key = ("probe", self.coordinator, shard.name, serial)
        for attempt in range(2):
            try:
                return self.fabric.send(
                    self.coordinator,
                    shard.name,
                    MSG_PROBE,
                    (predicate, k_prime),
                    key=key,
                )
            except PartitionedError as exc:
                if exc.indeterminate and attempt == 0:
                    continue
                raise
        raise AssertionError("unreachable")  # pragma: no cover

    def _probe_receive(self, message: Message) -> List[Element]:
        """Fabric endpoint handler: resolve the shard *now* and probe it."""
        shard = self.router.shards.get(message.dst)
        if shard is None:
            raise ShardUnavailable(
                f"no shard named {message.dst!r}", shard=message.dst
            )
        predicate, k_prime = message.payload
        return shard.backend.query(predicate, k_prime)

    # ------------------------------------------------------------------
    # Batched / parallel execution
    # ------------------------------------------------------------------
    @contextmanager
    def _batch_windows(self):
        """Open every shard reduction's probe-memo window for a batch.

        Memo mutations happen under each shard's lock (all probes do),
        so parallel workers share the windows safely.  Backends without
        a ``batched`` hook (or whose inner lacks one) just skip it.
        """
        with ExitStack() as stack:
            for shard in self.router.shards.values():
                target = getattr(shard.backend, "inner", shard.backend)
                window = getattr(target, "batched", None)
                if window is not None:
                    stack.enter_context(window())
            yield

    def batch_groups(
        self,
        groups: Sequence[Tuple[Predicate, int]],
        pool=None,
        parallel_threshold: int = 4,
        allow_partial: Optional[bool] = None,
    ) -> List[List[Element]]:
        """One full answer per ``(predicate, max_k)`` group, in order.

        With a thread pool and enough groups, the groups are
        partitioned round-robin across workers and each worker runs
        whole scatter-gathers — per-shard locks keep every machine
        single-threaded, and the per-shard memo windows stay open for
        the whole batch so repeated sub-probes are shared across
        workers too.  ``allow_partial`` is the per-call override the
        brownout ladder's partial rung passes through to every
        scatter-gather of the batch (``None`` keeps the index default).
        """
        pairs = list(groups)
        with self._batch_windows():
            if pool is None or len(pairs) < max(1, parallel_threshold):
                return [self.query(p, k, allow_partial=allow_partial)
                        for p, k in pairs]
            width = getattr(pool, "_max_workers", 4)
            partitions: List[List[Tuple[int, Predicate, int]]] = [
                [] for _ in range(max(1, width))
            ]
            for index, (predicate, k) in enumerate(pairs):
                partitions[index % len(partitions)].append((index, predicate, k))
            with self._stats_lock:
                self.stats.parallel_batches += 1
            futures = [
                pool.submit(self._run_partition, partition, allow_partial)
                for partition in partitions
                if partition
            ]
            answers: List[Optional[List[Element]]] = [None] * len(pairs)
            for future in futures:
                for index, answer in future.result():
                    answers[index] = answer
            return answers  # type: ignore[return-value]

    def _run_partition(self, partition, allow_partial: Optional[bool] = None):
        """Worker body: sequential scatter-gathers over one partition."""
        return [
            (index, self.query(p, k, allow_partial=allow_partial))
            for index, p, k in partition
        ]

    def query_topk_batch(
        self,
        requests,
        pool=None,
        parallel_threshold: int = 4,
        allow_partial: Optional[bool] = None,
        **kwargs,
    ) -> List[List[Element]]:
        """Batched entry point: plan by predicate, fan out, slice prefixes."""
        from repro.serving.batch import QueryRequest, plan_batch

        normalized = [
            r if isinstance(r, QueryRequest) else QueryRequest(r[0], r[1])
            for r in requests
        ]
        with self._stats_lock:
            self.stats.batch_queries += len(normalized)
        plan = plan_batch(normalized)
        full_by_group = self.batch_groups(
            [(group.predicate, group.max_k) for group in plan.groups],
            pool=pool,
            parallel_threshold=parallel_threshold,
            allow_partial=allow_partial,
        )
        answers: List[Optional[List[Element]]] = [None] * len(normalized)
        for group, full in zip(plan.groups, full_by_group):
            for position, k in group.members:
                answers[position] = full[:k]
        return answers  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Updates (route, WAL-first on the shard, idempotent retry)
    # ------------------------------------------------------------------
    def insert(self, element: Element) -> None:
        if element.weight in self._weights:
            raise ContractViolation(
                f"insert of weight {element.weight!r} duplicates an indexed "
                "weight; the scatter-gather rank merge needs globally "
                "distinct weights — pre-process with ensure_distinct_weights()"
            )
        shard = self.router.shard_for(element)
        self._update(shard, "insert", element)
        with self._stats_lock:
            self.stats.inserts += 1
        self._weights.add(element.weight)
        shard.add_member(element, self.max_factory)

    def delete(self, element: Element) -> None:
        shard = self.router.shard_for(element)
        self._update(shard, "delete", element)
        with self._stats_lock:
            self.stats.deletes += 1
        self._weights.discard(element.weight)
        shard.drop_member(element, self.max_factory)

    def _update(self, shard: Shard, op: str, element: Element) -> None:
        """Apply one op on the shard's machine, surviving its death.

        Mirrors :meth:`ReplicaSet._update`: a crash mid-op recovers the
        machine from its disk, then a membership check decides whether
        the record committed before the crash (retry must be
        idempotent — WAL-first means the op may be durable even though
        the acknowledgement never arrived).
        """
        retrying = False
        while True:
            try:
                with shard.lock:
                    if shard.machine is not None and not shard.machine.alive:
                        raise SimulatedCrash(f"shard {shard.name!r} machine is down")
                    if retrying and self._already_applied(shard, op, element):
                        return
                    if op == "insert":
                        shard.backend.insert(element)
                    else:
                        shard.backend.delete(element)
                return
            except SimulatedCrash:
                if shard.machine is not None:
                    shard.machine.mark_dead()
                with shard.lock:
                    self._recover_shard(shard)
                retrying = True
            except TransientIOError:
                retrying = True

    @staticmethod
    def _already_applied(shard: Shard, op: str, element: Element) -> bool:
        inner = getattr(shard.backend, "inner", None)
        if inner is None or not hasattr(type(inner), "__contains__"):
            return False
        present = element in inner
        return present if op == "insert" else not present

    # ------------------------------------------------------------------
    # Online splits / merges / rebalancing
    # ------------------------------------------------------------------
    def checkpoint(self) -> None:
        """Checkpoint every shard (crash-recovering as needed)."""
        for name in self.router.map.shard_names:
            self._checkpoint_shard(self.router.shards[name])

    def _checkpoint_shard(self, shard: Shard) -> None:
        while True:
            try:
                with shard.lock:
                    if shard.machine is not None and not shard.machine.alive:
                        raise SimulatedCrash(f"shard {shard.name!r} machine is down")
                    shard.backend.checkpoint()
                return
            except SimulatedCrash:
                if shard.machine is not None:
                    shard.machine.mark_dead()
                with shard.lock:
                    self._recover_shard(shard)

    def splittable_shard(self) -> Optional[str]:
        """The largest shard that can still split (>= 2 buckets), or None.

        The scale-out planner asks this before reaching for the
        ``split_shard`` lever: a topology whose hottest shards are all
        down to single buckets has exhausted horizontal splits.
        """
        sizes = self.router.shard_sizes()
        for name in sorted(sizes, key=lambda s: (-sizes[s], s)):
            if len(self.router.shards[name].buckets) >= 2:
                return name
        return None

    def split_shard(self, name: Optional[str] = None) -> Tuple[str, str]:
        """Split one (default: the largest) shard in two, online.

        Follows the WAL-protected protocol in the module docstring.
        Returns ``(donor, new_shard)``.

        Failure atomicity: a failure *before* the recipient is built
        aborts with routes unchanged (the window's entry epoch bump
        already retries overlapping queries).  Once the recipient
        exists it durably holds every moving element, so a donor whose
        disk proves unrecoverable during the handover deletes no longer
        blocks the split: the new map is installed anyway — moving
        elements stay reachable on the recipient, the dead donor
        degrades through the ordinary shard-loss ladder — and the
        :class:`ShardUnavailable` is re-raised to surface the loss.
        """
        if name is None:
            sizes = self.router.shard_sizes()
            name = max(sorted(sizes), key=lambda s: sizes[s])
        shard = self.router.shards[name]
        if len(shard.buckets) < 2:
            raise InvalidConfiguration(
                f"shard {name!r} owns a single bucket and cannot split"
            )
        donor_lost: Optional[ShardUnavailable] = None
        # 1. Epoch bump + in-flux latch: overlapping queries retry, new
        #    ones block until the final map is published (or we abort).
        with self.router.topology_change():
            # 2. Durable baseline of the donor.
            self._checkpoint_shard(shard)
            # 3. Choose the moving half: upper buckets by cumulative
            #    count (keeps ranges contiguous under the weight-aware
            #    strategy).
            moving_buckets = self._moving_half(shard)
            moving_set = set(moving_buckets)
            bucket_of = self.router.partitioner.bucket_of
            moving = [e for e in shard.elements if bucket_of(e) in moving_set]
            # 4. Recipient machine, durable from birth — built before
            #    anything leaves the donor (the atomicity pivot).
            new_name = f"shard-{self._next_shard_id}"
            self._next_shard_id += 1
            new_shard = self._make_shard(new_name, moving, moving_buckets)
            # 5. WAL-deleted handover from the donor (crash =>
            #    recover+resume; unrecoverable => publish anyway).
            try:
                for element in moving:
                    self._update(shard, "delete", element)
            except ShardUnavailable as exc:
                donor_lost = exc
            with shard.lock:
                for element in moving:
                    shard.elements.pop(element, None)
                shard.buckets -= moving_set
                shard.max_index = self.max_factory(list(shard.elements))
            # 6. Publish the new topology (releases the latch).
            self.router.install(
                self.router.map.moved(moving_buckets, new_name), add=new_shard
            )
        with self._stats_lock:
            self.stats.splits += 1
        if donor_lost is not None:
            raise donor_lost
        return (name, new_name)

    def _moving_half(self, shard: Shard) -> List[int]:
        """The donor's upper buckets holding ~half its elements."""
        bucket_of = self.router.partitioner.bucket_of
        counts: Dict[int, int] = {b: 0 for b in shard.buckets}
        for element in shard.elements:
            counts[bucket_of(element)] += 1
        ordered = sorted(shard.buckets)
        half = shard.n / 2
        moving: List[int] = []
        carried = 0
        for bucket in reversed(ordered):
            if len(moving) >= len(ordered) - 1:
                break  # the donor keeps at least one bucket
            moving.append(bucket)
            carried += counts[bucket]
            if carried >= half:
                break
        return sorted(moving)

    def merge_shards(self, survivor_name: str, donor_name: str) -> str:
        """Fold ``donor`` into ``survivor`` and retire its machine.

        Runs inside the same in-flux window as a split, so no query
        ever sees an element on both machines: the duplicate interval
        (inserted into the survivor, not yet dropped from the map's
        donor routes) is invisible — snapshots block until the final
        map, which retires the donor, is installed.  A survivor that
        proves unrecoverable mid-insert aborts the merge wholesale:
        routes are unchanged, the donor still serves its slice, and the
        dead survivor degrades through the shard-loss ladder.
        """
        if survivor_name == donor_name:
            raise InvalidConfiguration("cannot merge a shard into itself")
        survivor = self.router.shards[survivor_name]
        donor = self.router.shards[donor_name]
        with self.router.topology_change():
            self._checkpoint_shard(survivor)
            self._checkpoint_shard(donor)
            incoming = list(donor.elements)
            for element in incoming:
                self._update(survivor, "insert", element)
            with survivor.lock:
                for element in incoming:
                    survivor.elements[element] = None
                survivor.buckets |= donor.buckets
                survivor.max_index = self.max_factory(list(survivor.elements))
            self.router.install(
                self.router.map.moved(sorted(donor.buckets), survivor_name),
                retire=donor_name,
            )
        with self._stats_lock:
            self.stats.merges += 1
        return survivor_name

    def rebalance(self, max_ratio: float = 2.0, max_actions: int = 4) -> List[Tuple[str, str]]:
        """Split hot shards until none exceeds ``max_ratio`` x the mean.

        Returns the ``(donor, new_shard)`` pairs performed.  Bounded by
        ``max_actions`` so a pathological distribution cannot split
        forever in one call.
        """
        actions: List[Tuple[str, str]] = []
        for _ in range(max_actions):
            sizes = self.router.shard_sizes()
            total = sum(sizes.values())
            if not total:
                break
            mean = total / len(sizes)
            hot = max(sorted(sizes), key=lambda s: sizes[s])
            if sizes[hot] <= max_ratio * mean:
                break
            if len(self.router.shards[hot].buckets) < 2:
                break
            actions.append(self.split_shard(hot))
        if actions:
            with self._stats_lock:
                self.stats.rebalances += 1
        return actions

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedTopKIndex(shards={self.router.num_shards}, n={self.n}, "
            f"epoch={self.router.epoch})"
        )


def sharded_index(
    elements: Sequence[Element],
    prioritized_factory,
    max_factory,
    num_shards: int = 4,
    strategy: str = "hash",
    seed: int = 0,
    B: int = 2,
    store_B: int = 16,
    replicas_per_shard: int = 1,
    **kwargs,
) -> ShardedTopKIndex:
    """A :class:`ShardedTopKIndex` over canonical Theorem 2 shards.

    Each shard's slice is indexed by an
    :class:`~repro.core.theorem2.ExpectedTopKIndex` with a pinned seed
    (deterministic rebuilds, bit-for-bit replicas when
    ``replicas_per_shard > 1``); the coordinator's pruning summaries
    come from ``max_factory``.  ``B`` is the reduction's block size,
    ``store_B`` the durable stores'.
    """
    from repro.core.theorem2 import ExpectedTopKIndex

    def build_fn(elems: List[Element]) -> ExpectedTopKIndex:
        return ExpectedTopKIndex(
            elems, prioritized_factory, max_factory, B=B, seed=seed
        )

    def restore_fn(state: dict) -> ExpectedTopKIndex:
        return ExpectedTopKIndex.restore(state, prioritized_factory, max_factory)

    return ShardedTopKIndex(
        elements,
        build_fn,
        restore_fn,
        max_factory,
        num_shards=num_shards,
        strategy=strategy,
        seed=seed,
        B=store_B,
        replicas_per_shard=replicas_per_shard,
        **kwargs,
    )


__all__ = ["ShardedTopKIndex", "ShardingStats", "sharded_index"]
