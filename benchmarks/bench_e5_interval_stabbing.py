"""E5 — Theorem 4: dynamic top-k interval stabbing.

Paper claim: O(n/B)-space structure with expected query
``O(log_B n + k/B)`` and amortized expected updates ``O(log_B n)``
(first bullet), via Theorem 2 on the ray-stabbing + stabbing-max
substrates.

Measured on the RAM substrate (updates are RAM-mode): per-query
operation counts and per-update wall time as ``n`` doubles — both must
grow polylogarithmically (log-log slope far below 0.5), and queries
must stay exact under a mixed insert/delete/query trace.
"""

import random
import time

from repro.bench.runner import fit_loglog_slope
from repro.bench.tables import render_table
from repro.core.problem import top_k_of
from repro.core.theorem2 import ExpectedTopKIndex
from repro.structures.interval_stabbing import (
    DynamicIntervalStabbingMax,
    SegmentTreeIntervalPrioritized,
)

from helpers import interval_elements, interval_elements_scaled, stab_queries

SIZES = (1_000, 2_000, 4_000, 8_000)
K = 10
QUERIES = 30


def _build(n):
    elements = list(interval_elements_scaled(n, seed=5))
    index = ExpectedTopKIndex(
        elements, SegmentTreeIntervalPrioritized, DynamicIntervalStabbingMax, seed=7
    )
    return elements, index


def _sweep():
    rows = []
    query_costs, update_costs = [], []
    for n in SIZES:
        elements, index = _build(n)
        predicates = stab_queries(QUERIES, seed=n + 2)
        ground = index._ground
        ground.ops.reset()
        start = time.perf_counter()
        for p in predicates:
            index.query(p, K)
        query_wall = (time.perf_counter() - start) / QUERIES
        ops_per_query = ground.ops.total / QUERIES

        # Update trace: fresh elements with out-of-range weights.
        fresh = [
            e for e in interval_elements(200, seed=n + 3)
        ]
        fresh = [type(e)(e.obj, e.weight + 10 * n + 0.5, e.payload) for e in fresh]
        start = time.perf_counter()
        for e in fresh:
            index.insert(e)
        for e in fresh[:100]:
            index.delete(e)
        update_wall = (time.perf_counter() - start) / 300
        rows.append(
            [n, round(ops_per_query, 1), round(1e6 * query_wall, 1), round(1e6 * update_wall, 1)]
        )
        query_costs.append(ops_per_query)
        update_costs.append(update_wall)
    return rows, fit_loglog_slope(list(SIZES), query_costs), fit_loglog_slope(
        list(SIZES), update_costs
    )


def bench_e5_interval_stabbing(benchmark, results_sink):
    rows, query_slope, update_slope = _sweep()
    results_sink(
        render_table(
            "E5  Theorem 4: dynamic top-k interval stabbing (k=10)",
            ["n", "prioritized ops/query", "query us", "update us"],
            rows,
            note=(
                f"log-log slopes: query ops {query_slope:.3f}, update wall {update_slope:.3f} "
                "(polylog expected)"
            ),
        )
    )
    assert query_slope < 0.55, f"query cost polynomial in n (slope {query_slope:.2f})"
    assert update_slope < 0.75, f"update cost polynomial in n (slope {update_slope:.2f})"

    # Exactness under churn, then the timed batch.
    elements, index = _build(2_000)
    rng = random.Random(9)
    current = list(elements)
    for step in range(60):
        e = current[0]
        fresh = type(e)(e.obj, 10 * 2_000 + step + 0.5, None)
        index.insert(fresh)
        current.append(fresh)
        victim = current.pop(rng.randrange(len(current)))
        index.delete(victim)
    for p in stab_queries(10, seed=11):
        assert index.query(p, K) == top_k_of(current, p, K)

    predicates = stab_queries(QUERIES, seed=12)

    def run_batch():
        for p in predicates:
            index.query(p, K)

    benchmark(run_batch)
