"""The durable block store: superblocks, sealed blocks, block chains.

Everything the durability layer persists goes through one
:class:`DurableStore` — an :class:`~repro.em.model.EMContext` over a
:class:`~repro.em.model.Disk` plus three format conventions:

* **sealed blocks** — every durable block ends with a ``("SEAL", crc)``
  record over its payload.  The seal is written last, so a torn write
  (:meth:`Disk.torn_write` persists only a prefix) is *detectable from
  the block contents alone*, on any disk, with or without the disk's
  own checksum array.
* **dual superblocks** — blocks 0 and 1 hold alternating generations of
  the store's root record ``("SUPER", version, epoch, snapshots,
  wal_head)``.  A superblock commit writes the block of the *new*
  epoch's parity and is therefore atomic: torn, it fails its seal and
  recovery falls back to the other superblock — the previous consistent
  generation.  This is the only block ever overwritten in place.
* **forward-chained extents** — snapshots and the WAL live in chains of
  sealed blocks ``[(kind, seq, next_id), payload..., (SEAL, crc)]``
  whose ``next_id`` is *pre-allocated* before the block is written.
  Sealed chain blocks are never rewritten, so a crash can only damage
  the newest, still-unsealed tail — earlier extents stay intact.

All transfers are charged to the context's :class:`IOStats` like any
other EM operation; durability is not free I/O.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.em.model import Disk, EMContext, stable_repr
from repro.resilience.errors import (
    CorruptBlockError,
    InvalidConfiguration,
    RecoveryError,
    SnapshotIntegrityError,
)

FORMAT_VERSION = 1
_SUPER_BLOCKS = (0, 1)


def seal(payload: Sequence[object]) -> List[object]:
    """Append the integrity seal: payload + ``("SEAL", crc)``.

    CRCs are taken over the address-masked :func:`stable_repr`, so two
    processes sealing identical logical contents produce identical
    seals (default ``repr`` embeds ``id()`` addresses).
    """
    records = list(payload)
    records.append(
        ("SEAL", zlib.crc32(stable_repr(records).encode("utf-8", "backslashreplace")))
    )
    return records


def unseal(records: Sequence[object], block_id: Optional[int] = None) -> List[object]:
    """Verify and strip a block seal; raises on torn/damaged blocks."""
    if not records:
        raise SnapshotIntegrityError(
            f"block {block_id} is empty (torn before any record landed)",
            block_id=block_id,
        )
    last = records[-1]
    if not (isinstance(last, tuple) and len(last) == 2 and last[0] == "SEAL"):
        raise SnapshotIntegrityError(
            f"block {block_id} has no seal (torn write)", block_id=block_id
        )
    payload = list(records[:-1])
    expect = zlib.crc32(stable_repr(payload).encode("utf-8", "backslashreplace"))
    if last[1] != expect:
        raise SnapshotIntegrityError(
            f"block {block_id} seal mismatch (damaged contents)", block_id=block_id
        )
    return payload


@dataclass(frozen=True)
class SnapshotEntry:
    """One snapshot as recorded in the superblock manifest."""

    snapshot_id: int
    head_block: int
    num_records: int
    state_crc: int

    def as_record(self) -> Tuple:
        return (self.snapshot_id, self.head_block, self.num_records, self.state_crc)

    @staticmethod
    def from_record(record: Tuple) -> "SnapshotEntry":
        return SnapshotEntry(*record)


class DurableStore:
    """Root of all durable state (see module docstring for the format).

    Parameters
    ----------
    ctx:
        Optional pre-built context.  When omitted, a private context
        over a private disk is created — the normal deployment, which
        also guarantees durability I/O never pollutes the query path's
        counters (no double-counting in health reports).
    B / M:
        Machine parameters of the private context.  ``B >= 4`` is
        required: a chain block must fit header + payload + seal.

    Use :meth:`DurableStore.open` after a (simulated) crash: it builds
    a *fresh* context over the surviving disk — the crashed context's
    cache held volatile state that died with the machine and must never
    be reused.
    """

    def __init__(
        self,
        ctx: Optional[EMContext] = None,
        B: int = 16,
        M: Optional[int] = None,
        _format: bool = True,
    ) -> None:
        self.ctx = ctx if ctx is not None else EMContext(B=B, M=M)
        if self.ctx.B < 4:
            raise InvalidConfiguration(
                f"DurableStore needs B >= 4 (header + payload + seal), got {self.ctx.B}"
            )
        self.epoch = 0
        self.snapshots: List[SnapshotEntry] = []
        self.wal_head: Optional[int] = None
        self.next_snapshot_id = 1
        if _format:
            for _ in _SUPER_BLOCKS:
                self.ctx.disk.allocate()
            self._write_superblock(target=_SUPER_BLOCKS[0])
            self.ctx.flush()

    @classmethod
    def open(cls, disk: Disk, B: int = 16, M: Optional[int] = None) -> "DurableStore":
        """Reboot: mount an existing disk and load its latest root.

        Builds a fresh context (the old machine's memory is gone) and
        reads both superblocks, adopting the highest valid epoch.
        """
        ctx = EMContext(B=B, M=M, disk=disk)
        store = cls(ctx=ctx, _format=False)
        store._load_superblock()
        return store

    @property
    def disk(self) -> Disk:
        return self.ctx.disk

    # ------------------------------------------------------------------
    # Sealed single blocks
    # ------------------------------------------------------------------
    @property
    def chain_capacity(self) -> int:
        """Payload records per chain block (header and seal excluded)."""
        return self.ctx.B - 2

    def allocate(self) -> int:
        return self.ctx.disk.allocate()

    def write_sealed(self, block_id: int, payload: Sequence[object]) -> None:
        self.ctx.write_block(block_id, seal(payload))

    def retire_chain(self, head: Optional[int]) -> None:
        """A chain the root no longer references (checkpoint cleanup).

        The plain store simply abandons the blocks — disks with free
        in-place overwrite have nothing to reclaim.  The log-structured
        subclass holds them in limbo and recycles them once the commit
        that dropped the reference is durable.
        """

    def read_sealed(self, block_id: int) -> List[object]:
        """Read + verify one durable block.

        A :class:`CorruptBlockError` from the machine's own checksum
        layer is translated to :class:`SnapshotIntegrityError`: for
        *durable* data the disk copy is the only copy, so a failed
        verification means the bytes are gone, not that a retry will
        help.
        """
        if block_id >= self.ctx.disk.num_blocks:
            raise SnapshotIntegrityError(
                f"block {block_id} was never allocated (broken chain pointer)",
                block_id=block_id,
            )
        try:
            records = self.ctx.read_block(block_id)
        except CorruptBlockError as exc:
            raise SnapshotIntegrityError(
                f"durable block {block_id} failed disk checksum", block_id=block_id
            ) from exc
        return unseal(records, block_id=block_id)

    def flush(self) -> None:
        """Write-back barrier: force every buffered write to the disk."""
        self.ctx.flush()

    # ------------------------------------------------------------------
    # Superblocks
    # ------------------------------------------------------------------
    def commit_superblock(self) -> None:
        """Atomically publish the current root (epoch, snapshots, WAL).

        Bumps the epoch and writes the superblock of the new epoch's
        parity, then flushes.  Until this returns, recovery sees the
        previous generation; a tear during it fails the new seal and
        recovery *still* sees the previous generation.
        """
        self.epoch += 1
        self._write_superblock(target=_SUPER_BLOCKS[self.epoch % 2])
        self.ctx.flush()

    def _write_superblock(self, target: int) -> None:
        record = (
            "SUPER",
            FORMAT_VERSION,
            self.epoch,
            tuple(entry.as_record() for entry in self.snapshots),
            self.wal_head,
            self.next_snapshot_id,
        )
        self.write_sealed(target, [record])

    def _load_superblock(self) -> None:
        best: Optional[Tuple] = None
        for block_id in _SUPER_BLOCKS:
            try:
                payload = self.read_sealed(block_id)
            except SnapshotIntegrityError:
                continue
            if len(payload) != 1:
                continue
            record = payload[0]
            if not (isinstance(record, tuple) and record and record[0] == "SUPER"):
                continue
            if record[1] != FORMAT_VERSION:
                raise SnapshotIntegrityError(
                    f"superblock {block_id} has format version {record[1]}, "
                    f"this build reads version {FORMAT_VERSION}"
                )
            if best is None or record[2] > best[2]:
                best = record
        if best is None:
            raise RecoveryError(
                "no valid superblock: both generations are damaged or the "
                "disk was never formatted by a DurableStore"
            )
        _, _, self.epoch, snapshots, self.wal_head, self.next_snapshot_id = best
        self.snapshots = [SnapshotEntry.from_record(r) for r in snapshots]

    # ------------------------------------------------------------------
    # Forward-chained extents
    # ------------------------------------------------------------------
    def write_chain(
        self, kind: str, records: Sequence[object], start_seq: int = 0
    ) -> int:
        """Write ``records`` into a fresh chain of sealed blocks.

        Returns the head block id.  Every block is newly allocated and
        written exactly once; ``next_id`` pointers are pre-allocated so
        sealed blocks are never revisited.
        """
        head = self.allocate()
        current = head
        seq = start_seq
        total = len(records)
        capacity = self.chain_capacity
        offset = 0
        while True:
            chunk = list(records[offset : offset + capacity])
            offset += len(chunk)
            next_id = self.allocate() if offset < total else None
            self.write_sealed(current, [(kind, seq, next_id), *chunk])
            if next_id is None:
                return head
            current = next_id
            seq += 1

    def read_chain(self, kind: str, head: int) -> Iterator[object]:
        """Yield payload records of a chain; raises on any damage."""
        block_id: Optional[int] = head
        expect_seq: Optional[int] = None
        while block_id is not None:
            payload = self.read_sealed(block_id)
            if not payload:
                raise SnapshotIntegrityError(
                    f"chain block {block_id} has no header", block_id=block_id
                )
            header = payload[0]
            if not (
                isinstance(header, tuple)
                and len(header) == 3
                and header[0] == kind
            ):
                raise SnapshotIntegrityError(
                    f"chain block {block_id} has header {header!r}, "
                    f"expected kind {kind!r}",
                    block_id=block_id,
                )
            _, seq, next_id = header
            if expect_seq is not None and seq != expect_seq:
                raise SnapshotIntegrityError(
                    f"chain block {block_id} has seq {seq}, expected {expect_seq}",
                    block_id=block_id,
                )
            expect_seq = seq + 1
            for record in payload[1:]:
                yield record
            block_id = next_id

    # ------------------------------------------------------------------
    def fingerprints(self) -> Dict[int, Tuple[int, bool]]:
        """Per-block ``(crc, seal_ok)`` over the current durable root set.

        The anti-entropy scrubber's substrate: every block the root
        references is read raw (one charged I/O each, bypassing the
        cache so a stale frame cannot mask on-disk damage), summed, and
        seal-verified.  ``seal_ok=False`` flags a block whose embedded
        seal is missing or mismatched — bit rot or a torn write that
        the superblock still points at.  CRCs let two replicas compare
        durable content block-for-block without shipping the payloads.

        The WAL chain's *terminal* unreadable block is excluded: that is
        the pre-allocated open tail (or a torn, never-committed group) —
        recovery discards it by design, so it carries no durable state
        and flagging it would make every healthy replica look damaged.
        """
        from repro.em.model import block_checksum

        out: Dict[int, Tuple[int, bool]] = {}

        def fingerprint(block_id: int) -> bool:
            records = list(self.ctx.disk.raw_read(block_id))
            self.ctx.stats.reads += 1
            try:
                unseal(records, block_id=block_id)
                seal_ok = True
            except SnapshotIntegrityError:
                seal_ok = False
            out[block_id] = (block_checksum(records), seal_ok)
            return seal_ok

        for block_id in _SUPER_BLOCKS:
            fingerprint(block_id)
        for entry in self.snapshots:
            for block_id in self._chain_blocks(entry.head_block):
                fingerprint(block_id)
        if self.wal_head is not None:
            chain = self._chain_blocks(self.wal_head)
            for position, block_id in enumerate(chain):
                if not fingerprint(block_id) and position == len(chain) - 1:
                    del out[block_id]
        return out

    # ------------------------------------------------------------------
    def reachable_blocks(self) -> List[int]:
        """Every block the current root references (audit surface).

        Walks the superblocks, each manifest snapshot's chain, and the
        WAL chain.  Chain walks stop at the first unreadable block —
        the same horizon recovery itself sees.
        """
        out = list(_SUPER_BLOCKS)
        for entry in self.snapshots:
            out.extend(self._chain_blocks(entry.head_block))
        if self.wal_head is not None:
            out.extend(self._chain_blocks(self.wal_head))
        return out

    def _chain_blocks(self, head: int) -> List[int]:
        out: List[int] = []
        block_id: Optional[int] = head
        while block_id is not None and block_id < self.ctx.disk.num_blocks:
            out.append(block_id)
            try:
                payload = self.read_sealed(block_id)
            except SnapshotIntegrityError:
                break
            header = payload[0] if payload else None
            block_id = (
                header[2]
                if isinstance(header, tuple) and len(header) == 3
                else None
            )
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DurableStore(epoch={self.epoch}, snapshots={len(self.snapshots)}, "
            f"wal_head={self.wal_head}, blocks={self.ctx.disk.num_blocks})"
        )


__all__ = ["DurableStore", "SnapshotEntry", "seal", "unseal", "FORMAT_VERSION"]
