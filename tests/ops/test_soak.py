"""The do-no-harm baseline: a healthy cluster soak opens nothing.

Satellite requirement: 200 queries against a fault-free replicated
stack with the operator ticking alongside — zero incidents, zero
mitigations, zero deferrals, and every answer oracle-exact (asserted
inside :meth:`ChaosScenarioRunner.run_healthy`).
"""

from repro.ops.scenarios import ChaosScenarioRunner


def test_healthy_soak_opens_zero_incidents():
    operator = ChaosScenarioRunner().run_healthy(
        ticks=25, queries_per_tick=8, writes_per_tick=2, seed=0
    )
    assert operator.clock >= 25
    assert operator.log.incidents == []       # no incidents...
    assert operator.deferrals == 0            # ...no vetoed actions...
    assert operator.verifications == 0        # ...and no lever ever fired

def test_healthy_soak_is_seed_robust():
    for seed in (1, 2):
        operator = ChaosScenarioRunner().run_healthy(ticks=10, seed=seed)
        assert operator.log.incidents == []
