"""Open-loop schedules: determinism, coverage, rate-shape fidelity."""

from __future__ import annotations

import pytest

from repro.loadgen import (
    ConstantRate,
    DiurnalRate,
    FlashCrowdRate,
    OpenLoopSchedule,
)
from repro.resilience.errors import InvalidConfiguration


class TestRateShapes:
    def test_constant_rate(self):
        rate = ConstantRate(25.0)
        assert rate(0.0) == rate(1e6) == 25.0

    def test_diurnal_peaks_and_troughs(self):
        rate = DiurnalRate(base=100.0, amplitude=0.5, period=40.0)
        assert rate(0.0) == pytest.approx(100.0)
        assert rate(10.0) == pytest.approx(150.0)   # quarter period
        assert rate(30.0) == pytest.approx(50.0)    # three quarters
        assert min(rate(t / 10) for t in range(400)) > 0.0

    def test_flash_crowd_ramp_hold_cliff(self):
        rate = FlashCrowdRate(
            base=10.0, spike=5.0, start=20.0, duration=10.0, ramp=0.2
        )
        assert rate(19.9) == 10.0
        assert 10.0 < rate(21.0) < 50.0     # inside the ramp
        assert rate(25.0) == 50.0           # holding
        assert rate(30.0) == 10.0           # cliff back to base

    def test_validation(self):
        with pytest.raises(InvalidConfiguration):
            ConstantRate(0.0)
        with pytest.raises(InvalidConfiguration):
            DiurnalRate(base=10.0, amplitude=1.0)
        with pytest.raises(InvalidConfiguration):
            FlashCrowdRate(base=10.0, spike=0.5)


class TestOpenLoopSchedule:
    def test_same_seed_identical_timestamps(self):
        a = OpenLoopSchedule(ConstantRate(50.0), seed=3)
        b = OpenLoopSchedule(ConstantRate(50.0), seed=3)
        assert list(a.between(0.0, 5.0)) == list(b.between(0.0, 5.0))

    def test_different_seeds_differ(self):
        a = OpenLoopSchedule(ConstantRate(50.0), seed=3)
        b = OpenLoopSchedule(ConstantRate(50.0), seed=4)
        assert list(a.between(0.0, 5.0)) != list(b.between(0.0, 5.0))

    def test_mean_rate_tracks_rate_function(self):
        schedule = OpenLoopSchedule(ConstantRate(100.0), seed=0, jitter=0.1)
        stamps = list(schedule.between(0.0, 20.0))
        assert len(stamps) == pytest.approx(2000, rel=0.05)

    def test_zero_jitter_is_exact_pacing(self):
        schedule = OpenLoopSchedule(ConstantRate(10.0), seed=0, jitter=0.0)
        stamps = list(schedule.between(0.0, 1.0))
        gaps = [b - a for a, b in zip(stamps, stamps[1:])]
        assert all(g == pytest.approx(0.1) for g in gaps)

    def test_timestamps_ascending_and_in_range(self):
        schedule = OpenLoopSchedule(
            FlashCrowdRate(base=20.0, spike=8.0, start=2.0, duration=4.0),
            seed=9,
        )
        stamps = list(schedule.between(0.0, 10.0))
        assert stamps == sorted(stamps)
        assert all(0.0 <= t < 10.0 for t in stamps)

    def test_windows_partition_the_stream(self):
        """Chunking at tick boundaries loses and reorders nothing."""
        schedule = OpenLoopSchedule(
            DiurnalRate(base=40.0, amplitude=0.5, period=10.0), seed=5
        )
        flat = list(schedule.between(0.0, 12.0))
        windows = list(schedule.windows(0.0, 12.0, tick=1.0))
        assert [t for w in windows for t in w] == flat
        assert len(windows) == 12
        for i, window in enumerate(windows):
            assert all(i * 1.0 <= t < (i + 1) * 1.0 for t in window)

    def test_windows_pad_empty_tail(self):
        # A slow rate leaves trailing ticks with no arrivals — they must
        # still be yielded so the harness's clock advances.
        schedule = OpenLoopSchedule(ConstantRate(0.5), seed=1)
        windows = list(schedule.windows(0.0, 8.0, tick=1.0))
        assert len(windows) == 8

    def test_jitter_validation(self):
        with pytest.raises(InvalidConfiguration):
            OpenLoopSchedule(ConstantRate(1.0), jitter=1.0)
        with pytest.raises(InvalidConfiguration):
            list(OpenLoopSchedule(ConstantRate(1.0)).windows(0, 1, tick=0.0))
