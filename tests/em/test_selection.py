"""Tests for k-selection (the finishing step of every top-k query)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.problem import Element
from repro.em.blockarray import BlockArray
from repro.em.model import EMContext
from repro.em.selection import select_top_k, select_top_k_blocked


class TestInMemory:
    def test_k_zero_or_negative(self):
        assert select_top_k([3, 1, 2], 0) == []
        assert select_top_k([3, 1, 2], -5) == []

    def test_basic_descending(self):
        assert select_top_k([3, 1, 4, 1, 5], 3) == [5, 4, 3]

    def test_k_exceeds_n_returns_all_sorted(self):
        assert select_top_k([2, 9, 4], 10) == [9, 4, 2]

    def test_weight_accessor_on_elements(self):
        elements = [Element(i, float(w)) for i, w in enumerate([5, 2, 8])]
        top = select_top_k(elements, 2)
        assert [e.weight for e in top] == [8.0, 5.0]

    def test_custom_weight_function(self):
        out = select_top_k([(1, 5), (2, 3), (3, 9)], 2, weight=lambda r: r[1])
        assert out == [(3, 9), (1, 5)]


class TestBlocked:
    def test_small_k_single_scan(self):
        ctx = EMContext(B=4, M=16)
        arr = BlockArray(ctx, [float(v) for v in range(50)])
        top = select_top_k_blocked(ctx, arr, 5, weight=lambda v: v)
        assert top == [49.0, 48.0, 47.0, 46.0, 45.0]

    def test_small_k_costs_one_scan(self):
        ctx = EMContext(B=4, M=16)
        arr = BlockArray(ctx, [float(v) for v in range(48)])
        ctx.drop_cache()
        ctx.stats.reset()
        select_top_k_blocked(ctx, arr, 3, weight=lambda v: v)
        assert ctx.stats.reads == 12  # exactly n/B

    def test_k_larger_than_memory_multi_pass(self):
        ctx = EMContext(B=4, M=8)  # memory of 8 records, k = 40 > M
        rng = random.Random(5)
        data = [rng.random() for _ in range(200)]
        arr = BlockArray(ctx, data)
        top = select_top_k_blocked(ctx, arr, 40, weight=lambda v: v)
        assert top == sorted(data, reverse=True)[:40]

    def test_k_equals_n(self):
        ctx = EMContext(B=4, M=8)
        data = [3.0, 1.0, 2.0, 9.0, 9.5, 0.5, 4.0, 8.0, 7.0]
        arr = BlockArray(ctx, data)
        top = select_top_k_blocked(ctx, arr, len(data), weight=lambda v: v)
        assert top == sorted(data, reverse=True)

    def test_k_zero(self):
        ctx = EMContext(B=4, M=8)
        arr = BlockArray(ctx, [1.0, 2.0])
        assert select_top_k_blocked(ctx, arr, 0, weight=lambda v: v) == []


@settings(max_examples=40, deadline=None)
@given(
    data=st.lists(st.integers(0, 10**6), max_size=150, unique=True),
    k=st.integers(0, 160),
)
def test_matches_sorted_prefix(data, k):
    floats = [float(v) for v in data]
    assert select_top_k(floats, k, weight=lambda v: v) == sorted(floats, reverse=True)[:k]


@settings(max_examples=25, deadline=None)
@given(
    data=st.lists(st.integers(0, 10**6), min_size=1, max_size=120, unique=True),
    k=st.integers(1, 130),
    B=st.integers(2, 6),
)
def test_blocked_matches_sorted_prefix(data, k, B):
    ctx = EMContext(B=B, M=2 * B)  # tiny memory to force the pivot path
    floats = [float(v) for v in data]
    arr = BlockArray(ctx, floats)
    got = select_top_k_blocked(ctx, arr, k, weight=lambda v: v)
    assert got == sorted(floats, reverse=True)[:k]
