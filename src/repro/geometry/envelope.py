"""Lower and upper envelopes of lines with ``O(log n)`` evaluation.

The 2D halfplane *max* structure (Section 5.4) needs, per weight-class
node, the question "is any line of this set below/above the query
point?"  For a set of lines that is exactly an envelope evaluation: a
point ``(qx, qy)`` has some line below it iff the *lower envelope* at
``qx`` is at most ``qy``.

The envelope of ``n`` static lines is built in ``O(n log n)`` by the
convex-hull-trick stack sweep and evaluated by binary search over
breakpoints.
"""

from __future__ import annotations

import bisect
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.geometry.primitives import Line2D


class LowerEnvelope:
    """Pointwise minimum of a set of non-vertical lines."""

    def __init__(self, lines: Iterable[Line2D]) -> None:
        self._hull: List[Line2D] = _envelope_hull(lines, lower=True)
        self._breaks: List[float] = _breakpoints(self._hull)

    def __len__(self) -> int:
        return len(self._hull)

    def value_at(self, x: float) -> Optional[float]:
        """min over lines of ``line.at(x)``; ``None`` for an empty set."""
        line = self.line_at(x)
        return line.at(x) if line is not None else None

    def line_at(self, x: float) -> Optional[Line2D]:
        """The line attaining the minimum at abscissa ``x``."""
        if not self._hull:
            return None
        index = bisect.bisect_right(self._breaks, x)
        return self._hull[index]


class UpperEnvelope:
    """Pointwise maximum of a set of non-vertical lines."""

    def __init__(self, lines: Iterable[Line2D]) -> None:
        self._hull: List[Line2D] = _envelope_hull(lines, lower=False)
        self._breaks: List[float] = _breakpoints(self._hull)

    def __len__(self) -> int:
        return len(self._hull)

    def value_at(self, x: float) -> Optional[float]:
        """max over lines of ``line.at(x)``; ``None`` for an empty set."""
        line = self.line_at(x)
        return line.at(x) if line is not None else None

    def line_at(self, x: float) -> Optional[Line2D]:
        """The line attaining the maximum at abscissa ``x``."""
        if not self._hull:
            return None
        index = bisect.bisect_right(self._breaks, x)
        return self._hull[index]


def _envelope_hull(lines: Iterable[Line2D], lower: bool) -> List[Line2D]:
    """The lines appearing on the envelope, ordered left to right.

    For the lower envelope, slopes decrease... no: walking x from -inf
    to +inf along the lower envelope, the active slope *decreases*?  The
    minimum at ``x -> -inf`` is attained by the largest slope and at
    ``x -> +inf`` by the smallest, so active slopes decrease for the
    lower envelope and increase for the upper one.  The classic stack
    sweep below processes lines sorted accordingly.
    """
    # Deduplicate parallel lines, keeping the dominating one.
    best_by_slope = {}
    for line in lines:
        kept = best_by_slope.get(line.a)
        if kept is None:
            best_by_slope[line.a] = line
        elif lower and line.b < kept.b:
            best_by_slope[line.a] = line
        elif not lower and line.b > kept.b:
            best_by_slope[line.a] = line
    ordered = sorted(best_by_slope.values(), key=lambda l: l.a, reverse=lower)
    hull: List[Line2D] = []
    for line in ordered:
        while len(hull) >= 2 and _useless(hull[-2], hull[-1], line):
            hull.pop()
        hull.append(line)
    return hull


def _useless(first: Line2D, middle: Line2D, last: Line2D) -> bool:
    """Whether ``middle`` never attains the envelope between its neighbours.

    ``middle`` is useless iff ``last`` overtakes ``first`` no later than
    ``middle`` does — the standard convex-hull-trick pop test (slopes
    are distinct after the parallel-line dedup).
    """
    x_fm = first.intersect_x(middle)
    x_fl = first.intersect_x(last)
    return x_fl <= x_fm


def _breakpoints(hull: Sequence[Line2D]) -> List[float]:
    """Abscissae where the active envelope line changes."""
    return [hull[i].intersect_x(hull[i + 1]) for i in range(len(hull) - 1)]
