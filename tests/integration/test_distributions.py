"""Adversarial data shapes: the reductions must stay exact off-uniform.

``clustered`` piles elements into three hot spots (stressing canonical
decompositions); ``correlated`` puts all the heavy weights in one
spatial neighbourhood (stressing the rank-sampling machinery — every
core-set and every ladder sample concentrates there).
"""

import pytest

from oracles import oracle_top_k
from repro.bench.workloads import DISTRIBUTIONS, make_problem
from repro.core.baseline import BinarySearchTopKIndex
from repro.core.theorem1 import WorstCaseTopKIndex
from repro.core.theorem2 import ExpectedTopKIndex

STRESS_PROBLEMS = ("range1d", "interval_stabbing")


@pytest.mark.parametrize("distribution", ["clustered", "correlated"])
@pytest.mark.parametrize("name", STRESS_PROBLEMS)
class TestAdversarialDistributions:
    def test_theorem1_exact(self, name, distribution):
        problem = make_problem(name, 200, seed=21, distribution=distribution)
        index = WorstCaseTopKIndex(problem.elements, problem.prioritized_factory, seed=1)
        for p in problem.predicates(8, seed=1):
            for k in (1, 5, 40, 500):
                assert index.query(p, k) == oracle_top_k(problem.elements, p, k)

    def test_theorem2_exact(self, name, distribution):
        problem = make_problem(name, 200, seed=22, distribution=distribution)
        index = ExpectedTopKIndex(
            problem.elements, problem.prioritized_factory, problem.max_factory, seed=2
        )
        for p in problem.predicates(8, seed=2):
            for k in (1, 5, 40, 500):
                assert index.query(p, k) == oracle_top_k(problem.elements, p, k)

    def test_baseline_exact(self, name, distribution):
        problem = make_problem(name, 150, seed=23, distribution=distribution)
        index = BinarySearchTopKIndex(problem.elements, problem.prioritized_factory)
        for p in problem.predicates(6, seed=3):
            for k in (1, 9, 80):
                assert index.query(p, k) == oracle_top_k(problem.elements, p, k)


class TestDistributionShapes:
    def test_unknown_distribution_rejected(self):
        with pytest.raises(KeyError, match="unknown distribution"):
            make_problem("range1d", 10, distribution="exotic")

    def test_clustered_really_clusters(self):
        problem = make_problem("range1d", 400, seed=24, distribution="clustered")
        coords = sorted(e.obj for e in problem.elements)
        # Three tight clusters: the middle 90% of each cluster spans far
        # less than a uniform spread would.
        from repro.bench.workloads import UNIVERSE

        in_clusters = sum(
            1
            for c in coords
            if any(abs(c - f * UNIVERSE) < 0.12 * UNIVERSE for f in (0.15, 0.5, 0.85))
        )
        assert in_clusters > 0.95 * len(coords)

    def test_correlated_puts_heavy_near_anchor(self):
        problem = make_problem("range1d", 400, seed=25, distribution="correlated")
        from repro.bench.workloads import UNIVERSE

        by_weight = sorted(problem.elements, key=lambda e: -e.weight)
        top_decile = by_weight[:40]
        bottom_decile = by_weight[-40:]
        top_spread = sum(abs(e.obj - UNIVERSE / 2) for e in top_decile) / 40
        bottom_spread = sum(abs(e.obj - UNIVERSE / 2) for e in bottom_decile) / 40
        assert top_spread < bottom_spread / 3

    def test_all_distributions_listed(self):
        assert set(DISTRIBUTIONS) == {"uniform", "clustered", "correlated"}

    def test_uniform_unchanged_for_geometric_problems(self):
        a = make_problem("dominance3d", 50, seed=26)
        b = make_problem("dominance3d", 50, seed=26, distribution="clustered")
        assert a.elements == b.elements  # fallback documented in make_problem
