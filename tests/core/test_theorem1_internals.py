"""White-box tests for Theorem 1's core-set machinery.

The black-box correctness tests live in ``test_theorem1.py``; these
exercise the internal recursion paths directly — deep hierarchies, the
probe-rank arithmetic, and the doubling ladder's level selection.
"""

import math
import random

import pytest

from oracles import oracle_top_k
from repro.core.params import TuningParams
from repro.core.theorem1 import WorstCaseTopKIndex, _TopFStructure, ReductionStats
from toy import RangePredicate, ToyPrioritized, make_toy_elements


def deep_params():
    """Constants chosen to produce a multi-level hierarchy at n~2000."""
    return TuningParams(
        lam=1.0,
        coreset_rate_c=3.0,
        rank_threshold_c=2.0,
        small_k_factor=4.0,
        slack=4.0,
    )


class TestHierarchyDepth:
    def test_multi_level_recursion_is_exercised(self):
        elements = make_toy_elements(2000, 1)
        index = WorstCaseTopKIndex(
            elements, ToyPrioritized, params=deep_params(), B=2, seed=2
        )
        assert index._small.hierarchy.depth >= 3
        # Broad queries force the recursion through the deeper levels.
        index.stats.reset()
        rng = random.Random(3)
        for _ in range(20):
            a = rng.uniform(0, 20000)
            p = RangePredicate(a, a + 15000)
            k = rng.randrange(1, index.f + 1)
            assert index.query(p, k) == oracle_top_k(elements, p, k)
        assert index.stats.threshold_fetches > 0

    def test_probe_rank_tracks_recorded_rates(self):
        elements = make_toy_elements(1500, 4)
        index = WorstCaseTopKIndex(
            elements, ToyPrioritized, params=deep_params(), B=2, seed=5
        )
        small = index._small
        for j in range(small.hierarchy.depth - 1):
            rank = small._probe_rank(j)
            rate = small.hierarchy.stats.rates[j + 1]
            assert rank == max(1, math.ceil(2.0 * small.f * rate))

    def test_bottom_level_has_no_index(self):
        elements = make_toy_elements(800, 6)
        index = WorstCaseTopKIndex(elements, ToyPrioritized, params=deep_params(), seed=7)
        assert index._small.indexes[-1] is None or (
            # Rate saturation may stop the chain early with an index.
            index._small.hierarchy.stats.rates[-1] >= 1.0
        )

    def test_ground_index_reused_at_level_zero(self):
        elements = make_toy_elements(600, 8)
        index = WorstCaseTopKIndex(elements, ToyPrioritized, params=deep_params(), seed=9)
        if index._small.indexes[0] is not None:
            assert index._small.indexes[0] is index._ground


class TestLadderSelection:
    def test_large_k_picks_minimal_level(self):
        elements = make_toy_elements(4000, 10)
        params = TuningParams(small_k_factor=1.0)
        index = WorstCaseTopKIndex(elements, ToyPrioritized, params=params, seed=11)
        f = index.f
        # For each ladder level i (1-based), k = 2^{i-1} f must select i.
        for i in range(1, len(index._ladder) + 1):
            k = (2 ** (i - 1)) * f
            if k <= f or k >= index.n / 2:
                continue
            expected_i = max(1, math.ceil(math.log2(k / f)) + 1)
            while (2 ** (expected_i - 1)) * f < k:
                expected_i += 1
            assert (2 ** (expected_i - 1)) * f >= k
            assert expected_i == i

    def test_ladder_rates_recorded(self):
        elements = make_toy_elements(2000, 12)
        index = WorstCaseTopKIndex(elements, ToyPrioritized, seed=13)
        assert len(index._ladder_rates) == len(index._ladder)
        assert all(0 < rate <= 1 for rate in index._ladder_rates)


class TestTopFStructureStandalone:
    def test_direct_use(self):
        elements = make_toy_elements(1000, 14)
        stats = ReductionStats()
        structure = _TopFStructure(
            elements, 16, ToyPrioritized, deep_params(), random.Random(15), stats
        )
        rng = random.Random(16)
        for _ in range(25):
            a = rng.uniform(0, 10000)
            p = RangePredicate(a, a + rng.uniform(100, 9000))
            expect = oracle_top_k(elements, p, 16)
            assert structure.top_f(p) == expect

    def test_space_units_sums_indexes(self):
        elements = make_toy_elements(400, 17)
        stats = ReductionStats()
        structure = _TopFStructure(
            elements, 8, ToyPrioritized, deep_params(), random.Random(18), stats
        )
        total = sum(
            index.space_units() for index in structure.indexes if index is not None
        )
        assert structure.space_units() == total
