"""Integration: the EM flagship pipeline (Theorem 4's setting).

Builds EM-mode interval structures on a shared context, runs both
reductions over them, and asserts the I/O-count *shapes* the paper
claims: a logarithmic search term and a ``k/B`` output term without the
baseline's multiplicative log.
"""

import math
import random

from oracles import oracle_top_k
from repro.core.baseline import BinarySearchTopKIndex
from repro.core.theorem1 import WorstCaseTopKIndex
from repro.core.theorem2 import ExpectedTopKIndex
from repro.em.model import EMContext
from repro.core.problem import Element
from repro.geometry.primitives import Interval
from repro.structures.interval_stabbing import (
    SegmentTreeIntervalPrioritized,
    StabbingPredicate,
    StaticIntervalStabbingMax,
)


def make_intervals(n, seed=0):
    rng = random.Random(seed)
    weights = rng.sample(range(10 * n), n)
    out = []
    for i in range(n):
        center = rng.uniform(0, 1000)
        length = math.exp(rng.uniform(math.log(0.5), math.log(300)))
        out.append(
            Element(Interval(center - length / 2, center + length / 2), float(weights[i]))
        )
    return out


class TestEMReductions:
    def test_theorem1_exact_in_em_mode(self):
        ctx = EMContext(B=16, M=128)
        elements = make_intervals(600, 1)

        def factory(subset):
            return SegmentTreeIntervalPrioritized(subset, ctx=ctx)

        index = WorstCaseTopKIndex(elements, factory, B=ctx.B, seed=2)
        rng = random.Random(3)
        for _ in range(15):
            p = StabbingPredicate(rng.uniform(0, 1000))
            for k in (1, 8, 64, 300):
                assert index.query(p, k) == oracle_top_k(elements, p, k)

    def test_theorem2_exact_in_em_mode(self):
        ctx = EMContext(B=16, M=128)
        elements = make_intervals(600, 4)

        def pri_factory(subset):
            return SegmentTreeIntervalPrioritized(subset, ctx=ctx)

        def max_factory(subset):
            return StaticIntervalStabbingMax(subset, ctx=ctx)

        index = ExpectedTopKIndex(elements, pri_factory, max_factory, B=ctx.B, seed=5)
        rng = random.Random(6)
        for _ in range(15):
            p = StabbingPredicate(rng.uniform(0, 1000))
            for k in (1, 8, 64, 300):
                assert index.query(p, k) == oracle_top_k(elements, p, k)

    def test_output_term_beats_baseline_for_large_k(self):
        """Theorem 2's O(k/B) output term vs the baseline's O((k/B) log n).

        For large k the baseline's repeated cost-monitored probes re-read
        Theta(k/B) blocks O(log n) times; Theorem 2 reads them O(1)
        times.  The measured I/O ratio must clearly exceed 1.
        """
        n, k = 2000, 256
        elements = make_intervals(n, 7)

        ctx2 = EMContext(B=16, M=128)
        t2 = ExpectedTopKIndex(
            elements,
            lambda subset: SegmentTreeIntervalPrioritized(subset, ctx=ctx2),
            lambda subset: StaticIntervalStabbingMax(subset, ctx=ctx2),
            B=16,
            seed=8,
        )
        ctxb = EMContext(B=16, M=128)
        bl = BinarySearchTopKIndex(
            elements, lambda subset: SegmentTreeIntervalPrioritized(subset, ctx=ctxb)
        )
        rng = random.Random(9)
        predicates = [StabbingPredicate(rng.uniform(200, 800)) for _ in range(12)]

        ctx2.drop_cache()
        ctx2.stats.reset()
        for p in predicates:
            t2.query(p, k)
        theorem2_ios = ctx2.stats.total

        ctxb.drop_cache()
        ctxb.stats.reset()
        for p in predicates:
            bl.query(p, k)
        baseline_ios = ctxb.stats.total

        assert baseline_ios > 1.5 * theorem2_ios, (baseline_ios, theorem2_ios)

    def test_em_space_accounting(self):
        ctx = EMContext(B=16, M=128)
        elements = make_intervals(800, 10)
        SegmentTreeIntervalPrioritized(elements, ctx=ctx)
        # O((n/B) log n) blocks: generous envelope, but far below n blocks.
        blocks = ctx.disk.num_blocks
        assert blocks <= (800 / 16) * math.log2(800) * 4
        assert blocks >= 800 / 16
