"""Brownout ladder: hysteresis transitions and per-rung budgets."""

from __future__ import annotations

import pytest

from repro.resilience.errors import InvalidConfiguration
from repro.serving import (
    LEVEL_HEALTHY,
    LEVEL_PARTIAL,
    LEVEL_REDUCED_K,
    LEVEL_STALE,
    BrownoutController,
    BrownoutPolicy,
)


def make_controller(**kwargs):
    defaults = dict(
        queue_high=10, queue_low=2, sustain_drains=2, recover_drains=3,
        staleness_budget=50, k_cap=3,
    )
    defaults.update(kwargs)
    return BrownoutController(BrownoutPolicy(**defaults))


class TestPolicyValidation:
    def test_watermarks_must_be_ordered(self):
        with pytest.raises(InvalidConfiguration):
            BrownoutPolicy(queue_high=5, queue_low=10)

    def test_streaks_must_be_positive(self):
        with pytest.raises(InvalidConfiguration):
            BrownoutPolicy(sustain_drains=0)

    def test_k_cap_must_be_positive(self):
        with pytest.raises(InvalidConfiguration):
            BrownoutPolicy(k_cap=0)

    def test_max_level_bounds(self):
        with pytest.raises(InvalidConfiguration):
            BrownoutPolicy(max_level=4)


class TestEscalation:
    def test_sustained_pressure_climbs_one_rung(self):
        ctl = make_controller()
        assert ctl.observe(20) == LEVEL_HEALTHY   # streak 1 of 2
        assert ctl.observe(20) == LEVEL_STALE     # streak complete
        assert ctl.stats.escalations == 1

    def test_single_burst_never_escalates(self):
        ctl = make_controller()
        ctl.observe(100)
        ctl.observe(5)      # between watermarks: streak resets
        ctl.observe(100)
        assert ctl.level == LEVEL_HEALTHY

    def test_ladder_climbs_rung_by_rung_to_max(self):
        ctl = make_controller(sustain_drains=1)
        levels = [ctl.observe(50) for _ in range(6)]
        assert levels[:3] == [LEVEL_STALE, LEVEL_REDUCED_K, LEVEL_PARTIAL]
        assert all(lv == LEVEL_PARTIAL for lv in levels[3:])  # capped

    def test_max_level_caps_the_climb(self):
        ctl = make_controller(sustain_drains=1, max_level=LEVEL_STALE)
        for _ in range(5):
            ctl.observe(50)
        assert ctl.level == LEVEL_STALE


class TestRecovery:
    def test_sustained_calm_steps_down(self):
        ctl = make_controller(sustain_drains=1)
        ctl.observe(50)
        ctl.observe(50)
        assert ctl.level == LEVEL_REDUCED_K
        for _ in range(3):
            ctl.observe(0)
        assert ctl.level == LEVEL_STALE
        assert ctl.stats.deescalations == 1

    def test_mid_band_resets_recovery_streak(self):
        ctl = make_controller(sustain_drains=1)
        ctl.observe(50)
        ctl.observe(0)
        ctl.observe(0)
        ctl.observe(5)      # between watermarks
        ctl.observe(0)
        ctl.observe(0)
        assert ctl.level == LEVEL_STALE  # never saw 3 consecutive calms

    def test_reset_returns_to_healthy_and_records_transition(self):
        ctl = make_controller(sustain_drains=1)
        ctl.observe(50)
        ctl.reset()
        assert ctl.level == LEVEL_HEALTHY
        assert ctl.transitions[-1] == ("reset", LEVEL_STALE, LEVEL_HEALTHY)


class TestEffectiveBudgets:
    def test_healthy_changes_nothing(self):
        ctl = make_controller()
        assert ctl.effective_staleness(4) == 4
        assert ctl.effective_k(8) == 8
        assert not ctl.partial_ok
        assert not ctl.active

    def test_stale_rung_widens_staleness_only(self):
        ctl = make_controller(sustain_drains=1)
        ctl.observe(50)
        assert ctl.level == LEVEL_STALE
        assert ctl.effective_staleness(4) == 50
        assert ctl.effective_staleness(80) == 80  # never narrows
        assert ctl.effective_k(8) == 8
        assert not ctl.partial_ok

    def test_reduced_k_rung_caps_k(self):
        ctl = make_controller(sustain_drains=1)
        ctl.observe(50)
        ctl.observe(50)
        assert ctl.level == LEVEL_REDUCED_K
        assert ctl.effective_k(8) == 3
        assert ctl.effective_k(2) == 2    # never raises
        assert not ctl.partial_ok

    def test_partial_rung_allows_partials(self):
        ctl = make_controller(sustain_drains=1)
        for _ in range(3):
            ctl.observe(50)
        assert ctl.level == LEVEL_PARTIAL
        assert ctl.partial_ok
        assert ctl.level_name == "partial_ok"

    def test_degraded_drain_accounting(self):
        ctl = make_controller(sustain_drains=1)
        ctl.observe(0)
        ctl.observe(50)
        ctl.observe(50)
        assert ctl.stats.drains_observed == 3
        assert ctl.stats.drains_degraded == 2
