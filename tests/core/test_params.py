"""Tests for the tuning-parameter formulas."""

import math

import pytest

from repro.core.params import TuningParams


class TestPresets:
    def test_paper_faithful_constants(self):
        p = TuningParams.paper_faithful()
        assert p.coreset_rate_c == 4.0
        assert p.rank_threshold_c == 8.0
        assert p.small_k_factor == 12.0
        assert p.sigma == pytest.approx(1 / 20)
        assert p.slack == 4.0

    def test_with_overrides(self):
        p = TuningParams().with_(lam=3.0)
        assert p.lam == 3.0
        assert p.sigma == TuningParams().sigma

    def test_frozen(self):
        with pytest.raises(AttributeError):
            TuningParams().lam = 2


class TestCoresetRate:
    def test_formula(self):
        p = TuningParams(lam=2.0, coreset_rate_c=4.0)
        n, K = 1000, 500.0
        assert p.coreset_rate(n, K) == pytest.approx(4.0 * (2.0 / 500.0) * math.log(1000))

    def test_clamped_from_above_at_one(self):
        p = TuningParams(lam=2.0, coreset_rate_c=4.0)
        assert p.coreset_rate(1000, 50.0) == 1.0  # raw value 1.105

    def test_clamped_to_one(self):
        p = TuningParams(coreset_rate_c=100.0)
        assert p.coreset_rate(1000, 1.0) == 1.0

    def test_tiny_n(self):
        assert TuningParams().coreset_rate(1, 5.0) == 1.0

    def test_rate_decreases_with_K(self):
        p = TuningParams()
        assert p.coreset_rate(10**5, 10.0) > p.coreset_rate(10**5, 1000.0)


class TestProbeRank:
    def test_formula(self):
        p = TuningParams(lam=2.0, rank_threshold_c=8.0)
        assert p.probe_rank(1000) == math.ceil(16.0 * math.log(1000))

    def test_at_least_one(self):
        assert TuningParams().probe_rank(1) == 1
        assert TuningParams(rank_threshold_c=1e-9).probe_rank(100) == 1


class TestSmallKCutoff:
    def test_paper_formula(self):
        p = TuningParams.paper_faithful(lam=2.0)
        # f = 12 * lambda * B * Q_pri
        assert p.small_k_cutoff(64, 10.0) == math.ceil(12 * 2 * 64 * 10.0)

    def test_grows_with_B(self):
        p = TuningParams()
        assert p.small_k_cutoff(64, 10.0) > p.small_k_cutoff(2, 10.0)
