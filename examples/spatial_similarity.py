"""Top-k circular range search via the lifting map (Corollary 1).

A similarity-retrieval workload: points are feature vectors (here 3D
for visualisation), weights are relevance scores, and a query asks for
the top-k most relevant items within distance r of a probe — top-k
*circular* reporting.  Corollary 1 reduces it to top-k halfspace
reporting one dimension up by lifting onto the paraboloid; this example
shows the reduction working end-to-end and verifies it against brute
force.

Run:  python examples/spatial_similarity.py
"""

import random

from repro import Element, ExpectedTopKIndex, WorstCaseTopKIndex
from repro.core.problem import top_k_of
from repro.geometry.primitives import Ball
from repro.structures.circular import (
    CircularPredicate,
    LiftedCircularMax,
    LiftedCircularPrioritized,
)


def make_catalogue(count: int, seed: int) -> list:
    rng = random.Random(seed)
    scores = rng.sample(range(1_000_000), count)
    items = []
    for i in range(count):
        # Three clusters, like embeddings of three topics.
        cluster = rng.choice([(0.0, 0.0, 0.0), (8.0, 8.0, 0.0), (-6.0, 5.0, 7.0)])
        vector = tuple(c + rng.gauss(0, 2.0) for c in cluster)
        items.append(Element(vector, float(scores[i]), payload=f"item-{i}"))
    return items


def main() -> None:
    items = make_catalogue(4_000, seed=99)

    index = ExpectedTopKIndex(
        items,
        prioritized_factory=LiftedCircularPrioritized,
        max_factory=LiftedCircularMax,
        seed=5,
    )

    probe = Ball(center=(7.0, 7.5, 0.5), radius=4.0)
    query = CircularPredicate(probe)

    print(f"Probe: center {probe.center}, radius {probe.radius}")
    print("Top-5 most relevant items within the ball:\n")
    top5 = index.query(query, k=5)
    for rank, item in enumerate(top5, 1):
        x, y, z = item.obj
        print(
            f"  {rank}. score={item.weight:>9.0f}  {item.payload:<9}"
            f" at ({x:+.2f}, {y:+.2f}, {z:+.2f})"
        )

    # Verify against brute force: the answer is unique (distinct weights).
    assert top5 == top_k_of(items, query, 5)
    print("\nMatches brute force. ✓")

    # Theorem 1 (prioritized-only, worst-case) gives the same answers.
    worst_case = WorstCaseTopKIndex(items, LiftedCircularPrioritized, seed=5)
    assert worst_case.query(query, 5) == top5
    print("Theorem 1 instantiation agrees. ✓")

    inside = sum(1 for e in items if query.matches(e.obj))
    print(f"({inside} of {len(items)} items lie in the ball.)")


if __name__ == "__main__":
    main()
