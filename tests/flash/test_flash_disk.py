"""FlashDisk behind the Disk surface: EM integration and stats mirroring."""

import pytest

from repro.em.model import EMContext, IOStats, block_checksum
from repro.flash.disk import FlashDisk
from repro.flash.ftl import FlashConfig


def small_disk(**overrides):
    kwargs = dict(pages_per_block=4, capacity_pages=48, overprovision=0.25)
    kwargs.update(overrides)
    return FlashDisk(config=FlashConfig(**kwargs))


class TestDiskSurface:
    def test_allocate_write_read_roundtrip(self):
        disk = small_disk()
        a, b = disk.allocate(), disk.allocate()
        disk.raw_write(a, [1, 2, 3])
        disk.raw_write(b, ["x"])
        assert disk.raw_read(a) == [1, 2, 3]
        assert disk.raw_read(b) == ["x"]
        assert disk.num_blocks == 2

    def test_unallocated_block_raises(self):
        disk = small_disk()
        with pytest.raises(IndexError):
            disk.raw_read(0)
        with pytest.raises(IndexError):
            disk.raw_write(0, [])

    def test_never_written_block_reads_empty(self):
        disk = small_disk()
        bid = disk.allocate()
        assert disk.raw_read(bid) == []

    def test_discard_trims_the_mapping(self):
        disk = small_disk()
        bid = disk.allocate()
        disk.raw_write(bid, ["doomed"])
        valid_before = disk.ftl.valid_pages
        disk.discard(bid)
        assert disk.raw_read(bid) == []
        assert disk.ftl.valid_pages == valid_before - 1
        assert disk.ftl.stats.trims == 1

    def test_torn_write_keeps_prefix_and_fails_verification(self):
        disk = small_disk()
        disk.enable_checksums()
        bid = disk.allocate()
        disk.raw_write(bid, ["old"])
        disk.torn_write(bid, ["a", "b", "c"], keep=1)
        assert disk.raw_read(bid) == ["a"]
        # The stored checksum covers the intended full write, so the
        # surviving prefix is detectably corrupt — same contract as Disk.
        assert not disk.verify(bid, disk.raw_read(bid))

    def test_checksums_enabled_late_cover_existing_blocks(self):
        disk = small_disk()
        bid = disk.allocate()
        disk.raw_write(bid, [1, 2])
        disk.enable_checksums()
        assert disk.verify(bid, [1, 2])
        assert not disk.verify(bid, [1])

    def test_logical_blocks_are_pages_not_erase_blocks(self):
        disk = small_disk()
        for i in range(10):
            bid = disk.allocate()
            disk.raw_write(bid, [i])
        assert disk.num_blocks == 10
        assert disk.ftl.valid_pages == 10


class TestStatsMirroring:
    def test_context_sees_flash_counters(self):
        disk = small_disk()
        ctx = EMContext(B=4, disk=disk)
        for i in range(12):
            ctx.allocate_block([i])
        ctx.flush()
        stats = ctx.stats
        assert stats.flash_host_writes == disk.ftl.stats.host_writes > 0
        assert stats.flash_device_writes == disk.ftl.stats.device_writes
        assert stats.write_amplification >= 1.0
        assert stats.flash_mean_wear == disk.ftl.mean_wear
        assert stats.flash_max_wear == disk.ftl.max_wear

    def test_reboot_rebinds_without_double_counting(self):
        disk = small_disk()
        first = EMContext(B=4, disk=disk)
        blocks = [first.allocate_block([i]) for i in range(8)]
        first.flush()
        carried = disk.ftl.stats.host_writes
        assert first.stats.flash_host_writes == carried

        # A reboot mounts the same platter with a fresh context: the new
        # machine's IOStats starts at zero and mirrors only new traffic,
        # while the device's own cumulative counters keep the history.
        second = EMContext(B=4, disk=disk)
        assert second.stats.flash_host_writes == 0
        second.write_block(blocks[0], ["rewritten"])
        second.flush()
        assert second.stats.flash_host_writes == 1
        assert disk.ftl.stats.host_writes == carried + 1
        # The abandoned context stops receiving mirror updates.
        assert first.stats.flash_host_writes == carried

    def test_snapshot_delta_isolates_a_window(self):
        disk = small_disk()
        ctx = EMContext(B=4, disk=disk)
        for i in range(6):
            ctx.allocate_block([i])
        ctx.flush()
        before = ctx.stats.snapshot()
        for i in range(6):
            ctx.allocate_block([100 + i])
        ctx.flush()
        window = ctx.stats.delta(before)
        assert window.flash_host_writes == 6
        # Gauges pass through as current values, not differences.
        assert window.flash_max_wear == disk.ftl.max_wear

    def test_plain_iostats_flash_fields_stay_zero_off_flash(self):
        ctx = EMContext(B=4)
        for i in range(6):
            ctx.allocate_block([i])
        ctx.flush()
        assert ctx.stats.flash_host_writes == 0
        assert ctx.stats.write_amplification == 0.0


class TestChecksumDeterminism:
    def test_block_checksum_masks_object_addresses(self):
        # Two objects with address-bearing default reprs must checksum
        # identically — the repr address is process noise, not content.
        assert block_checksum([object()]) == block_checksum([object()])

    def test_distinct_content_still_differs(self):
        assert block_checksum([1, 2]) != block_checksum([2, 1])
