"""Quickstart: build a top-k index from black-box parts in ten lines.

The paper's pitch, executable: you have a *prioritized* structure
("everything matching q with weight >= tau") and a *max* structure
("the single heaviest match").  Theorem 2 combines them into an exact
*top-k* structure with no asymptotic overhead — you never write any
top-k logic yourself.

Run:  python examples/quickstart.py
"""

import random

from repro import Element, ExpectedTopKIndex, WorstCaseTopKIndex
from repro.geometry.primitives import Interval
from repro.structures.interval_stabbing import (
    DynamicIntervalStabbingMax,
    SegmentTreeIntervalPrioritized,
    StabbingPredicate,
)


def main() -> None:
    rng = random.Random(42)

    # A set of weighted intervals: think "price-range offers with scores".
    data = []
    for score in rng.sample(range(100_000), 5_000):
        center = rng.uniform(0, 1_000)
        half = rng.uniform(0.5, 80)
        data.append(Element(Interval(center - half, center + half), float(score)))

    # Theorem 2: prioritized + max -> top-k, no degradation (expected).
    index = ExpectedTopKIndex(
        data,
        prioritized_factory=SegmentTreeIntervalPrioritized,
        max_factory=DynamicIntervalStabbingMax,
        seed=7,
    )

    query = StabbingPredicate(500.0)  # "offers covering the point 500"
    top10 = index.query(query, k=10)
    print("Top-10 offers covering x = 500:")
    for rank, element in enumerate(top10, 1):
        print(f"  {rank:2d}. score={element.weight:>9.0f}  interval={element.obj}")

    # Theorem 1 needs only the prioritized structure (worst-case bounds).
    worst_case = WorstCaseTopKIndex(data, SegmentTreeIntervalPrioritized, seed=7)
    assert worst_case.query(query, 10) == top10
    print("\nTheorem 1 (prioritized-only) agrees with Theorem 2. ✓")

    # The Theorem 2 index is dynamic: insert a new heavy offer and re-query.
    hot = Element(Interval(450, 550), 1_000_000.0)
    index.insert(hot)
    assert index.query(query, 1)[0] is hot
    print("After inserting a dominant offer, it is the new top-1. ✓")


if __name__ == "__main__":
    main()
