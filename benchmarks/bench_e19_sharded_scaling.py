"""E19 — Sharded scaling: scatter-gather throughput and pruning vs S.

Sweeps the shard count S over {1, 2, 4, 8, 16} for three layouts:

* ``uniform/hash``  — uniform weights, seeded-hash placement;
* ``zipf/hash``     — Zipf-skewed weights, seeded-hash placement;
* ``zipf/range``    — Zipf-skewed weights, weight-aware range bands.

and reports, per (layout, S): query throughput, per-shard probes per
query, and the mean fraction of mapped shards a query contacted (the
max-probe threshold pruning at work).  Two structural claims:

1. **Exactness is free of S**: every answer of every sweep point is
   compared to the brute-force oracle — 100% exact, always.
2. **Pruning keeps fan-out sublinear in S.**  The threshold rule is
   *ordinal* (rank-based), so at k <= 8 even hash placement contacts
   ~S(1-(1-1/S)^k)/S shards; with weight-aware range bands on skewed
   data the top-k concentrates in the top band and the contacted
   fraction collapses further.  Acceptance floor (asserted, recorded
   in the JSON): on Zipf weights at S=16 the mean contacted fraction
   stays <= 0.5 — for *both* placements.

Results land as JSON in ``benchmarks/results/e19_sharded_scaling.json``
(the CI sharded-scaling job uploads it as an artifact).

Set ``REPRO_BENCH_QUICK=1`` to run a reduced workload (CI smoke mode).
"""

import json
import os
import random
import time
from pathlib import Path

from repro.bench.tables import render_table
from repro.core.problem import Element, top_k_of
from repro.sharding import sharded_index
from repro.structures.range1d import RangePredicate1D
from repro.structures.range1d_dynamic import DynamicRangeTreap

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
N = 240 if QUICK else 800
QUERIES = 60 if QUICK else 200
MAX_K = 8
SHARD_COUNTS = [1, 2, 4, 8, 16]
ROUNDS = 2 if QUICK else 3      # timing repeats; best round wins
CONTACT_CEILING = 0.5           # acceptance: zipf @ S=16 contacts <= 50%
RESULTS_JSON = (
    Path(__file__).resolve().parent / "results" / "e19_sharded_scaling.json"
)

SPAN = 50 * (N + 10)


def uniform_elements(n, seed=7):
    rng = random.Random(seed)
    coords = rng.sample(range(SPAN), n)
    weights = rng.sample(range(10 * n), n)
    return [Element(float(coords[i]), float(weights[i])) for i in range(n)]


def zipf_elements(n, seed=7, alpha=1.2):
    """Rank r carries ~1/r**alpha of the weight mass (distinct by rank)."""
    rng = random.Random(seed)
    coords = rng.sample(range(SPAN), n)
    return [
        Element(float(coords[r]), 1_000_000.0 / (r + 1) ** alpha)
        for r in range(n)
    ]


def query_workload(count, seed):
    rng = random.Random(seed)
    workload = []
    for _ in range(count):
        a, b = sorted(rng.sample(range(SPAN), 2))
        workload.append(
            (RangePredicate1D(float(a), float(b)), rng.randint(1, MAX_K))
        )
    return workload


def build_index(elements, num_shards, strategy):
    return sharded_index(
        elements,
        DynamicRangeTreap,
        DynamicRangeTreap,
        num_shards=num_shards,
        strategy=strategy,
        seed=5,
        B=2,
    )


def _best_time(fn, rounds=ROUNDS):
    """Best-of-N wall time — the jitter-resistant point estimate."""
    best, result = float("inf"), None
    for _ in range(rounds):
        began = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - began)
    return best, result


def _sweep_point(name, elements, workload, oracle, num_shards, strategy):
    idx = build_index(elements, num_shards, strategy)

    def run():
        return [idx.query(p, k) for p, k in workload]

    seconds, answers = _best_time(run)
    assert answers == oracle, (
        f"{name} S={num_shards}: scatter-gather diverged from the oracle"
    )
    stats = idx.stats
    return {
        "shards": num_shards,
        "strategy": strategy,
        "queries": len(workload),
        "seconds": round(seconds, 4),
        "qps": round(len(workload) / seconds) if seconds > 0 else 0,
        "probes_per_query": round(stats.probes_per_query, 2),
        "contact_ratio": round(stats.contact_ratio, 3),
        "shards_pruned": stats.shards_pruned,
        "escalations": stats.escalations,
        "exact_fraction": 1.0,
    }


def bench_e19_sharded_scaling(benchmark, results_sink):
    workload = query_workload(QUERIES, seed=13)
    configs = [
        ("uniform/hash", uniform_elements(N), "hash"),
        ("zipf/hash", zipf_elements(N), "hash"),
        ("zipf/range", zipf_elements(N), "range"),
    ]

    sweeps = {}
    rows = []
    for name, elements, strategy in configs:
        oracle = [top_k_of(elements, p, k) for p, k in workload]
        points = [
            _sweep_point(name, elements, workload, oracle, s, strategy)
            for s in SHARD_COUNTS
        ]
        sweeps[name] = points
        for point in points:
            rows.append(
                [
                    name,
                    point["shards"],
                    point["qps"],
                    point["probes_per_query"],
                    point["contact_ratio"],
                    "100%",
                ]
            )

    # Acceptance: Zipf-skewed weights at S=16 prune past the ceiling.
    zipf_at_16 = {
        name: points[-1]["contact_ratio"]
        for name, points in sweeps.items()
        if name.startswith("zipf")
    }
    for name, ratio in zipf_at_16.items():
        assert ratio <= CONTACT_CEILING, (
            f"{name} @ S=16: contacted {ratio:.1%} of shards per query, "
            f"above the {CONTACT_CEILING:.0%} acceptance ceiling"
        )
    # The weight-aware layout must beat content hashing on skewed data.
    assert zipf_at_16["zipf/range"] <= zipf_at_16["zipf/hash"], (
        "range partitioning should never contact more shards than hash "
        "on Zipf weights"
    )

    results_sink(
        render_table(
            f"E19 Sharded scaling (n={N}, {QUERIES} queries, k<={MAX_K})",
            ["layout", "S", "qps", "probes/q", "contacted", "exact"],
            rows,
            note=f"acceptance: zipf @ S=16 contacts <= {CONTACT_CEILING:.0%} "
            "of shards per query (both placements); every answer equals "
            "the brute-force oracle",
        )
    )

    RESULTS_JSON.parent.mkdir(exist_ok=True)
    RESULTS_JSON.write_text(
        json.dumps(
            {
                "quick": QUICK,
                "n": N,
                "queries": QUERIES,
                "max_k": MAX_K,
                "shard_counts": SHARD_COUNTS,
                "contact_ceiling": CONTACT_CEILING,
                "zipf_contact_at_16": zipf_at_16,
                "sweeps": sweeps,
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )

    # Timing hook: the full workload at S=8 on the skewed/range layout.
    elements = zipf_elements(N)
    idx = build_index(elements, 8, "range")

    def run_workload():
        return [idx.query(p, k) for p, k in workload]

    benchmark(run_workload)
