"""Section 5.4's max structure, as published: regions + point location.

The paper solves 2D halfplane max reporting by duality: store the
weighted halfplanes as *lines*, define regions
``rho_i = e'_i \\ (rho_1 ∪ ... ∪ rho_{i-1})`` in descending weight
order, observe the induced planar subdivision has ``O(n)`` vertices,
and answer queries with ``O(log n)`` point location [31].

For an instance where every dual object is a *line above-ness test*
("report the max-weight line passing on or above the query point"),
the subdivision has a crisp incremental description.  Let ``M_j`` be
the upper envelope of the ``j`` heaviest lines.  The region with
answer ``i`` is ``{(x, y) : M_{i-1}(x) < y <= M_i(x)}`` — an onion
layer between consecutive prefix envelopes — whose upper boundary is
the part of line ``l_i`` lying strictly above ``M_{i-1}``.  Because
``M_{i-1}`` is convex, that exposed part is a single segment, so the
whole subdivision is ``n`` interior-disjoint segments and a query is
one **vertical ray shot**: the first boundary segment above the query
point belongs to the answer line (the paper's ``O(n)``-complexity
argument, made constructive).

:class:`LineAbovePointMax` implements exactly this pipeline (envelope
onion -> persistent-tree ray shooting).  :class:`UpperHalfplanePointMax`
applies the standard duality to answer "max-weight **point** inside an
upper halfplane" — the restricted form of the Section 5.4 problem —
in ``O(log n)``, which bench E12 contrasts with the ``O(log^2 n)``
hull-partition structure used by the general reduction pipeline.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.interfaces import MaxIndex, OpCounter
from repro.core.problem import Element, Predicate
from repro.geometry.primitives import Halfplane, Line2D, Point
from repro.structures.point_location import PLSegment, SlabPointLocation

# Clip abscissa for the conceptually unbounded envelope segments.  The
# workloads keep coordinates within ~1e3 and slopes within ~1e3, so 1e7
# is far outside every query while keeping heights well-conditioned.
CLIP_X = 1e7


@dataclass(frozen=True)
class LineAboveQuery(Predicate):
    """Matches lines passing on or above the query point."""

    point: Point

    def matches(self, obj: Line2D) -> bool:
        return obj.at(self.point[0]) >= self.point[1]


class LineAbovePointMax(MaxIndex):
    """Max-weight line on-or-above a query point in ``O(log n)``.

    Elements' objects are :class:`Line2D`.  Construction sweeps lines
    in descending weight, maintaining the prefix upper envelope; each
    line's *exposed* segment (the part above the previous envelope)
    becomes one boundary segment of the answer subdivision.
    """

    def __init__(self, elements: Sequence[Element]) -> None:
        self.ops = OpCounter()
        self._n = len(elements)
        segments = self._build_onion(sorted(elements, key=lambda e: -e.weight))
        self._locator = SlabPointLocation(segments)

    # ------------------------------------------------------------------
    # Construction: the envelope onion
    # ------------------------------------------------------------------
    @staticmethod
    def _build_onion(by_weight_desc: List[Element]) -> List[PLSegment]:
        """One exposed segment per line that is ever an answer.

        The running envelope is kept as parallel lists of lines and
        breakpoints; inserting a line splices out the covered middle —
        total work ``O(n^2)`` worst case but each envelope piece is
        removed at most once, so it is near-linear on random orders.
        """
        env_lines: List[Line2D] = []
        env_breaks: List[float] = []  # env_lines[i] active on (breaks[i-1], breaks[i])
        segments: List[PLSegment] = []
        for element in by_weight_desc:
            line: Line2D = element.obj
            exposed = _exposed_interval(line, env_lines, env_breaks)
            if exposed is None:
                continue  # never above the envelope: never an answer
            x_lo, x_hi = exposed
            x_lo_clip = max(x_lo, -CLIP_X)
            x_hi_clip = min(x_hi, CLIP_X)
            if x_lo_clip < x_hi_clip:
                segments.append(
                    PLSegment(
                        x_lo_clip,
                        line.at(x_lo_clip),
                        x_hi_clip,
                        line.at(x_hi_clip),
                        payload=element,
                        support=line,  # exact heights despite clipping
                    )
                )
            _splice(line, x_lo, x_hi, env_lines, env_breaks)
        return segments

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self._n

    def query_cost_bound(self) -> float:
        """``Q_max = O(log n)`` — one slab bisect + one tree descent."""
        return max(1.0, math.log2(max(2, self._n)))

    def query(self, predicate: LineAboveQuery) -> Optional[Element]:
        qx, qy = predicate.point[0], predicate.point[1]
        self.ops.node_visits += 1
        # All minimal-height boundary segments above the point: away from
        # subdivision vertices there is exactly one; at a vertex (several
        # prefix envelopes meeting the point simultaneously) the correct
        # region is the heaviest line through it.
        candidates = self._locator.shoot_up_candidates(qx, qy)
        if not candidates:
            return None
        return max((segment.payload for segment in candidates), key=lambda e: e.weight)

    def space_units(self) -> int:
        return self._locator.space_units()


class UpperHalfplanePointMax(MaxIndex):
    """Max-weight *point* inside an upper halfplane, in ``O(log n)``.

    Duality: the point ``p = (px, py)`` lies in ``{y >= a x + b}`` iff
    its dual line ``y = px * x - py`` evaluated at ``a`` is ``<= -b``,
    i.e. iff the *mirrored* dual line ``y = -px * x + py`` passes on or
    above the point ``(a, b)``.  So one :class:`LineAbovePointMax` over
    mirrored dual lines answers the halfplane query.
    """

    def __init__(self, elements: Sequence[Element]) -> None:
        self.ops = OpCounter()
        self._n = len(elements)
        mirrored = [
            Element(Line2D(-e.obj[0], e.obj[1]), e.weight, payload=e) for e in elements
        ]
        self._inner = LineAbovePointMax(mirrored)

    @property
    def n(self) -> int:
        return self._n

    def query_cost_bound(self) -> float:
        return self._inner.query_cost_bound()

    def query(self, predicate: "HalfplanePredicateLike") -> Optional[Element]:
        halfplane = getattr(predicate, "halfplane", predicate)
        a, b = _upper_halfplane_line(halfplane)
        hit = self._inner.query(LineAboveQuery((a, b)))
        self.ops.node_visits += 1
        return hit.payload if hit is not None else None

    def space_units(self) -> int:
        return self._inner.space_units()


class HalfplanePredicateLike:  # pragma: no cover - typing aid only
    """Structural type: anything carrying a ``halfplane`` attribute."""

    halfplane: Halfplane


def _upper_halfplane_line(halfplane: Halfplane) -> Tuple[float, float]:
    """Decompose ``{normal . x >= c}`` with ``normal_y > 0`` as ``y >= a x + b``."""
    nx, ny = halfplane.normal[0], halfplane.normal[1]
    if ny <= 0:
        raise ValueError(
            "UpperHalfplanePointMax answers upper halfplanes only "
            f"(normal_y must be positive, got {ny})"
        )
    return -nx / ny, halfplane.c / ny


# ----------------------------------------------------------------------
# Envelope maintenance
#
# The running upper envelope is kept as parallel lists: ``env_lines``
# (slopes strictly increasing left to right, the convexity of an upper
# envelope of lines) and ``env_breaks`` (piece i is active on the open
# interval (breaks[i-1], breaks[i]) with +-inf sentinels).
# ----------------------------------------------------------------------
def _exposed_interval(
    line: Line2D, env_lines: List[Line2D], env_breaks: List[float]
) -> Optional[Tuple[float, float]]:
    """The x-interval where ``line`` is strictly above the envelope.

    ``line - envelope`` is concave (linear minus convex), so the
    positive region is a single interval; moreover the difference is
    *linear on every piece*, so positivity anywhere implies positivity
    at a breakpoint or at one of the two infinite ends.
    """
    if not env_lines:
        return (-math.inf, math.inf)
    above_left = line.a < env_lines[0].a or (
        line.a == env_lines[0].a and line.b > env_lines[0].b
    )
    above_right = line.a > env_lines[-1].a or (
        line.a == env_lines[-1].a and line.b > env_lines[-1].b
    )
    positive = [i for i, x in enumerate(env_breaks) if line.at(x) > env_lines[i].at(x)]
    if not positive and not above_left and not above_right:
        return None
    if above_left:
        x_lo = -math.inf
    elif positive:
        # Crossing inside the piece left of the first positive break.
        x_lo = line.intersect_x(env_lines[positive[0]])
    else:
        # Positive only toward +inf: crossing inside the last piece.
        x_lo = line.intersect_x(env_lines[-1])
    if above_right:
        x_hi = math.inf
    elif positive:
        # Crossing inside the piece right of the last positive break.
        x_hi = line.intersect_x(env_lines[positive[-1] + 1])
    else:
        # Positive only toward -inf: crossing inside the first piece.
        x_hi = line.intersect_x(env_lines[0])
    if not x_lo < x_hi:
        return None
    return (x_lo, x_hi)


def _splice(
    line: Line2D,
    x_lo: float,
    x_hi: float,
    env_lines: List[Line2D],
    env_breaks: List[float],
) -> None:
    """Replace the envelope over ``(x_lo, x_hi)`` with ``line`` in place."""
    if not env_lines:
        env_lines.append(line)
        return
    new_lines: List[Line2D] = []
    new_breaks: List[float] = []
    if x_lo > -math.inf:
        left_piece = bisect.bisect_left(env_breaks, x_lo)
        new_lines.extend(env_lines[: left_piece + 1])
        new_breaks.extend(env_breaks[:left_piece])
        new_breaks.append(x_lo)
    new_lines.append(line)
    if x_hi < math.inf:
        right_piece = bisect.bisect_left(env_breaks, x_hi)
        new_breaks.append(x_hi)
        new_lines.extend(env_lines[right_piece:])
        new_breaks.extend(env_breaks[right_piece:])
    env_lines[:] = new_lines
    env_breaks[:] = new_breaks
