"""k-selection: extract the ``k`` heaviest records in linear (scan) cost.

Both reductions finish a top-k query with "k-selection [8]" over a set of
candidate records that is ``O(k)`` (Theorem 1) or ``O(K_j)`` (Theorem 2)
in size.  Selecting the ``k`` largest of ``m`` records costs ``O(m/B)``
I/Os in EM and ``O(m)`` time in RAM.

Two entry points:

* :func:`select_top_k` — in-memory selection over any iterable.
* :func:`select_top_k_blocked` — selection over a :class:`BlockArray`,
  charging scan I/Os through the context; falls back to a multi-pass
  pivot selection when ``k`` exceeds memory.
"""

from __future__ import annotations

import heapq
import random
from typing import Callable, Iterable, List, Optional

from repro.core.columnar import DescendingElements
from repro.em.blockarray import BlockArray
from repro.em.model import EMContext


def select_top_k(
    records: Iterable[object],
    k: int,
    weight: Optional[Callable[[object], float]] = None,
) -> List[object]:
    """Return the ``k`` records of largest weight, heaviest first.

    Runs in ``O(m log k)`` time via a bounded heap — within the paper's
    ``O(m)`` budget for all uses here (``k <= m``), and cache-friendly.
    Returns all records (sorted) when ``k >= m``.
    """
    if k <= 0:
        return []
    if weight is None and isinstance(records, DescendingElements):
        # Columnar candidates arrive already in strictly descending
        # weight order; selection is a slice, not a heap.
        return list(records[:k])
    weight = weight if weight is not None else _as_weight
    return heapq.nlargest(k, records, key=weight)


def select_top_k_blocked(
    ctx: EMContext,
    array: BlockArray,
    k: int,
    weight: Optional[Callable[[object], float]] = None,
    rng: Optional[random.Random] = None,
) -> List[object]:
    """Top-k selection over a disk-resident array in ``O(m/B)`` I/Os.

    When ``k`` records fit in memory (``k <= M``) a single scan with a
    bounded heap suffices.  Otherwise a randomised pivot selection finds
    the k-th weight in an expected constant number of counting passes,
    then one final pass collects the answer; every pass is a sequential
    scan of ``O(m/B)`` I/Os.
    """
    if k <= 0:
        return []
    weight = weight if weight is not None else _as_weight
    if k <= ctx.M:
        return heapq.nlargest(k, array.scan(), key=weight)
    return _pivot_select(ctx, array, k, weight, rng or random.Random(0))


def _pivot_select(
    ctx: EMContext,
    array: BlockArray,
    k: int,
    weight: Callable[[object], float],
    rng: random.Random,
) -> List[object]:
    """Multi-pass randomised selection for ``k`` larger than memory."""
    n = len(array)
    if k >= n:
        return sorted(array.scan(), key=weight, reverse=True)
    # Narrow a weight window [lo_w, +inf) that contains between k and
    # k + M records, then a final pass collects and sorts the window.
    lo_w = None  # exclusive lower bound on candidate weights
    hi_w = None  # weights above hi_w are already known to number < k
    while True:
        pivot = _sample_pivot(ctx, array, lo_w, hi_w, rng, weight)
        if pivot is None:
            break
        above = sum(1 for record in array.scan() if weight(record) >= pivot)
        if above >= k:
            if above <= k + ctx.M:
                lo_w = pivot
                break
            lo_w = pivot
        else:
            hi_w = pivot
    candidates = [record for record in array.scan() if lo_w is None or weight(record) >= lo_w]
    # The pivot loop already shrank candidates to O(k) in expectation,
    # but a bad pivot streak can leave it larger — partial selection
    # keeps the tail cost at O(|candidates| log k) instead of a full sort.
    return heapq.nlargest(k, candidates, key=weight)


def _sample_pivot(
    ctx: EMContext,
    array: BlockArray,
    lo_w: Optional[float],
    hi_w: Optional[float],
    rng: random.Random,
    weight: Callable[[object], float],
) -> Optional[float]:
    """Pick a random candidate weight inside the current window."""
    reservoir: Optional[float] = None
    seen = 0
    for record in array.scan():
        w = weight(record)
        if lo_w is not None and w <= lo_w:
            continue
        if hi_w is not None and w >= hi_w:
            continue
        seen += 1
        if rng.randrange(seen) == 0:
            reservoir = w
    return reservoir


def _as_weight(record: object) -> float:
    """Default weight accessor: ``record.weight`` if present, else the record."""
    return getattr(record, "weight", record)
