"""Benchmark harness: workload generators, sweeps, and table output.

* :mod:`repro.bench.workloads` — synthetic datasets and query
  generators for each of the paper's five problems, plus a registry
  that binds each problem to its prioritized/max factories.
* :mod:`repro.bench.runner` — parameter sweeps, cost probes (I/Os, op
  counts, wall time) and log-log slope fitting.
* :mod:`repro.bench.tables` — aligned-text table rendering so each
  bench prints the rows recorded in EXPERIMENTS.md.
"""

from repro.bench.workloads import (
    PROBLEMS,
    ProblemInstance,
    bounded_predicates,
    make_problem,
)
from repro.bench.runner import (
    CostSample,
    fit_loglog_slope,
    measure_queries,
)
from repro.bench.tables import render_table

__all__ = [
    "PROBLEMS",
    "ProblemInstance",
    "bounded_predicates",
    "make_problem",
    "CostSample",
    "fit_loglog_slope",
    "measure_queries",
    "render_table",
]
