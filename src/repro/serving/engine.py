"""`ServingEngine`: the high-throughput front door of a top-k service.

Three amortisation layers stack in front of any backend index
(canonically a :class:`~repro.replication.cluster.ReplicaSet`; any
:class:`~repro.core.interfaces.TopKIndex` works):

1. an **LSN-versioned result cache**
   (:class:`~repro.serving.cache.ResultCache`) — answers are stamped
   with the backend's ``(commit_epoch, applied LSN)`` read stamp at
   batch-plan time and served again only within the configured
   staleness bound (and never across a failover epoch), so repeated
   hot queries cost one dict probe;
2. **batched execution** (:mod:`repro.serving.batch`) — cache misses
   are grouped by predicate and answered with one traversal per group
   at the group's largest ``k``, smaller members sliced off as
   prefixes;
3. **parallel replica dispatch** — when the backend is a replica set,
   the batch's groups are partitioned round-robin across the replicas
   currently eligible to serve within the staleness bound (primary
   plus caught-up followers, per
   :meth:`~repro.replication.cluster.ReplicaSet.serving_replicas`) and
   each partition runs on a thread-pool worker.  Workers only *read*
   their own machine — all cluster bookkeeping (catch-up, failover,
   death marking) stays on the coordinating thread; a partition that
   faults mid-flight is re-run through the cluster's own fault-aware
   ``query`` path, so crashes during dispatch degrade to the ordinary
   PR-3 failover story instead of racing it.

Admission control is **deadline-aware**, not merely bounded:
:meth:`submit` sheds (raising
:class:`~repro.resilience.errors.AdmissionRejected`, with queue state
and a ``retry_after`` hint) both when the pending queue is at
``max_pending`` and when a caller-supplied deadline can no longer be
met given the queue's estimated wait — a request doomed to time out is
turned away *before* it occupies queue capacity and server time.
Under sustained queue growth a
:class:`~repro.serving.brownout.BrownoutController` additionally
climbs the brownout ladder (widened cache staleness → capped ``k`` →
partial sharded answers), trading flagged answer quality for capacity
before any shedding is needed; every truncated or potentially-partial
answer is flagged in :attr:`last_drain_meta`.

Metrics (QPS, per-query latency, hit rate, sheds, parallel batches,
brownout rung) are kept in :class:`ServingStats` and mirrored into the
engine's :class:`~repro.resilience.guard.HealthSummary` after every
batch, so operators read one summary for cache, batching, dispatch,
and (when the backend is a guarded replica set) replication health
alike.

Concurrency contract: one coordinator thread drains; :meth:`submit`
may be called from any number of client threads concurrently (the
admission queue and every :class:`ServingStats` mutation are
lock-protected), and only the read-only partition work fans out.
Updates go directly to the backend between drains (the stamp read at
batch start is the serving snapshot; anything committed after it is
picked up by the next batch's stamp).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.interfaces import TopKIndex
from repro.core.problem import Element, Predicate
from repro.serving.batch import (
    BatchGroup,
    QueryRequest,
    execute_batch,
    plan_batch,
    predicate_key,
)
from repro.serving.brownout import (
    LEVEL_PARTIAL,
    LEVEL_REDUCED_K,
    BrownoutController,
    BrownoutPolicy,
)
from repro.serving.cache import ResultCache
from repro.resilience.errors import (
    AdmissionRejected,
    InvalidConfiguration,
    ReplicaUnavailable,
    ReproError,
    SimulatedCrash,
    TransientIOError,
)
from repro.resilience.guard import HealthSummary


@dataclass
class ServingStats:
    """Everything the engine did, in counters.

    All mutations happen under :attr:`lock` (the same pattern as
    :class:`~repro.resilience.guard.HealthSummary` and
    :class:`~repro.sharding.sharded.ShardingStats`): :meth:`submit`
    runs on client threads while :meth:`drain` accounts on the
    coordinator, and unsynchronized ``+= 1`` increments would drop
    sheds under concurrent submitters.
    """

    queries: int = 0             # requests answered (cache hits included)
    batches: int = 0
    traversals: int = 0          # backend queries actually executed
    shared_answers: int = 0      # requests served by another member's traversal
    load_sheds: int = 0          # total sheds (queue_sheds + deadline_sheds)
    queue_sheds: int = 0         # shed because the pending queue was full
    deadline_sheds: int = 0      # shed because the deadline was unmeetable
    reduced_k_answers: int = 0   # answers truncated by the brownout k cap
    partial_served: int = 0      # answers flagged partial-suspect (shard loss)
    parallel_batches: int = 0    # batches fanned out across replicas
    dispatch_failovers: int = 0  # partitions re-run through the cluster path
    busy_seconds: float = 0.0    # wall time spent inside drain()
    max_latency_seconds: float = 0.0  # slowest single drain, amortised per query
    _started: float = field(default_factory=time.perf_counter, repr=False)

    def __post_init__(self) -> None:
        # Not a dataclass field: asdict()/fields() stay pickleable and
        # field-only (the HealthSummary convention).
        self._lock = threading.Lock()

    @property
    def lock(self) -> threading.Lock:
        """The mutation lock; every ``stats.x += 1`` site holds it."""
        return self._lock

    @property
    def cache_traversals_saved(self) -> int:
        return self.queries - self.traversals - self.shared_answers

    @property
    def avg_latency_seconds(self) -> float:
        """Mean per-query serving time (batch wall time amortised)."""
        return self.busy_seconds / self.queries if self.queries else 0.0

    @property
    def qps(self) -> float:
        """Requests per second of busy serving time."""
        return self.queries / self.busy_seconds if self.busy_seconds > 0 else 0.0


@dataclass(frozen=True)
class ServedMeta:
    """Quality flags for one drained answer (request order).

    ``reduced_k`` — the brownout k cap truncated this answer below the
    requested ``k`` (the prefix served is still exact).
    ``partial_suspect`` — the answer was computed in a drain batch that
    served at the partial brownout rung *and* recorded at least one
    partial scatter-gather; the answer may be missing a lost shard's
    elements.  Conservative: every cache-missing answer of such a batch
    is flagged.
    ``brownout_level`` — the ladder rung the drain served at.
    """

    reduced_k: bool = False
    partial_suspect: bool = False
    brownout_level: int = 0

    @property
    def degraded(self) -> bool:
        return self.reduced_k or self.partial_suspect


class ServingEngine(TopKIndex):
    """Batching + caching + parallel dispatch over one backend index.

    Parameters
    ----------
    backend:
        The index being served.  A
        :class:`~repro.replication.cluster.ReplicaSet` unlocks parallel
        dispatch; a :class:`~repro.durability.durable.DurableTopKIndex`
        (or anything with a ``read_stamp()`` / ``applied_lsn``) unlocks
        LSN-stamped caching.  A backend with neither still batches, but
        the cache stays disabled — without an LSN source a cached
        answer could never be invalidated by an update.
    cache_capacity / max_staleness:
        Result-cache size (0 disables) and the LSN staleness budget a
        cached answer may carry, mirroring the replication read modes.
    max_batch:
        Largest batch :meth:`drain` hands to one execution round.
    max_pending:
        Admission bound: :meth:`submit` beyond this sheds.
    pool_size / parallel_threshold:
        Dispatch thread pool width (0 disables) and the minimum number
        of distinct groups before fanning out is worth the overhead.
    read_kwargs:
        Extra keyword arguments for every backend query (e.g.
        ``mode="hedged"`` for a replica-set backend).
    brownout:
        ``None`` (disabled), a :class:`BrownoutPolicy`, or a
        pre-built :class:`BrownoutController`.  When set, every
        :meth:`drain` feeds the pre-drain queue depth to the controller
        and serves at the resulting rung.
    service_ewma_alpha:
        Smoothing factor of the per-request service-time estimate that
        deadline admission projects queue waits from.  The estimate is
        learned from measured drain wall time, or pinned explicitly via
        :meth:`note_service_time` by virtual-time drivers.
    """

    def __init__(
        self,
        backend: TopKIndex,
        cache_capacity: int = 1024,
        max_staleness: int = 0,
        max_batch: int = 64,
        max_pending: int = 4096,
        pool_size: int = 4,
        parallel_threshold: int = 4,
        read_kwargs: Optional[dict] = None,
        brownout=None,
        service_ewma_alpha: float = 0.3,
    ) -> None:
        if max_batch < 1:
            raise InvalidConfiguration(f"max_batch must be >= 1, got {max_batch}")
        if max_pending < 1:
            raise InvalidConfiguration(
                f"max_pending must be >= 1, got {max_pending}"
            )
        if max_staleness < 0:
            raise InvalidConfiguration(
                f"max_staleness must be >= 0, got {max_staleness}"
            )
        if not 0.0 < service_ewma_alpha <= 1.0:
            raise InvalidConfiguration(
                f"service_ewma_alpha must be in (0, 1], got {service_ewma_alpha}"
            )
        self.backend = backend
        self.max_staleness = max_staleness
        self.max_batch = max_batch
        self.max_pending = max_pending
        self.parallel_threshold = max(1, parallel_threshold)
        self.read_kwargs = dict(read_kwargs) if read_kwargs else {}
        self.cache = ResultCache(cache_capacity if self._has_stamp() else 0)
        self.stats = ServingStats()
        self.health = HealthSummary()
        if brownout is None:
            self.brownout: Optional[BrownoutController] = None
        elif isinstance(brownout, BrownoutController):
            self.brownout = brownout
        elif isinstance(brownout, BrownoutPolicy):
            self.brownout = BrownoutController(brownout)
        else:
            raise InvalidConfiguration(
                "brownout must be None, a BrownoutPolicy, or a "
                f"BrownoutController, got {type(brownout).__name__}"
            )
        #: EWMA estimate of per-request service time, in the caller's
        #: clock units (seconds when learned from wall time; whatever
        #: :meth:`note_service_time` was fed otherwise).
        self.service_estimate = 0.0
        self.service_ewma_alpha = service_ewma_alpha
        self._estimate_pinned = False
        #: :class:`ServedMeta` per answer of the most recent drain.
        self.last_drain_meta: List[ServedMeta] = []
        self._admit_lock = threading.Lock()
        self._pending: List[QueryRequest] = []
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_size = max(0, pool_size)
        from repro.replication.cluster import ReplicaSet

        self._cluster = backend if isinstance(backend, ReplicaSet) else None
        from repro.sharding.sharded import ShardedTopKIndex

        self._sharded = backend if isinstance(backend, ShardedTopKIndex) else None
        if (
            self._cluster is not None or self._sharded is not None
        ) and self._pool_size > 0:
            self._pool = ThreadPoolExecutor(
                max_workers=self._pool_size,
                thread_name_prefix="repro-serving",
            )

    # ------------------------------------------------------------------
    def _has_stamp(self) -> bool:
        return (
            hasattr(self.backend, "read_stamp")
            or hasattr(self.backend, "applied_lsn")
        )

    def _read_stamp(self) -> Tuple[int, int]:
        """The backend's current ``(commit_epoch, applied LSN)``."""
        stamp = getattr(self.backend, "read_stamp", None)
        if stamp is not None:
            return stamp()
        return (0, getattr(self.backend, "applied_lsn", 0))

    def close(self) -> None:
        """Shut the dispatch pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ServingEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # TopKIndex surface
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self.backend.n

    @property
    def pending(self) -> int:
        return len(self._pending)

    def query(self, predicate: Predicate, k: int) -> List[Element]:
        """One request through the full cache + batch path."""
        return self.serve([QueryRequest(predicate, k)])[0]

    def flush_cache(self) -> int:
        """Drop every cached answer (operator lever for suspected staleness).

        The cache's epoch/LSN stamps already make it stale-*safe*; this
        lever is for the residual suspicion the stamps cannot see —
        failed contract spot-checks, a backend whose state digest
        drifted — where serving only freshly-computed answers is the
        conservative play.  Returns the number of entries dropped; the
        mirrored health summary is refreshed so the flush shows up in
        the next telemetry tick.
        """
        dropped = self.cache.invalidate()
        self._mirror_health()
        return dropped

    # ------------------------------------------------------------------
    # Admission / drain
    # ------------------------------------------------------------------
    def submit(
        self,
        predicate: Predicate,
        k: int,
        deadline: Optional[float] = None,
        now: Optional[float] = None,
    ) -> int:
        """Enqueue one request; returns its position in the next drain.

        Raises :class:`AdmissionRejected` (and counts a shed) in two
        cases — the engine never queues unboundedly and never queues a
        request it already knows it will fail:

        * the pending queue is at ``max_pending``
          (``reason="queue_full"``);
        * ``deadline`` is given and the projected completion time —
          ``now`` plus the estimated queue wait at the current service
          estimate — already exceeds it (``reason="deadline"``).

        ``deadline``/``now`` share one clock: wall seconds by default
        (``now`` falls back to ``time.perf_counter()``), or any virtual
        clock when the driver also pins the service estimate via
        :meth:`note_service_time`.  Thread-safe: any number of client
        threads may submit concurrently with each other and with one
        draining coordinator.
        """
        estimate = self.service_estimate
        with self._admit_lock:
            depth = len(self._pending)
            if depth >= self.max_pending:
                shed_reason = AdmissionRejected.REASON_QUEUE_FULL
                retry_after = estimate * depth
            elif deadline is not None and estimate > 0.0:
                at = now if now is not None else time.perf_counter()
                projected = at + (depth + 1) * estimate
                if projected > deadline:
                    shed_reason = AdmissionRejected.REASON_DEADLINE
                    retry_after = projected - deadline
                else:
                    self._pending.append(QueryRequest(predicate, k))
                    return depth
            else:
                self._pending.append(QueryRequest(predicate, k))
                return depth
        with self.stats.lock:
            self.stats.load_sheds += 1
            if shed_reason == AdmissionRejected.REASON_QUEUE_FULL:
                self.stats.queue_sheds += 1
            else:
                self.stats.deadline_sheds += 1
        self._mirror_health()
        if shed_reason == AdmissionRejected.REASON_QUEUE_FULL:
            message = f"pending queue full ({self.max_pending}); query shed"
        else:
            message = (
                f"deadline unmeetable ({depth} queued at ~{estimate:.3g}/req)"
                "; query shed"
            )
        raise AdmissionRejected(
            message,
            pending=depth,
            max_pending=self.max_pending,
            retry_after=retry_after,
            reason=shed_reason,
        )

    def note_service_time(self, per_request: float) -> None:
        """Pin the per-request service estimate (virtual-time drivers).

        Wall-clock deployments never need this — :meth:`drain` learns
        the estimate from measured elapsed time.  Drivers that run on a
        counted clock (the loadgen harness) feed their model's service
        time here so deadline admission projects in the same units as
        the deadlines it is shown.
        """
        if per_request < 0:
            raise InvalidConfiguration(
                f"per_request must be >= 0, got {per_request}"
            )
        self.service_estimate = per_request
        self._estimate_pinned = True

    def drain(self, limit: Optional[int] = None) -> List[List[Element]]:
        """Answer pending requests, oldest first, in submission order.

        With ``limit`` set, at most that many requests are taken; the
        rest stay queued (real servers have finite per-tick capacity —
        this is what lets queues, and therefore queue-depth telemetry
        and deadline sheds, actually build under open-loop load).
        The pre-drain queue depth is fed to the brownout controller,
        and :attr:`last_drain_meta` is rebuilt with one
        :class:`ServedMeta` per returned answer.
        """
        with self._admit_lock:
            depth = len(self._pending)
            if limit is None or limit >= depth:
                requests, self._pending = self._pending, []
            else:
                requests = self._pending[:limit]
                self._pending = self._pending[limit:]
        if self.brownout is not None:
            self.brownout.observe(depth)
        self.last_drain_meta = []
        answers: List[List[Element]] = []
        for start in range(0, len(requests), self.max_batch):
            answers.extend(self._execute(requests[start:start + self.max_batch]))
        return answers

    def serve(self, requests: Sequence) -> List[List[Element]]:
        """Submit-and-drain convenience for an already-collected batch.

        Accepts :class:`QueryRequest` objects or ``(predicate, k)``
        pairs interchangeably.
        """
        for request in requests:
            if isinstance(request, QueryRequest):
                self.submit(request.predicate, request.k)
            else:
                predicate, k = request
                self.submit(predicate, k)
        return self.drain()

    # ------------------------------------------------------------------
    # One batch
    # ------------------------------------------------------------------
    def _execute(self, requests: Sequence[QueryRequest]) -> List[List[Element]]:
        if not requests:
            return []
        began = time.perf_counter()
        brownout = self.brownout
        level = brownout.level if brownout is not None else 0
        staleness = (
            brownout.effective_staleness(self.max_staleness)
            if brownout is not None
            else self.max_staleness
        )
        epoch, lsn = self._read_stamp()
        answers: List[Optional[List[Element]]] = [None] * len(requests)
        # Effective (possibly brownout-capped) k per request, in order.
        capped: List[int] = [
            brownout.effective_k(request.k) if brownout is not None else request.k
            for request in requests
        ]
        misses: List[Tuple[int, QueryRequest]] = []
        for position, request in enumerate(requests):
            if self.cache.enabled:
                cached = self.cache.get(
                    predicate_key(request.predicate), capped[position],
                    epoch, lsn, staleness,
                )
                if cached is not None:
                    answers[position] = cached
                    continue
            misses.append((position, request))
        partial_before = (
            self._sharded.stats.partial_answers
            if self._sharded is not None
            else 0
        )
        plan = None
        if misses:
            plan = plan_batch([
                QueryRequest(request.predicate, capped[position])
                for position, request in misses
            ])
            full_by_group = self._dispatch(plan.groups)
            batch_partial = (
                self._sharded is not None
                and self._sharded.stats.partial_answers > partial_before
            )
            for group, full in zip(plan.groups, full_by_group):
                if not batch_partial:
                    # Never cache an answer that may be missing a lost
                    # shard's elements: partial-suspect batches serve
                    # but do not populate.
                    self.cache.put(group.key, group.max_k, full, epoch, lsn)
                for member_position, k in group.members:
                    answers[misses[member_position][0]] = full[:k]
        else:
            batch_partial = False
        partial_positions = (
            {position for position, _ in misses} if batch_partial else set()
        )
        metas: List[ServedMeta] = []
        reduced = 0
        for position, request in enumerate(requests):
            answer = answers[position]
            reduced_k = (
                request.k > capped[position]
                and answer is not None
                and len(answer) == capped[position]
            )
            if reduced_k:
                reduced += 1
            metas.append(ServedMeta(
                reduced_k=reduced_k,
                partial_suspect=position in partial_positions,
                brownout_level=level,
            ))
        self.last_drain_meta.extend(metas)
        elapsed = time.perf_counter() - began
        per_query = elapsed / len(requests)
        with self.stats.lock:
            self.stats.batches += 1
            self.stats.queries += len(requests)
            if plan is not None:
                self.stats.traversals += plan.traversals
                self.stats.shared_answers += plan.shared
            self.stats.reduced_k_answers += reduced
            self.stats.partial_served += len(partial_positions)
            self.stats.busy_seconds += elapsed
            if per_query > self.stats.max_latency_seconds:
                self.stats.max_latency_seconds = per_query
        if brownout is not None:
            brownout.stats.reduced_k_answers += reduced
            brownout.stats.partial_answers += len(partial_positions)
        if elapsed > 0 and not self._estimate_pinned:
            alpha = self.service_ewma_alpha
            if self.service_estimate > 0:
                self.service_estimate += alpha * (per_query - self.service_estimate)
            else:
                self.service_estimate = per_query
        self._mirror_health()
        return answers  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Dispatch: partitioned across replicas, or serial
    # ------------------------------------------------------------------
    def _dispatch(self, groups: List[BatchGroup]) -> List[List[Element]]:
        """One full answer per group, in group order."""
        if self._sharded is not None:
            # A sharded backend owns its own fan-out: groups are
            # partitioned across the pool's workers and each worker
            # runs whole scatter-gathers (per-shard locks serialize
            # machine access), with every shard's probe-memo window
            # open for the batch's duration.
            if self._pool is not None and len(groups) >= self.parallel_threshold:
                with self.stats.lock:
                    self.stats.parallel_batches += 1
            return self._sharded.batch_groups(
                [(g.predicate, g.max_k) for g in groups],
                pool=self._pool,
                parallel_threshold=self.parallel_threshold,
                allow_partial=(
                    self.brownout is not None and self.brownout.partial_ok
                ),
            )
        if (
            self._pool is not None
            and self._cluster is not None
            and len(groups) >= self.parallel_threshold
        ):
            servers = self._cluster.serving_replicas(self.max_staleness)
            if len(servers) > 1:
                return self._dispatch_parallel(groups, servers)
        window = getattr(self.backend, "batched", None)
        if window is not None:
            # A raw reduction backend: share its memoized sub-probes
            # across the whole batch, not just within one group.
            with window():
                return [self._query_backend(g.predicate, g.max_k) for g in groups]
        return [self._query_backend(g.predicate, g.max_k) for g in groups]

    def _query_backend(self, predicate: Predicate, k: int) -> List[Element]:
        return self.backend.query(predicate, k, **self.read_kwargs)

    def _dispatch_parallel(
        self, groups: List[BatchGroup], servers: List
    ) -> List[List[Element]]:
        """Fan the groups out round-robin over the eligible replicas.

        One pool task per replica runs its whole partition sequentially
        — a machine is never touched by two threads, and the
        coordinator touches no replica while workers run.  Workers
        return faults as data; any group a worker could not answer is
        re-run through the cluster's own ``query`` (which owns failover
        and death-marking), so a crash mid-dispatch costs one serial
        retry, never a raced promotion.
        """
        with self.stats.lock:
            self.stats.parallel_batches += 1
        partitions: List[List[Tuple[int, BatchGroup]]] = [[] for _ in servers]
        for index, group in enumerate(groups):
            partitions[index % len(servers)].append((index, group))
        assert self._pool is not None
        futures = [
            self._pool.submit(self._run_partition, server, partition)
            for server, partition in zip(servers, partitions)
            if partition
        ]
        answers: List[Optional[List[Element]]] = [None] * len(groups)
        retry: List[Tuple[int, BatchGroup]] = []
        for future in futures:
            for index, group, answer in future.result():
                if answer is None:
                    retry.append((index, group))
                else:
                    answers[index] = answer
        for index, group in retry:
            with self.stats.lock:
                self.stats.dispatch_failovers += 1
            answers[index] = self._query_backend(group.predicate, group.max_k)
        return answers  # type: ignore[return-value]

    @staticmethod
    def _run_partition(server, partition):
        """Worker body: read-only queries against one replica.

        Returns ``(group index, group, answer-or-None)`` triples;
        ``None`` marks a fault (machine crash, transient I/O, replica
        down) left for the coordinator to handle serially.
        """
        out = []
        dead = False
        for index, group in partition:
            if dead:
                out.append((index, group, None))
                continue
            try:
                answer = server.durable.query(group.predicate, group.max_k)
            except SimulatedCrash:
                # The machine died; everything else in this partition
                # fails over too (a crashed plan serves no further I/O).
                dead = True
                out.append((index, group, None))
            except (TransientIOError, ReplicaUnavailable, ReproError):
                out.append((index, group, None))
            else:
                out.append((index, group, answer))
        return out

    # ------------------------------------------------------------------
    def _mirror_health(self) -> None:
        self.health.record_serving(self)
        if self._cluster is not None:
            self.health.record_replication(self._cluster)
        if self._sharded is not None:
            self.health.record_sharding(self._sharded)


def serving_engine(
    elements,
    prioritized_factory,
    max_factory,
    num_replicas: int = 3,
    seed: int = 0,
    **engine_kwargs,
):
    """A :class:`ServingEngine` over a canonical replicated Theorem 2 set."""
    from repro.replication.cluster import replicated_index

    cluster = replicated_index(
        elements, prioritized_factory, max_factory,
        num_replicas=num_replicas, seed=seed,
    )
    return ServingEngine(cluster, **engine_kwargs)


__all__ = ["ServedMeta", "ServingEngine", "ServingStats", "serving_engine"]
