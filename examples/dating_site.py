"""The paper's dating-site scenario (Section 1.4): top-k point enclosure.

Each member registers an acceptable (age, height) rectangle for their
ideal partner and has a salary (the weight).  A visitor asks:

    "Find the 10 members with the highest salaries whose acceptable
     ranges contain my age and height."

That is a top-k *point enclosure* query — Theorem 5's problem.  This
example builds the index from the paper's ingredients: the prioritized
rectangle structure and the fractionally-cascaded 2D stabbing-max
structure (Section 5.2), combined by Theorem 2.

Run:  python examples/dating_site.py
"""

import random

from repro import Element, ExpectedTopKIndex
from repro.geometry.primitives import Rect
from repro.structures.point_enclosure import (
    CascadedRectangleStabbingMax,
    EnclosurePredicate,
    RectanglePrioritized,
)

FIRST = "Alex Blake Casey Devon Emery Finley Harper Jordan Kendall Logan".split()
LAST = "Reed Sloan Avery Quinn Ellis Hayes Brooks Morgan Parker Lane".split()


def make_members(count: int, seed: int) -> list:
    """Synthetic members: acceptable (age, height) boxes + salaries."""
    rng = random.Random(seed)
    salaries = rng.sample(range(30_000, 500_000), count)
    members = []
    for i in range(count):
        age_lo = rng.uniform(18, 60)
        age_hi = age_lo + rng.uniform(2, 25)
        height_lo = rng.uniform(140, 190)
        height_hi = height_lo + rng.uniform(5, 40)
        name = f"{rng.choice(FIRST)} {rng.choice(LAST)} #{i}"
        members.append(
            Element(
                Rect(age_lo, age_hi, height_lo, height_hi),
                float(salaries[i]),
                payload=name,
            )
        )
    return members


def main() -> None:
    members = make_members(8_000, seed=2016)

    index = ExpectedTopKIndex(
        members,
        prioritized_factory=RectanglePrioritized,
        max_factory=CascadedRectangleStabbingMax,
        seed=1,
    )

    visitor_age, visitor_height = 29.0, 168.0
    query = EnclosurePredicate((visitor_age, visitor_height))

    print(f"Visitor: age {visitor_age:.0f}, height {visitor_height:.0f} cm")
    print("Top-10 salaries among members whose preferences match:\n")
    for rank, member in enumerate(index.query(query, k=10), 1):
        box = member.obj
        print(
            f"  {rank:2d}. ${member.weight:>9,.0f}  {member.payload:<22}"
            f" ages [{box.x1:.0f}, {box.x2:.0f}],"
            f" heights [{box.y1:.0f}, {box.y2:.0f}]"
        )

    # Selectivity check: how many members matched at all?
    matches = sum(1 for m in members if query.matches(m.obj))
    print(f"\n({matches} of {len(members)} members' preferences contain the visitor;")
    print(" the index touched only a polylogarithmic slice of them.)")


if __name__ == "__main__":
    main()
