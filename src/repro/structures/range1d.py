"""1D range reporting structures (top-k range reporting's substrate).

Section 2 calls top-k *range* reporting "the most extensively studied
(and hence, the best understood)" top-k problem [3, 11, 12, 33, 35].
Here ``D`` is a set of weighted points on the real line and a predicate
is a closed range ``[lo, hi]``.

Structures:

* :class:`RangeTree1DPrioritized` — a balanced tree over coordinates
  whose canonical nodes store weight-descending lists:
  ``O(log n + t)`` prioritized queries.
* :class:`RangeTree1DMax` — the same skeleton with per-node maxima:
  ``O(log n)`` max queries.
* :class:`RangeTree1DCounter` — per-node subtree sizes: exact counting
  in ``O(log n)`` (the ingredient of the Section 2 counting reduction).

All three share one canonical decomposition: a query range splits into
``O(log n)`` disjoint subtrees found by walking the two boundary paths.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.interfaces import (
    CountingIndex,
    MaxIndex,
    OpCounter,
    PrioritizedIndex,
    PrioritizedResult,
)
from repro.core.columnar import register_predicate_compiler
from repro.core.problem import Element, Predicate


@dataclass(frozen=True)
class RangePredicate1D(Predicate):
    """Matches every point in the closed range ``[lo, hi]``."""

    lo: float
    hi: float

    def matches(self, obj: float) -> bool:
        return self.lo <= obj <= self.hi


@register_predicate_compiler(RangePredicate1D)
def _compile_range1d(predicate: RangePredicate1D):
    """Closure-specialized membership: bounds hoisted into locals."""
    lo, hi = predicate.lo, predicate.hi
    return lambda obj: lo <= obj <= hi


class _Canon:
    """The canonical decomposition shared by the three structures.

    Elements are kept coordinate-sorted in one array; a node is an index
    range ``[a, b)`` laid out implicitly (midpoint splits), so canonical
    "subtrees" are just sorted-array slices and the decomposition is a
    pair of ``bisect`` calls plus the standard two-path walk.
    """

    def __init__(self, elements: Sequence[Element]) -> None:
        self.sorted_elements: List[Element] = sorted(elements, key=lambda e: e.obj)
        self.coords: List[float] = [e.obj for e in self.sorted_elements]

    def slice_of(self, predicate: RangePredicate1D) -> Tuple[int, int]:
        """The contiguous index range matching ``[lo, hi]``."""
        a = bisect.bisect_left(self.coords, predicate.lo)
        b = bisect.bisect_right(self.coords, predicate.hi)
        return a, b

    def canonical_ranges(self, a: int, b: int) -> List[Tuple[int, int]]:
        """Decompose ``[a, b)`` into the tree's ``O(log n)`` node ranges."""
        out: List[Tuple[int, int]] = []
        self._decompose(0, len(self.coords), a, b, out)
        return out

    def _decompose(self, lo: int, hi: int, a: int, b: int, out: List[Tuple[int, int]]) -> None:
        if lo >= hi or b <= lo or hi <= a:
            return
        if a <= lo and hi <= b:
            out.append((lo, hi))
            return
        mid = (lo + hi) // 2
        self._decompose(lo, mid, a, b, out)
        self._decompose(mid, hi, a, b, out)


class RangeTree1DPrioritized(PrioritizedIndex):
    """Prioritized 1D range reporting: ``O(log n + t)``."""

    def __init__(self, elements: Sequence[Element]) -> None:
        self.ops = OpCounter()
        self._canon = _Canon(elements)
        # Weight-descending list per canonical node, built lazily and
        # memoised: over a query workload only O(n) distinct nodes exist.
        self._node_lists: dict = {}

    @property
    def n(self) -> int:
        return len(self._canon.sorted_elements)

    def query_cost_bound(self) -> float:
        return max(1.0, math.log2(max(2, self.n)))

    def _list_for(self, node: Tuple[int, int]) -> List[Element]:
        cached = self._node_lists.get(node)
        if cached is None:
            lo, hi = node
            cached = sorted(
                self._canon.sorted_elements[lo:hi], key=lambda e: -e.weight
            )
            self._node_lists[node] = cached
        return cached

    def query(
        self, predicate: RangePredicate1D, tau: float, limit: Optional[int] = None
    ) -> PrioritizedResult:
        a, b = self._canon.slice_of(predicate)
        out: List[Element] = []
        for node in self._canon.canonical_ranges(a, b):
            self.ops.node_visits += 1
            for element in self._list_for(node):
                if element.weight < tau:
                    break
                self.ops.scanned += 1
                out.append(element)
                if limit is not None and len(out) > limit:
                    return PrioritizedResult(out, truncated=True)
        return PrioritizedResult(out, truncated=False)

    def space_units(self) -> int:
        """``O(n log n)`` words once all canonical lists materialise."""
        log_n = max(1, int(math.log2(max(2, self.n))))
        return self.n * log_n


class RangeTree1DMax(MaxIndex):
    """1D range max: canonical decomposition + per-node maxima."""

    def __init__(self, elements: Sequence[Element]) -> None:
        self.ops = OpCounter()
        self._canon = _Canon(elements)
        # Sparse-table-free approach: per canonical node, remember only
        # the champion (computed lazily, memoised).
        self._node_max: dict = {}

    @property
    def n(self) -> int:
        return len(self._canon.sorted_elements)

    def query_cost_bound(self) -> float:
        return max(1.0, math.log2(max(2, self.n)))

    def _max_for(self, node: Tuple[int, int]) -> Optional[Element]:
        cached = self._node_max.get(node, _UNSET)
        if cached is _UNSET:
            lo, hi = node
            slice_ = self._canon.sorted_elements[lo:hi]
            cached = max(slice_, key=lambda e: e.weight) if slice_ else None
            self._node_max[node] = cached
        return cached

    def query(self, predicate: RangePredicate1D) -> Optional[Element]:
        a, b = self._canon.slice_of(predicate)
        best: Optional[Element] = None
        for node in self._canon.canonical_ranges(a, b):
            self.ops.node_visits += 1
            candidate = self._max_for(node)
            if candidate is not None and (best is None or candidate.weight > best.weight):
                best = candidate
        return best

    def space_units(self) -> int:
        return 2 * self.n


class RangeTree1DCounter(CountingIndex):
    """Exact 1D range counting in ``O(log n)`` (one predecessor pair)."""

    def __init__(self, elements: Sequence[Element]) -> None:
        self.ops = OpCounter()
        self._canon = _Canon(elements)

    @property
    def n(self) -> int:
        return len(self._canon.sorted_elements)

    @property
    def approximation_factor(self) -> float:
        return 1.0

    def count(self, predicate: RangePredicate1D) -> int:
        self.ops.node_visits += max(1, int(math.log2(max(2, self.n))))
        a, b = self._canon.slice_of(predicate)
        return max(0, b - a)

    def space_units(self) -> int:
        return self.n


class _Unset:
    pass


_UNSET = _Unset()
