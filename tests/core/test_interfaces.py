"""Tests for the structure contracts and their defaults."""

import math

import pytest

from repro.core.interfaces import (
    CountingIndex,
    MaxIndex,
    OpCounter,
    PrioritizedIndex,
    PrioritizedResult,
)
from repro.core.problem import Element
from toy import ToyMax, ToyPrioritized, make_toy_elements


class TestPrioritizedResult:
    def test_len(self):
        r = PrioritizedResult([Element(1, 1.0), Element(2, 2.0)])
        assert len(r) == 2

    def test_default_not_truncated(self):
        assert not PrioritizedResult([]).truncated


class TestOpCounter:
    def test_total(self):
        ops = OpCounter(node_visits=3, scanned=4)
        assert ops.total == 7

    def test_reset(self):
        ops = OpCounter(node_visits=3, scanned=4)
        ops.reset()
        assert ops.total == 0


class TestDefaults:
    def test_prioritized_cost_bound_default_is_log(self):
        index = ToyPrioritized(make_toy_elements(1024, 0))
        assert index.query_cost_bound() == pytest.approx(10.0)

    def test_cost_bound_floor_at_one(self):
        index = ToyPrioritized(make_toy_elements(1, 0))
        assert index.query_cost_bound() >= 1.0

    def test_space_units_default_is_n(self):
        index = ToyMax(make_toy_elements(77, 0))
        assert index.space_units() == 77

    def test_counting_default_factor_is_exact(self):
        class MinimalCounter(CountingIndex):
            def __init__(self):
                self.ops = OpCounter()

            @property
            def n(self):
                return 4

            def count(self, predicate):
                return 0

        counter = MinimalCounter()
        assert counter.approximation_factor == 1.0
        assert counter.query_cost_bound() == pytest.approx(2.0)
        assert counter.space_units() == 4

    def test_abstract_instantiation_rejected(self):
        with pytest.raises(TypeError):
            PrioritizedIndex()
        with pytest.raises(TypeError):
            MaxIndex()
        with pytest.raises(TypeError):
            CountingIndex()
