"""The partition scenario grid, the ablation, and scatter invariance.

The grid is the tentpole's acceptance surface: every fenced scenario
must produce a violation-free history with zero stale-epoch applies,
and the deliberately-unfenced ablation must be *caught* by the checker
(fencing earns its keep only if its absence is observable).
"""

from __future__ import annotations

import random

import pytest

from repro.core.problem import Element
from repro.net import (
    SCENARIOS,
    run_partition_scenario,
    run_sharded_partition_scenario,
)
from repro.net.fabric import LinkPlan, NetworkFabric
from repro.net.history import LOST_ACK_WRITE, UNACKED_VISIBLE
from repro.sharding import merge_topk, sharded_index
from repro.resilience.errors import ShardUnavailable
from toy import RangePredicate, ToyMax, ToyPrioritized

SCENARIO_IDS = [s.name for s in SCENARIOS]


class TestScenarioGrid:
    @pytest.mark.parametrize("scenario", SCENARIOS, ids=SCENARIO_IDS)
    @pytest.mark.parametrize("seed", [2, 11])
    def test_fenced_history_is_clean(self, scenario, seed):
        run = run_partition_scenario(scenario, seed=seed)
        assert run.check.ok, run.check.violations[:3]
        assert run.fabric.stats.stale_epoch_applies == 0
        # Post-heal reads (all recorded ok) were checked and exact.
        assert run.post_heal_reads >= 6
        assert run.check.exact_reads == run.check.reads_checked
        assert run.check.reads_checked > 0

    def test_scenarios_make_real_trouble(self):
        # The grid must actually sever links — a scenario that never
        # refuses traffic proves nothing.
        run = run_partition_scenario(SCENARIOS[0], seed=2)
        assert run.fabric.stats.partition_refusals > 0

    def test_scenario_runs_are_deterministic(self):
        a = run_partition_scenario(SCENARIOS[0], seed=5)
        b = run_partition_scenario(SCENARIOS[0], seed=5)
        assert a.ok_writes == b.ok_writes
        assert a.failed_writes == b.failed_writes
        assert a.indeterminate_writes == b.indeterminate_writes
        assert a.fabric.stats.sends == b.fabric.stats.sends

    def test_unfenced_ablation_is_caught(self):
        """Without fencing, a mid-partition failover splits the brain —
        and the checker must say so out loud."""
        caught = 0
        for seed in (2, 3, 5):
            run = run_partition_scenario(
                SCENARIOS[0], seed=seed, fenced=False, force_failover_at=12
            )
            if not run.check.ok:
                kinds = set(run.check.kinds())
                assert kinds & {LOST_ACK_WRITE, UNACKED_VISIBLE}, kinds
                caught += 1
        assert caught > 0

    def test_sharded_partition_during_split(self):
        run = run_sharded_partition_scenario(seed=3)
        assert run.check.ok, run.check.violations[:3]
        # The window really cost some reads, and the split happened.
        assert run.failed_reads > 0
        assert any("split" in note for note in run.notes)
        assert run.check.exact_reads == run.check.reads_checked


def _elements(n=60, seed=0):
    rng = random.Random(seed)
    weights = rng.sample(range(10 * n), n)
    positions = rng.sample(range(10 * n), n)
    return [Element(positions[i], float(weights[i])) for i in range(n)]


class TestScatterInvarianceSatellite:
    """Scatter-gather answers are invariant to per-gather dup/reorder."""

    def test_merge_topk_invariant_to_run_order_and_duplication(self):
        elements = _elements()
        rng = random.Random(7)
        runs = []
        pool = sorted(elements, key=lambda e: -e.weight)
        for i in range(4):
            runs.append(pool[i::4])
        for k in (1, 3, 8, 25):
            expected = merge_topk(runs, k)
            for trial in range(10):
                shuffled = list(runs)
                rng.shuffle(shuffled)
                # Duplicating a whole run must not duplicate answers'
                # *rank truth*: merge keeps the k heaviest, and equal
                # weights cannot exist (distinct-weight precondition),
                # so a duplicated run only re-offers elements already
                # outranked or already taken.
                assert merge_topk(shuffled, k) == expected

    def test_gather_answers_survive_chaotic_links(self):
        elements = _elements()
        oracle = sharded_index(
            elements, ToyPrioritized, ToyMax, num_shards=4, seed=3
        )
        fabric = NetworkFabric(seed=13)
        chaotic = sharded_index(
            elements, ToyPrioritized, ToyMax, num_shards=4, seed=3,
            fabric=fabric, coordinator="coord",
        )
        for name in list(chaotic.router.shards):
            fabric.link("coord", name).plan = LinkPlan(
                dup_rate=0.35, reorder_rate=0.15, reorder_window=2
            )
        rng = random.Random(99)
        answered = 0
        for _ in range(40):
            span = 10 * len(elements)
            lo = rng.randrange(-5, span)
            predicate = RangePredicate(lo, rng.randrange(lo, span + 5))
            k = rng.choice((2, 5, 9))
            expected = oracle.query(predicate, k)
            try:
                got = chaotic.query(predicate, k)
            except ShardUnavailable:
                # Two consecutive reorder-timeouts on one probe: the
                # query fails loudly.  Loud is allowed; wrong is not.
                continue
            assert got == expected
            answered += 1
        # Chaos really fired, and most queries still got through.
        assert fabric.stats.duplicates > 0
        assert fabric.stats.reorders_held > 0
        assert fabric.stats.duplicates_detected > 0
        assert answered >= 30

    def test_duplicated_probe_applies_once_per_key(self):
        elements = _elements(24)
        fabric = NetworkFabric(seed=1)
        index = sharded_index(
            elements, ToyPrioritized, ToyMax, num_shards=2, seed=3,
            fabric=fabric, coordinator="coord",
        )
        for name in list(index.router.shards):
            fabric.link("coord", name).plan = LinkPlan(dup_rate=1.0)
        predicate = RangePredicate(-1e9, 1e9)
        top = index.query(predicate, 5)
        assert [e.weight for e in top] == sorted(
            (e.weight for e in elements), reverse=True
        )[:5]
        # Every probe was duplicated; every duplicate hit the cache.
        assert fabric.stats.duplicates > 0
        assert fabric.stats.duplicates_detected == fabric.stats.duplicates
