"""Epoch-fenced leases: self-demotion, stale-epoch rejects, resync.

Also home of two satellite regressions:

* ship retry after an indeterminate transport timeout must dedupe (the
  record lands exactly once), and a transport failure is never a
  machine fault (no streak, no death);
* ``replace_replica`` evicts the replaced machine's fault streak.
"""

from __future__ import annotations

import pytest

from net_util import LEASE_TTL, elem, make_cluster, make_fenced
from repro.core.problem import Element
from repro.net import MSG_WAL_SHIP, NetworkFabric
from repro.replication.replica import ROLE_FOLLOWER, Replica
from repro.resilience.errors import (
    FencedError,
    PartitionedError,
    ReplicaUnavailable,
    TransientIOError,
)
from toy import RangePredicate


def isolate_primary(cluster, fabric, horizon=100 * LEASE_TTL):
    names = [r.name for r in cluster.replicas]
    primary = cluster.primary.name
    fabric.isolate(
        primary, [n for n in names if n != primary],
        start=fabric.now, end=fabric.now + horizon,
    )
    return primary


class TestLeases:
    def test_healthy_cluster_renews_and_writes(self):
        cluster, fabric = make_fenced()
        for i in range(6):
            fabric.advance(LEASE_TTL // 2)
            cluster.insert(elem(100 + i))
        assert cluster.stats.lease_renewals >= 3
        assert cluster.stats.lease_expirations == 0
        assert cluster.commit_epoch == 0

    def test_isolated_primary_demotes_and_majority_elects(self):
        cluster, fabric = make_fenced()
        old_primary = isolate_primary(cluster, fabric)
        fabric.advance(LEASE_TTL + 1)
        cluster.insert(elem(100))
        # The write landed on a NEW primary under a bumped epoch; the
        # deposed machine is a read-only follower now.
        assert cluster.primary.name != old_primary
        assert cluster.commit_epoch == 1
        deposed = next(r for r in cluster.replicas if r.name == old_primary)
        assert deposed.role == ROLE_FOLLOWER
        assert cluster.stats.lease_expirations == 1
        assert cluster.failover.lease_holder == cluster.primary.name

    def test_election_waits_out_the_deposed_lease(self):
        cluster, fabric = make_fenced()
        isolate_primary(cluster, fabric)
        expires = cluster.failover.lease_expires
        fabric.advance(LEASE_TTL + 1)
        cluster.insert(elem(100))
        # Promotion never happened inside the old grant's window.
        assert fabric.now >= expires

    def test_no_promotion_into_the_minority(self):
        cluster, fabric = make_fenced()
        # Kill the primary outright, then cut the two survivors apart:
        # neither follower can reach a quorum of the live set.
        primary = cluster.primary
        primary.mark_dead()
        f1, f2 = [r for r in cluster.replicas if r is not primary]
        fabric.partition(f1.name, f2.name, start=fabric.now, end=None)
        with pytest.raises(ReplicaUnavailable):
            cluster.insert(elem(100))
        # Heal and the election goes through.
        fabric.heal()
        fabric.advance(LEASE_TTL + 1)
        cluster.insert(elem(100))
        assert cluster.primary in (f1, f2)

    def test_minority_stranded_write_fails_definitely(self):
        cluster, fabric = make_fenced(num_replicas=3)
        primary = isolate_primary(cluster, fabric)
        # Inside the grant window the primary still thinks it leads,
        # but no follower can ack: the write must not be acknowledged.
        with pytest.raises(PartitionedError) as err:
            cluster.insert(elem(100))
        assert not err.value.indeterminate  # compensated: definite
        assert cluster.stats.quorum_ack_failures == 1
        assert cluster.stats.write_compensations == 1
        # The stranded primary serves no phantom: its own state was
        # compensated back.
        stranded = next(r for r in cluster.replicas if r.name == primary)
        assert Element(100, 1100.0) not in stranded.durable.inner


class TestFencedRejects:
    def test_stale_epoch_envelope_bounces(self):
        cluster, fabric = make_fenced()
        isolate_primary(cluster, fabric)
        fabric.advance(LEASE_TTL + 1)
        cluster.insert(elem(100))  # forces election, epoch 1
        assert cluster.commit_epoch == 1
        fabric.heal()
        target = next(r for r in cluster.replicas if not r.is_primary)
        with pytest.raises(FencedError):
            fabric.send(
                "ghost", target.name, MSG_WAL_SHIP, [],
                epoch=0, key=("ghost", 1),
            )
        assert fabric.stats.fenced_rejects == 1
        assert fabric.stats.stale_epoch_applies == 0

    def test_divergent_tail_resynced_not_spliced(self):
        cluster, fabric = make_fenced()
        old_name = isolate_primary(cluster, fabric)
        old_primary = next(r for r in cluster.replicas if r.name == old_name)
        # Unacknowledged records pile up on the stranded primary (as if
        # written just before the partition was noticed).
        old_primary.durable.insert(elem(200))
        old_primary.durable.insert(elem(201))
        fabric.advance(LEASE_TTL + 1)
        cluster.insert(elem(100))  # majority side elects, epoch 1
        new_primary = cluster.primary
        assert new_primary.name != old_name
        fabric.heal()
        resyncs_before = cluster.stats.resyncs
        cluster.insert(elem(101))
        # The deposed machine's dead-epoch tail would have spliced by
        # LSN; it must be thrown away by full resync instead.
        assert cluster.stats.resyncs == resyncs_before + 1
        rejoined = next(r for r in cluster.replicas if r.name == old_name)
        rejoined.durable.replay_unapplied()
        assert rejoined.state_digest() == new_primary.state_digest()
        assert Element(200, 1200.0) not in rejoined.durable.inner

    def test_stale_follower_cannot_serve_quorum_reads(self):
        cluster, fabric = make_fenced()
        old_name = isolate_primary(cluster, fabric)
        fabric.advance(LEASE_TTL + 1)
        cluster.insert(elem(100))
        # Partition still up: the deposed follower never heard epoch 1,
        # so quorum reads must skip it rather than let its (possibly
        # divergent) state out-vote the majority.
        stale = next(r for r in cluster.replicas if r.name == old_name)
        assert stale.fence_epoch < cluster.commit_epoch
        fallbacks = cluster.stats.stale_fallbacks
        answer = cluster.query(
            RangePredicate(0, 1000), 5, mode="quorum", max_staleness=0
        )
        assert any(e.weight == 1100.0 for e in answer)
        assert cluster.stats.stale_fallbacks > fallbacks


class TestShipRetrySatellite:
    def test_partitioned_error_is_not_a_transient_io_error(self):
        assert not issubclass(PartitionedError, TransientIOError)

    def test_ship_timeout_retry_applies_exactly_once(self):
        """Reply-drop on a WAL ship; the retry must dedupe, not re-apply."""
        cluster, fabric = make_fenced()
        real_send = fabric.send
        state = {"dropped": False}

        def flaky_send(src, dst, kind, payload=None, epoch=0, key=None):
            if kind == MSG_WAL_SHIP and not state["dropped"]:
                state["dropped"] = True
                real_send(src, dst, kind, payload, epoch=epoch, key=key)
                raise PartitionedError(
                    "reply lost", src=src, dst=dst, indeterminate=True
                )
            return real_send(src, dst, kind, payload, epoch=epoch, key=key)

        fabric.send = flaky_send
        cluster.insert(elem(100))
        assert state["dropped"]
        assert cluster.stats.ship_retries == 1
        assert fabric.stats.duplicates_detected == 1
        # Exactly once: every machine sits at the same durable LSN and
        # holds exactly one copy.
        lsns = {r.durable_lsn for r in cluster.replicas}
        assert len(lsns) == 1
        for replica in cluster.replicas:
            replica.durable.replay_unapplied()
        digests = {r.state_digest() for r in cluster.replicas}
        assert len(digests) == 1

    def test_transport_failure_feeds_no_streak_and_kills_nobody(self):
        fabric = NetworkFabric(seed=0)
        cluster = make_cluster(fabric=fabric)  # unfenced: ships best-effort
        follower = next(r for r in cluster.replicas if not r.is_primary)
        fabric.partition(
            cluster.primary.name, follower.name, start=0, end=None,
            symmetric=False,
        )
        for i in range(6):
            cluster.insert(elem(100 + i))
        assert follower.alive
        assert cluster.failover.fault_streak(follower.name) == 0
        assert cluster.stats.ship_timeouts == 6
        assert cluster.stats.follower_deaths == 0
        # Heal: the durable-LSN watermark resumes shipping exactly
        # where it left off.
        fabric.heal()
        cluster.insert(elem(110))
        assert follower.durable_lsn == cluster.primary.durable_lsn


class TestStreakEvictionSatellite:
    def test_evict_drops_departed_names(self):
        cluster, _ = make_fenced()
        controller = cluster.failover
        controller.note_fault("replica-1", TransientIOError("x"))
        controller.note_fault("ghost-machine", TransientIOError("x"))
        gone = controller.evict({r.name for r in cluster.replicas})
        assert gone == ["ghost-machine"]
        assert controller.fault_streak("replica-1") == 1

    def test_replace_replica_resets_the_newcomers_streak(self):
        cluster, _ = make_fenced()
        controller = cluster.failover
        target = next(r for r in cluster.replicas if not r.is_primary)
        controller.note_fault(target.name, TransientIOError("x"))
        controller.note_fault(target.name, TransientIOError("x"))
        assert controller.fault_streak(target.name) == 2
        replacement = Replica(
            target.name,
            cluster.build_fn([elem(i) for i in range(40)]),
            B=8,
            next_lsn=target.durable_lsn + 1,
        )
        cluster.replace_replica(target, replacement)
        # One anti-entropy swap must not condemn the new machine for
        # its predecessor's sins.
        assert controller.fault_streak(target.name) == 0

    def test_scrub_repair_clears_streak_end_to_end(self):
        cluster, fabric = make_fenced()
        controller = cluster.failover
        victim = next(r for r in cluster.replicas if not r.is_primary)
        controller.note_fault(victim.name, TransientIOError("x"))
        controller.note_fault(victim.name, TransientIOError("x"))
        # Corrupt the victim's in-memory state so the digest diverges.
        victim.durable.inner.insert(Element(999, 9999.0))
        report = cluster.scrub(repair=True)
        assert victim.name in report.repaired
        assert controller.fault_streak(victim.name) == 0
