"""Tests for fractional cascading: cascaded predecessors must equal bisect."""

import bisect
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.cascading import CascadeNode, FractionalCascading


def build_tree(rng: random.Random, depth: int, keys_per_node: int) -> CascadeNode:
    keys = sorted(rng.uniform(0, 100) for _ in range(keys_per_node))
    node = CascadeNode(keys=keys, payloads=list(range(len(keys))))
    if depth > 0:
        node.left = build_tree(rng, depth - 1, keys_per_node)
        node.right = build_tree(rng, depth - 1, keys_per_node)
    return node


def follow(fc: FractionalCascading, x: float, directions):
    iterator = iter(directions)

    def chooser(node):
        return next(iterator, None)

    return fc.path_predecessors(x, chooser)


class TestSmallTrees:
    def test_single_node(self):
        root = CascadeNode(keys=[1.0, 3.0, 5.0], payloads=["a", "b", "c"])
        fc = FractionalCascading(root)
        [(node, pred)] = follow(fc, 4.0, [])
        assert pred == 1  # predecessor of 4 is 3.0 at index 1

    def test_query_below_all_keys(self):
        root = CascadeNode(keys=[10.0], payloads=[0])
        root.left = CascadeNode(keys=[20.0], payloads=[0])
        fc = FractionalCascading(root)
        results = follow(fc, 5.0, ["left"])
        assert [pred for _, pred in results] == [-1, -1]

    def test_query_above_all_keys(self):
        root = CascadeNode(keys=[1.0, 2.0], payloads=[0, 1])
        root.right = CascadeNode(keys=[0.5, 1.5, 2.5], payloads=[0, 1, 2])
        fc = FractionalCascading(root)
        results = follow(fc, 100.0, ["right"])
        assert [pred for _, pred in results] == [1, 2]

    def test_empty_node_lists(self):
        root = CascadeNode(keys=[], payloads=[])
        root.left = CascadeNode(keys=[7.0], payloads=[0])
        fc = FractionalCascading(root)
        results = follow(fc, 8.0, ["left"])
        assert [pred for _, pred in results] == [-1, 0]

    def test_stop_at_missing_child(self):
        root = CascadeNode(keys=[1.0], payloads=[0])
        fc = FractionalCascading(root)
        results = follow(fc, 1.0, ["left"])  # no left child exists
        assert len(results) == 1


class TestAgainstBisect:
    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 10**6),
        depth=st.integers(1, 6),
        keys_per_node=st.integers(0, 8),
        x=st.floats(-10, 110, allow_nan=False),
        dir_seed=st.integers(0, 10**6),
    )
    def test_cascaded_predecessor_equals_bisect(self, seed, depth, keys_per_node, x, dir_seed):
        rng = random.Random(seed)
        root = build_tree(rng, depth, keys_per_node)
        fc = FractionalCascading(root)
        dir_rng = random.Random(dir_seed)
        directions = [dir_rng.choice(["left", "right"]) for _ in range(depth)]
        for node, pred in follow(fc, x, directions):
            expected = bisect.bisect_right(node.keys, x) - 1
            assert pred == expected

    def test_duplicate_keys_across_levels(self):
        root = CascadeNode(keys=[5.0, 5.0], payloads=[0, 1])
        root.left = CascadeNode(keys=[5.0], payloads=[0])
        fc = FractionalCascading(root)
        results = follow(fc, 5.0, ["left"])
        assert [pred for _, pred in results] == [1, 0]


class TestAugmentedSizes:
    def test_augmented_list_size_bound(self):
        """|A_v| <= |L_v| + (|A_left| + |A_right|) / 2 + 1."""
        rng = random.Random(9)
        root = build_tree(rng, 6, 6)
        FractionalCascading(root)

        def check(node):
            if node is None:
                return
            child_total = 0
            for child in (node.left, node.right):
                if child is not None:
                    child_total += len(child.aug_keys)
            assert len(node.aug_keys) <= len(node.keys) + child_total // 2 + 1
            check(node.left)
            check(node.right)

        check(root)
