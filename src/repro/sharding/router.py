"""`ShardRouter`: the versioned bucket-to-shard map and its machines.

The router is the sharded index's metadata plane:

* a :class:`ShardMap` — an immutable, **epoch-stamped** assignment of
  virtual buckets (see :mod:`repro.sharding.partitioner`) to shard
  names.  Epochs play the same role the result cache's commit epoch
  plays in serving: any answer computed against epoch ``e`` is invalid
  the moment the router holds epoch ``e' > e``.  Splits and merges
  bump the epoch *before* they start touching shard state and install
  the final map (another bump) when done, so a scatter-gather that
  overlapped a topology change in any way sees a mismatched epoch at
  gather time and retries against the fresh map — stale routes are
  retried, never silently wrong;
* a registry of :class:`Shard` objects — each one simulated machine
  (or one :class:`~repro.replication.cluster.ReplicaSet` of machines)
  holding a horizontal slice of ``D``, plus the coordinator-side
  routing summary the executor prunes with: a cheap **max structure**
  over exactly the shard's elements (the paper's Lemma 3 primitive,
  lifted from sample levels to shards).

The router itself is coordinator-state: it lives in host memory next
to the result cache and the batch planner, and its mutations (install,
invalidate, topology_change) happen only on the coordinating thread.
Worker threads touch shards strictly under each shard's own lock.

Epoch bumps alone cannot fence a query that starts *and* finishes
inside a single split's invalidate -> install window (it would snapshot
the already-bumped epoch, see half-moved shard contents, and pass the
gather-time check).  :meth:`ShardRouter.topology_change` therefore
marks the map **in flux** for the whole window: :meth:`snapshot` and
:meth:`shard_for` block until the final map is published (or the
change aborts), so no route is ever planned against a topology whose
shard contents are mid-move.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Dict, Optional, Sequence, Tuple

from repro.core.interfaces import DynamicMaxIndex, MaxIndex
from repro.core.problem import Element
from repro.resilience.errors import InvalidConfiguration, StaleShardMap
from repro.sharding.partitioner import Partitioner


@dataclass(frozen=True)
class ShardMap:
    """One immutable epoch of the bucket -> shard assignment."""

    epoch: int
    bucket_to_shard: Tuple[str, ...]

    @property
    def shard_names(self) -> Tuple[str, ...]:
        """Deterministically ordered distinct shard names."""
        return tuple(sorted(set(self.bucket_to_shard)))

    def buckets_of(self, name: str) -> Tuple[int, ...]:
        """The buckets currently routed to ``name``."""
        return tuple(
            b for b, owner in enumerate(self.bucket_to_shard) if owner == name
        )

    def moved(self, moving: Sequence[int], target: str) -> "ShardMap":
        """A new epoch with ``moving`` buckets reassigned to ``target``."""
        buckets = list(self.bucket_to_shard)
        for b in moving:
            buckets[b] = target
        return ShardMap(epoch=self.epoch + 1, bucket_to_shard=tuple(buckets))


class Shard:
    """One horizontal slice of ``D`` and the machine(s) serving it.

    ``backend`` is either a
    :class:`~repro.durability.durable.DurableTopKIndex` (one machine,
    tracked via ``machine`` — a
    :class:`~repro.replication.replica.Replica` owning the disk that
    survives a crash) or a whole
    :class:`~repro.replication.cluster.ReplicaSet` (which owns its own
    failover story; ``machine`` is ``None``).

    Coordinator-side state kept per shard:

    * ``elements`` — the authoritative membership of the slice,
      mirrored on every successful update.  It feeds the max structure,
      decides what moves on a split, and makes post-crash retries
      idempotent;
    * ``max_index`` — the pruning summary: a max structure over exactly
      ``elements``, probed once per query per shard to upper-bound the
      shard's possible contribution.  It lives in coordinator memory
      (routing metadata, like the map itself), so bound probes survive
      the shard machine's death;
    * ``lock`` — every backend/max probe and every membership mutation
      happens under it, so parallel batch workers never touch one
      machine from two threads (the serving engine's standing rule).
    """

    def __init__(
        self,
        name: str,
        backend,
        max_index: MaxIndex,
        elements: Sequence[Element],
        buckets: Sequence[int],
        machine=None,
    ) -> None:
        self.name = name
        self.backend = backend
        self.max_index = max_index
        self.elements: Dict[Element, None] = dict.fromkeys(elements)
        self.buckets = set(buckets)
        self.machine = machine
        self.lock = threading.RLock()

    @property
    def n(self) -> int:
        return len(self.elements)

    @property
    def replicated(self) -> bool:
        return self.machine is None

    @property
    def alive(self) -> bool:
        """Whether the slice can serve without a recovery first."""
        if self.machine is not None:
            return self.machine.alive
        return True  # a replica set degrades internally, it is never "down" here

    def max_probe(self, predicate) -> Optional[Element]:
        """Upper bound for the shard: its heaviest matching element."""
        with self.lock:
            return self.max_index.query(predicate)

    def add_member(self, element: Element, max_factory=None) -> None:
        """Mirror a successful insert into the routing summary."""
        with self.lock:
            self.elements[element] = None
            if isinstance(self.max_index, DynamicMaxIndex):
                self.max_index.insert(element)
            else:
                assert max_factory is not None, "static max index needs a factory"
                self.max_index = max_factory(list(self.elements))

    def drop_member(self, element: Element, max_factory=None) -> None:
        """Mirror a successful delete into the routing summary."""
        with self.lock:
            del self.elements[element]
            if isinstance(self.max_index, DynamicMaxIndex):
                self.max_index.delete(element)
            else:
                assert max_factory is not None, "static max index needs a factory"
                self.max_index = max_factory(list(self.elements))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "replicated" if self.replicated else "durable"
        return f"Shard({self.name!r}, n={self.n}, {kind}, buckets={len(self.buckets)})"


@dataclass(frozen=True)
class MapSnapshot:
    """What one scatter-gather pins: an epoch plus the shards it names."""

    epoch: int
    shards: Tuple[Shard, ...]


class ShardRouter:
    """Current shard map + shard registry (see module docstring)."""

    def __init__(
        self,
        partitioner: Partitioner,
        shard_map: ShardMap,
        shards: Dict[str, Shard],
        flux_timeout: float = 10.0,
    ) -> None:
        missing = set(shard_map.shard_names) - set(shards)
        if missing:
            raise InvalidConfiguration(
                f"shard map names unknown shards: {sorted(missing)}"
            )
        self.partitioner = partitioner
        self.map = shard_map
        self.shards = shards
        #: Longest a query waits for an in-progress split/merge to
        #: publish before giving up with :class:`StaleShardMap`.
        self.flux_timeout = flux_timeout
        self._flux_cond = threading.Condition()
        self._in_flux = False

    @property
    def epoch(self) -> int:
        return self.map.epoch

    @property
    def in_flux(self) -> bool:
        """Whether a split/merge is between ``invalidate`` and ``install``."""
        return self._in_flux

    @property
    def num_shards(self) -> int:
        return len(self.map.shard_names)

    # ------------------------------------------------------------------
    def _await_settled(self) -> None:
        """Block (bounded) while a topology change is mid-window.

        Must be called with ``_flux_cond`` held.  Raises
        :class:`StaleShardMap` if the change never settles — a hung
        split must not wedge every query forever.
        """
        if not self._flux_cond.wait_for(
            lambda: not self._in_flux, timeout=self.flux_timeout
        ):
            raise StaleShardMap(
                f"topology change did not settle within {self.flux_timeout}s",
                epoch=self.map.epoch,
                current=self.map.epoch,
            )

    def shard_for(self, element: Element) -> Shard:
        """Route an element through bucket -> owner -> shard.

        Blocks while a split/merge is mid-window: routing against a map
        whose shard contents are moving could land an update on a donor
        after its moving set was computed, stranding the element.
        """
        with self._flux_cond:
            self._await_settled()
            bucket = self.partitioner.bucket_of(element)
            return self.shards[self.map.bucket_to_shard[bucket]]

    def snapshot(self) -> MapSnapshot:
        """Pin the current epoch and its shards (deterministic order).

        Blocks while a split/merge is mid-window.  Epoch validation
        alone cannot catch a query that starts *and* finishes inside
        the window (it would pin the already-bumped epoch over
        half-moved shard contents), so snapshots are simply not handed
        out until the final map is published.
        """
        with self._flux_cond:
            self._await_settled()
            current = self.map
            return MapSnapshot(
                epoch=current.epoch,
                shards=tuple(self.shards[name] for name in current.shard_names),
            )

    def shard_sizes(self) -> Dict[str, int]:
        """Per-shard element counts (rebalancing diagnostics)."""
        return {name: self.shards[name].n for name in self.map.shard_names}

    # ------------------------------------------------------------------
    # Topology changes (coordinator thread only)
    # ------------------------------------------------------------------
    def invalidate(self) -> None:
        """Bump the epoch without changing routes.

        A bare fence: any scatter-gather in flight planned against the
        old epoch and must retry.  Splits/merges do NOT call this
        directly — they run inside :meth:`topology_change`, which also
        latches the in-flux flag for the whole window.
        """
        with self._flux_cond:
            self.map = replace(self.map, epoch=self.map.epoch + 1)

    @contextmanager
    def topology_change(self):
        """The split/merge window: epoch bump + in-flux latch.

        On entry the epoch is bumped (in-flight queries planned against
        the old epoch will discard and retry) and the map is marked in
        flux (new snapshots/routes block — a query must never plan
        against shard contents that are mid-move).  :meth:`install`
        publishes the final map and releases the latch; if the body
        exits without installing (an aborted change), the latch is
        released on exit and the map keeps its old routes at the bumped
        epoch — a clean rollback.
        """
        with self._flux_cond:
            if self._in_flux:
                raise InvalidConfiguration(
                    "nested topology changes are not supported"
                )
            self._in_flux = True
            self.map = replace(self.map, epoch=self.map.epoch + 1)
        try:
            yield self
        finally:
            with self._flux_cond:
                if self._in_flux:  # aborted before install(): roll back
                    self._in_flux = False
                    self._flux_cond.notify_all()

    def install(
        self,
        new_map: ShardMap,
        add: Optional[Shard] = None,
        retire: Optional[str] = None,
    ) -> None:
        """Publish a new topology epoch (and register/retire shards).

        Also releases the in-flux latch: installation is the moment the
        new topology becomes routable, so blocked snapshots wake here
        and plan against exactly the published map.
        """
        with self._flux_cond:
            if new_map.epoch <= self.map.epoch:
                raise InvalidConfiguration(
                    f"new map epoch {new_map.epoch} must exceed current "
                    f"{self.map.epoch}"
                )
            if add is not None:
                self.shards[add.name] = add
            if retire is not None:
                del self.shards[retire]
            missing = set(new_map.shard_names) - set(self.shards)
            if missing:
                raise InvalidConfiguration(
                    f"shard map names unknown shards: {sorted(missing)}"
                )
            self.map = new_map
            if self._in_flux:
                self._in_flux = False
                self._flux_cond.notify_all()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sizes = ", ".join(f"{k}:{v}" for k, v in self.shard_sizes().items())
        return f"ShardRouter(epoch={self.epoch}, {sizes})"


__all__ = ["ShardMap", "MapSnapshot", "Shard", "ShardRouter"]
