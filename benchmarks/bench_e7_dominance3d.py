"""E7 — Theorem 6: top-k 3D dominance + the "bootstrapping power" remark.

Paper claims: a top-k 3D dominance structure with polylog + O(k) query
(Theorem 6), and the Section 1.4 remark that Theorem 2's space bound
``S_max(6n / (B Q_pri))`` lets the final structure be *smaller* than a
max structure on all of D — "one does not need to try very hard to
minimize the space of the max structure".

Measured: (a) query-time scaling on the hotel workload; (b) the space
of the ladder's max structures vs one max structure over the full
input — the ratio must shrink as n grows.
"""

import time

from repro.bench.runner import fit_loglog_slope
from repro.bench.tables import render_table
from repro.bench.workloads import make_problem
from repro.core.theorem2 import ExpectedTopKIndex

from helpers import bounded_predicates

SIZES = (500, 1_000, 2_000, 4_000)
K = 10
QUERIES = 20


def _sweep():
    rows = []
    costs = []
    boot_ratios = []
    for n in SIZES:
        problem = make_problem("dominance3d", n, seed=7)
        index = ExpectedTopKIndex(
            problem.elements, problem.prioritized_factory, problem.max_factory, seed=9
        )
        predicates = bounded_predicates(problem, QUERIES, target=80, seed=n)
        start = time.perf_counter()
        for p in predicates:
            index.query(p, K)
        wall = (time.perf_counter() - start) / QUERIES
        # Bootstrapping: ladder max structures vs a max structure on all of D.
        ladder_space = sum(m.space_units() for m in index._max_indexes)
        full_max_space = problem.max_factory(problem.elements).space_units()
        ratio = ladder_space / max(1, full_max_space)
        rows.append([n, round(1e6 * wall, 1), ladder_space, full_max_space, round(ratio, 3)])
        costs.append(wall)
        boot_ratios.append(ratio)
    return rows, fit_loglog_slope(list(SIZES), costs), boot_ratios


def bench_e7_dominance3d(benchmark, results_sink):
    rows, slope, boot_ratios = _sweep()
    results_sink(
        render_table(
            "E7  Theorem 6: top-k 3D dominance (k=10) + bootstrapping power",
            ["n", "query us", "ladder max space", "full max space", "ladder/full"],
            rows,
            note=(
                f"query log-log slope {slope:.3f}; the ladder/full ratio shrinking with n "
                "is the paper's bootstrapping remark"
            ),
        )
    )
    assert slope < 0.7, f"3D dominance top-k grew polynomially (slope {slope:.2f})"
    # Bootstrapping: the ladder's max structures must undercut one max
    # structure on all of D by a wide margin (the paper's remark), and
    # the advantage must not erode as n grows.
    assert all(r < 0.2 for r in boot_ratios), f"bootstrapping margin too small: {boot_ratios}"
    assert boot_ratios[-1] < 2.0 * boot_ratios[0], f"bootstrapping erodes with n: {boot_ratios}"

    problem = make_problem("dominance3d", SIZES[-1], seed=7)
    index = ExpectedTopKIndex(
        problem.elements, problem.prioritized_factory, problem.max_factory, seed=9
    )
    predicates = bounded_predicates(problem, QUERIES, target=80, seed=2)

    def run_batch():
        for p in predicates:
            index.query(p, K)

    benchmark(run_batch)
