"""The columnar hot path: columns, scans, compiled predicates.

Three layers of guarantees:

1. **Primitive semantics** — :class:`ColumnSet` / :class:`MatchScan`
   probe, fetch, and top-k results match brute force under exactly the
   legacy truncation condition.
2. **Compiled = virtual** — every registered predicate compiler is
   extensionally identical to its class's ``matches`` across the
   workload registry's generated predicate shapes.
3. **Answer identity** — a columnar reduction, the same reduction
   pinned to the legacy Element path, and the brute-force oracle agree
   on every query of every registered problem, and snapshot/restore
   round-trips (through the durability codec) preserve that.
"""

from __future__ import annotations

import random

import pytest

from oracles import oracle_top_k
from repro.bench.workloads import PROBLEMS, make_problem
from repro.core.columnar import (
    ColumnSet,
    DescendingElements,
    MatchScan,
    ScanCache,
    columnar_disabled,
    columnar_enabled,
    compiled_matcher,
    next_structure_id,
    predicate_key,
)
from repro.core.params import TuningParams
from repro.core.problem import Element, Predicate, top_k_of
from repro.core.theorem1 import WorstCaseTopKIndex, _TopFStructure, ReductionStats
from repro.core.theorem2 import ExpectedTopKIndex
from repro.durability.codec import decode, encode
from toy import RangePredicate, ToyMax, ToyPrioritized, make_toy_elements


def brute_matches(elements, predicate):
    """All matches, heaviest first — the semantics scans must replicate."""
    out = [e for e in elements if predicate.matches(e.obj)]
    out.sort(key=lambda e: -e.weight)
    return out


# ----------------------------------------------------------------------
# 1. Primitive semantics
# ----------------------------------------------------------------------
class TestColumnSet:
    def test_columns_align_and_descend(self):
        elements = make_toy_elements(300, seed=1)
        columns = ColumnSet(elements)
        weights = [e.weight for e in columns.elements]
        assert weights == sorted(weights, reverse=True)
        for i, element in enumerate(columns.elements):
            assert columns.objs[i] == element.obj
            assert columns.neg_weights[i] == -element.weight

    def test_count_at_least_matches_brute_force(self):
        elements = make_toy_elements(200, seed=2)
        columns = ColumnSet(elements)
        for tau in [-1e9, 0.0, 3.5, elements[0].weight, 1e9]:
            expected = sum(1 for e in elements if e.weight >= tau)
            assert columns.count_at_least(tau) == expected

    def test_position_of_is_the_stable_index_map(self):
        elements = make_toy_elements(150, seed=3)
        columns = ColumnSet(elements)
        for i, element in enumerate(columns.elements):
            assert columns.position_of(element) == i
        with pytest.raises(KeyError):
            columns.position_of(Element(999.0, 123456.75))

    def test_insert_delete_keep_alignment_and_bump_version(self):
        elements = make_toy_elements(80, seed=4)
        columns = ColumnSet(elements)
        extra = Element(7.0, max(e.weight for e in elements) / 2.0 + 0.125)
        columns.insert(extra)
        assert columns.version == 1
        i = columns.position_of(extra)
        assert columns.objs[i] == extra.obj
        assert columns.neg_weights[i] == -extra.weight
        columns.delete(extra)
        assert columns.version == 2
        assert len(columns) == len(elements)
        weights = [e.weight for e in columns.elements]
        assert weights == sorted(weights, reverse=True)


class TestMatchScan:
    def setup_method(self):
        self.elements = make_toy_elements(400, seed=7)
        self.columns = ColumnSet(self.elements)
        self.predicate = RangePredicate(50.0, 260.0)
        self.expected = brute_matches(self.elements, self.predicate)

    def test_first_k_is_the_top_k_answer(self):
        for k in (0, 1, 3, 17, len(self.expected), len(self.expected) + 5):
            scan = self.columns.scan(self.predicate)
            got = scan.first(k)
            assert isinstance(got, DescendingElements)
            assert list(got) == self.expected[:k]

    def test_probe_truncates_under_the_legacy_condition(self):
        t = len(self.expected)
        for limit in (0, 1, t - 1, t, t + 10):
            scan = self.columns.scan(self.predicate)
            result = scan.probe(limit)
            assert result.truncated == (t > limit)
            if not result.truncated:
                assert list(result.elements) == self.expected

    def test_fetch_matches_brute_force_thresholding(self):
        taus = [-1e9, self.expected[len(self.expected) // 2].weight, 1e9]
        for tau in taus:
            qualifying = [e for e in self.expected if e.weight >= tau]
            scan = self.columns.scan(self.predicate)
            result = scan.fetch(tau)
            assert not result.truncated
            assert list(result.elements) == qualifying
            for limit in (0, len(qualifying), len(qualifying) + 3):
                fresh = self.columns.scan(self.predicate)
                bounded = fresh.fetch(tau, limit=limit)
                assert bounded.truncated == (len(qualifying) > limit)
                if not bounded.truncated:
                    assert list(bounded.elements) == qualifying

    def test_scan_resumes_one_traversal_across_primitives(self):
        scan = self.columns.scan(self.predicate)
        scan.first(3)
        frontier_after_first = scan.upto
        scan.probe(len(self.expected) + 50)  # forces a full scan
        assert scan.upto >= frontier_after_first
        full_frontier = scan.upto
        # Every further primitive reuses the completed traversal.
        scan.fetch(-1e9)
        scan.first(7)
        assert scan.upto == full_frontier
        assert list(scan.all_matches()) == self.expected

    def test_stale_scan_detected_after_mutation(self):
        scan = self.columns.scan(self.predicate)
        scan.first(2)
        assert scan.fresh()
        self.columns.insert(Element(100.5, 1e6))
        assert not scan.fresh()


class TestScanCache:
    def test_reuses_scan_until_version_changes(self):
        elements = make_toy_elements(100, seed=8)
        columns = ColumnSet(elements)
        cache = ScanCache()
        predicate = RangePredicate(10.0, 90.0)
        scan = cache.get(columns, predicate)
        assert cache.get(columns, predicate) is scan
        assert cache.peek(predicate) is scan
        columns.insert(Element(5.0, 1e6))
        assert cache.peek(predicate) is None
        replacement = cache.get(columns, predicate)
        assert replacement is not scan and replacement.fresh()

    def test_bounded_and_clearable(self):
        elements = make_toy_elements(50, seed=9)
        columns = ColumnSet(elements)
        cache = ScanCache(max_entries=4)
        for i in range(9):
            cache.get(columns, RangePredicate(float(i), float(i + 10)))
        assert len(cache) <= 4
        cache.clear()
        assert len(cache) == 0

    def test_visit_promotes_on_second_visit(self):
        elements = make_toy_elements(120, seed=10)
        columns = ColumnSet(elements)
        cache = ScanCache()
        predicate = RangePredicate(20.0, 80.0)
        assert cache.visit(columns, predicate) is None  # first: recorded
        scan = cache.visit(columns, predicate)  # second: promoted
        assert scan is not None and scan.columns is columns
        assert cache.visit(columns, predicate) is scan  # further: cached
        assert cache.peek(predicate) is scan

    def test_visit_seed_carries_into_promoted_scan(self):
        elements = make_toy_elements(120, seed=11)
        columns = ColumnSet(elements)
        cache = ScanCache()
        predicate = RangePredicate(30.0, 70.0)
        expected = [e for e in columns.elements if predicate.matches(e.obj)]
        assert cache.visit(columns, predicate) is None
        # The caller's legacy result covered the whole set: full seed.
        cache.record_seed(list(expected), len(columns))
        scan = cache.visit(columns, predicate)
        assert scan.exhausted  # seeded knowledge, not a fresh traversal
        assert list(scan.all_matches()) == expected

    def test_record_seed_without_visit_is_noop(self):
        elements = make_toy_elements(40, seed=12)
        columns = ColumnSet(elements)
        cache = ScanCache()
        cache.record_seed([elements[0]], len(columns))  # no visit: dropped
        predicate = RangePredicate(0.0, 100.0)
        assert cache.visit(columns, predicate) is None
        scan = cache.visit(columns, predicate)
        assert scan.upto == 0 and not scan.exhausted

    def test_visit_record_survives_pressure_then_stale_columns(self):
        elements = make_toy_elements(60, seed=13)
        columns = ColumnSet(elements)
        cache = ScanCache(max_entries=4)
        predicate = RangePredicate(10.0, 50.0)
        assert cache.visit(columns, predicate) is None
        columns.insert(Element(5.0, 1e6))  # stale record: version moved
        assert cache.visit(columns, predicate) is None  # re-recorded
        scan = cache.visit(columns, predicate)
        assert scan is not None and scan.fresh()


# ----------------------------------------------------------------------
# 2. Compiled = virtual, across every registered shape
# ----------------------------------------------------------------------
class TestCompiledMatchers:
    @pytest.mark.parametrize("name", sorted(PROBLEMS))
    def test_compiled_equals_virtual_on_workload(self, name):
        problem = make_problem(name, 150, seed=13)
        objs = [e.obj for e in problem.elements]
        for predicate in problem.predicates(12, seed=14):
            match = compiled_matcher(predicate)
            for obj in objs:
                assert match(obj) == predicate.matches(obj), (
                    f"{name}: compiled diverges on {predicate!r} / {obj!r}"
                )

    def test_unregistered_predicate_falls_back_to_matches(self):
        class OddPredicate(Predicate):
            def matches(self, obj) -> bool:
                return int(obj) % 2 == 1

            def __repr__(self):
                return "OddPredicate()"

        predicate = OddPredicate()
        match = compiled_matcher(predicate)
        assert match(3.0) is True and match(4.0) is False
        assert match.__self__ is predicate  # the bound method itself

    def test_predicate_key_stable_for_unhashable(self):
        class Unhashable(Predicate):
            __hash__ = None

            def matches(self, obj) -> bool:
                return True

            def __repr__(self):
                return "Unhashable()"

        key = predicate_key(Unhashable())
        assert key == predicate_key(Unhashable())
        assert key != predicate_key(RangePredicate(0.0, 1.0))


# ----------------------------------------------------------------------
# 3. Answer identity: columnar == legacy == oracle, per problem
# ----------------------------------------------------------------------
def sweep_queries(problem, index, legacy, rng, ks):
    for predicate in problem.predicates(8, seed=rng.randrange(1 << 20)):
        for k in ks:
            expected = oracle_top_k(problem.elements, predicate, k)
            assert index.query(predicate, k) == expected
            assert legacy.query(predicate, k) == expected


@pytest.mark.parametrize("name", sorted(PROBLEMS))
def test_theorem2_columnar_identical_to_legacy(name):
    rng = random.Random(hash(name) & 0xFFFF)
    for n in (60, 170):
        problem = make_problem(name, n, seed=17)
        index = ExpectedTopKIndex(
            problem.elements, problem.prioritized_factory,
            problem.max_factory, seed=23,
        )
        assert index._columnar, "RAM workloads must engage columnar"
        legacy = ExpectedTopKIndex(
            problem.elements, problem.prioritized_factory,
            problem.max_factory, seed=23, columnar=False,
        )
        assert not legacy._columnar
        sweep_queries(problem, index, legacy, rng, ks=(1, 4, n // 3, n + 5))


@pytest.mark.parametrize("name", ["range1d", "interval_stabbing", "circular2d"])
def test_theorem1_columnar_identical_to_legacy(name):
    rng = random.Random(hash(name) & 0xFFFF)
    problem = make_problem(name, 150, seed=19)
    index = WorstCaseTopKIndex(
        problem.elements, problem.prioritized_factory, seed=29,
    )
    assert index._columnar
    legacy = WorstCaseTopKIndex(
        problem.elements, problem.prioritized_factory, seed=29, columnar=False,
    )
    assert not legacy._columnar
    sweep_queries(problem, index, legacy, rng, ks=(1, 5, 50, 200))


def test_global_disable_pins_legacy_at_build():
    elements = make_toy_elements(120, seed=21)
    with columnar_disabled():
        assert not columnar_enabled()
        t2 = ExpectedTopKIndex(elements, ToyPrioritized, ToyMax, seed=3)
        t1 = WorstCaseTopKIndex(elements, ToyPrioritized, seed=3)
    assert columnar_enabled()
    assert not t2._columnar and not t1._columnar
    predicate = RangePredicate(20.0, 80.0)
    assert t2.query(predicate, 6) == oracle_top_k(elements, predicate, 6)
    assert t1.query(predicate, 6) == oracle_top_k(elements, predicate, 6)


def test_columnar_tracks_dynamic_updates():
    elements = make_toy_elements(150, seed=31)
    index = ExpectedTopKIndex(elements, ToyPrioritized, ToyMax, seed=5)
    assert index._columnar
    current = list(elements)
    rng = random.Random(6)
    for round_no in range(30):
        if rng.random() < 0.5 and current:
            victim = current.pop(rng.randrange(len(current)))
            index.delete(victim)
        else:
            extra = Element(float(rng.randrange(200)), 5000.0 + round_no + 0.5)
            index.insert(extra)
            current.append(extra)
        predicate = RangePredicate(float(rng.randrange(100)), float(rng.randrange(100, 220)))
        assert index.query(predicate, 7) == oracle_top_k(current, predicate, 7)


# ----------------------------------------------------------------------
# Snapshot/restore: columns are derived state, rebuilt on restore
# ----------------------------------------------------------------------
def test_expected_snapshot_roundtrip_stays_columnar():
    elements = make_toy_elements(200, seed=37)
    index = ExpectedTopKIndex(elements, ToyPrioritized, ToyMax, seed=7)
    state = decode(encode(index.snapshot_state()))
    restored = ExpectedTopKIndex.restore(state, ToyPrioritized, ToyMax)
    assert restored._columnar
    rng = random.Random(8)
    for _ in range(15):
        lo = float(rng.randrange(150))
        predicate = RangePredicate(lo, lo + float(rng.randrange(1, 120)))
        k = rng.choice([1, 5, 12])
        expected = oracle_top_k(elements, predicate, k)
        assert restored.query(predicate, k) == expected
        assert index.query(predicate, k) == expected


def test_worstcase_snapshot_roundtrip_stays_columnar():
    elements = make_toy_elements(200, seed=41)
    index = WorstCaseTopKIndex(elements, ToyPrioritized, seed=9)
    state = decode(encode(index.snapshot_state()))
    restored = WorstCaseTopKIndex.restore(state, ToyPrioritized)
    assert restored._columnar
    rng = random.Random(10)
    for _ in range(15):
        lo = float(rng.randrange(150))
        predicate = RangePredicate(lo, lo + float(rng.randrange(1, 120)))
        k = rng.choice([1, 5, 12])
        expected = oracle_top_k(elements, predicate, k)
        assert restored.query(predicate, k) == expected


# ----------------------------------------------------------------------
# Memo-window keys: monotonic structure ids, never address-aliased
# ----------------------------------------------------------------------
class TestMemoWindowKeys:
    def test_structure_ids_are_process_unique(self):
        ids = {next_structure_id() for _ in range(100)}
        assert len(ids) == 100
        assert max(ids) > min(ids)

    def _make_structure(self, seed):
        elements = make_toy_elements(120, seed=seed)
        stats = ReductionStats()
        params = TuningParams(
            lam=1.0, coreset_rate_c=3.0, rank_threshold_c=2.0,
            small_k_factor=4.0, slack=4.0,
        )
        return elements, _TopFStructure(
            elements, 16, ToyPrioritized, params, random.Random(seed), stats
        )

    def test_two_structures_never_share_memo_entries(self):
        """Regression: memo keys were ``(id(self), ...)`` — a freed
        structure's address could be reused by a successor, which then
        read the predecessor's memoized answers.  Keys are now
        process-unique ``sid`` values, so distinct structures can share
        one memo window without any cross-talk, ever."""
        elements_a, structure_a = self._make_structure(seed=1)
        elements_b, structure_b = self._make_structure(seed=2)
        assert structure_a.sid != structure_b.sid
        predicate = RangePredicate(10.0, 60.0)
        memo = {}
        answer_a = structure_a.top_f(predicate, memo=memo)
        assert structure_a.stats.memo_hits == 0
        answer_b = structure_b.top_f(predicate, memo=memo)
        assert structure_b.stats.memo_hits == 0  # b must not hit a's entry
        assert list(answer_b) == list(
            top_k_of(elements_b, predicate, structure_b.f)
        )
        # Same structure, same window: the second call memo-hits.
        assert structure_a.top_f(predicate, memo=memo) == answer_a
        assert structure_a.stats.memo_hits == 1


def test_codec_roundtrips_weight_arrays():
    from array import array

    values = array("d", [-5.5, -1.25, 0.0, 3.75])
    decoded = decode(encode(values))
    assert isinstance(decoded, array)
    assert decoded.typecode == "d"
    assert decoded == values
