"""Tests for the measurement utilities."""

import math

import pytest

from repro.bench.runner import CostSample, fit_loglog_slope, geometric_sizes, measure_queries
from repro.core.interfaces import OpCounter
from repro.em.model import EMContext


class TestCostSample:
    def test_per_query_metrics(self):
        sample = CostSample(label="x", queries=10, wall_seconds=0.01, ios=200, ops=50)
        assert sample.wall_per_query_us == pytest.approx(1000.0)
        assert sample.ios_per_query == 20.0
        assert sample.ops_per_query == 5.0

    def test_missing_sources_are_none(self):
        sample = CostSample(label="x", queries=5, wall_seconds=0.1)
        assert sample.ios_per_query is None
        assert sample.ops_per_query is None

    def test_zero_queries(self):
        sample = CostSample(label="x", queries=0, wall_seconds=0.0, ios=0)
        assert sample.wall_per_query_us == 0.0
        assert sample.ios_per_query is None


class TestMeasureQueries:
    def test_captures_io_and_ops(self):
        ctx = EMContext(B=4, M=8)
        ops = OpCounter()
        block = ctx.allocate_block([1])
        ctx.flush()

        def run_one(predicate):
            ops.node_visits += 1
            ctx.read_block(block)
            ctx.drop_cache()
            return [predicate]

        sample = measure_queries("t", run_one, list(range(7)), ctx=ctx, ops=ops)
        assert sample.queries == 7
        assert sample.ops == 7
        assert sample.ios == 7
        assert sample.reported == 7

    def test_counters_reset_before_measuring(self):
        ctx = EMContext(B=4, M=8)
        ctx.stats.reads = 999

        def run_one(predicate):
            return []

        sample = measure_queries("t", run_one, [1, 2], ctx=ctx)
        assert sample.ios == 0


class TestSlopeFitting:
    def test_linear_data_slope_one(self):
        xs = [10, 100, 1000]
        ys = [5 * x for x in xs]
        assert fit_loglog_slope(xs, ys) == pytest.approx(1.0)

    def test_quadratic_data_slope_two(self):
        xs = [10, 100, 1000]
        ys = [x * x for x in xs]
        assert fit_loglog_slope(xs, ys) == pytest.approx(2.0)

    def test_logarithmic_data_has_tiny_slope(self):
        xs = [2**i for i in range(4, 18)]
        ys = [math.log2(x) for x in xs]
        assert fit_loglog_slope(xs, ys) < 0.35

    def test_constant_data_slope_zero(self):
        assert fit_loglog_slope([1, 10, 100], [7, 7, 7]) == pytest.approx(0.0)

    def test_rejects_too_few_points(self):
        with pytest.raises(ValueError):
            fit_loglog_slope([1], [1])


class TestGeometricSizes:
    def test_doubling(self):
        assert geometric_sizes(4, 32) == [4, 8, 16, 32]

    def test_custom_ratio(self):
        sizes = geometric_sizes(10, 1000, ratio=10)
        assert sizes == [10, 100, 1000]
