"""The flash-translation layer: page mapping, erase blocks, GC, wear.

Real flash cannot overwrite in place.  The medium is organised into
*erase blocks* of ``pages_per_block`` pages; a page can be **programmed**
(written) only after its whole block was **erased**, and erases are the
expensive, wear-limited operation.  An FTL hides this behind a
logical-page interface:

* every logical write programs a *clean* page at the write frontier and
  invalidates the page that held the previous version — overwrites
  never happen in place;
* when clean blocks run low, **garbage collection** picks a victim
  block, relocates its still-valid pages to the frontier (these copies
  are the *write amplification*: device writes the host never asked
  for), and erases it;
* **trim** (`discard`) tells the device a logical page is dead, so GC
  can reclaim its space without copying it.  An FTL that is never told
  must treat logically-dead data as live and copy it forever — the
  classic no-TRIM pathology this module makes measurable;
* per-block erase counters expose **wear**: flash blocks survive a
  bounded number of erases, so a GC policy that hammers one block is a
  lifetime bug even when throughput looks fine.

Two victim-selection policies are provided (both deterministic):

``greedy``
    Pick the block with the most invalid pages — minimal copying *now*.
``cost_benefit``
    Rank by ``(1 - u) / (2u) * age`` (u = valid fraction, age = ticks
    since the block was last programmed), the classic cleaning rule
    from LFS/flash literature: old, half-dirty blocks beat hot blocks
    whose remaining valid pages are about to die anyway.

The layer is a pure in-memory model — time is an operation counter, no
wall clock, no RNG — so every (workload, config) pair reproduces the
identical page layout, GC schedule, and wear profile.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.resilience.errors import InvalidConfiguration, SimulatedCrash

GC_GREEDY = "greedy"
GC_COST_BENEFIT = "cost_benefit"


@dataclass(frozen=True)
class FlashConfig:
    """Geometry and policy of one simulated flash device.

    Parameters
    ----------
    pages_per_block:
        Pages per erase block (the erase granularity).
    capacity_pages:
        ``None`` (default) makes the pool *elastic*: the device grows by
        one erase block whenever GC cannot reclaim space, so any
        workload that fits on a plain :class:`~repro.em.model.Disk`
        runs unmodified.  A number fixes the physical pool at
        ``capacity_pages * (1 + overprovision)`` pages — the realistic
        mode where utilization pressure drives write amplification.
    overprovision:
        Extra physical space beyond ``capacity_pages``, as a fraction
        (fixed-capacity mode only).  Real SSDs reserve 7–28%.
    gc_policy:
        ``"greedy"`` or ``"cost_benefit"`` (module docstring).
    gc_reserve:
        GC refills the clean-block pool to more than this many blocks
        before a host write proceeds (fixed-capacity mode).
    initial_blocks:
        Starting pool size in elastic mode.
    """

    pages_per_block: int = 8
    capacity_pages: Optional[int] = None
    overprovision: float = 0.25
    gc_policy: str = GC_GREEDY
    gc_reserve: int = 1
    initial_blocks: int = 4

    def __post_init__(self) -> None:
        if self.pages_per_block < 2:
            raise InvalidConfiguration(
                f"pages_per_block must be >= 2, got {self.pages_per_block}"
            )
        if self.gc_policy not in (GC_GREEDY, GC_COST_BENEFIT):
            raise InvalidConfiguration(
                f"unknown gc_policy {self.gc_policy!r}"
            )
        if self.overprovision < 0:
            raise InvalidConfiguration(
                f"overprovision must be >= 0, got {self.overprovision}"
            )
        if self.capacity_pages is not None and self.capacity_pages < 1:
            raise InvalidConfiguration(
                f"capacity_pages must be >= 1, got {self.capacity_pages}"
            )


@dataclass
class FlashStats:
    """Cumulative device-side counters (survive reboots with the device).

    ``host_writes`` counts logical page writes the host issued;
    ``device_writes`` counts physical page programs (host writes plus
    GC relocations), so ``write_amplification = device / host`` is the
    factor by which the medium worked harder than the workload asked.
    """

    host_writes: int = 0
    device_writes: int = 0
    erases: int = 0
    gc_runs: int = 0
    gc_page_copies: int = 0
    gc_stalls: int = 0        # host writes that had to wait for GC
    trims: int = 0
    emergency_growths: int = 0  # fixed pool forced to grow (no victim)

    @property
    def write_amplification(self) -> float:
        if self.host_writes == 0:
            return 0.0
        return self.device_writes / self.host_writes


class _EraseBlock:
    """One erase block: its valid-page map, invalid count, and wear."""

    __slots__ = ("index", "valid", "invalid", "erases", "next_page", "stamp")

    def __init__(self, index: int) -> None:
        self.index = index
        self.valid: Dict[int, int] = {}  # page offset -> lpn
        self.invalid = 0
        self.erases = 0
        self.next_page = 0  # frontier position; == pages_per_block: full
        self.stamp = 0      # op-counter time of the last program (age)


class FlashTranslationLayer:
    """Page-mapped FTL over an in-memory page store (module docstring)."""

    def __init__(self, config: Optional[FlashConfig] = None) -> None:
        self.config = config if config is not None else FlashConfig()
        self.stats = FlashStats()
        self._blocks: List[_EraseBlock] = []
        self._free: List[int] = []           # fully erased block indices
        self._open: Optional[int] = None     # current write frontier
        self._map: Dict[int, int] = {}       # lpn -> ppn
        self._payloads: Dict[int, object] = {}  # ppn -> page payload
        self._clock = 0                      # op counter (cost-benefit age)
        self._gc_crash_after: Optional[int] = None  # one-shot crash hook
        cfg = self.config
        if cfg.capacity_pages is None:
            blocks = max(1, cfg.initial_blocks)
        else:
            physical = int(cfg.capacity_pages * (1.0 + cfg.overprovision))
            physical = max(physical, cfg.capacity_pages + cfg.pages_per_block)
            blocks = -(-physical // cfg.pages_per_block)
            blocks = max(blocks, cfg.gc_reserve + 2)
        for _ in range(blocks):
            self._add_block()

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    @property
    def num_erase_blocks(self) -> int:
        return len(self._blocks)

    @property
    def physical_pages(self) -> int:
        return len(self._blocks) * self.config.pages_per_block

    @property
    def valid_pages(self) -> int:
        return len(self._map)

    @property
    def free_pages(self) -> int:
        """Clean, programmable pages (free blocks + frontier headroom)."""
        ppb = self.config.pages_per_block
        total = len(self._free) * ppb
        if self._open is not None:
            total += ppb - self._blocks[self._open].next_page
        return total

    @property
    def utilization(self) -> float:
        """Device-valid pages over physical pages (GC pressure gauge)."""
        if not self._blocks:
            return 0.0
        return self.valid_pages / self.physical_pages

    def wear_counters(self) -> List[int]:
        """Per-erase-block erase counts, in block order."""
        return [block.erases for block in self._blocks]

    @property
    def max_wear(self) -> int:
        return max((b.erases for b in self._blocks), default=0)

    @property
    def mean_wear(self) -> float:
        if not self._blocks:
            return 0.0
        return sum(b.erases for b in self._blocks) / len(self._blocks)

    def is_mapped(self, lpn: int) -> bool:
        return lpn in self._map

    def physical_page(self, lpn: int) -> Optional[int]:
        """The current physical page of ``lpn`` (None when unmapped)."""
        return self._map.get(lpn)

    # ------------------------------------------------------------------
    # Host interface
    # ------------------------------------------------------------------
    def read(self, lpn: int) -> Optional[object]:
        """The payload of ``lpn``, or ``None`` when unmapped/trimmed."""
        ppn = self._map.get(lpn)
        if ppn is None:
            return None
        return self._payloads[ppn]

    def write(self, lpn: int, payload: object) -> int:
        """Program ``payload`` for ``lpn``; returns the physical page.

        The previous version's page (if any) is invalidated — never
        overwritten.  May run garbage collection first when clean pages
        are scarce; a GC forced into the write path counts as one
        ``gc_stalls``.
        """
        self.stats.host_writes += 1
        gc_before = self.stats.gc_runs
        self._ensure_frontier()
        if self.stats.gc_runs > gc_before:
            self.stats.gc_stalls += 1
        return self._program(lpn, payload)

    def trim(self, lpn: int) -> bool:
        """Declare ``lpn`` dead: its page becomes reclaimable for free.

        Returns whether a mapping existed.  This is the discard channel
        a log-structured store uses after compaction; without it GC
        must relocate logically-dead pages as if they were live.
        """
        ppn = self._map.pop(lpn, None)
        if ppn is None:
            return False
        self._invalidate(ppn)
        self.stats.trims += 1
        return True

    # ------------------------------------------------------------------
    # Crash injection (deterministic chaos hooks)
    # ------------------------------------------------------------------
    def schedule_gc_crash(self, after_copies: int) -> None:
        """One-shot: kill the machine after ``after_copies`` GC copies.

        ``after_copies=0`` dies before the first relocation of the next
        GC run.  Relocations already performed are durable (the mapping
        is updated per page and the victim is erased only after every
        copy landed), so a mid-GC crash must lose *nothing* — the sweep
        benches assert exactly that.
        """
        self._gc_crash_after = max(0, int(after_copies))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _add_block(self) -> None:
        block = _EraseBlock(len(self._blocks))
        self._blocks.append(block)
        self._free.append(block.index)

    def _grow(self) -> None:
        if self.config.capacity_pages is not None:
            # The fixed pool is out of reclaimable space: every page is
            # device-valid.  Growing keeps the simulation running (and
            # countable) instead of bricking the device.
            self.stats.emergency_growths += 1
        self._add_block()

    def _ensure_frontier(self) -> None:
        """Make sure the frontier has at least one clean page."""
        cfg = self.config
        if (
            self._open is not None
            and self._blocks[self._open].next_page < cfg.pages_per_block
        ):
            return
        self._open = None
        reserve = cfg.gc_reserve if cfg.capacity_pages is not None else 0
        if len(self._free) <= reserve:
            self._collect_until(reserve)
        # GC relocations may have opened (and partially filled) a new
        # frontier; keep writing into it — popping another free block
        # here would strand the partial block outside both the free
        # pool and the victim-candidate set.
        if (
            self._open is not None
            and self._blocks[self._open].next_page < cfg.pages_per_block
        ):
            return
        self._open = None
        if not self._free:
            self._grow()
        self._open = self._free.pop(0)

    def _collect_until(self, reserve: int) -> None:
        """Run GC victims until the free pool exceeds ``reserve``."""
        while len(self._free) <= reserve:
            victim = self._select_victim()
            if victim is None:
                return  # nothing reclaimable; caller may grow the pool
            self._collect(victim)

    def _select_victim(self) -> Optional[_EraseBlock]:
        candidates = [
            block
            for block in self._blocks
            if block.index != self._open
            and block.next_page == self.config.pages_per_block
            and block.invalid > 0
        ]
        if not candidates:
            return None
        if self.config.gc_policy == GC_GREEDY:
            return max(candidates, key=lambda b: (b.invalid, -b.index))
        # cost-benefit: (1 - u) / (2u) * age; a fully-invalid block has
        # u == 0 and wins outright.
        def score(block: _EraseBlock) -> float:
            ppb = self.config.pages_per_block
            u = len(block.valid) / ppb
            age = self._clock - block.stamp
            if u == 0.0:
                return float("inf")
            return (1.0 - u) / (2.0 * u) * max(age, 1)

        return max(candidates, key=lambda b: (score(b), -b.index))

    def _collect(self, victim: _EraseBlock) -> None:
        """Relocate the victim's valid pages, then erase it.

        Crash-safe by construction: each relocation re-maps its logical
        page atomically, and the erase happens only after every valid
        page moved — a crash at any point leaves every logical page
        mapped to an intact physical copy.
        """
        self.stats.gc_runs += 1
        ppb = self.config.pages_per_block
        for offset in sorted(victim.valid):
            if self._gc_crash_after is not None:
                if self._gc_crash_after == 0:
                    self._gc_crash_after = None
                    raise SimulatedCrash(
                        "machine died during flash garbage collection"
                    )
                self._gc_crash_after -= 1
            lpn = victim.valid[offset]
            old_ppn = victim.index * ppb + offset
            payload = self._payloads[old_ppn]
            self._ensure_gc_frontier(exclude=victim.index)
            new_ppn = self._program(lpn, payload, relocation=True)
            assert new_ppn != old_ppn
            self.stats.gc_page_copies += 1
        # Every valid page has moved (relocation invalidated the old
        # copies); the block is now pure garbage — erase it.
        self._erase(victim)

    def _ensure_gc_frontier(self, exclude: int) -> None:
        cfg = self.config
        if (
            self._open is not None
            and self._open != exclude
            and self._blocks[self._open].next_page < cfg.pages_per_block
        ):
            return
        if self._open == exclude:
            self._open = None
        if (
            self._open is None
            or self._blocks[self._open].next_page >= cfg.pages_per_block
        ):
            self._open = None
            if not self._free:
                self._grow()
            self._open = self._free.pop(0)

    def _program(self, lpn: int, payload: object, relocation: bool = False) -> int:
        block = self._blocks[self._open]
        ppn = block.index * self.config.pages_per_block + block.next_page
        old_ppn = self._map.get(lpn)
        self._payloads[ppn] = payload
        block.valid[block.next_page] = lpn
        block.next_page += 1
        self._clock += 1
        block.stamp = self._clock
        self._map[lpn] = ppn
        if old_ppn is not None:
            self._invalidate(old_ppn)
        self.stats.device_writes += 1
        return ppn

    def _invalidate(self, ppn: int) -> None:
        ppb = self.config.pages_per_block
        block = self._blocks[ppn // ppb]
        block.valid.pop(ppn % ppb, None)
        block.invalid += 1
        self._payloads.pop(ppn, None)

    def _erase(self, victim: _EraseBlock) -> None:
        ppb = self.config.pages_per_block
        base = victim.index * ppb
        for offset in range(ppb):
            self._payloads.pop(base + offset, None)
        victim.valid.clear()
        victim.invalid = 0
        victim.next_page = 0
        victim.erases += 1
        self.stats.erases += 1
        self._free.append(victim.index)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FlashTranslationLayer(blocks={len(self._blocks)}, "
            f"valid={self.valid_pages}/{self.physical_pages}, "
            f"WA={self.stats.write_amplification:.2f}, "
            f"erases={self.stats.erases})"
        )


__all__ = [
    "FlashConfig",
    "FlashStats",
    "FlashTranslationLayer",
    "GC_GREEDY",
    "GC_COST_BENEFIT",
]
