"""E6 — Theorem 5: top-k point enclosure + the fractional-cascading ablation.

Paper claims: polylog + O(k) top-k point enclosure (Theorem 5), and —
inside its max substrate (Section 5.2) — that fractional cascading
turns the ``O(log^2 n)`` stabbing-max query into ``O(log n)``.

Measured: (a) top-k query cost scaling on the dating-site workload;
(b) the ablation: node-visit counts of the cascaded vs the plain 2D
stabbing max — their ratio must *grow* with n (one less log factor).
"""

import time

from repro.bench.runner import fit_loglog_slope
from repro.bench.tables import render_table
from repro.bench.workloads import make_problem
from repro.core.theorem2 import ExpectedTopKIndex
from repro.structures.point_enclosure import (
    CascadedRectangleStabbingMax,
    RectangleStabbingMax,
)

from helpers import rect_elements_scaled

from repro.structures.point_enclosure import EnclosurePredicate, RectanglePrioritized
import random

SIZES = (500, 1_000, 2_000, 4_000)
K = 10
QUERIES = 20


def _queries(count, seed):
    rng = random.Random(seed)
    return [
        EnclosurePredicate((rng.uniform(100, 900), rng.uniform(100, 900)))
        for _ in range(count)
    ]


def _sweep_topk():
    # Scaled rectangles: expected enclosure count fixed in n, so the
    # sweep isolates the search term of the query cost.
    rows = []
    costs = []
    for n in SIZES:
        elements = list(rect_elements_scaled(n, seed=6))
        index = ExpectedTopKIndex(
            elements, RectanglePrioritized, CascadedRectangleStabbingMax, seed=8
        )
        predicates = _queries(QUERIES, seed=n)
        start = time.perf_counter()
        for p in predicates:
            index.query(p, K)
        wall = (time.perf_counter() - start) / QUERIES
        rows.append([n, round(1e6 * wall, 1)])
        costs.append(wall)
    return rows, fit_loglog_slope(list(SIZES), costs)


def _sweep_ablation():
    """Model-operation counts: predecessor searches cost their log.

    Wall time hides the asymptotic gap behind CPython constants, so the
    ablation compares *counted* search operations: the plain structure
    pays one ``O(log)`` predecessor search per path node (aggregated
    from its per-node 1D tables), the cascaded one pays a single
    ``O(log n)`` root search plus ``O(1)`` per node.
    """
    rows = []
    ratios = []
    for n in SIZES:
        problem = make_problem("point_enclosure", n, seed=7)
        plain = RectangleStabbingMax(problem.elements)
        cascaded = CascadedRectangleStabbingMax(problem.elements)
        predicates = problem.predicates(60, seed=n + 1)
        plain.ops.reset()
        for table in plain._ymax.values():
            table.ops.reset()
        for p in predicates:
            plain.query(p)
        plain_ops = plain.ops.total + sum(t.ops.total for t in plain._ymax.values())
        cascaded.ops.reset()
        for p in predicates:
            cascaded.query(p)
        cascaded_ops = cascaded.ops.total
        ratio = plain_ops / max(cascaded_ops, 1)
        rows.append(
            [n, round(plain_ops / 60, 1), round(cascaded_ops / 60, 1), round(ratio, 2)]
        )
        ratios.append(ratio)
    return rows, ratios


def bench_e6_point_enclosure(benchmark, results_sink):
    topk_rows, slope = _sweep_topk()
    results_sink(
        render_table(
            "E6a  Theorem 5: top-k point enclosure query time (k=10)",
            ["n", "query us"],
            topk_rows,
            note=f"log-log slope {slope:.3f} (polylog expected)",
        )
    )
    assert slope < 0.6, f"point-enclosure top-k grew polynomially (slope {slope:.2f})"

    ablation_rows, ratios = _sweep_ablation()
    results_sink(
        render_table(
            "E6b  Ablation: plain O(log^2) vs cascaded O(log) 2D stabbing max",
            ["n", "plain ops/query", "cascaded ops/query", "plain/cascaded"],
            ablation_rows,
            note="Section 5.2: cascading removes one log factor, so the ratio grows with n",
        )
    )
    assert ratios[-1] > 1.3, f"cascading advantage not visible: {ratios}"
    assert ratios[-1] >= ratios[0], f"cascading advantage should grow: {ratios}"

    elements = list(rect_elements_scaled(SIZES[-1], seed=6))
    index = ExpectedTopKIndex(
        elements, RectanglePrioritized, CascadedRectangleStabbingMax, seed=8
    )
    predicates = _queries(QUERIES, seed=1)

    def run_batch():
        for p in predicates:
            index.query(p, K)

    benchmark(run_batch)
