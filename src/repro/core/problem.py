"""Elements, predicates, and the abstract reporting problem.

The paper's setting (Section 1): a set ``D`` of ``n`` elements from a
domain, each with a distinct real weight, and a family ``Q`` of
predicates.  A predicate ``q`` selects the subset ``q(D)`` of matching
elements.  Everything else in the repository — structures and
reductions alike — speaks in terms of :class:`Element` and
:class:`Predicate`.
"""

from __future__ import annotations

import heapq
import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Hashable, Iterable, List, Sequence, Tuple


@dataclass(frozen=True, order=False)
class Element:
    """One weighted element of the input set ``D``.

    Attributes
    ----------
    obj:
        The underlying geometric/combinatorial object — a point, an
        interval, a rectangle...  It is what predicates test.
    weight:
        The element's priority.  The paper assumes weights are distinct
        (standard in the top-k literature, to make the answer unique);
        :func:`ensure_distinct_weights` enforces this on raw data.
    payload:
        Optional application data carried along (a name, a record id, a
        dict of attributes).  Excluded from equality and hashing so it
        may be any type: an element's identity is its object and its
        (distinct) weight.
    """

    obj: Any
    weight: float
    payload: Any = field(default=None, compare=False)

    def __lt__(self, other: "Element") -> bool:
        # Weight order with the object as a deterministic tie-breaker, so
        # heaps over elements never compare arbitrary payloads.  Weights
        # are distinct under the repo's standing convention, so the
        # repr-based tie-break — string formatting, far too slow for a
        # comparator — only runs on exact weight ties, and its result is
        # cached per instance.
        if self.weight != other.weight:
            return self.weight < other.weight
        return self._tie_break() < other._tie_break()

    def _tie_break(self) -> str:
        try:
            return self._tie_key  # type: ignore[attr-defined]
        except AttributeError:
            key = repr(self.obj)
            # The dataclass is frozen; the cache is identity-local state,
            # not a field, so object.__setattr__ is the sanctioned door.
            object.__setattr__(self, "_tie_key", key)
            return key


class Predicate(ABC):
    """One query predicate ``q`` from the family ``Q``.

    Concrete predicates (stabbing point, halfplane, dominance corner,
    ball ...) live next to their structures in
    :mod:`repro.structures`.  The single abstract method is the
    membership test the brute-force oracle and the correctness tests
    rely on; the indexed structures never call it on every element.
    """

    @abstractmethod
    def matches(self, obj: Any) -> bool:
        """Whether the element object satisfies this predicate."""

    def filter(self, elements: Iterable[Element]) -> List[Element]:
        """``q(D)``: the matching subset, by brute force."""
        return [e for e in elements if self.matches(e.obj)]


def ensure_distinct_weights(elements: Sequence[Element]) -> List[Element]:
    """Return a copy of ``elements`` whose weights are strictly distinct.

    Ties are broken deterministically by nudging each duplicate weight up
    by the smallest representable step, preserving the original order
    among tied weights.  This realises the paper's distinct-weights
    convention on arbitrary input data.
    """
    by_weight = sorted(range(len(elements)), key=lambda i: elements[i].weight)
    out: List[Element] = list(elements)
    previous = -math.inf
    for index in by_weight:
        element = out[index]
        weight = element.weight
        if weight <= previous:
            weight = math.nextafter(previous, math.inf)
        out[index] = Element(element.obj, weight, element.payload)
        previous = weight
    return out


def top_k_of(elements: Iterable[Element], predicate: Predicate, k: int) -> List[Element]:
    """Brute-force top-k: the reference answer every test compares against.

    Sorted by descending weight; returns all matches when fewer than
    ``k`` satisfy the predicate — exactly the paper's query semantics.
    """
    from repro.core.columnar import compiled_matcher

    match = compiled_matcher(predicate)
    matching = [e for e in elements if match(e.obj)]
    if k < len(matching):
        # Partial selection: O(t log k) beats the full O(t log t) sort,
        # and nlargest is stable, so ties rank as a stable reverse sort
        # would (weights are distinct under the paper's convention
        # anyway).  This is the guard's terminal scan rung — hot.
        return heapq.nlargest(k, matching, key=lambda e: e.weight)
    matching.sort(key=lambda e: e.weight, reverse=True)
    return matching


def prioritized_of(
    elements: Iterable[Element], predicate: Predicate, tau: float
) -> List[Element]:
    """Brute-force prioritized reporting (matches with weight >= tau)."""
    return [e for e in elements if e.weight >= tau and self_matches(predicate, e)]


def self_matches(predicate: Predicate, element: Element) -> bool:
    """Membership test lifted from objects to elements."""
    return predicate.matches(element.obj)


def max_of(elements: Iterable[Element], predicate: Predicate):
    """Brute-force max reporting; ``None`` when nothing matches."""
    best = None
    for element in elements:
        if predicate.matches(element.obj):
            if best is None or element.weight > best.weight:
                best = element
    return best


def weights_are_distinct(elements: Sequence[Element]) -> bool:
    """Check the paper's distinct-weights convention."""
    seen = set()
    for element in elements:
        if element.weight in seen:
            return False
        seen.add(element.weight)
    return True


def require_distinct_weights(elements: Sequence[Element], context: str) -> None:
    """Enforce the distinct-weights precondition, or raise loudly.

    The reductions' rank arguments (Lemmas 1-3) assume a total weight
    order; duplicated weights make answers rank-ambiguous *silently*.
    Raises :class:`~repro.resilience.errors.ContractViolation` naming
    the first duplicate; callers with tied raw data should pre-process
    with :func:`ensure_distinct_weights`.
    """
    from repro.resilience.errors import ContractViolation

    seen = set()
    for element in elements:
        if element.weight in seen:
            raise ContractViolation(
                f"{context}: duplicate weight {element.weight!r} violates the "
                "distinct-weights precondition; pre-process the input with "
                "ensure_distinct_weights()"
            )
        seen.add(element.weight)
