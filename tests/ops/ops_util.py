"""Builders shared by the ops tests: small live stacks, synthetic samples."""

from __future__ import annotations

from repro.ops.scenarios import (
    ChaosScenarioRunner,
    KIND_FAULT_STORM,
    KIND_SHARD_LOSS,
    ScenarioSpec,
)
from repro.ops.telemetry import MachineDelta, TelemetrySample


def replicated_stack(**overrides):
    """A 3-replica cluster behind a guard, chaos plan disarmed.

    Returns ``(elements, pool, cluster, guard, target_plan, probes)``;
    the spec defaults target the primary with zero rates — override
    ``read_fail_rate``/``read_latency``/... to script a fault.
    """
    kwargs = dict(
        name="ops-test", kind=KIND_FAULT_STORM, target="replica-0",
        n_elements=48, seed=9,
    )
    kwargs.update(overrides)
    spec = ScenarioSpec(**kwargs)
    runner = ChaosScenarioRunner()
    elements, pool, cluster, guard, plan = runner._build_replicated(spec)
    probes = runner._probes(elements, spec.seed)
    return elements, pool, cluster, guard, plan, probes


def sharded_stack(**overrides):
    """A 4-shard range-partitioned index behind a guard."""
    kwargs = dict(
        name="ops-test", kind=KIND_SHARD_LOSS, target="shard-1",
        n_elements=48, seed=9,
    )
    kwargs.update(overrides)
    spec = ScenarioSpec(**kwargs)
    runner = ChaosScenarioRunner()
    elements, pool, sharded, guard = runner._build_sharded(spec)
    probes = runner._probes(elements, spec.seed)
    return elements, pool, sharded, guard, probes


def sample(tick=1, **fields) -> TelemetrySample:
    return TelemetrySample(tick=tick, **fields)


def machine(label, alive=True, **fields) -> MachineDelta:
    return MachineDelta(machine=label, alive=alive, **fields)
