"""Seeded reproducibility: ladders, fault sequences, and whole chaos runs.

The resilience layer is only useful for debugging if a failing run can
be replayed exactly.  Everything random in the stack — Theorem 2's
Bernoulli ladder, the fault plan, the guard's spot-check sampling — is
seeded, so a fixed (index seed, plan seed, guard seed, workload seed)
tuple must reproduce identical answers, stats, and health reports.
"""

import dataclasses
import random

from repro.core.theorem2 import ExpectedTopKIndex
from repro.em.model import EMContext
from repro.resilience.faults import FaultPlan
from repro.resilience.guard import GuardPolicy, resilient_index
from toy import RangePredicate, ToyMax, ToyPrioritized, make_toy_elements


def random_predicate(rng, n):
    a, b = sorted((rng.uniform(0, 10 * n), rng.uniform(0, 10 * n)))
    return RangePredicate(a, b)


class TestTheorem2Determinism:
    def _run(self, seed):
        elements = make_toy_elements(500, seed=1)
        index = ExpectedTopKIndex(elements, ToyPrioritized, ToyMax, seed=seed)
        rng = random.Random(99)
        answers = []
        for _ in range(25):
            p = random_predicate(rng, 500)
            answers.append(index.query(p, rng.choice([1, 5, 20])))
        return index, answers

    def test_same_seed_identical_ladder_and_stats(self):
        a, answers_a = self._run(seed=4)
        b, answers_b = self._run(seed=4)
        assert a._K == b._K
        assert a.ladder_sample_sizes() == b.ladder_sample_sizes()
        assert answers_a == answers_b
        assert dataclasses.asdict(a.stats) == dataclasses.asdict(b.stats)

    def test_different_seed_different_samples(self):
        a, _ = self._run(seed=4)
        b, _ = self._run(seed=5)
        # The K ladder is seed-independent (it depends only on n and
        # the params); the drawn samples are not.
        assert a._K == b._K
        assert a.ladder_sample_sizes() != b.ladder_sample_sizes()


class TestChaosRunDeterminism:
    """Two identically-seeded chaos runs are indistinguishable."""

    def _chaos_run(self):
        from repro.core.problem import Element
        from repro.geometry.primitives import Interval
        from repro.structures.interval_stabbing import (
            SegmentTreeIntervalPrioritized,
            StabbingPredicate,
            StaticIntervalStabbingMax,
        )

        rng = random.Random(8)
        weights = rng.sample(range(3000), 300)
        elements = []
        for i in range(300):
            center = rng.uniform(0, 1000)
            length = rng.uniform(5, 60)
            elements.append(
                Element(Interval(center - length, center + length), float(weights[i]))
            )

        ctx = EMContext(B=16, M=128)
        plan = FaultPlan(seed=21, read_fail_rate=0.05, corrupt_rate=0.01)
        ctx.attach_fault_plan(plan)
        guard = resilient_index(
            elements,
            lambda subset: SegmentTreeIntervalPrioritized(subset, ctx=ctx),
            lambda subset: StaticIntervalStabbingMax(subset, ctx=ctx),
            policy=GuardPolicy(max_attempts=4, spot_check_rate=0.3, seed=5),
            ctx=ctx,
            B=ctx.B,
            seed=6,
        )
        answers = []
        reports = []
        qrng = random.Random(17)
        for _ in range(30):
            p = StabbingPredicate(qrng.uniform(0, 1000))
            answer, report = guard.query_with_report(p, qrng.choice([1, 5, 10]))
            answers.append(answer)
            reports.append(dataclasses.asdict(report))
        return answers, reports, dataclasses.asdict(guard.health), dataclasses.asdict(plan.stats)

    def test_identical_seeds_identical_everything(self):
        first = self._chaos_run()
        second = self._chaos_run()
        answers_a, reports_a, health_a, faults_a = first
        answers_b, reports_b, health_b, faults_b = second
        assert answers_a == answers_b
        assert reports_a == reports_b
        assert health_a == health_b
        assert faults_a == faults_b
        # And the run was not trivially fault-free.
        assert faults_a["read_faults"] + faults_a["corruptions"] > 0


class TestFaultPlanReplay:
    def test_plan_reset_replays_against_fresh_rng_only(self):
        """Two plans with the same seed driven by the same context
        produce the same fault trace; ``FaultStats.reset`` clears the
        books without touching the RNG stream."""

        def trace(plan):
            ctx = EMContext(B=4, M=8, fault_plan=plan)
            bids = [ctx.allocate_block([i]) for i in range(8)]
            ctx.flush()
            out = []
            for bid in bids * 4:
                try:
                    ctx.read_block(bid)
                    out.append("ok")
                except Exception as exc:  # noqa: BLE001 - trace the type
                    out.append(type(exc).__name__)
                ctx.drop_cache()
            return out

        a = trace(FaultPlan(seed=9, read_fail_rate=0.3))
        b = trace(FaultPlan(seed=9, read_fail_rate=0.3))
        assert a == b
        plan = FaultPlan(seed=9, read_fail_rate=0.3)
        trace(plan)
        seen = plan.stats.reads_seen
        plan.stats.reset()
        assert plan.stats.reads_seen == 0
        assert seen > 0
