"""Batch planning and shared-traversal execution (repro.serving.batch)."""

from __future__ import annotations

import pytest

from repro.core.problem import top_k_of
from repro.core.theorem1 import WorstCaseTopKIndex
from repro.core.theorem2 import ExpectedTopKIndex
from repro.serving.batch import (
    QueryRequest,
    execute_batch,
    plan_batch,
    predicate_key,
)
from toy import RangePredicate, ToyMax, ToyPrioritized, make_toy_elements

from serving_util import make_requests


def test_plan_groups_by_predicate_and_sorts_descending_k():
    p, q = RangePredicate(0, 10), RangePredicate(5, 20)
    requests = [
        QueryRequest(p, 3),
        QueryRequest(q, 7),
        QueryRequest(p, 9),
        QueryRequest(p, 1),
    ]
    plan = plan_batch(requests)
    assert plan.size == 4
    assert plan.traversals == 2          # two distinct predicates
    assert plan.shared == 2              # two requests rode along
    by_key = {group.key: group for group in plan.groups}
    group_p = by_key[predicate_key(p)]
    assert group_p.max_k == 9
    # Members descend in k so the group answer is computed once at max_k.
    assert [k for _, k in group_p.members] == [9, 3, 1]
    # Positions map back to the original request order.
    assert [pos for pos, _ in group_p.members] == [2, 0, 3]


def test_plan_empty_batch():
    plan = plan_batch([])
    assert plan.size == 0 and plan.traversals == 0 and plan.groups == []


def test_predicate_key_distinguishes_unhashable_by_repr():
    class Listy:
        def __init__(self, bounds):
            self.bounds = bounds

        __hash__ = None

        def __repr__(self):
            return f"Listy({self.bounds})"

        def matches(self, obj):
            return self.bounds[0] <= obj <= self.bounds[1]

    a, b = Listy([0, 5]), Listy([0, 6])
    assert predicate_key(a) != predicate_key(b)
    assert predicate_key(a) == predicate_key(Listy([0, 5]))


@pytest.mark.parametrize("builder", ["theorem1", "theorem2", "default"])
def test_batch_answers_equal_serial_queries(builder):
    elements = make_toy_elements(60, seed=11)
    if builder == "theorem1":
        index = WorstCaseTopKIndex(elements, ToyPrioritized, seed=1)
    else:
        index = ExpectedTopKIndex(
            elements, ToyPrioritized, ToyMax, seed=3
        )
    requests = make_requests(40, seed=5)
    if builder == "default":
        # The TopKIndex default implementation, no reduction override.
        answers = execute_batch(index, requests)
    else:
        answers = index.query_topk_batch(requests)
    for request, answer in zip(requests, answers):
        assert answer == top_k_of(elements, request.predicate, request.k)


def test_batch_answers_never_alias():
    elements = make_toy_elements(30, seed=2)
    index = WorstCaseTopKIndex(elements, ToyPrioritized)
    p = RangePredicate(0, 300)  # positions span [0, 10n)
    answers = index.query_topk_batch(
        [QueryRequest(p, 5), QueryRequest(p, 5), QueryRequest(p, 3)]
    )
    answers[0].append("sentinel")
    assert answers[1][-1] != "sentinel"
    assert len(answers[1]) == 5 and len(answers[2]) == 3


def test_batch_zero_k_members():
    elements = make_toy_elements(10, seed=4)
    index = ExpectedTopKIndex(elements, ToyPrioritized, ToyMax, seed=3)
    p = RangePredicate(0, 100)
    answers = index.query_topk_batch([QueryRequest(p, 0), QueryRequest(p, 2)])
    assert answers[0] == []
    assert answers[1] == top_k_of(elements, p, 2)


def test_theorem1_memo_window_shares_probes():
    elements = make_toy_elements(80, seed=9)
    index = WorstCaseTopKIndex(elements, ToyPrioritized, seed=1)
    p, q = RangePredicate(0, 600), RangePredicate(100, 500)
    index.stats.reset()
    with index.batched():
        first = index.query(p, 3)
        again = index.query(p, 3)
        other = index.query(q, 2)
    assert again == first
    assert index.stats.memo_hits > 0
    assert other == top_k_of(elements, q, 2)
    # The window closed: probes run fresh again.
    assert index._memo is None
    hits_before = index.stats.memo_hits
    index.query(p, 3)
    assert index.stats.memo_hits == hits_before


def test_theorem2_memo_window_shares_probes_and_clears_on_update():
    elements = make_toy_elements(80, seed=9)
    index = ExpectedTopKIndex(elements, ToyPrioritized, ToyMax, seed=3)
    p = RangePredicate(0, 799)
    with index.batched():
        first = index.query(p, 4)
        assert index.query(p, 4) == first
        assert index.stats.memo_hits > 0
        # An update inside the window must not leave stale probes behind.
        extra = make_toy_elements(1, seed=77, weight_offset=5000.0)[0]
        index.insert(extra)
        fresh = index.query(p, 4)
        assert fresh == top_k_of(elements + [extra], p, 4)
        assert fresh[0] == extra
    assert index._memo is None


def test_nested_batched_windows_share_one_memo():
    elements = make_toy_elements(40, seed=1)
    index = WorstCaseTopKIndex(elements, ToyPrioritized)
    with index.batched():
        outer = index._memo
        with index.batched():
            assert index._memo is outer
        assert index._memo is outer
    assert index._memo is None


def test_plan_group_order_is_deterministic_for_default_repr_predicates():
    """Groups must sort identically across runs (satellite bugfix).

    A predicate class without its own ``__repr__`` inherits
    ``object``'s, which embeds the instance's memory address — sorting
    groups by bare repr would then order the same batch differently on
    every run.  ``_sort_key`` masks addresses (and keys dataclasses by
    field values), so the plan's group order depends only on values.
    """

    class Anon:
        def __init__(self, lo, hi):
            self.lo = lo
            self.hi = hi

        def matches(self, obj):
            return self.lo <= obj <= self.hi

    from repro.serving.batch import _sort_key

    a, b = Anon(0, 5), Anon(0, 5)
    assert repr(a) != repr(b)          # default reprs embed addresses
    assert _sort_key(a) == _sort_key(b)  # ...but the sort key is stable

    requests = [QueryRequest(b, 2), QueryRequest(a, 3)]
    plan = plan_batch(requests)
    assert plan.traversals == 2  # distinct objects stay distinct groups
    # Tied keys: plan_batch's sort is stable, so first-seen order holds.
    assert [g.predicate for g in plan.groups] == [b, a]


def test_sort_key_uses_dataclass_fields():
    from repro.serving.batch import _sort_key

    key = _sort_key(RangePredicate(1, 2))
    assert key[0] == "RangePredicate"
    assert "'lo'" in key[1] and "'hi'" in key[1]
    assert key == _sort_key(RangePredicate(1, 2))
    assert key != _sort_key(RangePredicate(1, 3))


def test_sort_key_masks_addresses_inside_dataclass_fields():
    """A dataclass predicate may hold a field *value* without its own
    ``__repr__``; the per-field reprs must mask addresses too, or group
    order is nondeterministic across processes for exactly that case.
    """
    import dataclasses

    from repro.serving.batch import _sort_key

    class Anchor:  # default object repr: embeds a memory address
        def __init__(self, value):
            self.value = value

    @dataclasses.dataclass(frozen=True, eq=False)
    class NearAnchor:
        anchor: Anchor

        def matches(self, obj):
            return obj == self.anchor.value

    a, b = NearAnchor(Anchor(7)), NearAnchor(Anchor(7))
    assert repr(a.anchor) != repr(b.anchor)  # addresses really differ
    assert "0x" not in _sort_key(a)[1].replace("0xADDR", "")
    assert _sort_key(a) == _sort_key(b)
