"""The offline checker: clean histories pass, each violation is caught."""

from __future__ import annotations

from net_util import elem
from repro.core.problem import Element
from repro.net import HistoryRecorder, check_history
from repro.net.history import (
    INCONSISTENT_READ,
    LOST_ACK_WRITE,
    MALFORMED_ANSWER,
    UNACKED_VISIBLE,
)
from toy import RangePredicate

ALL = RangePredicate(-1e9, 1e9)


def topk(elements, k, predicate=ALL):
    return sorted(
        (e for e in elements if predicate.matches(e.obj)),
        key=lambda e: -e.weight,
    )[:k]


class TestCleanHistories:
    def test_reads_over_initial_state(self):
        initial = [elem(i) for i in range(10)]
        rec = HistoryRecorder()
        op = rec.invoke_query(ALL, 4)
        rec.ok(op, topk(initial, 4))
        res = check_history(rec.events, initial)
        assert res.ok and res.exact_reads == 1

    def test_acked_insert_then_visible(self):
        initial = [elem(i) for i in range(5)]
        rec = HistoryRecorder()
        new = elem(50)
        op = rec.invoke_insert(new)
        rec.ok(op)
        op = rec.invoke_query(ALL, 3)
        rec.ok(op, topk(initial + [new], 3))
        res = check_history(rec.events, initial)
        assert res.ok and res.ok_writes == 1

    def test_acked_delete_then_absent(self):
        initial = [elem(i) for i in range(5)]
        rec = HistoryRecorder()
        op = rec.invoke_delete(initial[-1])
        rec.ok(op)
        op = rec.invoke_query(ALL, 3)
        rec.ok(op, topk(initial[:-1], 3))
        assert check_history(rec.events, initial).ok

    def test_failed_insert_never_visible_is_fine(self):
        initial = [elem(i) for i in range(5)]
        rec = HistoryRecorder()
        op = rec.invoke_insert(elem(50))
        rec.fail(op)
        op = rec.invoke_query(ALL, 3)
        rec.ok(op, topk(initial, 3))
        res = check_history(rec.events, initial)
        assert res.ok and res.failed_writes == 1

    def test_short_answer_when_fewer_match(self):
        initial = [elem(i) for i in range(3)]
        rec = HistoryRecorder()
        op = rec.invoke_query(ALL, 10)
        rec.ok(op, topk(initial, 10))
        assert check_history(rec.events, initial).ok


class TestIndeterminateResolution:
    def test_info_insert_may_appear(self):
        initial = [elem(i) for i in range(5)]
        new = elem(50)
        rec = HistoryRecorder()
        op = rec.invoke_insert(new)
        rec.info(op)
        op = rec.invoke_query(ALL, 3)
        rec.ok(op, topk(initial + [new], 3))
        res = check_history(rec.events, initial)
        assert res.ok and res.resolved_applied == 1

    def test_info_insert_may_be_absent(self):
        initial = [elem(i) for i in range(5)]
        rec = HistoryRecorder()
        op = rec.invoke_insert(elem(50))
        rec.info(op)
        op = rec.invoke_query(ALL, 3)
        rec.ok(op, topk(initial, 3))
        res = check_history(rec.events, initial)
        assert res.ok and res.resolved_unapplied == 1

    def test_resolution_is_binding_flip_flop_is_caught(self):
        initial = [elem(i) for i in range(5)]
        new = elem(50)
        rec = HistoryRecorder()
        op = rec.invoke_insert(new)
        rec.info(op)
        # First read: absent above the cut-off => resolved unapplied.
        op = rec.invoke_query(ALL, 3)
        rec.ok(op, topk(initial, 3))
        # Second read: suddenly present => a phantom.
        op = rec.invoke_query(ALL, 3)
        rec.ok(op, topk(initial + [new], 3))
        res = check_history(rec.events, initial)
        assert not res.ok
        assert UNACKED_VISIBLE in res.kinds()

    def test_below_cutoff_stays_ambiguous(self):
        initial = [elem(i) for i in range(5)]
        rec = HistoryRecorder()
        ghost = Element(100, 1.0)  # lightest of all
        op = rec.invoke_insert(ghost)
        rec.info(op)
        # k=2 read: the ghost is below the cut-off either way, so the
        # ambiguity survives and BOTH later outcomes stay legal.
        op = rec.invoke_query(ALL, 2)
        rec.ok(op, topk(initial, 2))
        op = rec.invoke_query(ALL, 10)
        rec.ok(op, topk(initial + [ghost], 10))
        assert check_history(rec.events, initial).ok


class TestViolations:
    def test_lost_acknowledged_write(self):
        initial = [elem(i) for i in range(5)]
        new = elem(50)  # heaviest
        rec = HistoryRecorder()
        op = rec.invoke_insert(new)
        rec.ok(op)
        op = rec.invoke_query(ALL, 3)
        rec.ok(op, topk(initial, 3))  # new element missing!
        res = check_history(rec.events, initial)
        assert not res.ok and res.kinds() == [LOST_ACK_WRITE]

    def test_failed_write_visible(self):
        initial = [elem(i) for i in range(5)]
        new = elem(50)
        rec = HistoryRecorder()
        op = rec.invoke_insert(new)
        rec.fail(op)
        op = rec.invoke_query(ALL, 3)
        rec.ok(op, topk(initial + [new], 3))  # phantom!
        res = check_history(rec.events, initial)
        assert not res.ok and UNACKED_VISIBLE in res.kinds()

    def test_never_written_element_visible(self):
        initial = [elem(i) for i in range(5)]
        rec = HistoryRecorder()
        op = rec.invoke_query(ALL, 3)
        rec.ok(op, topk(initial + [elem(99)], 3))
        res = check_history(rec.events, initial)
        assert not res.ok and UNACKED_VISIBLE in res.kinds()

    def test_acked_delete_still_visible(self):
        initial = [elem(i) for i in range(5)]
        rec = HistoryRecorder()
        op = rec.invoke_delete(initial[-1])
        rec.ok(op)
        op = rec.invoke_query(ALL, 3)
        rec.ok(op, topk(initial, 3))  # the deleted one resurfaces
        res = check_history(rec.events, initial)
        assert not res.ok and UNACKED_VISIBLE in res.kinds()

    def test_wrong_order_is_malformed(self):
        initial = [elem(i) for i in range(5)]
        rec = HistoryRecorder()
        op = rec.invoke_query(ALL, 3)
        rec.ok(op, list(reversed(topk(initial, 3))))
        res = check_history(rec.events, initial)
        assert not res.ok and res.kinds() == [MALFORMED_ANSWER]

    def test_not_the_exact_topk_is_inconsistent(self):
        initial = [elem(i) for i in range(5)]
        rec = HistoryRecorder()
        # Legal shape, every element real — but it skipped the heaviest.
        answer = topk(initial, 4)[1:]
        op = rec.invoke_query(ALL, 3)
        rec.ok(op, answer)
        res = check_history(rec.events, initial)
        assert not res.ok
        assert LOST_ACK_WRITE in res.kinds() or INCONSISTENT_READ in res.kinds()

    def test_predicate_mismatch_is_malformed(self):
        initial = [elem(i) for i in range(5)]
        rec = HistoryRecorder()
        outside = RangePredicate(1000, 2000)
        op = rec.invoke_query(outside, 3)
        rec.ok(op, topk(initial, 3))  # none of these match
        res = check_history(rec.events, initial)
        assert not res.ok and MALFORMED_ANSWER in res.kinds()
