"""The partition scenario grid and the seeded workload driver.

One shared driver runs a seeded insert/delete/query workload against a
:class:`~repro.replication.cluster.ReplicaSet` whose fabric a
:class:`PartitionScenario` sabotages, records every operation in a
:class:`~repro.net.history.HistoryRecorder`, heals the network, forces
convergence, and hands the history to the offline checker.  Tests, the
E22 benchmark, and the example all drive the *same* grid:

==========================  ==========================================
``primary_isolated``        the primary loses both directions to every
                            follower (the classic split-brain bait)
``minority_split``          one follower is cut off; the primary keeps
                            a quorum and service continues
``majority_split``          the primary keeps one follower (majority)
                            while the other is cut off, then the cut
                            follower returns mid-workload
``asymmetric_partition``    primary→followers dead while
                            followers→primary lives — the direction
                            only per-directed-link fault plans can say
``flapping_links``          repeated short symmetric windows between
                            the primary and each follower
``lossy_links``             no partitions at all: drop / duplicate /
                            reorder rates on every link (the dedupe
                            and idempotent-retry stress)
==========================  ==========================================

plus the sharded twin (partition during an online ``split_shard``) in
:func:`run_sharded_partition_scenario`.

The driver advances the fabric's virtual clock on a fixed grid
(``STEP`` units per workload step) so scenario windows land
deterministically regardless of how many messages each op sends.

``fenced=False`` runs the same workload without leases/fencing *and*
forces a failover mid-partition — the ablation in which the checker
must catch the split-brain write loss.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from typing import TYPE_CHECKING

from repro.core.problem import Element
from repro.net.fabric import LinkPlan, NetworkFabric
from repro.net.history import CheckResult, HistoryRecorder, check_history
from repro.resilience.errors import (
    ElementMembershipError,
    FailoverError,
    FencedError,
    PartitionedError,
    ReplicaUnavailable,
    ShardUnavailable,
)
from repro.structures.range1d import RangePredicate1D

if TYPE_CHECKING:  # pragma: no cover - import cycle: cluster imports net
    from repro.replication.cluster import ReplicaSet

# Virtual-time layout: every workload step advances the clock to the
# next multiple of STEP, so scenario windows (expressed in steps) are
# deterministic.  The lease TTL spans a few steps: long enough that a
# renewal is only *due* every other step, short enough that an isolated
# primary demotes well inside a partition window.
STEP = 16
LEASE_TTL = 3 * STEP
DEFAULT_STEPS = 48

_SPAN = 1024.0


@dataclass(frozen=True)
class PartitionScenario:
    """One named sabotage of the fabric.

    ``schedule(fabric, names, steps)`` installs fault plans before the
    workload starts; ``names`` is the replica list with ``names[0]``
    the initial primary, windows are in virtual time (multiples of
    :data:`STEP`).
    """

    name: str
    description: str
    schedule: Callable[[NetworkFabric, List[str], int], None]


def _isolate_primary(fabric: NetworkFabric, names: List[str], steps: int) -> None:
    start, end = 8 * STEP, (steps - 16) * STEP
    fabric.isolate(names[0], names, start=start, end=end)


def _minority_split(fabric: NetworkFabric, names: List[str], steps: int) -> None:
    start, end = 8 * STEP, (steps - 12) * STEP
    fabric.isolate(names[-1], names, start=start, end=end)


def _majority_split(fabric: NetworkFabric, names: List[str], steps: int) -> None:
    # The primary keeps names[1] (a majority); names[2] is cut off and
    # returns mid-workload to catch up from its durable watermark.
    start, end = 6 * STEP, (steps // 2) * STEP
    fabric.isolate(names[2], names, start=start, end=end)


def _asymmetric(fabric: NetworkFabric, names: List[str], steps: int) -> None:
    # primary -> follower dead, follower -> primary alive: acks can
    # come home but nothing ships out.
    start, end = 8 * STEP, (steps - 16) * STEP
    for follower in names[1:]:
        fabric.partition(names[0], follower, start=start, end=end, symmetric=False)


def _flapping(fabric: NetworkFabric, names: List[str], steps: int) -> None:
    for flap in range(4, steps - 12, 8):
        start, end = flap * STEP, (flap + 3) * STEP
        for follower in names[1:]:
            fabric.partition(names[0], follower, start=start, end=end)


def _lossy(fabric: NetworkFabric, names: List[str], steps: int) -> None:
    for src in names:
        for dst in names:
            if src != dst:
                fabric.link(src, dst).plan = LinkPlan(
                    drop_rate=0.10, dup_rate=0.10, reorder_rate=0.05,
                    reorder_window=2, delay=1,
                )


SCENARIOS: List[PartitionScenario] = [
    PartitionScenario(
        "primary_isolated",
        "primary loses both directions to every follower",
        _isolate_primary,
    ),
    PartitionScenario(
        "minority_split",
        "one follower cut off; the primary side keeps a quorum",
        _minority_split,
    ),
    PartitionScenario(
        "majority_split",
        "primary+one follower vs one follower, healing mid-workload",
        _majority_split,
    ),
    PartitionScenario(
        "asymmetric_partition",
        "primary->followers dead while followers->primary lives",
        _asymmetric,
    ),
    PartitionScenario(
        "flapping_links",
        "repeated short partition windows between primary and followers",
        _flapping,
    ),
    PartitionScenario(
        "lossy_links",
        "10% drop + 10% duplication + 5% reordering on every link",
        _lossy,
    ),
]


@dataclass
class ScenarioRun:
    """Everything one driver run produced, checker verdict included."""

    scenario: str
    seed: int
    fenced: bool
    check: CheckResult
    fabric: NetworkFabric
    cluster: Optional[ReplicaSet] = None
    ok_writes: int = 0
    failed_writes: int = 0
    indeterminate_writes: int = 0
    reads: int = 0
    failed_reads: int = 0
    post_heal_reads: int = 0
    notes: List[str] = field(default_factory=list)


def scenario_elements(n: int) -> List[Element]:
    """Distinct-weight point elements spread over ``[0, _SPAN)``."""
    return [
        Element(float((i * 37) % 1021) % _SPAN, 1000.0 + i) for i in range(n)
    ]


def _toy_factory(fabric: NetworkFabric, lease_ttl: int) -> ReplicaSet:
    """Default cluster: canonical Theorem 2 replicas over a treap."""
    from repro.replication.cluster import replicated_index
    from repro.structures.range1d_dynamic import DynamicRangeTreap

    return replicated_index(
        scenario_elements(24),
        DynamicRangeTreap,
        DynamicRangeTreap,
        num_replicas=3,
        seed=5,
        fabric=fabric,
        lease_ttl=lease_ttl,
    )


def run_partition_scenario(
    scenario: PartitionScenario,
    seed: int,
    fenced: bool = True,
    steps: int = DEFAULT_STEPS,
    cluster_factory: Optional[Callable[[NetworkFabric, int], ReplicaSet]] = None,
    force_failover_at: Optional[int] = None,
    initial_elements: Optional[List[Element]] = None,
) -> ScenarioRun:
    """One seeded workload under one scenario; returns the checked run.

    ``force_failover_at`` (a step index) deposes the primary mid-run —
    the unfenced ablation uses it to manufacture the split-brain window
    the checker must catch; fenced runs may also use it to prove the
    lease wait makes it safe.
    """
    fabric = NetworkFabric(seed=seed)
    factory = cluster_factory if cluster_factory is not None else _toy_factory
    cluster = factory(fabric, LEASE_TTL if fenced else 0)
    elements = (
        list(initial_elements)
        if initial_elements is not None
        else scenario_elements(24)
    )
    names = [r.name for r in cluster.replicas]
    scenario.schedule(fabric, names, steps)
    recorder = HistoryRecorder()
    rng = random.Random(repr((seed, scenario.name, fenced)))
    run = ScenarioRun(
        scenario=scenario.name, seed=seed, fenced=fenced,
        check=CheckResult(), fabric=fabric, cluster=cluster,
    )
    acked: List[Element] = list(elements)
    next_weight = 1000.0 + len(elements)
    # ElementMembershipError shows up only when a divergent primary
    # (unfenced split-brain) no longer holds an element we acked — the
    # delete visibly failed, which is exactly what the checker should
    # then reason about.
    write_errors = (
        PartitionedError, FencedError, ReplicaUnavailable, FailoverError,
        ElementMembershipError,
    )

    def record_write(op_id: int, attempt: Callable[[], None]) -> bool:
        try:
            attempt()
        except write_errors as exc:
            if isinstance(exc, PartitionedError) and exc.indeterminate:
                recorder.info(op_id)
                run.indeterminate_writes += 1
            else:
                recorder.fail(op_id)
                run.failed_writes += 1
            return False
        recorder.ok(op_id)
        run.ok_writes += 1
        return True

    def run_query(k: int = 4) -> None:
        lo = rng.uniform(0.0, _SPAN * 0.75)
        predicate = RangePredicate1D(lo, lo + rng.uniform(64.0, _SPAN / 2))
        op_id = recorder.invoke_query(predicate, k)
        run.reads += 1
        try:
            answer = cluster.query(predicate, k)
        except write_errors:
            recorder.fail(op_id)
            run.failed_reads += 1
            return
        recorder.ok(op_id, answer)

    for step in range(steps):
        fabric.advance_to(step * STEP)
        if force_failover_at is not None and step == force_failover_at:
            try:
                successor = cluster.force_failover()
                run.notes.append(
                    f"step {step}: forced failover to {successor.name}"
                )
            except (FailoverError, ReplicaUnavailable) as exc:
                run.notes.append(f"step {step}: forced failover refused: {exc}")
            continue
        draw = rng.random()
        if draw < 0.45:
            element = Element(rng.uniform(0.0, _SPAN), next_weight)
            next_weight += 1.0
            op_id = recorder.invoke_insert(element)
            if record_write(op_id, lambda e=element: cluster.insert(e)):
                acked.append(element)
        elif draw < 0.60 and len(acked) > 8:
            element = acked[rng.randrange(len(acked))]
            op_id = recorder.invoke_delete(element)
            if record_write(op_id, lambda e=element: cluster.delete(e)):
                acked.remove(element)
        else:
            run_query(k=rng.choice((2, 4, 6)))

    # ---- heal + converge: the read-your-writes reckoning ------------
    fabric.heal()
    fabric.flush_all_holdback()
    fabric.advance_to(steps * STEP + LEASE_TTL + 1)
    # A couple of post-heal writes force shipping (and the divergent-
    # tail resync of any deposed primary) before the final audit reads.
    for _ in range(2):
        element = Element(rng.uniform(0.0, _SPAN), next_weight)
        next_weight += 1.0
        op_id = recorder.invoke_insert(element)
        if record_write(op_id, lambda e=element: cluster.insert(e)):
            acked.append(element)
        fabric.advance(STEP)
    try:
        cluster.scrub(repair=True)
    except write_errors:  # pragma: no cover - healed fabric should allow it
        run.notes.append("post-heal scrub failed")
    for _ in range(6):
        run_query(k=rng.choice((3, 5)))
        run.post_heal_reads += 1
    full = RangePredicate1D(0.0, _SPAN)
    op_id = recorder.invoke_query(full, len(acked) + 4)
    run.reads += 1
    run.post_heal_reads += 1
    try:
        recorder.ok(op_id, cluster.query(full, len(acked) + 4))
    except write_errors:
        recorder.fail(op_id)
        run.failed_reads += 1

    run.check = check_history(recorder.events, elements)
    return run


# ----------------------------------------------------------------------
# Sharded twin: partition during an online split_shard
# ----------------------------------------------------------------------
def run_sharded_partition_scenario(
    seed: int,
    steps: int = 32,
    num_shards: int = 4,
    coordinator: str = "coordinator",
):
    """Partition the coordinator from the split donor mid-``split_shard``.

    Shard updates are coordinator-local (the control plane rides the
    majority side), but every scatter-gather probe crosses a link — so
    reads during the window either fail loudly or (with
    ``allow_partial``) are *flagged*, never silently wrong, and reads
    after the heal must be oracle-exact top-k again.  Returns the
    :class:`ScenarioRun` (``cluster`` is None; the index rides along in
    ``notes``).
    """
    from repro.sharding.sharded import sharded_index
    from repro.structures.range1d_dynamic import DynamicRangeTreap

    fabric = NetworkFabric(seed=seed)
    elements = scenario_elements(48)
    index = sharded_index(
        elements,
        DynamicRangeTreap,
        DynamicRangeTreap,
        num_shards=num_shards,
        seed=seed,
        fabric=fabric,
        coordinator=coordinator,
    )
    recorder = HistoryRecorder()
    rng = random.Random(repr((seed, "sharded_split")))
    run = ScenarioRun(
        scenario="partition_during_split", seed=seed, fenced=True,
        check=CheckResult(), fabric=fabric,
    )
    acked: List[Element] = list(elements)
    next_weight = 1000.0 + len(elements)
    donor = index.splittable_shard()
    window = (10 * STEP, 22 * STEP)
    if donor is not None:
        fabric.partition(coordinator, donor, start=window[0], end=window[1])
    split_done = False
    for step in range(steps):
        fabric.advance_to(step * STEP)
        if not split_done and donor is not None and step == 12:
            before, newborn = index.split_shard(donor)
            run.notes.append(f"step {step}: split {before} -> {newborn}")
            split_done = True
            continue
        draw = rng.random()
        if draw < 0.4:
            element = Element(rng.uniform(0.0, _SPAN), next_weight)
            next_weight += 1.0
            op_id = recorder.invoke_insert(element)
            index.insert(element)
            recorder.ok(op_id)
            run.ok_writes += 1
            acked.append(element)
        else:
            lo = rng.uniform(0.0, _SPAN * 0.75)
            predicate = RangePredicate1D(lo, lo + rng.uniform(64.0, _SPAN / 2))
            k = rng.choice((3, 5))
            op_id = recorder.invoke_query(predicate, k)
            run.reads += 1
            try:
                answer = index.query(predicate, k)
            except (ShardUnavailable, PartitionedError):
                recorder.fail(op_id)
                run.failed_reads += 1
                continue
            recorder.ok(op_id, answer)
    fabric.heal()
    fabric.flush_all_holdback()
    fabric.advance_to(steps * STEP + 1)
    for _ in range(6):
        lo = rng.uniform(0.0, _SPAN * 0.75)
        predicate = RangePredicate1D(lo, lo + rng.uniform(64.0, _SPAN / 2))
        op_id = recorder.invoke_query(predicate, 5)
        run.reads += 1
        run.post_heal_reads += 1
        recorder.ok(op_id, index.query(predicate, 5))
    full = RangePredicate1D(0.0, _SPAN)
    op_id = recorder.invoke_query(full, len(acked) + 4)
    run.reads += 1
    recorder.ok(op_id, index.query(full, len(acked) + 4))
    run.check = check_history(recorder.events, elements)
    return run


__all__ = [
    "PartitionScenario",
    "SCENARIOS",
    "ScenarioRun",
    "run_partition_scenario",
    "run_sharded_partition_scenario",
    "scenario_elements",
    "STEP",
    "LEASE_TTL",
    "DEFAULT_STEPS",
]
