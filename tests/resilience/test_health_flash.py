"""HealthSummary flash mirroring: wiring through the guard, and the
record_flash / record / snapshot race the summary's lock must close."""

import threading

from toy import RangePredicate, ToyMax, ToyPrioritized, make_toy_elements
from repro.core.theorem2 import ExpectedTopKIndex
from repro.durability.durable import DurableTopKIndex
from repro.durability.logstore import LogStructuredStore
from repro.em.model import EMContext, IOStats
from repro.flash.disk import FlashDisk
from repro.flash.ftl import FlashConfig
from repro.resilience.guard import HealthReport, HealthSummary, ResilientTopKIndex


def flash_guard():
    disk = FlashDisk(config=FlashConfig(pages_per_block=8))
    ctx = EMContext(B=8, disk=disk)
    store = LogStructuredStore(ctx=ctx, B=8)
    inner = ExpectedTopKIndex(
        make_toy_elements(30, seed=1), ToyPrioritized, ToyMax, seed=3
    )
    durable = DurableTopKIndex(inner, store=store, commit_interval=4)
    return ResilientTopKIndex(durable), durable


class TestGuardWiring:
    def test_queries_mirror_flash_gauges_into_health(self):
        guard, durable = flash_guard()
        for element in make_toy_elements(16, seed=2, weight_offset=0.5):
            durable.insert(element)
        durable.checkpoint()
        guard.query(RangePredicate(0, 2500), 5)
        health = guard.health
        io = durable.durability_io
        assert health.flash_write_amp == io.write_amplification >= 1.0
        assert health.flash_max_wear == io.flash_max_wear
        assert health.flash_mean_wear == io.flash_mean_wear
        assert health.flash_erases == io.flash_erases

    def test_plain_backend_keeps_flash_fields_zero(self):
        inner = ExpectedTopKIndex(
            make_toy_elements(20, seed=1), ToyPrioritized, ToyMax, seed=3
        )
        guard = ResilientTopKIndex(inner)
        guard.query(RangePredicate(0, 2500), 3)
        assert guard.health.flash_write_amp == 0.0
        assert guard.health.flash_max_wear == 0

    def test_snapshot_and_delta_carry_flash_fields(self):
        guard, durable = flash_guard()
        guard.query(RangePredicate(0, 2500), 5)
        before = guard.health.snapshot()
        assert "flash_write_amp" in before
        for element in make_toy_elements(8, seed=4, weight_offset=0.7):
            durable.insert(element)
        guard.query(RangePredicate(0, 2500), 5)
        window = guard.health.delta(before)
        assert window["flash_write_amp"] >= 0.0


class TestConcurrency:
    def test_record_flash_races_record_and_snapshot(self):
        # Regression for the mirror path: record_flash runs on the query
        # path while serving workers fold HealthReports and the ops
        # plane snapshots — all three must serialise on the summary
        # lock, never observing a half-written mirror.
        summary = HealthSummary()
        io = IOStats()
        io.flash_host_writes = 100
        io.flash_device_writes = 150
        io.flash_erases = 9
        io.flash_max_wear = 4
        io.flash_mean_wear = 2.5
        rounds = 300
        snapshots = []
        errors = []

        def mirror():
            try:
                for _ in range(rounds):
                    summary.record_flash(io)
            except Exception as exc:  # pragma: no cover - the regression
                errors.append(exc)

        def fold():
            try:
                for _ in range(rounds):
                    summary.record(HealthReport(attempts=1))
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        def observe():
            try:
                for _ in range(rounds):
                    snapshots.append(summary.snapshot())
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=fn)
            for fn in (mirror, mirror, fold, fold, observe, observe)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert summary.queries == 2 * rounds
        assert summary.flash_write_amp == io.write_amplification == 1.5
        # Every snapshot saw the mirror either untouched or complete.
        for snap in snapshots:
            assert snap["flash_write_amp"] in (0.0, 1.5)
            assert snap["flash_max_wear"] in (0, 4)
