"""The prior reduction of Rahul–Janardan [28]: binary search on ``tau``.

Before this paper, the best general route from prioritized to top-k
reporting was (eqs. (1)–(2) in Section 1.2):

    S_top(n) = O(S_pri(n))
    Q_top(n) = O(Q_pri(n) log2 n) + O((k/B) log2 n)

obtained by binary searching the weight threshold.  The multiplicative
``log2 n`` on the output term ``k/B`` is the deficiency both theorems
remove; benches E1–E3 measure this structure as the comparison point.

Implementation: the ``n`` distinct weights are kept sorted descending.
A top-k query binary searches for the smallest global weight rank ``m``
such that at least ``k`` matches have weight ``>= W[m]``; each probe is
one cost-monitored prioritized query with ``limit = k`` (cost
``Q_pri + O(k/B)``), and because weights are distinct the count at the
final ``m`` is exactly ``k`` (growing ``m`` by one adds at most one
match), so a last exact query returns precisely the answer.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from repro.core.interfaces import PrioritizedFactory, TopKIndex
from repro.core.problem import Element, Predicate
from repro.core.theorem1 import ReductionStats
from repro.em.selection import select_top_k


class BinarySearchTopKIndex(TopKIndex):
    """Top-k via binary search on the weight threshold (the [28] baseline)."""

    def __init__(self, elements: Sequence[Element], factory: PrioritizedFactory) -> None:
        self._elements = list(elements)
        self._ground = factory(self._elements)
        # Weights sorted descending: W[m-1] is the m-th largest weight.
        self._weights_desc: List[float] = sorted(
            (e.weight for e in self._elements), reverse=True
        )
        self.stats = ReductionStats()

    @property
    def n(self) -> int:
        return len(self._elements)

    def query(self, predicate: Predicate, k: int) -> List[Element]:
        """Exact top-k, heaviest first, in ``O((Q_pri + k/B) log n)``."""
        self.stats.queries += 1
        if k <= 0 or self.n == 0:
            return []
        weights = self._weights_desc
        n = len(weights)
        # Binary search the smallest m in [1, n] whose threshold W[m-1]
        # admits at least k matches; "no such m" means |q(D)| < k.
        lo, hi = 1, n + 1
        while lo < hi:
            mid = (lo + hi) // 2
            tau = weights[mid - 1]
            self.stats.monitored_probes += 1
            probe = self._ground.query(predicate, tau, limit=k)
            if probe.truncated or len(probe.elements) >= k:
                hi = mid
            else:
                lo = mid + 1
        if lo > n:
            # Fewer than k matches in total: report them all.
            self.stats.threshold_fetches += 1
            result = self._ground.query(predicate, -math.inf)
            return select_top_k(result.elements, k)
        tau = weights[lo - 1]
        self.stats.threshold_fetches += 1
        result = self._ground.query(predicate, tau)
        return select_top_k(result.elements, k)

    def space_units(self) -> int:
        """Prioritized structure plus the sorted weight list."""
        return self._ground.space_units() + len(self._weights_desc)
