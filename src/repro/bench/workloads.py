"""Synthetic workloads for the five application problems.

The paper has no experimental section, so these generators define the
workloads for the claim-validation experiments (DESIGN.md section 6):
uniformly scattered objects with distinct weights, plus the two
motivating scenarios from Section 1.4 (the dating-site rectangles and
the hotel 3D-dominance points).

Every generator is fully deterministic in its seed, so EXPERIMENTS.md
rows are reproducible.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.interfaces import MaxFactory, PrioritizedFactory
from repro.core.problem import Element, Predicate
from repro.geometry.primitives import Ball, Halfplane, Interval, Rect
from repro.structures.circular import (
    CircularPredicate,
    LiftedCircularMax,
    LiftedCircularPrioritized,
)
from repro.structures.dominance import DominanceMax, DominancePredicate, DominancePrioritized
from repro.structures.halfplane import HalfplaneMax, HalfplanePredicate, HalfplanePrioritized
from repro.structures.interval_stabbing import (
    DynamicIntervalStabbingMax,
    SegmentTreeIntervalPrioritized,
    StabbingPredicate,
)
from repro.structures.kdtree import (
    Box,
    HalfspacePredicate,
    KDTreeIndex,
    KDTreeMax,
    OrthogonalRangePredicate,
)
from repro.structures.point_enclosure import (
    CascadedRectangleStabbingMax,
    EnclosurePredicate,
    RectanglePrioritized,
)
from repro.structures.range1d import (
    RangePredicate1D,
    RangeTree1DMax,
    RangeTree1DPrioritized,
)
from repro.structures.range1d_dynamic import DynamicRangeTreap

UNIVERSE = 1000.0  # coordinate range for every synthetic workload


@dataclass
class ProblemInstance:
    """One generated problem: data, factories, and a query generator."""

    name: str
    elements: List[Element]
    prioritized_factory: PrioritizedFactory
    max_factory: MaxFactory
    predicate_gen: Callable[[random.Random], Predicate]
    supports_updates: bool = False
    element_gen: Optional[Callable[[random.Random, float], Element]] = None

    def predicates(self, count: int, seed: int = 0) -> List[Predicate]:
        """A reproducible batch of query predicates."""
        rng = random.Random(seed)
        return [self.predicate_gen(rng) for _ in range(count)]


def distinct_weights(n: int, rng: random.Random) -> List[float]:
    """``n`` distinct weights, uniformly shuffled (the paper's convention)."""
    return [float(w) for w in rng.sample(range(10 * n), n)]


DISTRIBUTIONS = ("uniform", "clustered", "correlated")


def position_for(rng: random.Random, distribution: str) -> float:
    """A coordinate in [0, UNIVERSE] under the named distribution.

    ``uniform`` — i.i.d. uniform; ``clustered`` — a mixture of three
    tight Gaussians (hot spots stress the canonical decompositions);
    ``correlated`` — handled by :func:`correlate_weights`, positions
    stay uniform here.
    """
    if distribution == "clustered":
        center = rng.choice((0.15, 0.5, 0.85)) * UNIVERSE
        return min(UNIVERSE, max(0.0, rng.gauss(center, UNIVERSE * 0.03)))
    return rng.uniform(0, UNIVERSE)


def correlate_weights(elements: List[Element], anchor: float) -> List[Element]:
    """Re-rank weights so elements near ``anchor`` are heaviest.

    Keeps the weight *multiset* (still distinct) but assigns the
    largest weights to the spatially closest elements — the adversarial
    case for top-k structures, where every heavy element crowds into
    the same canonical nodes.
    """

    def locus(element: Element) -> float:
        obj = element.obj
        if isinstance(obj, Interval):
            return (obj.lo + obj.hi) / 2.0
        if isinstance(obj, tuple):
            return obj[0]
        return float(obj)

    weights = sorted((e.weight for e in elements), reverse=True)
    by_distance = sorted(elements, key=lambda e: abs(locus(e) - anchor))
    return [Element(e.obj, w, e.payload) for e, w in zip(by_distance, weights)]


# ----------------------------------------------------------------------
# Element generators
# ----------------------------------------------------------------------
def gen_interval(rng: random.Random, weight: float) -> Element:
    """A random interval; lengths are log-uniform so stab counts vary."""
    center = rng.uniform(0, UNIVERSE)
    length = math.exp(rng.uniform(math.log(0.1), math.log(UNIVERSE / 4)))
    return Element(Interval(center - length / 2, center + length / 2), weight)


def gen_rect(rng: random.Random, weight: float) -> Element:
    """A random rectangle (the dating-site acceptable-range box)."""
    cx, cy = rng.uniform(0, UNIVERSE), rng.uniform(0, UNIVERSE)
    wx = math.exp(rng.uniform(math.log(1.0), math.log(UNIVERSE / 3)))
    wy = math.exp(rng.uniform(math.log(1.0), math.log(UNIVERSE / 3)))
    return Element(Rect(cx - wx / 2, cx + wx / 2, cy - wy / 2, cy + wy / 2), weight)


def gen_point3(rng: random.Random, weight: float) -> Element:
    """A random 3D point (the hotel price/distance/rating triple)."""
    return Element(
        (rng.uniform(0, UNIVERSE), rng.uniform(0, UNIVERSE), rng.uniform(0, UNIVERSE)),
        weight,
    )


def gen_point2(rng: random.Random, weight: float) -> Element:
    """A random 2D point (halfplane reporting)."""
    return Element((rng.uniform(0, UNIVERSE), rng.uniform(0, UNIVERSE)), weight)


def gen_point_d(d: int) -> Callable[[random.Random, float], Element]:
    """Generator of random d-dimensional points."""

    def gen(rng: random.Random, weight: float) -> Element:
        return Element(tuple(rng.uniform(0, UNIVERSE) for _ in range(d)), weight)

    return gen


# ----------------------------------------------------------------------
# Predicate generators
# ----------------------------------------------------------------------
def gen_stab_predicate(rng: random.Random) -> StabbingPredicate:
    """A uniform stabbing point."""
    return StabbingPredicate(rng.uniform(0, UNIVERSE))


def gen_point1(rng: random.Random, weight: float) -> Element:
    """A random point on the line (1D range reporting)."""
    return Element(rng.uniform(0, UNIVERSE), weight)


def gen_range1d_predicate(rng: random.Random) -> RangePredicate1D:
    """A random range with log-uniform width (varied selectivity)."""
    width = math.exp(rng.uniform(math.log(UNIVERSE / 100), math.log(UNIVERSE / 2)))
    lo = rng.uniform(-width / 2, UNIVERSE - width / 2)
    return RangePredicate1D(lo, lo + width)


def gen_enclosure_predicate(rng: random.Random) -> EnclosurePredicate:
    """A uniform query point for point enclosure."""
    return EnclosurePredicate((rng.uniform(0, UNIVERSE), rng.uniform(0, UNIVERSE)))


def gen_dominance_predicate(rng: random.Random) -> DominancePredicate:
    # Corners biased upward so result sizes span empty to nearly-all.
    return DominancePredicate(
        tuple(UNIVERSE * rng.random() ** 0.5 for _ in range(3))
    )


def gen_halfplane_predicate(rng: random.Random) -> HalfplanePredicate:
    """A halfplane with uniform normal direction through a uniform anchor."""
    theta = rng.uniform(0, 2 * math.pi)
    normal = (math.cos(theta), math.sin(theta))
    anchor = (rng.uniform(0, UNIVERSE), rng.uniform(0, UNIVERSE))
    c = normal[0] * anchor[0] + normal[1] * anchor[1]
    return HalfplanePredicate(Halfplane(normal, c))


def gen_halfspace_predicate(d: int) -> Callable[[random.Random], HalfspacePredicate]:
    """Generator of random d-dimensional halfspaces (Gaussian normals)."""

    def gen(rng: random.Random) -> HalfspacePredicate:
        normal = tuple(rng.gauss(0, 1) for _ in range(d))
        anchor = tuple(rng.uniform(0, UNIVERSE) for _ in range(d))
        c = sum(a * b for a, b in zip(normal, anchor))
        return HalfspacePredicate(Halfplane(normal, c))

    return gen


def gen_circular_predicate(d: int) -> Callable[[random.Random], CircularPredicate]:
    """Generator of random balls with log-uniform radii."""

    def gen(rng: random.Random) -> CircularPredicate:
        center = tuple(rng.uniform(0, UNIVERSE) for _ in range(d))
        radius = math.exp(rng.uniform(math.log(UNIVERSE / 50), math.log(UNIVERSE / 2)))
        return CircularPredicate(Ball(center, radius))

    return gen


def gen_orthorange_predicate(d: int) -> Callable[[random.Random], OrthogonalRangePredicate]:
    """Generator of random axis-parallel query boxes."""

    def gen(rng: random.Random) -> OrthogonalRangePredicate:
        lo, hi = [], []
        for _ in range(d):
            width = math.exp(rng.uniform(math.log(UNIVERSE / 50), math.log(UNIVERSE / 1.5)))
            a = rng.uniform(-width / 2, UNIVERSE - width / 2)
            lo.append(a)
            hi.append(a + width)
        return OrthogonalRangePredicate(Box(tuple(lo), tuple(hi)))

    return gen


def bounded_predicates(
    problem: "ProblemInstance",
    count: int,
    target: int,
    seed: int = 0,
    max_tries: int = 4000,
) -> List[Predicate]:
    """Predicates whose result size is ``Theta(target)`` regardless of n.

    Rejection-samples the problem's own query generator, keeping
    predicates with ``target/2 <= |q(D)| <= 2*target`` (brute counted).
    Scaling experiments use these so a query's *search term* is
    measured rather than its output term.
    """
    rng = random.Random(seed)
    kept: List[Predicate] = []
    for _ in range(max_tries):
        predicate = problem.predicate_gen(rng)
        size = sum(1 for e in problem.elements if predicate.matches(e.obj))
        if target / 2 <= size <= 2 * target:
            kept.append(predicate)
            if len(kept) == count:
                return kept
    if not kept:
        raise RuntimeError(
            f"could not find predicates with ~{target} results for {problem.name}"
        )
    found = len(kept)
    while len(kept) < count:  # recycle on sparse generators
        kept.append(kept[len(kept) % found])
    return kept[:count]


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def make_problem(
    name: str, n: int, seed: int = 0, distribution: str = "uniform"
) -> ProblemInstance:
    """Generate a named problem instance of size ``n``.

    Known names: ``range1d``, ``range1d_dynamic``, ``interval_stabbing``,
    ``point_enclosure``, ``dominance3d``, ``halfplane2d``,
    ``halfspace3d``, ``halfspace4d``, ``circular2d``, ``circular3d``.

    ``distribution`` selects the data shape (``uniform``, ``clustered``
    or ``correlated`` — see :func:`position_for`); the non-uniform
    shapes currently apply to the 1D problems (``range1d*``,
    ``interval_stabbing``), which are the canonical stress substrates.
    """
    if distribution not in DISTRIBUTIONS:
        raise KeyError(
            f"unknown distribution {distribution!r}; known: {DISTRIBUTIONS}"
        )
    try:
        builder = PROBLEMS[name]
    except KeyError:
        raise KeyError(f"unknown problem {name!r}; known: {sorted(PROBLEMS)}") from None
    instance = builder(n, seed)
    if distribution == "uniform" or name not in (
        "range1d",
        "range1d_dynamic",
        "interval_stabbing",
    ):
        return instance
    rng = random.Random(seed + 101)
    if distribution == "clustered":
        if name == "interval_stabbing":
            elements = []
            for e in instance.elements:
                center = position_for(rng, "clustered")
                half = e.obj.length / 2.0
                elements.append(Element(Interval(center - half, center + half), e.weight))
        else:
            elements = [
                Element(position_for(rng, "clustered"), e.weight)
                for e in instance.elements
            ]
        instance.elements = elements
    elif distribution == "correlated":
        instance.elements = correlate_weights(instance.elements, UNIVERSE / 2.0)
    return instance


def _make_range1d(n: int, seed: int) -> ProblemInstance:
    rng = random.Random(seed)
    weights = distinct_weights(n, rng)
    elements = [gen_point1(rng, w) for w in weights]
    return ProblemInstance(
        name="range1d",
        elements=elements,
        prioritized_factory=RangeTree1DPrioritized,
        max_factory=RangeTree1DMax,
        predicate_gen=gen_range1d_predicate,
        element_gen=gen_point1,
    )


def _make_range1d_dynamic(n: int, seed: int) -> ProblemInstance:
    rng = random.Random(seed)
    weights = distinct_weights(n, rng)
    elements = [gen_point1(rng, w) for w in weights]
    return ProblemInstance(
        name="range1d_dynamic",
        elements=elements,
        prioritized_factory=DynamicRangeTreap,
        max_factory=DynamicRangeTreap,
        predicate_gen=gen_range1d_predicate,
        supports_updates=True,
        element_gen=gen_point1,
    )


def _make_interval_stabbing(n: int, seed: int) -> ProblemInstance:
    rng = random.Random(seed)
    weights = distinct_weights(n, rng)
    elements = [gen_interval(rng, w) for w in weights]
    return ProblemInstance(
        name="interval_stabbing",
        elements=elements,
        prioritized_factory=SegmentTreeIntervalPrioritized,
        max_factory=DynamicIntervalStabbingMax,
        predicate_gen=gen_stab_predicate,
        supports_updates=True,
        element_gen=gen_interval,
    )


def _make_point_enclosure(n: int, seed: int) -> ProblemInstance:
    rng = random.Random(seed)
    weights = distinct_weights(n, rng)
    elements = [gen_rect(rng, w) for w in weights]
    return ProblemInstance(
        name="point_enclosure",
        elements=elements,
        prioritized_factory=RectanglePrioritized,
        max_factory=CascadedRectangleStabbingMax,
        predicate_gen=gen_enclosure_predicate,
        element_gen=gen_rect,
    )


def _make_dominance3d(n: int, seed: int) -> ProblemInstance:
    rng = random.Random(seed)
    weights = distinct_weights(n, rng)
    elements = [gen_point3(rng, w) for w in weights]
    return ProblemInstance(
        name="dominance3d",
        elements=elements,
        prioritized_factory=DominancePrioritized,
        max_factory=DominanceMax,
        predicate_gen=gen_dominance_predicate,
        element_gen=gen_point3,
    )


def _make_halfplane2d(n: int, seed: int) -> ProblemInstance:
    rng = random.Random(seed)
    weights = distinct_weights(n, rng)
    elements = [gen_point2(rng, w) for w in weights]
    return ProblemInstance(
        name="halfplane2d",
        elements=elements,
        prioritized_factory=HalfplanePrioritized,
        max_factory=HalfplaneMax,
        predicate_gen=gen_halfplane_predicate,
        element_gen=gen_point2,
    )


def _make_orthorange(d: int) -> Callable[[int, int], ProblemInstance]:
    def build(n: int, seed: int) -> ProblemInstance:
        rng = random.Random(seed)
        weights = distinct_weights(n, rng)
        gen = gen_point_d(d)
        elements = [gen(rng, w) for w in weights]
        return ProblemInstance(
            name=f"orthorange{d}d",
            elements=elements,
            prioritized_factory=KDTreeIndex,
            max_factory=KDTreeMax,
            predicate_gen=gen_orthorange_predicate(d),
            element_gen=gen,
        )

    return build


def _make_halfspace(d: int) -> Callable[[int, int], ProblemInstance]:
    def build(n: int, seed: int) -> ProblemInstance:
        rng = random.Random(seed)
        weights = distinct_weights(n, rng)
        gen = gen_point_d(d)
        elements = [gen(rng, w) for w in weights]
        return ProblemInstance(
            name=f"halfspace{d}d",
            elements=elements,
            prioritized_factory=KDTreeIndex,
            max_factory=KDTreeMax,
            predicate_gen=gen_halfspace_predicate(d),
            element_gen=gen,
        )

    return build


def _make_circular(d: int) -> Callable[[int, int], ProblemInstance]:
    def build(n: int, seed: int) -> ProblemInstance:
        rng = random.Random(seed)
        weights = distinct_weights(n, rng)
        gen = gen_point_d(d)
        elements = [gen(rng, w) for w in weights]
        return ProblemInstance(
            name=f"circular{d}d",
            elements=elements,
            prioritized_factory=LiftedCircularPrioritized,
            max_factory=LiftedCircularMax,
            predicate_gen=gen_circular_predicate(d),
            element_gen=gen,
        )

    return build


PROBLEMS: Dict[str, Callable[[int, int], ProblemInstance]] = {
    "range1d": _make_range1d,
    "range1d_dynamic": _make_range1d_dynamic,
    "interval_stabbing": _make_interval_stabbing,
    "point_enclosure": _make_point_enclosure,
    "dominance3d": _make_dominance3d,
    "halfplane2d": _make_halfplane2d,
    "orthorange2d": _make_orthorange(2),
    "orthorange3d": _make_orthorange(3),
    "halfspace3d": _make_halfspace(3),
    "halfspace4d": _make_halfspace(4),
    "circular2d": _make_circular(2),
    "circular3d": _make_circular(3),
}
