"""Chaos scenarios with known ground truth, graded end to end.

The :class:`ChaosScenarioRunner` builds a live replicated (or sharded)
stack, scripts a fault injection with a **known blamed scope**, runs a
steady workload while the :class:`~repro.ops.operator.Operator` ticks
alongside it, and grades the control plane against the ground truth:

* **detection latency** — ticks from injection to the first incident;
* **localization accuracy** — did the first incident blame the scope
  the script actually injected into?
* **time to mitigate** — ticks from detection to resolution;
* **exactness** — every workload answer during the storm, and a probe
  sweep after resolution, is compared to the brute-force oracle.

Five scripted scenarios cover the failure families PRs 1–5 made
injectable (:data:`DEFAULT_SCENARIOS`):

``fault_storm``
    Moderate read+write fault rates on the **primary**.  Storms are a
    race the reactive layer always wins: each ship retry re-reads the
    WAL chain, so even moderate rates accumulate a condemnation streak
    within one query batch and the primary dies mid-tick.  The
    operator's job here is *restoring redundancy* — blame the dead
    machine, reboot it from disk.
``brownout``
    Injected read/write **latency** on the primary — no faults are
    raised, so the streak policy never sees it and the machine stays
    alive indefinitely.  Only the control plane can notice (counted
    latency units in telemetry) and only its gentle ``force_failover``
    lever moves traffic off the slow primary; a follow-up reboot
    clears the injected latency from the demoted machine.
``condemned_replica``
    A follower with 100% fault rates; the cluster's own streak policy
    condemns it within a tick, leaving redundancy degraded.  The
    operator's job is to *restore redundancy* with a disk reboot.
``shard_loss``
    A shard machine dies between queries.  Aliveness telemetry flags it
    immediately and ``recover_shard`` reboots it **off the query
    path** — the reactive in-query ladder never has to fire.
``slow_drip``
    Low-probability read corruption on a follower.  Per-tick thresholds
    never fire; the sliding-window rule accumulates, and the ladder
    runs scrub → reboot (a scrub repair would *inherit* the corrupting
    environment; adoption on reboot attaches a fresh, disarmed plan —
    the reboot is what actually stops the drip).

Every tick runs the same order: scripted injection, then
``operator.tick()``, then the workload slice — the control plane polls
on its own cadence, it is not gated on query traffic.  Workloads write
as well as read (chaos fires on durable I/O), and the runner maintains
the live element list the oracle and the operator's verification share.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.problem import Element, top_k_of
from repro.ops.operator import Operator, OperatorPolicy
from repro.ops.detector import DetectorPolicy
from repro.replication.cluster import replicated_index
from repro.replication.failover import FailoverPolicy
from repro.resilience.faults import FaultPlan
from repro.resilience.guard import GuardPolicy, ResilientTopKIndex
from repro.sharding.sharded import sharded_index
from repro.structures.range1d_dynamic import DynamicRangeTreap
from repro.structures.range1d import RangePredicate1D

KIND_FAULT_STORM = "fault_storm"
KIND_BROWNOUT = "brownout"
KIND_CONDEMNED = "condemned_replica"
KIND_SHARD_LOSS = "shard_loss"
KIND_SLOW_DRIP = "slow_drip"

_REPLICATED_KINDS = (
    KIND_FAULT_STORM, KIND_BROWNOUT, KIND_CONDEMNED, KIND_SLOW_DRIP
)


@dataclass(frozen=True)
class ScenarioSpec:
    """One scripted chaos run with known ground truth."""

    name: str
    kind: str
    target: str                 # the machine/shard the script injects into
    ticks: int = 16
    inject_at: int = 3          # tick at which the fault plan arms
    queries_per_tick: int = 8
    writes_per_tick: int = 2
    n_elements: int = 96
    seed: int = 0
    read_fail_rate: float = 0.0
    write_fail_rate: float = 0.0
    corrupt_rate: float = 0.0
    read_latency: int = 0
    write_latency: int = 0
    max_consecutive_faults: int = 3  # cluster condemnation streak


DEFAULT_SCENARIOS: Tuple[ScenarioSpec, ...] = (
    ScenarioSpec(
        name="storm-on-primary", kind=KIND_FAULT_STORM, target="replica-0",
        read_fail_rate=0.35, write_fail_rate=0.35, seed=101,
        max_consecutive_faults=10,
    ),
    ScenarioSpec(
        name="brownout-on-primary", kind=KIND_BROWNOUT, target="replica-0",
        read_latency=4, write_latency=4, seed=505,
    ),
    ScenarioSpec(
        name="condemned-follower", kind=KIND_CONDEMNED, target="replica-1",
        read_fail_rate=1.0, write_fail_rate=1.0, seed=202,
    ),
    ScenarioSpec(
        name="shard-machine-loss", kind=KIND_SHARD_LOSS, target="shard-1",
        writes_per_tick=0, seed=303,
    ),
    ScenarioSpec(
        name="drip-corruption", kind=KIND_SLOW_DRIP, target="replica-1",
        corrupt_rate=0.25, ticks=22, seed=404,
    ),
)


@dataclass
class ScenarioResult:
    """The graded timeline of one run."""

    spec: ScenarioSpec
    truth: str                          # injected scope identifier
    detected_at: Optional[int] = None   # operator tick of first incident
    localized_to: Optional[str] = None  # first incident's blamed scope id
    resolved_at: Optional[int] = None   # tick the truth incident closed
    levers: List[str] = field(default_factory=list)
    incidents: int = 0
    unresolved: int = 0
    answers: int = 0
    answers_exact: int = 0
    post_probes_exact: bool = False
    timeline: List[str] = field(default_factory=list)

    @property
    def detection_latency(self) -> Optional[int]:
        if self.detected_at is None:
            return None
        return self.detected_at - self.spec.inject_at

    @property
    def localization_correct(self) -> bool:
        return self.localized_to == self.truth

    @property
    def mitigated(self) -> bool:
        """Every incident closed, at least one lever genuinely fired."""
        return (
            self.incidents > 0
            and self.unresolved == 0
            and bool(self.levers)
        )

    @property
    def all_exact(self) -> bool:
        return self.answers_exact == self.answers and self.post_probes_exact


class ChaosScenarioRunner:
    """Build, script, run, and grade chaos scenarios (module docstring)."""

    def __init__(
        self,
        operator_policy: Optional[OperatorPolicy] = None,
        detector_policy: Optional[DetectorPolicy] = None,
    ) -> None:
        self.operator_policy = operator_policy
        self.detector_policy = detector_policy

    # ------------------------------------------------------------------
    # Stack builders
    # ------------------------------------------------------------------
    @staticmethod
    def _make_elements(n: int, seed: int) -> Tuple[List[Element], List[Element]]:
        """Initial elements plus a distinct-weight insert pool."""
        rng = random.Random(seed)
        total = n + n // 2
        weights = rng.sample(range(10 * total), total)
        positions = rng.sample(range(10 * total), total)
        pool = [
            Element(float(positions[i]), float(weights[i]))
            for i in range(total)
        ]
        return pool[:n], pool[n:]

    @staticmethod
    def _probes(elements: List[Element], seed: int, count: int = 24):
        rng = random.Random(seed + 7)
        span = int(max(e.obj for e in elements)) + 10
        probes = []
        for _ in range(count):
            lo = rng.randrange(-5, span)
            hi = rng.randrange(lo, span + 5)
            probes.append((RangePredicate1D(float(lo), float(hi)), rng.randrange(1, 9)))
        return probes

    def _build_replicated(self, spec: ScenarioSpec):
        elements, pool = self._make_elements(spec.n_elements, spec.seed)
        names = [f"replica-{i}" for i in range(3)]
        plans = []
        for i, name in enumerate(names):
            if name == spec.target:
                plans.append(FaultPlan(
                    seed=spec.seed + i,
                    read_fail_rate=spec.read_fail_rate,
                    write_fail_rate=spec.write_fail_rate,
                    corrupt_rate=spec.corrupt_rate,
                    read_latency=spec.read_latency,
                    write_latency=spec.write_latency,
                    armed=False,
                    machine=name,
                ))
            else:
                plans.append(FaultPlan(seed=spec.seed + i, armed=False, machine=name))
        cluster = replicated_index(
            elements, DynamicRangeTreap, DynamicRangeTreap,
            num_replicas=3, seed=spec.seed,
            names=names, fault_plans=plans,
            failover_policy=FailoverPolicy(
                max_consecutive_faults=spec.max_consecutive_faults
            ),
        )
        guard = ResilientTopKIndex(
            cluster, elements=elements,
            policy=GuardPolicy(seed=spec.seed, spot_check_rate=0.0),
        )
        target_plan = plans[names.index(spec.target)]
        return elements, pool, cluster, guard, target_plan

    def _build_sharded(self, spec: ScenarioSpec):
        elements, pool = self._make_elements(spec.n_elements, spec.seed)
        sharded = sharded_index(
            elements, DynamicRangeTreap, DynamicRangeTreap,
            num_shards=4, strategy="range", seed=spec.seed,
        )
        guard = ResilientTopKIndex(
            sharded, elements=elements,
            policy=GuardPolicy(seed=spec.seed, spot_check_rate=0.0),
        )
        return elements, pool, sharded, guard

    # ------------------------------------------------------------------
    def run(self, spec: ScenarioSpec) -> ScenarioResult:
        """One scripted run: inject → operate → grade."""
        if spec.kind in _REPLICATED_KINDS:
            elements, pool, cluster, guard, target_plan = (
                self._build_replicated(spec)
            )
            backend = cluster
        elif spec.kind == KIND_SHARD_LOSS:
            elements, pool, backend, guard = self._build_sharded(spec)
            target_plan = None
        else:
            raise ValueError(f"unknown scenario kind {spec.kind!r}")

        live = list(elements)  # shared with the operator's oracle
        probes = self._probes(live, spec.seed)
        operator = Operator(
            guard=guard,
            policy=self.operator_policy,
            detector_policy=self.detector_policy,
            probes=probes,
            elements=live,
        )
        rng = random.Random(spec.seed + 13)
        result = ScenarioResult(spec=spec, truth=spec.target)

        for tick in range(1, spec.ticks + 1):
            # 1. scripted injection
            if tick == spec.inject_at:
                if spec.kind == KIND_SHARD_LOSS:
                    backend.router.shards[spec.target].machine.mark_dead()
                else:
                    target_plan.arm()
            # 2. control plane
            operator.tick()
            # 3. workload slice (writes make chaos fire on durable I/O)
            for _ in range(spec.writes_per_tick):
                if pool:
                    element = pool.pop(0)
                    backend.insert(element)
                    live.append(element)
            for _ in range(spec.queries_per_tick):
                predicate, k = probes[rng.randrange(len(probes))]
                answer = guard.query(predicate, k)
                result.answers += 1
                if answer == top_k_of(live, predicate, k):
                    result.answers_exact += 1

        # Let in-flight incidents settle with a quiet tail.
        settle = 0
        while operator.log.open and settle < 8:
            operator.tick()
            settle += 1

        # 4. grading
        log = operator.log
        result.incidents = len(log.incidents)
        result.unresolved = len(log.open) + sum(
            1 for i in log.incidents if i.status == "exhausted"
        )
        if log.incidents:
            first = log.incidents[0]
            result.detected_at = first.opened_at
            result.localized_to = first.scope[1]
            truth_incidents = [
                i for i in log.incidents if i.scope[1] == spec.target
            ]
            if truth_incidents and truth_incidents[0].resolved_at is not None:
                result.resolved_at = truth_incidents[0].resolved_at
            for incident in log.incidents:
                result.levers.extend(incident.levers_fired)
        result.timeline = log.timeline()
        result.post_probes_exact = all(
            guard.query(predicate, k) == top_k_of(live, predicate, k)
            for predicate, k in probes
        )
        return result

    def run_suite(
        self, specs: Tuple[ScenarioSpec, ...] = DEFAULT_SCENARIOS
    ) -> List[ScenarioResult]:
        return [self.run(spec) for spec in specs]

    # ------------------------------------------------------------------
    def run_healthy(
        self,
        ticks: int = 25,
        queries_per_tick: int = 8,
        writes_per_tick: int = 2,
        seed: int = 0,
    ) -> Operator:
        """A no-chaos soak: the do-no-harm baseline.

        Runs the same replicated stack and workload shape as the chaos
        scenarios with every fault plan at zero rates, and returns the
        operator so callers can assert that **zero incidents opened and
        zero mitigations fired**.
        """
        spec = ScenarioSpec(
            name="healthy-soak", kind=KIND_FAULT_STORM, target="replica-0",
            ticks=ticks, inject_at=ticks + 1,  # never injects
            queries_per_tick=queries_per_tick,
            writes_per_tick=writes_per_tick, seed=seed,
        )
        elements, pool, cluster, guard, _ = self._build_replicated(spec)
        live = list(elements)
        probes = self._probes(live, seed)
        operator = Operator(
            guard=guard,
            policy=self.operator_policy,
            detector_policy=self.detector_policy,
            probes=probes,
            elements=live,
        )
        rng = random.Random(seed + 13)
        for _ in range(ticks):
            operator.tick()
            for _ in range(writes_per_tick):
                if pool:
                    element = pool.pop(0)
                    cluster.insert(element)
                    live.append(element)
            for _ in range(queries_per_tick):
                predicate, k = probes[rng.randrange(len(probes))]
                answer = guard.query(predicate, k)
                assert answer == top_k_of(live, predicate, k)
        return operator


def grade_suite(results: List[ScenarioResult]) -> Dict[str, object]:
    """Aggregate a suite into the E20 acceptance metrics."""
    graded = len(results)
    localized = sum(1 for r in results if r.localization_correct)
    latencies = [
        r.detection_latency for r in results if r.detection_latency is not None
    ]
    mitigations = [
        r.resolved_at - r.detected_at
        for r in results
        if r.resolved_at is not None and r.detected_at is not None
    ]
    return {
        "scenarios": graded,
        "localization_accuracy": localized / graded if graded else 0.0,
        "mean_detection_latency_ticks": (
            sum(latencies) / len(latencies) if latencies else None
        ),
        "mean_time_to_mitigate_ticks": (
            sum(mitigations) / len(mitigations) if mitigations else None
        ),
        "all_mitigated": all(r.mitigated for r in results),
        "all_answers_exact": all(r.all_exact for r in results),
    }


__all__ = [
    "ScenarioSpec",
    "ScenarioResult",
    "ChaosScenarioRunner",
    "DEFAULT_SCENARIOS",
    "grade_suite",
    "KIND_FAULT_STORM",
    "KIND_BROWNOUT",
    "KIND_CONDEMNED",
    "KIND_SHARD_LOSS",
    "KIND_SLOW_DRIP",
]
