"""DurableStore: seals, dual superblocks, chains, damage detection."""

import pytest

from repro.durability.store import DurableStore, SnapshotEntry, seal, unseal
from repro.resilience.errors import (
    InvalidConfiguration,
    RecoveryError,
    SnapshotIntegrityError,
)


class TestSeals:
    def test_round_trip(self):
        records = seal([("a", 1), ("b", 2)])
        assert unseal(records) == [("a", 1), ("b", 2)]

    def test_empty_payload_round_trips(self):
        assert unseal(seal([])) == []

    def test_torn_prefix_is_detected(self):
        records = seal([1, 2, 3])
        with pytest.raises(SnapshotIntegrityError, match="no seal"):
            unseal(records[:-1])  # the seal is written last, lost first

    def test_damaged_payload_is_detected(self):
        records = seal([1, 2, 3])
        records[1] = 99
        with pytest.raises(SnapshotIntegrityError, match="seal mismatch"):
            unseal(records)

    def test_empty_block_is_detected(self):
        with pytest.raises(SnapshotIntegrityError, match="empty"):
            unseal([], block_id=7)


class TestStoreLifecycle:
    def test_format_and_reopen(self):
        store = DurableStore(B=8)
        store.snapshots = [SnapshotEntry(1, 5, 10, 1234)]
        store.wal_head = 9
        store.commit_superblock()
        reopened = DurableStore.open(store.disk, B=8)
        assert reopened.snapshots == [SnapshotEntry(1, 5, 10, 1234)]
        assert reopened.wal_head == 9
        assert reopened.epoch == store.epoch

    def test_requires_b_of_at_least_four(self):
        with pytest.raises(InvalidConfiguration, match="B >= 4"):
            DurableStore(B=2)

    def test_unformatted_disk_rejected(self):
        from repro.em.model import Disk

        with pytest.raises(RecoveryError, match="superblock"):
            DurableStore.open(Disk(), B=8)

    def test_superblock_commit_alternates_blocks(self):
        store = DurableStore(B=8)
        store.commit_superblock()  # epoch 1 -> block 1
        store.commit_superblock()  # epoch 2 -> block 0
        epoch_after_two = store.epoch
        reopened = DurableStore.open(store.disk, B=8)
        assert reopened.epoch == epoch_after_two

    def test_torn_superblock_falls_back_to_previous(self):
        store = DurableStore(B=8)
        store.wal_head = 3
        store.commit_superblock()  # epoch 1, durable
        # Tear the next superblock commit after the fact: the highest
        # epoch is damaged, recovery must adopt epoch 1.
        store.wal_head = 4
        store.commit_superblock()  # epoch 2
        newest = store.epoch % 2
        records = store.disk.raw_read(newest)
        store.disk.torn_write(newest, list(records), keep=0)
        reopened = DurableStore.open(store.disk, B=8)
        assert reopened.wal_head == 3  # the previous generation

    def test_both_superblocks_damaged_is_fatal(self):
        store = DurableStore(B=8)
        store.commit_superblock()
        for block_id in (0, 1):
            records = store.disk.raw_read(block_id)
            if records:
                store.disk.torn_write(block_id, list(records), keep=0)
        with pytest.raises(RecoveryError, match="no valid superblock"):
            DurableStore.open(store.disk, B=8)


class TestChains:
    def test_chain_round_trip(self):
        store = DurableStore(B=8)
        records = [("r", i) for i in range(50)]
        head = store.write_chain("SNAP", records)
        store.flush()
        assert list(store.read_chain("SNAP", head)) == records

    def test_empty_chain(self):
        store = DurableStore(B=8)
        head = store.write_chain("SNAP", [])
        store.flush()
        assert list(store.read_chain("SNAP", head)) == []

    def test_wrong_kind_rejected(self):
        store = DurableStore(B=8)
        head = store.write_chain("SNAP", [1, 2, 3])
        store.flush()
        with pytest.raises(SnapshotIntegrityError, match="kind"):
            list(store.read_chain("WAL", head))

    def test_torn_tail_block_detected(self):
        store = DurableStore(B=8)
        head = store.write_chain("SNAP", [("r", i) for i in range(20)])
        store.flush()
        blocks = store._chain_blocks(head)
        tail = blocks[-1]
        store.disk.torn_write(tail, list(store.disk.raw_read(tail)), keep=1)
        store.ctx.drop_cache()  # the machine that cached the block is gone
        with pytest.raises(SnapshotIntegrityError):
            list(store.read_chain("SNAP", head))

    def test_broken_pointer_detected(self):
        store = DurableStore(B=8)
        head = store.write_chain("SNAP", [1])
        store.flush()
        records = list(store.disk.raw_read(head))
        kind, seq, _ = records[0]
        records[0] = (kind, seq, 10_000)  # points past the disk
        store.disk.raw_write(head, records)
        with pytest.raises(SnapshotIntegrityError):
            list(store.read_chain("SNAP", head))

    def test_durability_io_is_charged(self):
        store = DurableStore(B=8)
        before = store.ctx.stats.total
        store.write_chain("SNAP", [("r", i) for i in range(40)])
        store.flush()
        assert store.ctx.stats.total > before  # persistence is not free

    def test_reachable_blocks_cover_the_root(self):
        store = DurableStore(B=8)
        head = store.write_chain("SNAP", [("r", i) for i in range(20)])
        store.flush()
        store.snapshots = [SnapshotEntry(1, head, 20, 0)]
        store.commit_superblock()
        reachable = store.reachable_blocks()
        assert 0 in reachable and 1 in reachable
        for block_id in store._chain_blocks(head):
            assert block_id in reachable
