"""E4 — space: S_top = O(S_pri) (Thm 1) and the ladder bound (Thm 2).

Paper claims: eq. (3) — Theorem 1's structure occupies ``O(S_pri(n))``;
eq. (5) — Theorem 2 adds only max structures over geometrically
shrinking samples, totalling ``o(n/B) + O(S_max(6n/(B Q_max)))``.

Measured: structure space (native units) as ``n`` doubles; the
top-k/ground ratios must stay flat, and Theorem 2's ladder samples must
sum to a vanishing fraction of ``n``.
"""

from repro.bench.runner import fit_loglog_slope
from repro.bench.tables import render_table
from repro.core.theorem1 import WorstCaseTopKIndex
from repro.core.theorem2 import ExpectedTopKIndex
from repro.structures.interval_stabbing import (
    DynamicIntervalStabbingMax,
    SegmentTreeIntervalPrioritized,
)

from helpers import interval_elements

SIZES = (1_000, 2_000, 4_000, 8_000, 16_000)


def _sweep():
    rows = []
    t1_ratios = []
    for n in SIZES:
        elements = list(interval_elements(n, seed=4))
        t1 = WorstCaseTopKIndex(elements, SegmentTreeIntervalPrioritized, seed=5)
        t2 = ExpectedTopKIndex(
            elements, SegmentTreeIntervalPrioritized, DynamicIntervalStabbingMax, seed=6
        )
        ground = t1.ground_space_units()
        t1_ratio = t1.space_units() / max(1, ground)
        ladder_total = sum(t2.ladder_sample_sizes())
        rows.append(
            [
                n,
                ground,
                round(t1_ratio, 3),
                ladder_total,
                round(ladder_total / n, 4),
                t2.num_levels,
            ]
        )
        t1_ratios.append(t1_ratio)
    ratio_slope = fit_loglog_slope(list(SIZES), t1_ratios)
    return rows, ratio_slope


def bench_e4_space_audit(benchmark, results_sink):
    rows, ratio_slope = _sweep()
    results_sink(
        render_table(
            "E4  Space audit: Theorem 1 total vs ground; Theorem 2 sample ladder",
            ["n", "S_pri (words)", "S_top/S_pri", "ladder |R_i| sum", "ladder/n", "levels"],
            rows,
            note=f"S_top/S_pri log-log slope = {ratio_slope:.3f} (flat expected)",
        )
    )
    assert all(row[2] <= 8 for row in rows), "Theorem 1 space exceeded O(S_pri)"
    assert abs(ratio_slope) < 0.2, "Theorem 1 space ratio trends with n"
    # Theorem 2's samples shrink geometrically: their union is tiny.
    assert all(row[4] < 0.35 for row in rows), "ladder samples too large"

    def run_build():
        elements = list(interval_elements(2_000, seed=4))
        WorstCaseTopKIndex(elements, SegmentTreeIntervalPrioritized, seed=5)

    benchmark(run_build)
