"""Tuning knobs shared by the reductions.

The paper fixes constants for proof convenience — ``f = 12*lambda*B*
Q_pri(n)``, sampling rate ``p = 4*(lambda/K)*ln n``, rank threshold
``ceil(8*lambda*ln n)``, escalation ratio ``sigma = 1/20``.  Those
constants make union bounds over ``n^lambda`` predicates go through;
at bench-scale ``n`` they would render every core-set trivial (``f``
exceeds ``n``).  The *algorithms* never depend on the constants for
correctness (both reductions verify what they fetched and re-probe on a
miss), so :class:`TuningParams` exposes them with practical defaults and
a :meth:`paper_faithful` preset for tests that exercise the exact
constants of the proofs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace


@dataclass(frozen=True)
class TuningParams:
    """Constants parameterising Theorems 1 and 2.

    Attributes
    ----------
    lam:
        The polynomial-boundedness exponent ``lambda`` (the paper's
        halfspace example has ``lambda = 2``).
    coreset_rate_c:
        Multiplier ``c`` in the sampling rate ``p = c*(lam/K)*ln n`` of
        Lemma 2 (paper: 4).
    rank_threshold_c:
        Multiplier ``c`` in the probe rank ``ceil(c*lam*ln n)`` used by
        the query algorithm (paper: 8).
    small_k_factor:
        Multiplier ``c`` in ``f = c*lam*B*Q_pri(n)`` separating the
        small-k and large-k regimes (paper: 12).
    sigma:
        Theorem 2's escalation ratio for ``K_i = K_1*(1+sigma)^{i-1}``
        (paper: 1/20).  Larger values mean fewer sample levels but the
        analysis needs ``(1+sigma) * P[round fails] < 1`` for the
        expected cost to converge — Lemma 3 only guarantees failure
        ``<= 0.91``, so sigma must stay well below ``1/0.91 - 1 ~ 0.099``
        for worst-case workloads; 0.2 is safe for the ~0.65 failure
        rates seen empirically while keeping ladders short.
    slack:
        The "4" in the paper's ``[K, 4K]`` rank windows and ``4K``
        cost-monitoring caps.
    max_retries:
        How many times a query re-probes with a relaxed rank before
        falling back to an exact (unmonitored) prioritized query.  The
        paper's constants make failure vanishingly unlikely; practical
        constants trade a small failure rate for usable core-set sizes.
    """

    lam: float = 1.0
    coreset_rate_c: float = 1.0
    rank_threshold_c: float = 1.0
    small_k_factor: float = 1.0
    sigma: float = 0.2
    slack: float = 4.0
    max_retries: int = 3

    @staticmethod
    def paper_faithful(lam: float = 2.0) -> "TuningParams":
        """The exact constants used in the paper's proofs."""
        return TuningParams(
            lam=lam,
            coreset_rate_c=4.0,
            rank_threshold_c=8.0,
            small_k_factor=12.0,
            sigma=1.0 / 20.0,
            slack=4.0,
            max_retries=3,
        )

    def with_(self, **overrides) -> "TuningParams":
        """A copy with selected fields replaced."""
        return replace(self, **overrides)

    def coreset_rate(self, n: int, K: float) -> float:
        """Sampling probability ``p = c*(lam/K)*ln n``, clamped to (0, 1]."""
        if n <= 1:
            return 1.0
        p = self.coreset_rate_c * (self.lam / K) * math.log(n)
        return min(1.0, max(p, 1e-12))

    def probe_rank(self, n: int) -> int:
        """Rank ``ceil(c*lam*ln n)`` probed inside a core-set."""
        if n <= 1:
            return 1
        return max(1, math.ceil(self.rank_threshold_c * self.lam * math.log(n)))

    def small_k_cutoff(self, B: int, q_pri: float) -> int:
        """``f = c*lam*B*Q_pri(n)`` — the small-k/large-k boundary."""
        return max(1, math.ceil(self.small_k_factor * self.lam * B * q_pri))
