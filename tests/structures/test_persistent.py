"""Tests for the persistent treap."""

import bisect
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.structures.persistent import PersistentTreap


def int_cmp(a, b):
    return (a > b) - (a < b)


class TestBasics:
    def test_empty(self):
        t = PersistentTreap(int_cmp)
        assert len(t) == 0
        assert list(t.items()) == []
        assert t.first_satisfying(lambda v: True) is None

    def test_insert_returns_new_version(self):
        t0 = PersistentTreap(int_cmp)
        t1 = t0.insert(5)
        assert len(t0) == 0
        assert len(t1) == 1

    def test_items_sorted(self):
        t = PersistentTreap(int_cmp)
        for v in [5, 1, 9, 3, 7]:
            t = t.insert(v)
        assert list(t.items()) == [1, 3, 5, 7, 9]

    def test_duplicate_insert_rejected(self):
        t = PersistentTreap(int_cmp).insert(5)
        with pytest.raises(KeyError):
            t.insert(5)

    def test_delete(self):
        t = PersistentTreap(int_cmp)
        for v in [1, 2, 3]:
            t = t.insert(v)
        t2 = t.delete(2)
        assert list(t2.items()) == [1, 3]
        assert list(t.items()) == [1, 2, 3]  # old version untouched

    def test_delete_missing_raises(self):
        t = PersistentTreap(int_cmp).insert(1)
        with pytest.raises(KeyError):
            t.delete(99)


class TestPersistence:
    def test_all_versions_remain_valid(self):
        versions = [PersistentTreap(int_cmp)]
        reference = [[]]
        rng = random.Random(1)
        current = versions[0]
        items = rng.sample(range(10**6), 200)
        for v in items:
            current = current.insert(v)
            versions.append(current)
            reference.append(sorted(reference[-1] + [v]))
        for version, expected in zip(versions, reference):
            assert list(version.items()) == expected

    def test_deletions_preserve_old_versions(self):
        t = PersistentTreap(int_cmp)
        for v in range(50):
            t = t.insert(v)
        full = t
        for v in range(0, 50, 2):
            t = t.delete(v)
        assert list(full.items()) == list(range(50))
        assert list(t.items()) == list(range(1, 50, 2))


class TestFirstSatisfying:
    def test_successor_search(self):
        t = PersistentTreap(int_cmp)
        for v in [10, 20, 30, 40]:
            t = t.insert(v)
        # Smallest item >= q: goes_right(item) == item < q.
        assert t.first_satisfying(lambda item: item < 25) == 30
        assert t.first_satisfying(lambda item: item < 10) == 10
        assert t.first_satisfying(lambda item: item < 41) is None

    @settings(max_examples=40, deadline=None)
    @given(
        items=st.lists(st.integers(0, 1000), unique=True, max_size=80),
        q=st.integers(-5, 1005),
    )
    def test_matches_bisect(self, items, q):
        t = PersistentTreap(int_cmp)
        for v in items:
            t = t.insert(v)
        ordered = sorted(items)
        index = bisect.bisect_left(ordered, q)
        expected = ordered[index] if index < len(ordered) else None
        assert t.first_satisfying(lambda item: item < q) == expected


class TestBalance:
    def test_depth_stays_logarithmic(self):
        """Treap priorities keep the expected depth O(log n)."""
        t = PersistentTreap(int_cmp)
        for v in range(2000):  # adversarial (sorted) insertion order
            t = t.insert(v)

        def depth(node):
            if node is None:
                return 0
            return 1 + max(depth(node.left), depth(node.right))

        import math
        import sys

        sys.setrecursionlimit(10_000)
        assert depth(t._root) <= 6 * math.log2(2000)


@settings(max_examples=30, deadline=None)
@given(ops=st.lists(st.tuples(st.booleans(), st.integers(0, 60)), max_size=120))
def test_property_mixed_ops_match_sorted_list(ops):
    t = PersistentTreap(int_cmp)
    reference = []
    for is_insert, value in ops:
        if is_insert and value not in reference:
            t = t.insert(value)
            bisect.insort(reference, value)
        elif not is_insert and value in reference:
            t = t.delete(value)
            reference.remove(value)
    assert list(t.items()) == reference
