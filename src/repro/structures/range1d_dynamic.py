"""Dynamic 1D range structures: a weight-augmented treap.

The dynamic side of top-k *range* reporting is exactly where the cited
literature lives (Sheng–Tao PODS'12 [33]; Tao PODS'14 [35] — dynamic
I/O-efficient 1D top-k).  This module provides the dynamic substrate:
a coordinate-keyed treap whose nodes carry their subtree's maximum
weight, giving

* prioritized reporting in ``O((1 + t) log n)`` expected — the
  recursion only enters subtrees whose max weight reaches ``tau``;
* max reporting in near-``O(log n)`` (branch-and-bound on the same
  augmentation);
* insert/delete in ``O(log n)`` expected.

Combined with Theorem 2, this yields a *fully dynamic* top-k range
reporting structure — the repository's analogue of [35]'s result (the
paper's own Theorem 2 is what removes the update-time penalty).
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Sequence, Tuple

from repro.core.interfaces import (
    DynamicMaxIndex,
    DynamicPrioritizedIndex,
    OpCounter,
    PrioritizedResult,
)
from repro.core.problem import Element
from repro.structures.range1d import RangePredicate1D


class _TreapNode:
    __slots__ = ("element", "key", "priority", "left", "right", "max_weight", "size")

    def __init__(self, element: Element, priority: float) -> None:
        self.element = element
        self.key = (element.obj, element.weight)  # coordinate, tie-broken
        self.priority = priority
        self.left: Optional["_TreapNode"] = None
        self.right: Optional["_TreapNode"] = None
        self.max_weight = element.weight
        self.size = 1

    def refresh(self) -> None:
        self.max_weight = self.element.weight
        self.size = 1
        for child in (self.left, self.right):
            if child is not None:
                self.max_weight = max(self.max_weight, child.max_weight)
                self.size += child.size


class DynamicRangeTreap(DynamicPrioritizedIndex, DynamicMaxIndex):
    """One structure serving both dynamic roles for 1D ranges.

    It deliberately implements *both* dynamic interfaces: Theorem 2
    accepts it as the prioritized factory and the max factory at once
    (two independent instances keep the black boxes honest).
    """

    def __init__(self, elements: Sequence[Element] = (), seed: int = 0) -> None:
        self.ops = OpCounter()
        self._rng = random.Random(seed)
        self._root: Optional[_TreapNode] = None
        for element in elements:
            self.insert(element)

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self._root.size if self._root is not None else 0

    def __contains__(self, element: Element) -> bool:
        """O(log n) expected membership (for idempotent WAL replay)."""
        key = (element.obj, element.weight)
        node = self._root
        while node is not None:
            if key < node.key:
                node = node.left
            elif key > node.key:
                node = node.right
            elif node.element == element:
                return True
            else:
                node = node.right
        return False

    def query_cost_bound(self) -> float:
        return max(1.0, math.log2(max(2, self.n)))

    # ------------------------------------------------------------------
    # Durability (snapshot/restore)
    # ------------------------------------------------------------------
    SNAPSHOT_FORMAT = "range-treap"
    SNAPSHOT_VERSION = 1

    def snapshot_state(self) -> dict:
        """Elements with their *assigned* priorities plus the RNG state.

        A treap's shape is a deterministic function of its (key,
        priority) pairs, so recording the priorities — rather than the
        seed that produced them — lets restore rebuild the identical
        tree; the RNG state makes post-restore inserts draw the same
        priorities the original would have.
        """
        elements: List[Element] = []
        priorities: List[float] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node is None:
                continue
            elements.append(node.element)
            priorities.append(node.priority)
            stack.append(node.right)
            stack.append(node.left)
        return {
            "format": self.SNAPSHOT_FORMAT,
            "version": self.SNAPSHOT_VERSION,
            "elements": elements,
            "priorities": priorities,
            "rng_state": self._rng.getstate(),
        }

    @classmethod
    def restore(cls, state: dict) -> "DynamicRangeTreap":
        """Rebuild the identical treap from :meth:`snapshot_state`."""
        if state.get("format") != cls.SNAPSHOT_FORMAT:
            raise TypeError(
                f"snapshot format {state.get('format')!r} is not "
                f"{cls.SNAPSHOT_FORMAT!r}"
            )
        self = cls.__new__(cls)
        self.ops = OpCounter()
        self._rng = random.Random()
        self._rng.setstate(state["rng_state"])
        self._root = None
        for element, priority in zip(state["elements"], state["priorities"]):
            self._root = self._insert(self._root, _TreapNode(element, priority))
        return self

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def insert(self, element: Element) -> None:
        """Expected ``O(log n)`` treap insertion."""
        node = _TreapNode(element, self._rng.random())
        self._root = self._insert(self._root, node)

    def delete(self, element: Element) -> None:
        """Expected ``O(log n)``; raises ``KeyError`` if absent."""
        key = (element.obj, element.weight)
        found, self._root = self._delete(self._root, key, element)
        if not found:
            raise KeyError(f"element not present: {element!r}")

    def _insert(self, node: Optional[_TreapNode], fresh: _TreapNode) -> _TreapNode:
        if node is None:
            return fresh
        if fresh.key < node.key:
            node.left = self._insert(node.left, fresh)
            if node.left.priority > node.priority:
                node = self._rotate_right(node)
        else:
            node.right = self._insert(node.right, fresh)
            if node.right.priority > node.priority:
                node = self._rotate_left(node)
        node.refresh()
        return node

    def _delete(
        self, node: Optional[_TreapNode], key, element: Element
    ) -> Tuple[bool, Optional[_TreapNode]]:
        if node is None:
            return False, None
        if key < node.key:
            found, node.left = self._delete(node.left, key, element)
        elif key > node.key:
            found, node.right = self._delete(node.right, key, element)
        elif node.element == element:
            return True, self._merge(node.left, node.right)
        else:  # same key, different element (shouldn't occur with distinct weights)
            found, node.right = self._delete(node.right, key, element)
        node.refresh()
        return found, node

    def _merge(
        self, left: Optional[_TreapNode], right: Optional[_TreapNode]
    ) -> Optional[_TreapNode]:
        if left is None:
            return right
        if right is None:
            return left
        if left.priority > right.priority:
            left.right = self._merge(left.right, right)
            left.refresh()
            return left
        right.left = self._merge(left, right.left)
        right.refresh()
        return right

    @staticmethod
    def _rotate_right(node: _TreapNode) -> _TreapNode:
        left = node.left
        node.left = left.right
        left.right = node
        node.refresh()
        left.refresh()
        return left

    @staticmethod
    def _rotate_left(node: _TreapNode) -> _TreapNode:
        right = node.right
        node.right = right.left
        right.left = node
        node.refresh()
        right.refresh()
        return right

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(
        self,
        predicate: RangePredicate1D,
        tau: float = None,  # type: ignore[assignment]
        limit: Optional[int] = None,
    ) -> "PrioritizedResult | Optional[Element]":
        """Dual-role query (the two interfaces share the name).

        With ``tau`` given: prioritized reporting.  Without: max
        reporting — matching :class:`DynamicMaxIndex`'s contract.
        """
        if tau is None:
            return self._max_query(predicate)
        out: List[Element] = []
        truncated = self._collect(self._root, predicate, tau, limit, out)
        return PrioritizedResult(out, truncated=truncated)

    def _collect(
        self,
        node: Optional[_TreapNode],
        predicate: RangePredicate1D,
        tau: float,
        limit: Optional[int],
        out: List[Element],
    ) -> bool:
        if node is None or node.max_weight < tau:
            return False
        self.ops.node_visits += 1
        coordinate = node.element.obj
        if coordinate < predicate.lo:
            return self._collect(node.right, predicate, tau, limit, out)
        if coordinate > predicate.hi:
            return self._collect(node.left, predicate, tau, limit, out)
        if node.element.weight >= tau:
            out.append(node.element)
            self.ops.scanned += 1
            if limit is not None and len(out) > limit:
                return True
        if self._collect(node.left, predicate, tau, limit, out):
            return True
        return self._collect(node.right, predicate, tau, limit, out)

    def _max_query(self, predicate: RangePredicate1D) -> Optional[Element]:
        best: Optional[Element] = None
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node is None:
                continue
            if best is not None and node.max_weight <= best.weight:
                continue
            self.ops.node_visits += 1
            coordinate = node.element.obj
            if coordinate < predicate.lo:
                stack.append(node.right)
                continue
            if coordinate > predicate.hi:
                stack.append(node.left)
                continue
            if best is None or node.element.weight > best.weight:
                best = node.element
            stack.append(node.left)
            stack.append(node.right)
        return best

    def space_units(self) -> int:
        """Linear: one node per element."""
        return 2 * self.n
