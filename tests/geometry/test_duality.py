"""Tests for point/line duality and the lifting map."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.duality import (
    dual_line_of_point,
    dual_point_of_line,
    lift_ball_to_halfspace,
    lift_point,
)
from repro.geometry.primitives import Ball, Line2D

finite = st.floats(allow_nan=False, allow_infinity=False, min_value=-100, max_value=100)


class TestDuality:
    def test_roundtrip(self):
        p = (3.0, -2.0)
        assert dual_point_of_line(dual_line_of_point(p)) == p

    @settings(max_examples=50, deadline=None)
    @given(px=finite, py=finite, a=finite, b=finite)
    def test_incidence_preserved(self, px, py, a, b):
        """p above line l  <=>  dual(l) above dual(p)."""
        line = Line2D(a, b)
        point_above_line = py - line.at(px)
        dual_p = dual_line_of_point((px, py))
        dual_l = dual_point_of_line(line)
        dual_above = dual_l[1] - dual_p.at(dual_l[0])
        # The standard duality flips the sign of above-ness consistently:
        # both differences are py - (a*px + b) up to sign.
        assert abs(abs(point_above_line) - abs(dual_above)) < 1e-6


class TestLifting:
    def test_lift_point_appends_squared_norm(self):
        assert lift_point((3.0, 4.0)) == (3.0, 4.0, 25.0)

    @settings(max_examples=60, deadline=None)
    @given(
        cx=finite,
        cy=finite,
        r=st.floats(0.01, 50, allow_nan=False),
        px=finite,
        py=finite,
    )
    def test_ball_membership_equals_lifted_halfspace_membership(self, cx, cy, r, px, py):
        ball = Ball((cx, cy), r)
        halfspace = lift_ball_to_halfspace(ball)
        lifted = lift_point((px, py))
        inside_ball = ball.contains((px, py))
        inside_halfspace = halfspace.contains(lifted)
        # Allow a whisker of float slack exactly on the sphere.
        if abs((px - cx) ** 2 + (py - cy) ** 2 - r**2) > 1e-6:
            assert inside_ball == inside_halfspace

    def test_three_dimensional_lift(self):
        ball = Ball((1.0, 2.0, 3.0), 2.0)
        halfspace = lift_ball_to_halfspace(ball)
        assert halfspace.dim == 4
        inside = (1.0, 2.0, 1.5)
        outside = (4.0, 2.0, 3.0)
        assert halfspace.contains(lift_point(inside))
        assert not halfspace.contains(lift_point(outside))
