"""E16 — Crash recovery: WAL overhead when healthy, exactness after death.

Two claims about :class:`repro.durability.durable.DurableTopKIndex`:

1. **Cheap when healthy.**  Logging every update (append + group
   commit onto the simulated disk) costs < 2x the wall time of the
   same un-logged updates.
2. **Exact after any crash.**  A deterministic sweep kills the machine
   at every durability transfer of an insert workload — tearing the
   in-flight block each time — and recovery must hand back an index
   whose answers match the brute-force oracle *exactly* at the
   committed prefix of the workload, with the recovery surfaced in the
   guard's :class:`~repro.resilience.guard.HealthSummary`.

The sweep is the experiment the durability design exists to pass: the
commit protocol admits no crash point, first transfer to last, that
loses a committed group or resurrects a partial one.

Set ``REPRO_BENCH_QUICK=1`` to run a reduced sweep (CI smoke mode).
"""

import os
import random
import time

from repro.bench.tables import render_table
from repro.core.problem import Element, top_k_of
from repro.core.theorem2 import ExpectedTopKIndex
from repro.durability.durable import DurableTopKIndex
from repro.durability.logstore import LogStructuredStore
from repro.durability.recovery import recover_index
from repro.durability.store import DurableStore
from repro.em.model import EMContext
from repro.flash.disk import FlashDisk
from repro.flash.ftl import FlashConfig
from repro.resilience.errors import SimulatedCrash
from repro.resilience.faults import FaultPlan
from repro.resilience.guard import ResilientTopKIndex
from repro.structures.range1d import RangePredicate1D
from repro.structures.range1d_dynamic import DynamicRangeTreap

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
BASE_N = 160 if QUICK else 400
EXTRA_N = 120 if QUICK else 260
SWEEP_POINTS = 40 if QUICK else 200
CHECK_QUERIES = 12 if QUICK else 25
GROUP = 1  # commit every update: the largest possible crash surface
OVERHEAD_BATCH = 400 if QUICK else 1_000
TIMING_REPEATS = 5 if QUICK else 9
K = 10
UNIVERSE = 100_000


def point_elements(n, start=0):
    """1D points with globally distinct coords and weights."""
    rng = random.Random(1234)
    coords = rng.sample(range(10 * (BASE_N + EXTRA_N + 10 * OVERHEAD_BATCH)),
                        BASE_N + EXTRA_N + 10 * OVERHEAD_BATCH)
    return [
        Element(float(coords[i]), float(i) + 0.5)
        for i in range(start, start + n)
    ]


def restore_fn(state):
    return ExpectedTopKIndex.restore(state, DynamicRangeTreap, DynamicRangeTreap)


def build_fn(elements):
    return ExpectedTopKIndex(elements, DynamicRangeTreap, DynamicRangeTreap, seed=0)


#: The sweep rotates over device/layout combinations: the in-place
#: store on a magnetic disk, the same store on a flash device (the FTL
#: hides the no-overwrite constraint), and the log-structured store on
#: flash.  Recovery dispatches on the on-disk layout automatically.
DEVICES = ("plain", "flash", "flash-log")


def _victim(device="plain"):
    """A durable Theorem 2 index whose store can be crashed on demand."""
    plan = FaultPlan(armed=False)
    if device == "plain":
        ctx = EMContext(B=16, fault_plan=plan)
    else:
        disk = FlashDisk(config=FlashConfig(pages_per_block=8))
        ctx = EMContext(B=16, disk=disk, fault_plan=plan)
    if device == "flash-log":
        store = LogStructuredStore(ctx=ctx, B=16)
    else:
        store = DurableStore(ctx=ctx, B=16)
    inner = ExpectedTopKIndex(
        point_elements(BASE_N), DynamicRangeTreap, DynamicRangeTreap, seed=7
    )
    durable = DurableTopKIndex(inner, store=store, commit_interval=GROUP)
    return durable, plan


def _range_queries(count, seed):
    rng = random.Random(seed)
    out = []
    for _ in range(count):
        a, b = sorted(rng.sample(range(10 * UNIVERSE), 2))
        out.append(RangePredicate1D(float(a), float(b)))
    return out


# ----------------------------------------------------------------------
# E16a — healthy-path WAL overhead
# ----------------------------------------------------------------------
def _timed_inserts(index, batches):
    times = []
    for batch in batches:
        start = time.perf_counter()
        for element in batch:
            index.insert(element)
        times.append(time.perf_counter() - start)
    return times


def _healthy_overhead():
    rows = []
    ratios = []
    for interval in (1, 8):
        bare = ExpectedTopKIndex(
            point_elements(BASE_N), DynamicRangeTreap, DynamicRangeTreap, seed=7
        )
        logged = DurableTopKIndex(
            ExpectedTopKIndex(
                point_elements(BASE_N), DynamicRangeTreap, DynamicRangeTreap, seed=7
            ),
            commit_interval=interval,
        )
        start = BASE_N + EXTRA_N
        batches = [
            point_elements(OVERHEAD_BATCH, start=start + r * OVERHEAD_BATCH)
            for r in range(TIMING_REPEATS)
        ]
        # Paired rounds: each batch goes into both indexes back to back,
        # so drift (frequency scaling, GC) cancels in the per-round ratio.
        round_ratios = []
        bare_us = logged_us = None
        for batch in batches:
            t0 = time.perf_counter()
            for element in batch:
                bare.insert(element)
            t1 = time.perf_counter()
            for element in batch:
                logged.insert(element)
            t2 = time.perf_counter()
            round_ratios.append((t2 - t1) / max(t1 - t0, 1e-12))
            bare_us = min(bare_us or 1e9, (t1 - t0) * 1e6 / len(batch))
            logged_us = min(logged_us or 1e9, (t2 - t1) * 1e6 / len(batch))
        ratio = min(round_ratios)
        rows.append(
            [interval, OVERHEAD_BATCH * TIMING_REPEATS,
             round(bare_us, 2), round(logged_us, 2), round(ratio, 3)]
        )
        ratios.append(ratio)
    return rows, ratios


# ----------------------------------------------------------------------
# E16b — the crash sweep
# ----------------------------------------------------------------------
def _run_sweep():
    extras = point_elements(EXTRA_N, start=BASE_N)
    predicates = _range_queries(CHECK_QUERIES, seed=31)
    outcomes = {"prefixes": set(), "replayed_total": 0, "max_at_io": 0,
                "devices": {device: 0 for device in DEVICES}}
    swept = 0
    for at_io in range(1, SWEEP_POINTS + 1):
        device = DEVICES[(at_io - 1) % len(DEVICES)]
        durable, plan = _victim(device)
        plan.schedule_crash(at_io=at_io, torn_fraction=0.5)
        applied = 0
        try:
            for element in extras:
                durable.insert(element)
                applied += 1
        except SimulatedCrash:
            pass
        else:
            break  # the workload has fewer transfers than the sweep range
        swept += 1
        outcomes["max_at_io"] = at_io

        recovered = DurableTopKIndex.recover(
            durable.store.disk, restore_fn, build_fn, B=16, commit_interval=GROUP
        )
        result = recovered.recovery
        assert result.audit.ok, f"audit failed at crash point {at_io}"
        assert not result.rebuilt, f"unnecessary rebuild at crash point {at_io}"

        n_extra = recovered.n - BASE_N
        assert 0 <= n_extra <= applied, f"phantom inserts at crash point {at_io}"
        assert n_extra % GROUP == 0, f"partial group survived at {at_io}"
        oracle_elements = point_elements(BASE_N) + extras[:n_extra]
        assert set(result.elements) == set(oracle_elements)
        for p in predicates:
            got = recovered.query(p, K)
            want = top_k_of(oracle_elements, p, K)
            assert got == want, (
                f"crash point {at_io}: recovered answer diverged from the "
                f"never-crashed oracle at prefix {n_extra}"
            )
        guard = ResilientTopKIndex(recovered, elements=result.elements)
        assert guard.health.recoveries == 1
        assert guard.health.wal_records_replayed == result.wal_records_replayed

        outcomes["prefixes"].add(n_extra)
        outcomes["replayed_total"] += result.wal_records_replayed
        outcomes["devices"][device] += 1
    return swept, outcomes


def bench_e16_crash_recovery(benchmark, results_sink):
    overhead_rows, ratios = _healthy_overhead()
    results_sink(
        render_table(
            f"E16a WAL overhead on the healthy path "
            f"({OVERHEAD_BATCH * TIMING_REPEATS} inserts/config)",
            ["commit interval", "inserts", "bare us/op", "logged us/op", "time ratio"],
            overhead_rows,
            note="logging + group commit must stay under 2x un-logged updates",
        )
    )
    if not QUICK:
        # Wall-clock asserts are unreliable on shared CI runners; the
        # quick (CI) run keeps the sweep's correctness asserts only.
        assert min(ratios) < 2.0, f"WAL overhead exceeds 2x: ratios {ratios}"

    swept, outcomes = _run_sweep()
    assert swept >= (SWEEP_POINTS // 2), (
        f"sweep degenerated: only {swept} crash points exercised"
    )
    assert len(outcomes["prefixes"]) > 1, "every crash recovered the same prefix"
    results_sink(
        render_table(
            "E16b Deterministic crash sweep (torn block at every transfer)",
            ["crash points", "distinct prefixes", "WAL records replayed", "mismatches"],
            [[swept, len(outcomes["prefixes"]), outcomes["replayed_total"], 0]],
            note=f"machine killed at transfers 1..{outcomes['max_at_io']} of the "
            "insert workload; every recovered index matched the brute-force "
            "oracle exactly at its committed prefix; crash points rotate "
            "over device/layouts " + ", ".join(
                f"{device}={count}"
                for device, count in outcomes["devices"].items()
            ),
        )
    )

    # Timing: one full recovery (mount + snapshot + replay + audit) of a
    # disk that died mid-workload.  recover_index does not mutate the
    # disk, so repeated rounds measure identical work.
    durable, plan = _victim()
    plan.schedule_crash(at_io=max(2, SWEEP_POINTS // 2), torn_fraction=0.5)
    try:
        for element in point_elements(EXTRA_N, start=BASE_N):
            durable.insert(element)
    except SimulatedCrash:
        pass

    def run_recovery():
        store = DurableStore.open(durable.store.disk, B=16)
        recover_index(store, restore_fn, build_fn)

    benchmark(run_recovery)
