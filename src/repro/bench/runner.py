"""Measurement utilities: cost probes, sweeps, and slope fitting.

The experiments (DESIGN.md section 6) validate *shapes*: how costs grow
with ``n`` and ``k``, who wins, and where crossovers fall.  Costs come
from three sources and all are captured per query batch:

* exact I/O counts from an :class:`~repro.em.model.EMContext` (the EM
  experiments),
* operation counters (:class:`~repro.core.interfaces.OpCounter`) from
  the RAM structures,
* wall-clock time (reported for context; never used for verdicts).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.interfaces import OpCounter
from repro.em.model import EMContext


@dataclass
class CostSample:
    """The measured cost of one query batch."""

    label: str
    queries: int
    wall_seconds: float
    ios: Optional[int] = None
    ops: Optional[int] = None
    reported: int = 0

    @property
    def wall_per_query_us(self) -> float:
        """Microseconds per query."""
        if self.queries == 0:
            return 0.0
        return 1e6 * self.wall_seconds / self.queries

    @property
    def ios_per_query(self) -> Optional[float]:
        if self.ios is None or self.queries == 0:
            return None
        return self.ios / self.queries

    @property
    def ops_per_query(self) -> Optional[float]:
        if self.ops is None or self.queries == 0:
            return None
        return self.ops / self.queries


def measure_queries(
    label: str,
    run_one: Callable[[object], Sequence],
    predicates: Sequence[object],
    ctx: Optional[EMContext] = None,
    ops: Optional[OpCounter] = None,
) -> CostSample:
    """Run ``run_one`` over every predicate, capturing all cost sources.

    ``run_one`` returns the query's result sequence (its length is
    accumulated into ``reported`` so output-sensitivity can be checked).
    """
    if ctx is not None:
        ctx.drop_cache()
        ctx.stats.reset()
    if ops is not None:
        ops.reset()
    reported = 0
    start = time.perf_counter()
    for predicate in predicates:
        result = run_one(predicate)
        reported += len(result)
    wall = time.perf_counter() - start
    return CostSample(
        label=label,
        queries=len(predicates),
        wall_seconds=wall,
        ios=ctx.stats.total if ctx is not None else None,
        ops=ops.total if ops is not None else None,
        reported=reported,
    )


def fit_loglog_slope(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of ``log y`` against ``log x``.

    A growth exponent: ~0 for constant, ~1 for linear; logarithmic
    growth shows up as a slope well below any polynomial's.  Used by
    benches and tests to check scaling shapes without absolute-number
    brittleness.
    """
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need at least two matching samples")
    lx = [math.log(max(x, 1e-12)) for x in xs]
    ly = [math.log(max(y, 1e-12)) for y in ys]
    mean_x = sum(lx) / len(lx)
    mean_y = sum(ly) / len(ly)
    num = sum((a - mean_x) * (b - mean_y) for a, b in zip(lx, ly))
    den = sum((a - mean_x) ** 2 for a in lx)
    if den == 0:
        return 0.0
    return num / den


def geometric_sizes(lo: int, hi: int, ratio: float = 2.0) -> List[int]:
    """Sizes ``lo, lo*ratio, ...`` up to ``hi`` inclusive-ish."""
    sizes = []
    size = float(lo)
    while size <= hi:
        sizes.append(int(round(size)))
        size *= ratio
    return sizes
