"""Map a tick's anomalies onto blamed scopes.

Detection says *something is wrong*; localization says *where*.  The
:class:`FaultLocalizer` folds one tick's :class:`Anomaly` list into a
short list of :class:`Blame` records, one per distinct scope, using the
labels the telemetry already carries — per-machine
:attr:`FaultStats.machine`, per-replica aliveness/lag, per-shard
health:

* anomalies naming the same identifier merge: a dead replica whose
  fault plan also spiked is **one** blamed machine, not two incidents;
* machine labels that name a shard (durable shard machines are labelled
  by their shard) collapse into that shard's scope, so the planner
  reaches for shard levers, not cluster levers;
* generic query-path symptoms (``rung_burst``) are absorbed into
  whatever specific blame co-fired this tick — they corroborate a sick
  machine or shard rather than opening a vague subsystem incident; only
  when *nothing* specific fired do they surface as a subsystem blame.

The dominant anomaly kind (ordered by severity below) names the blame;
confidence grows with the number of corroborating signals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.ops.detector import (
    SCOPE_MACHINE,
    SCOPE_REPLICA,
    SCOPE_SHARD,
    SCOPE_SUBSYSTEM,
    Anomaly,
    Scope,
)
from repro.ops.telemetry import TelemetrySample

# Most-severe first: the dominant kind of a multi-signal blame.
_SEVERITY = (
    "machine_crash",
    "shard_down",
    "replica_down",
    "corruption_drip",
    "fault_spike",
    "latency_storm",
    "lag_growth",
    "epoch_reject_spike",
    "ack_timeout_spike",
    "staleness_suspect",
    "write_amp_spike",
    "wear_imbalance",
    "hot_shard",
    "slo_breach",
    "shed_rate_spike",
    "queue_growth",
    "shed_spike",
    "queue_depth",
    "latency_regression",
    "rung_burst",
)
_ABSORBED = ("rung_burst",)  # corroborating, never a blame of their own


def _rank(kind: str) -> int:
    try:
        return _SEVERITY.index(kind)
    except ValueError:
        return len(_SEVERITY)


@dataclass(frozen=True)
class Blame:
    """One localized fault: a scope, its dominant symptom, confidence."""

    scope: Scope
    kind: str
    confidence: float
    anomalies: Tuple[Anomaly, ...] = field(default_factory=tuple)

    @property
    def scope_type(self) -> str:
        return self.scope[0]

    @property
    def scope_id(self) -> str:
        return self.scope[1]


class FaultLocalizer:
    """Anomalies -> blamed scopes (module docstring).

    ``cluster`` / ``sharded`` sharpen label classification: replica
    names collapse replica- and machine-scope signals together, shard
    names reroute machine labels to shard scope.
    """

    def __init__(self, cluster=None, sharded=None) -> None:
        self.cluster = cluster
        self.sharded = sharded

    # ------------------------------------------------------------------
    def _canonical_scope(self, anomaly: Anomaly) -> Scope:
        scope_type, scope_id = anomaly.scope
        if self.sharded is not None and scope_type in (SCOPE_MACHINE, SCOPE_REPLICA):
            shards = self.sharded.router.shards
            if scope_id in shards:
                return (SCOPE_SHARD, scope_id)
            # Replica-set shard machines are labelled "<shard>/<replica>".
            if "/" in scope_id and scope_id.split("/", 1)[0] in shards:
                return (SCOPE_SHARD, scope_id.split("/", 1)[0])
        if scope_type == SCOPE_REPLICA and self.cluster is not None:
            # The replica *is* a machine of the cluster: unify its
            # logical (lag, aliveness) and physical (fault plan) signals.
            if any(r.name == scope_id for r in self.cluster.replicas):
                return (SCOPE_MACHINE, scope_id)
        return (scope_type, scope_id)

    def localize(
        self, anomalies: List[Anomaly], sample: Optional[TelemetrySample] = None
    ) -> List[Blame]:
        """One tick's anomalies -> deduplicated, severity-ordered blames."""
        grouped: Dict[Scope, List[Anomaly]] = {}
        absorbed: List[Anomaly] = []
        for anomaly in anomalies:
            if anomaly.kind in _ABSORBED:
                absorbed.append(anomaly)
                continue
            grouped.setdefault(self._canonical_scope(anomaly), []).append(anomaly)

        specific = [
            scope for scope in grouped if scope[0] != SCOPE_SUBSYSTEM
        ]
        for anomaly in absorbed:
            if specific:
                # Corroborate every specific blame rather than opening a
                # vague one; deterministic order via sorted scopes.
                for scope in sorted(specific):
                    grouped[scope].append(anomaly)
            else:
                grouped.setdefault(
                    self._canonical_scope(anomaly), []
                ).append(anomaly)

        blames: List[Blame] = []
        for scope in sorted(grouped):
            scoped = grouped[scope]
            dominant = min(scoped, key=lambda a: (_rank(a.kind), a.tick))
            distinct_kinds = len({a.kind for a in scoped})
            confidence = min(1.0, 0.5 + 0.25 * (distinct_kinds - 1))
            blames.append(Blame(
                scope=scope,
                kind=dominant.kind,
                confidence=confidence,
                anomalies=tuple(scoped),
            ))
        blames.sort(key=lambda b: (_rank(b.kind), b.scope))
        return blames


__all__ = ["FaultLocalizer", "Blame"]
