"""`repro.flash` — a flash-translation layer beneath the block disk.

Real deployments sit on flash, where overwrites are rewrites and
sustained WAL+checkpoint traffic is silently multiplied by garbage
collection.  This package models that device honestly —
:class:`FlashTranslationLayer` (page mapping, erase blocks, greedy /
cost-benefit GC, trim, per-block wear) under :class:`FlashDisk`, a
drop-in for :class:`~repro.em.model.Disk` — so every layer built on the
EM machine can measure what the medium actually does with its writes.
"""

from repro.flash.disk import FlashDisk
from repro.flash.ftl import (
    GC_COST_BENEFIT,
    GC_GREEDY,
    FlashConfig,
    FlashStats,
    FlashTranslationLayer,
)

__all__ = [
    "FlashDisk",
    "FlashConfig",
    "FlashStats",
    "FlashTranslationLayer",
    "GC_GREEDY",
    "GC_COST_BENEFIT",
]
