"""Per-machine isolation: disks, fault plans, and counter attribution."""

import pytest

from conftest import elem, make_cluster
from repro.em.model import Disk, EMContext
from repro.resilience.errors import InvalidConfiguration
from repro.resilience.faults import FaultPlan
from toy import RangePredicate


class TestFaultScoping:
    def test_plan_binds_to_first_disk(self):
        plan = FaultPlan(machine="a")
        disk = Disk(label="a")
        EMContext(B=8, disk=disk, fault_plan=plan)
        assert plan.bound_disk is disk

    def test_rebinding_same_disk_is_a_reboot(self):
        plan = FaultPlan(machine="a")
        disk = Disk(label="a")
        EMContext(B=8, disk=disk, fault_plan=plan)
        EMContext(B=8, disk=disk, fault_plan=plan)  # fresh machine, same disk

    def test_attaching_to_a_sibling_disk_raises(self):
        plan = FaultPlan(machine="a")
        EMContext(B=8, disk=Disk(label="a"), fault_plan=plan)
        with pytest.raises(InvalidConfiguration, match="leak faults across"):
            EMContext(B=8, disk=Disk(label="b"), fault_plan=plan)

    def test_stats_carry_the_machine_label(self):
        plan = FaultPlan(machine="replica-7")
        assert plan.stats.machine == "replica-7"
        plan.stats.reset()
        assert plan.stats.machine == "replica-7"  # reset keeps identity

    def test_replica_labels_its_own_plan(self):
        cluster = make_cluster(n=10)
        for replica in cluster.replicas:
            assert replica.plan.machine == replica.name
            assert replica.plan.stats.machine == replica.name
            assert replica.plan.bound_disk is replica.disk
            assert replica.disk.label == replica.name


class TestCrashScoping:
    def test_follower_crash_never_touches_the_primary(self):
        cluster = make_cluster(n=20)
        victim = [r for r in cluster.replicas if not r.is_primary][0]
        victim.plan.schedule_crash(at_io=1)
        for i in range(20, 30):
            cluster.insert(elem(i))
        assert cluster.stats.primary_crashes == 0
        assert cluster.stats.follower_deaths == 1
        assert not victim.alive
        assert victim.plan.stats.crashes == 1
        survivors = [r for r in cluster.replicas if r.alive]
        assert all(r.plan.stats.crashes == 0 for r in survivors)
        # The cluster keeps serving exactly.
        answer = cluster.query(RangePredicate(0, 100), 5)
        assert [e.obj for e in answer] == [29, 28, 27, 26, 25]

    def test_crash_message_names_the_machine(self):
        cluster = make_cluster(n=10)
        victim = [r for r in cluster.replicas if not r.is_primary][0]
        victim.plan.schedule_crash(at_io=1)
        cluster.insert(elem(10))
        # The crash was absorbed by the cluster; the plan recorded it
        # against the right machine.
        assert victim.plan.stats.machine == victim.name
        assert victim.plan.crashed


class TestReplicaSurface:
    def test_lsn_properties_delegate_to_the_wal(self, cluster):
        primary = cluster.primary
        cluster.insert(elem(40))
        assert primary.durable_lsn == 1
        assert primary.applied_lsn == 1
        follower = [r for r in cluster.replicas if not r.is_primary][0]
        assert follower.durable_lsn == 1  # acked durably
        assert follower.applied_lsn == 0  # lazy apply

    def test_state_digest_is_stable_across_reads(self, cluster):
        before = cluster.primary.state_digest()
        cluster.query(RangePredicate(0, 100), 5, mode="primary")
        assert cluster.primary.state_digest() == before

    def test_identically_built_replicas_share_a_digest(self, cluster):
        digests = {r.state_digest() for r in cluster.replicas}
        assert len(digests) == 1
