"""Incident records: the operator's unit of accountability.

An :class:`Incident` tracks one blamed scope from detection to
resolution: when it was detected, where it was localized, which levers
fired (and what they reported), and when post-mitigation verification
plus a quiet period let it close.  The :class:`IncidentLog` is the
append-only history the chaos grader reads timelines from — detection
latency, localization accuracy, and time-to-mitigate all come straight
off these fields.

Lifecycle::

    OPEN ──lever fired──▶ MITIGATING ──verified + quiet──▶ RESOLVED
      │                        │
      └──── no lever ────▶ EXHAUSTED (symptoms persist, ladder spent)

A scope that re-offends while its incident is still open folds into
that incident (anomalies append, the escalation rung climbs); a scope
that re-offends *after* resolution opens a fresh incident.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.ops.detector import Anomaly, Scope

STATUS_OPEN = "open"
STATUS_MITIGATING = "mitigating"
STATUS_RESOLVED = "resolved"
STATUS_EXHAUSTED = "exhausted"


@dataclass
class MitigationRecord:
    """One lever pull (or deliberate deferral) inside an incident."""

    tick: int
    lever: str
    target: str
    outcome: str          # "ok: ...", "failed: ...", or "deferred: ..."
    verified: Optional[bool] = None  # post-mitigation probe verdict

    @property
    def fired(self) -> bool:
        return self.outcome.startswith("ok")


@dataclass
class Incident:
    """One blamed scope's timeline (module docstring)."""

    id: int
    scope: Scope
    kind: str
    opened_at: int                   # tick of detection + localization
    status: str = STATUS_OPEN
    anomalies: List[Anomaly] = field(default_factory=list)
    mitigations: List[MitigationRecord] = field(default_factory=list)
    resolved_at: Optional[int] = None
    rung: int = 0                    # escalation-ladder position
    last_action_tick: Optional[int] = None
    quiet_ticks: int = 0             # consecutive symptom-free ticks

    @property
    def open(self) -> bool:
        return self.status in (STATUS_OPEN, STATUS_MITIGATING)

    @property
    def levers_fired(self) -> List[str]:
        return [m.lever for m in self.mitigations if m.fired]

    @property
    def time_to_mitigate(self) -> Optional[int]:
        """Ticks from detection to resolution (``None`` while open)."""
        if self.resolved_at is None:
            return None
        return self.resolved_at - self.opened_at

    def describe(self) -> str:
        levers = "+".join(self.levers_fired) or "none"
        closed = (
            f"resolved@{self.resolved_at}"
            if self.resolved_at is not None
            else self.status
        )
        return (
            f"#{self.id} {self.scope[0]}:{self.scope[1]} [{self.kind}] "
            f"opened@{self.opened_at} levers={levers} {closed}"
        )


class IncidentLog:
    """Append-only incident history with open-incident folding."""

    def __init__(self) -> None:
        self.incidents: List[Incident] = []

    def __len__(self) -> int:
        return len(self.incidents)

    @property
    def open(self) -> List[Incident]:
        return [incident for incident in self.incidents if incident.open]

    @property
    def resolved(self) -> List[Incident]:
        return [
            incident
            for incident in self.incidents
            if incident.status == STATUS_RESOLVED
        ]

    def find_open(self, scope: Scope) -> Optional[Incident]:
        for incident in self.incidents:
            if incident.open and incident.scope == scope:
                return incident
        return None

    def fold(
        self, scope: Scope, kind: str, anomalies: List[Anomaly], tick: int
    ) -> Tuple[Incident, bool]:
        """Attach anomalies to the scope's open incident, or open one.

        Returns ``(incident, opened_now)``.
        """
        incident = self.find_open(scope)
        if incident is not None:
            incident.anomalies.extend(anomalies)
            incident.quiet_ticks = 0
            return incident, False
        incident = Incident(
            id=len(self.incidents) + 1,
            scope=scope,
            kind=kind,
            opened_at=tick,
            anomalies=list(anomalies),
        )
        self.incidents.append(incident)
        return incident, True

    def timeline(self) -> List[str]:
        return [incident.describe() for incident in self.incidents]


__all__ = [
    "Incident",
    "IncidentLog",
    "MitigationRecord",
    "STATUS_OPEN",
    "STATUS_MITIGATING",
    "STATUS_RESOLVED",
    "STATUS_EXHAUSTED",
]
