"""E15 — Fault recovery: guard overhead and exactness under injected faults.

Two claims about :class:`repro.resilience.guard.ResilientTopKIndex`:

1. **Cheap when healthy.**  With no fault plan attached, wrapping the
   E2 workload's Theorem 2 index costs < 10% extra query time and zero
   extra I/Os (the guard only adds a report object, a seeded coin flip,
   and the occasional in-memory spot-check).
2. **Exact when faulty.**  Under a 5% transient-read + 1% corruption
   plan every answer still equals the brute-force oracle, and the
   :class:`HealthSummary` books balance: each attempt ended in exactly
   one success, transient fault, budget exhaustion, or contract
   violation.

Set ``REPRO_BENCH_QUICK=1`` to run a reduced sweep (CI smoke mode).
"""

import os
import time

from repro.bench.tables import render_table
from repro.core.problem import top_k_of
from repro.core.theorem2 import ExpectedTopKIndex
from repro.resilience.faults import FaultPlan
from repro.resilience.guard import GuardPolicy, ResilientTopKIndex

from helpers import em_context, em_interval_factories, interval_elements_scaled, measure_ios, stab_queries

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
SIZES = (1_000, 4_000) if QUICK else (1_000, 2_000, 4_000, 8_000)
K = 10
QUERIES = 48 if QUICK else 96
TIMING_REPEATS = 5 if QUICK else 9
FAULT_PLAN_KWARGS = dict(read_fail_rate=0.05, corrupt_rate=0.01)


def _build(n, seed=2):
    ctx = em_context()
    prioritized, maxi = em_interval_factories(ctx)
    elements = list(interval_elements_scaled(n))
    index = ExpectedTopKIndex(elements, prioritized, maxi, B=ctx.B, seed=seed)
    return ctx, elements, index


def _paired_timing(bare_run, guard_run):
    """Per-round (bare, guarded) wall times, measured back to back.

    Pairing each guarded measurement with an adjacent bare one cancels
    slow drift (frequency scaling, cache warmth); the per-round ratio
    is then meaningful even on a noisy machine.
    """
    rounds = []
    bare_run(), guard_run()  # warm both paths identically
    for _ in range(TIMING_REPEATS):
        start = time.perf_counter()
        bare_run()
        mid = time.perf_counter()
        guard_run()
        rounds.append((mid - start, time.perf_counter() - mid))
    return rounds


def _healthy_overhead():
    rows = []
    ratios = []
    for n in SIZES:
        ctx, elements, index = _build(n)
        guard = ResilientTopKIndex(
            index, elements=elements, policy=GuardPolicy(seed=4), ctx=ctx
        )
        predicates = stab_queries(QUERIES, seed=n + 7)

        bare_ios = measure_ios(ctx, lambda: [index.query(p, K) for p in predicates])
        guard_ios = measure_ios(ctx, lambda: [guard.query(p, K) for p in predicates])

        rounds = _paired_timing(
            lambda: [index.query(p, K) for p in predicates],
            lambda: [guard.query(p, K) for p in predicates],
        )
        ratio = min(g / max(b, 1e-12) for b, g in rounds)
        bare_s = min(b for b, _ in rounds)
        guard_s = min(g for _, g in rounds)
        rows.append(
            [
                n,
                bare_ios // QUERIES,
                guard_ios // QUERIES,
                round(1e6 * bare_s / QUERIES, 1),
                round(1e6 * guard_s / QUERIES, 1),
                round(ratio, 3),
            ]
        )
        ratios.append(ratio)
        assert guard_ios == bare_ios, (
            f"guard changed the I/O pattern at n={n}: {guard_ios} vs {bare_ios}"
        )
    return rows, ratios


def _faulty_recovery():
    rows = []
    for n in SIZES:
        ctx, elements, index = _build(n, seed=5)
        ctx.attach_fault_plan(FaultPlan(seed=n, **FAULT_PLAN_KWARGS))
        guard = ResilientTopKIndex(
            index,
            elements=elements,
            policy=GuardPolicy(max_attempts=4, spot_check_rate=0.25, seed=9),
            ctx=ctx,
        )
        predicates = stab_queries(QUERIES, seed=n + 11)
        exact = 0
        for p in predicates:
            answer = guard.query(p, K)
            assert answer == top_k_of(elements, p, K), (
                f"degraded answer diverged from oracle at n={n}"
            )
            exact += 1
        s = guard.health
        assert s.queries == QUERIES
        assert s.attempts == (
            s.queries + s.transient_faults + s.contract_violations + s.budget_exhaustions
        ), "health books do not balance"
        rows.append(
            [
                n,
                exact,
                s.transient_faults,
                s.corrupt_blocks,
                s.retries,
                s.degraded_queries,
                round(s.backoff_units, 1),
            ]
        )
    return rows


def bench_e15_fault_recovery(benchmark, results_sink):
    overhead_rows, ratios = _healthy_overhead()
    results_sink(
        render_table(
            f"E15a Guard overhead, no faults (k={K}, {QUERIES} queries/batch)",
            ["n", "bare I/Os", "guarded I/Os", "bare us/q", "guarded us/q", "time ratio"],
            overhead_rows,
            note="identical I/Os; wall-time overhead must stay under 10%",
        )
    )
    # <10% query-time overhead on the E2 workload (each ratio is the
    # min over paired rounds; the min over sizes damps residual noise).
    # Quick mode (CI smoke on shared runners) keeps only the exact I/O
    # parity assert above — wall-clock there is not trustworthy.
    if not QUICK:
        assert min(ratios) < 1.10, f"guard overhead exceeds 10%: ratios {ratios}"

    recovery_rows = _faulty_recovery()
    results_sink(
        render_table(
            "E15b Exact recovery under 5% read faults + 1% corruption",
            ["n", "exact answers", "transient faults", "corrupt", "retries",
             "degraded", "backoff units"],
            recovery_rows,
            note="every answer equals the brute-force oracle; every retry "
            "and degradation is recorded in the HealthSummary",
        )
    )

    ctx, elements, index = _build(SIZES[-1], seed=6)
    ctx.attach_fault_plan(FaultPlan(seed=13, **FAULT_PLAN_KWARGS))
    guard = ResilientTopKIndex(
        index,
        elements=elements,
        policy=GuardPolicy(max_attempts=4, spot_check_rate=0.25, seed=2),
        ctx=ctx,
    )
    predicates = stab_queries(QUERIES, seed=17)

    def run_batch():
        for p in predicates:
            guard.query(p, K)

    benchmark(run_batch)
