"""Theorem 1: a worst-case top-k structure from a prioritized structure.

Given any prioritized structure for a polynomially-bounded problem with
``Q_pri(n) >= log_B n`` and geometrically converging space, the paper
builds a top-k structure with ``S_top = O(S_pri)`` and

    Q_top(n) = O( Q_pri(n) * log n / (log B + log(Q_pri/log_B n)) )
             = O( Q_pri(n) * log_B n ).

The construction (Section 3.2) has two regimes:

* **small k** (``k <= f`` with ``f = Theta(B * Q_pri(n))``): a nested
  chain of core-sets ``D = R_0 ⊃ R_1 ⊃ ...`` all at level ``K = f``,
  each carrying its own prioritized structure.  A top-f query recurses:
  if the cost-monitored probe on ``R_j`` truncates (``|q(R_j)| > 4f``),
  the recursion obtains from ``R_{j+1}`` an element whose weight rank in
  ``q(R_j)`` is between ``f`` and ``4f`` and uses it as the threshold of
  an exact prioritized query on ``R_j``.
* **large k**: a doubling ladder of core-sets ``R[i]`` at levels
  ``K = 2^{i-1} f``, each carrying a *top-f structure* of the first
  kind.  The top-f answer on ``R[i]`` supplies the threshold for one
  prioritized query on ``D`` that fetches ``Theta(K) = Theta(k)``
  candidates, finished by k-selection.

Sampling can fail (the paper's constants make this improbable; our
practical constants make it merely rare).  Every failure is *detected*
— the thresholded fetch returns fewer elements than needed — and the
query falls back to an exact prioritized query, so answers are always
exact; the event is counted in :attr:`WorstCaseTopKIndex.stats`.
"""

from __future__ import annotations

import math
import random
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field
from typing import List, Optional, Sequence

from repro.core.columnar import (
    ColumnSet,
    MatchScan,
    ScanCache,
    auto_columnar,
    columnar_enabled,
    next_structure_id,
    predicate_key,
)
from repro.core.coreset import (
    CoresetHierarchy,
    CoresetStats,
    build_hierarchy,
    doubling_coresets,
)
from repro.core.interfaces import PrioritizedFactory, PrioritizedIndex, TopKIndex
from repro.core.params import TuningParams
from repro.core.problem import Element, Predicate, require_distinct_weights
from repro.em.selection import select_top_k
from repro.resilience.errors import SerializationError


@dataclass
class ReductionStats:
    """Per-index counters exposed to the benchmarks."""

    queries: int = 0
    monitored_probes: int = 0
    threshold_fetches: int = 0
    fallbacks: int = 0
    full_scans: int = 0
    batch_queries: int = 0
    memo_hits: int = 0

    def reset(self) -> None:
        self.queries = 0
        self.monitored_probes = 0
        self.threshold_fetches = 0
        self.fallbacks = 0
        self.full_scans = 0
        self.batch_queries = 0
        self.memo_hits = 0


class _TopFStructure:
    """The small-k structure: a core-set chain with per-level indexes.

    ``levels[0]`` is the ground set this structure answers top-f queries
    about; deeper levels are nested core-sets at the fixed level
    ``K = f``.  ``indexes[j]`` is the prioritized structure on
    ``levels[j]`` (the deepest level is answered by scanning instead).
    """

    def __init__(
        self,
        elements: Sequence[Element],
        f: int,
        factory: PrioritizedFactory,
        params: TuningParams,
        rng: random.Random,
        stats: ReductionStats,
        ground_index: Optional[PrioritizedIndex] = None,
        hierarchy: Optional[CoresetHierarchy] = None,
        columnar: Optional[bool] = None,
        ground_columns: Optional[ColumnSet] = None,
    ) -> None:
        self.f = f
        self.params = params
        self.stats = stats
        #: Monotonic id keying shared memo windows.  ``id(self)`` is not
        #: usable: a long-lived window can outlive this structure, and a
        #: successor allocated at the same address would then alias its
        #: memoized answers.  The counter never repeats in a process.
        self.sid = next_structure_id()
        # A prebuilt hierarchy (snapshot restore) skips the sampling —
        # the recorded levels *are* the coin flips being replayed.
        if hierarchy is None:
            hierarchy = build_hierarchy(elements, float(f), params, rng)
        self.hierarchy: CoresetHierarchy = hierarchy
        self.levels = self.hierarchy.levels
        self.indexes: List[Optional[PrioritizedIndex]] = []
        last = len(self.levels) - 1
        for j, level in enumerate(self.levels):
            if j == last and len(level) <= params.slack * f:
                # Bottom level: answered by a scan, no index needed.
                self.indexes.append(None)
            elif j == 0 and ground_index is not None:
                self.indexes.append(ground_index)
            else:
                self.indexes.append(factory(level))
        # Columnar fast path: RAM-resident levels are mirrored (lazily)
        # into weight-descending ColumnSets, and probes/fetches become
        # resumable MatchScans.  EM-backed structures stay on the black
        # box — bypassing them would skip the I/O accounting.
        if columnar is None:
            probe = next((ix for ix in self.indexes if ix is not None), None)
            self._columnar = columnar_enabled() and (
                probe is None or auto_columnar(probe)
            )
        else:
            self._columnar = bool(columnar)
        self._ground_columns = ground_columns
        self._scan_caches: List[Optional[ScanCache]] = [None] * len(self.levels)
        if self._columnar:
            # Materialize the level mirrors now: the first query touches
            # them all anyway, and build time is the honest place for a
            # columnar index to pay its layout cost.
            for j in range(len(self.levels)):
                self._level_columns(j)

    def _level_columns(self, j: int) -> ColumnSet:
        """Level ``j``'s flat columns (level 0 may share the ground's)."""
        if j == 0 and self._ground_columns is not None:
            return self._ground_columns
        return self.hierarchy.column(j)

    def _level_cache(self, j: int) -> ScanCache:
        cache = self._scan_caches[j]
        if cache is None:
            cache = self._scan_caches[j] = ScanCache()
        return cache

    def _level_scan(self, j: int, predicate: Predicate) -> MatchScan:
        """The resumable match scan for level ``j`` (lazy columns).

        Scans persist across queries — the structure is static, so a
        scan can only ever be extended, never invalidated; repeats of a
        predicate (batches, guard retries, probe-then-fetch within one
        descent) resume the same traversal.  Level 0 of the small-k
        structure shares the owning index's ground columns.
        """
        return self._level_cache(j).get(self._level_columns(j), predicate)

    # ------------------------------------------------------------------
    def top_f(
        self, predicate: Predicate, memo: Optional[dict] = None
    ) -> List[Element]:
        """The up-to-``f`` heaviest elements of ``q(levels[0])``, heaviest first.

        ``memo`` (a :meth:`WorstCaseTopKIndex.batched` window) caches
        the whole chain descent per predicate: a second top-f on the
        same predicate inside the window — different ``k`` values of a
        batch landing on the same ladder level, or a guard retry after
        a transient fault — reuses the traversal instead of repeating
        it.
        """
        if memo is None:
            return self._query_level(0, predicate)
        key = (self.sid, predicate_key(predicate))
        cached = memo.get(key)
        if cached is not None:
            self.stats.memo_hits += 1
            return cached
        answer = self._query_level(0, predicate)
        memo[key] = answer
        return answer

    def _query_level(self, j: int, predicate: Predicate) -> List[Element]:
        # The columnar branches answer each probe/fetch from the level's
        # flat weight-descending columns instead of the per-level black
        # box.  Branch conditions, counters, and answers are identical:
        # a columnar probe truncates iff strictly more than ``cap``
        # elements match (the legacy condition), and under distinct
        # weights both paths produce the same unique top-f set.
        level = self.levels[j]
        index = self.indexes[j]
        columnar = self._columnar
        cap = math.ceil(self.params.slack * self.f)
        if index is None:
            # Bottom of the recursion: |R_h| <= 4f, scan it.
            if columnar:
                return list(self._level_scan(j, predicate).first(self.f))
            matching = [e for e in level if predicate.matches(e.obj)]
            return select_top_k(matching, self.f)
        # Visit-promoted columnar: the per-level structures answer
        # selective probes in sublinear time, so a *cold* flat scan
        # would lose to them.  First visit of a (level, predicate)
        # stays on the structure — the visit costs two dict ops, and
        # any complete legacy result (a non-truncated probe is the
        # full match set, a fetch the full ``weight >= tau`` prefix)
        # is recorded as a seed.  The second visit promotes to a live
        # scan: dense predicates prove truncation by early exit, sparse
        # ones materialize their seeded match set, and further repeats
        # (batch windows, guard retries, ladder re-descents) answer
        # from the columns without re-traversing.
        if columnar:
            cache = self._level_cache(j)
            columns = self._level_columns(j)
            scan = cache.visit(columns, predicate)
        else:
            cache = columns = scan = None
        self.stats.monitored_probes += 1
        if scan is not None:
            probe = scan.probe(cap)
        else:
            probe = index.query(predicate, -math.inf, limit=cap)
            if cache is not None and not probe.truncated:
                cache.record_seed(probe.elements, len(columns))
        if not probe.truncated:
            # |q(R_j)| <= 4f: the probe fetched everything; k-select.
            return select_top_k(probe.elements, self.f)
        if j + 1 >= len(self.levels):
            # The chain stopped early (saturated sampling rate): exact query.
            self.stats.fallbacks += 1
            if columnar:
                # Full traversal either way — promote and keep the scan.
                scan = scan or self._level_scan(j, predicate)
                return list(scan.all_matches()[: self.f])
            exact = index.query(predicate, -math.inf)
            return select_top_k(exact.elements, self.f)
        # |q(R_j)| > 4f: consult the next core-set for a threshold.
        deeper = self._query_level(j + 1, predicate)
        rank = self._probe_rank(j)
        if rank <= len(deeper):
            threshold = deeper[rank - 1].weight
            self.stats.threshold_fetches += 1
            if scan is not None:
                fetched = scan.fetch(threshold)
            else:
                fetched = index.query(predicate, threshold)
                if cache is not None:
                    cache.record_seed(
                        fetched.elements, columns.count_at_least(threshold)
                    )
            if len(fetched.elements) >= self.f:
                return select_top_k(fetched.elements, self.f)
        # The sampled rank fell outside its window — exact fallback.
        self.stats.fallbacks += 1
        if columnar:
            scan = scan or self._level_scan(j, predicate)
            return list(scan.all_matches()[: self.f])
        exact = index.query(predicate, -math.inf)
        return select_top_k(exact.elements, self.f)

    def _probe_rank(self, j: int) -> int:
        """The rank probed in ``q(R_{j+1})`` — Lemma 1's ``ceil(2 K p)``.

        ``p`` is the rate actually used to sample ``R_{j+1}`` from
        ``R_j`` (recorded at build time), so the rank matches the
        sampling regardless of tuned constants.
        """
        rates = self.hierarchy.stats.rates
        p = rates[j + 1] if j + 1 < len(rates) else 1.0
        return max(1, math.ceil(2.0 * self.f * p))

    def space_units(self) -> int:
        """Total space of the per-level prioritized structures."""
        return sum(index.space_units() for index in self.indexes if index is not None)


class WorstCaseTopKIndex(TopKIndex):
    """The Theorem 1 top-k structure.

    Parameters
    ----------
    elements:
        The input set ``D`` (distinct weights).
    factory:
        Builds a prioritized structure over any subset — the black box
        being reduced.
    params:
        Tuning constants; ``TuningParams.paper_faithful()`` reproduces
        the proof's constants exactly.
    B:
        The block size used to set ``f = Theta(B * Q_pri(n))``.  In the
        RAM model pass a small constant (the default 2), as the paper
        prescribes ("by setting M and B to appropriate constants").
    rng / seed:
        Randomness for core-set sampling (construction only — queries
        are deterministic, as Theorem 1's bounds are worst-case).
    """

    def __init__(
        self,
        elements: Sequence[Element],
        factory: PrioritizedFactory,
        params: Optional[TuningParams] = None,
        B: int = 2,
        rng: Optional[random.Random] = None,
        seed: int = 0,
        columnar: Optional[bool] = None,
    ) -> None:
        self.params = params if params is not None else TuningParams()
        self._elements = list(elements)
        require_distinct_weights(self._elements, "WorstCaseTopKIndex")
        self._factory = factory
        self.B = B
        self.stats = ReductionStats()
        self.applied_lsn = 0
        self._memo: Optional[dict] = None
        rng = rng if rng is not None else random.Random(seed)

        self._ground = factory(self._elements)
        self._init_columnar(columnar)
        q_pri = self._ground.query_cost_bound()
        self.f = min(
            self.params.small_k_cutoff(B, q_pri),
            max(1, len(self._elements)),
        )
        # Small-k machinery: a top-f structure whose ground level is D
        # itself (reusing the main prioritized index, and — columnar —
        # the ground columns, so D is sorted once, not twice).
        self._small = _TopFStructure(
            self._elements, self.f, factory, self.params, rng, self.stats,
            ground_index=self._ground,
            columnar=self._columnar, ground_columns=self._columns,
        )
        # Large-k machinery: the doubling ladder R[1..h], each level
        # carrying its own top-f structure.
        self._ladder: List[_TopFStructure] = []
        self._ladder_rates: List[float] = []
        n = len(self._elements)
        for i, coreset in enumerate(doubling_coresets(self._elements, self.f, self.params, rng)):
            K = float((2**i) * self.f)  # 0-based i: ladder level K = 2^{i-1} f, 1-based
            self._ladder.append(
                _TopFStructure(
                    coreset, self.f, factory, self.params, rng, self.stats,
                    columnar=self._columnar,
                )
            )
            self._ladder_rates.append(self.params.coreset_rate(n, K))

    def _init_columnar(self, columnar: Optional[bool]) -> None:
        """Decide the columnar mode and mirror ``D`` into columns."""
        if columnar is None:
            self._columnar = auto_columnar(self._ground)
        else:
            self._columnar = bool(columnar) and columnar_enabled()
        self._columns = ColumnSet(self._elements) if self._columnar else None
        self._scan_cache = ScanCache() if self._columnar else None

    def _ground_scan(self, predicate: Predicate) -> MatchScan:
        """The resumable ground-set scan for ``predicate``."""
        return self._scan_cache.get(self._columns, predicate)

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return len(self._elements)

    def note_applied(self, lsn: int) -> None:
        """Record the highest WAL LSN folded into this in-memory state.

        Maintained by the durability/replication layers; the structure
        itself never assigns LSNs.  Lets replica schedulers compare
        index freshness without reaching into the WAL.
        """
        if lsn > self.applied_lsn:
            self.applied_lsn = lsn

    @contextmanager
    def batched(self):
        """A shared-traversal window for a batch of queries.

        Inside the window, repeated core-set descents (``top_f`` per
        predicate) are memoized, so queries that the batch planner did
        not merge — same predicate at ``k`` values landing on the same
        ladder level, or a retry re-running a query after a transient
        fault — skip work already done.  The memo must not outlive the
        batch: the structure is static, but the window is the unit at
        which answers were planned.  Nested windows share the outermost
        memo.
        """
        previous = self._memo
        self._memo = {} if previous is None else previous
        try:
            yield self
        finally:
            self._memo = previous

    def query_topk_batch(self, requests, **kwargs) -> List[List[Element]]:
        """Batched queries: one traversal per predicate group, memo on.

        See :meth:`TopKIndex.query_topk_batch` for the grouping
        contract; this override additionally opens a :meth:`batched`
        memo window for the batch's duration.
        """
        from repro.serving.batch import execute_batch

        self.stats.batch_queries += len(requests)
        with self.batched():
            return execute_batch(self, requests, **kwargs)

    def query(self, predicate: Predicate, k: int) -> List[Element]:
        """Exact top-k answer, heaviest first."""
        self.stats.queries += 1
        if k <= 0:
            return []
        n = self.n
        if n == 0:
            return []
        if k <= self.f:
            top = self._small.top_f(predicate, memo=self._memo)
            return top[:k]
        if k >= n / 2:
            # O(n/B) = O(k/B): scan everything — columnar when the
            # ground set is RAM-resident, else through the ground
            # structure so the I/O cost is counted.
            self.stats.full_scans += 1
            if self._columnar:
                return list(self._ground_scan(predicate).first(k))
            result = self._ground.query(predicate, -math.inf)
            return select_top_k(result.elements, k)
        return self._large_k(predicate, k)

    def _large_k(self, predicate: Predicate, k: int) -> List[Element]:
        """Queries with ``f < k < n/2`` via the doubling ladder."""
        # Smallest i (1-based) with 2^{i-1} f >= k; K in [k, 2k).
        i = max(1, math.ceil(math.log2(k / self.f)) + 1)
        while (2 ** (i - 1)) * self.f < k:  # guard against float rounding
            i += 1
        if i > len(self._ladder):
            self.stats.full_scans += 1
            if self._columnar:
                return list(self._ground_scan(predicate).first(k))
            result = self._ground.query(predicate, -math.inf)
            return select_top_k(result.elements, k)
        K = (2 ** (i - 1)) * self.f
        cap = math.ceil(self.params.slack * K)
        # Visit-promoted, as in ``_TopFStructure._query_level``: first
        # visits stay on the sublinear ground structure (complete
        # results recorded as scan seeds), repeats answer columnar.
        scan = (
            self._scan_cache.visit(self._columns, predicate)
            if self._columnar
            else None
        )
        self.stats.monitored_probes += 1
        if scan is not None:
            probe = scan.probe(cap)
        else:
            probe = self._ground.query(predicate, -math.inf, limit=cap)
            if self._columnar and not probe.truncated:
                self._scan_cache.record_seed(probe.elements, len(self._columns))
        if not probe.truncated:
            return select_top_k(probe.elements, k)
        # |q(D)| > 4K: obtain a threshold from the ladder's top-f answer.
        top_f = self._ladder[i - 1].top_f(predicate, memo=self._memo)
        rank = max(1, math.ceil(2.0 * K * self._ladder_rates[i - 1]))
        if rank <= len(top_f):
            threshold = top_f[rank - 1].weight
            self.stats.threshold_fetches += 1
            if scan is not None:
                fetched = scan.fetch(threshold)
            else:
                fetched = self._ground.query(predicate, threshold)
                if self._columnar:
                    self._scan_cache.record_seed(
                        fetched.elements, self._columns.count_at_least(threshold)
                    )
            if len(fetched.elements) >= k:
                return select_top_k(fetched.elements, k)
        self.stats.fallbacks += 1
        if self._columnar:
            scan = scan or self._ground_scan(predicate)
            return list(scan.all_matches()[:k])
        exact = self._ground.query(predicate, -math.inf)
        return select_top_k(exact.elements, k)

    # ------------------------------------------------------------------
    def space_units(self) -> int:
        """Space of every prioritized structure in the reduction.

        Theorem 1 claims ``S_top = O(S_pri)``; bench E4 audits this
        number against the ground structure's own footprint.
        """
        total = self._small.space_units()
        for ladder_struct in self._ladder:
            total += ladder_struct.space_units()
        return total

    def ground_space_units(self) -> int:
        """Footprint of the single prioritized structure on ``D``."""
        return self._ground.space_units()

    # ------------------------------------------------------------------
    # Durability (snapshot/restore)
    # ------------------------------------------------------------------
    SNAPSHOT_FORMAT = "worstcase-topk"
    SNAPSHOT_VERSION = 1

    def snapshot_state(self) -> dict:
        """Everything needed to rebuild this index *bit-for-bit*.

        The core-set hierarchies are the structure's only randomness;
        recording every level's membership (as indices into the element
        list) and the sampling rates actually used replays those coin
        flips exactly — restored queries take the same recursion paths,
        probe the same ranks, and return identical answers.
        """
        elements = self._elements
        index_of = {element: i for i, element in enumerate(elements)}

        def hierarchy_state(hierarchy: CoresetHierarchy) -> dict:
            return {
                "levels": [
                    [index_of[element] for element in level]
                    for level in hierarchy.levels
                ],
                "rates": list(hierarchy.stats.rates),
                "K": hierarchy.K,
            }

        return {
            "format": self.SNAPSHOT_FORMAT,
            "version": self.SNAPSHOT_VERSION,
            "elements": list(elements),
            "B": self.B,
            "f": self.f,
            "params": asdict(self.params),
            "small": hierarchy_state(self._small.hierarchy),
            "ladder": [hierarchy_state(s.hierarchy) for s in self._ladder],
            "ladder_rates": list(self._ladder_rates),
        }

    @classmethod
    def restore(
        cls, state: dict, factory: PrioritizedFactory
    ) -> "WorstCaseTopKIndex":
        """Rebuild from :meth:`snapshot_state` output.

        Per-level prioritized structures are deterministic functions of
        their element lists, so rebuilding them through the factory on
        the recorded levels reproduces the original exactly.
        """
        if state.get("format") != cls.SNAPSHOT_FORMAT:
            raise SerializationError(
                f"snapshot format {state.get('format')!r} is not "
                f"{cls.SNAPSHOT_FORMAT!r}"
            )
        if state.get("version") != cls.SNAPSHOT_VERSION:
            raise SerializationError(
                f"snapshot version {state.get('version')!r} unsupported "
                f"(this build reads {cls.SNAPSHOT_VERSION})"
            )
        self = cls.__new__(cls)
        self.params = TuningParams(**state["params"])
        elements: List[Element] = list(state["elements"])
        require_distinct_weights(elements, "WorstCaseTopKIndex.restore")
        self._elements = elements
        self._factory = factory
        self.B = state["B"]
        self.stats = ReductionStats()
        self.applied_lsn = 0
        self._memo = None
        self._ground = factory(elements)
        self._init_columnar(None)
        self.f = state["f"]

        def hierarchy_from(hstate: dict) -> CoresetHierarchy:
            levels = [
                [elements[j] for j in level] for level in hstate["levels"]
            ]
            stats = CoresetStats(
                sizes=[len(level) for level in levels],
                rates=list(hstate["rates"]),
            )
            return CoresetHierarchy(levels=levels, K=hstate["K"], stats=stats)

        rng = random.Random(0)  # never drawn from: hierarchies are prebuilt
        self._small = _TopFStructure(
            elements, self.f, factory, self.params, rng, self.stats,
            ground_index=self._ground,
            hierarchy=hierarchy_from(state["small"]),
            columnar=self._columnar, ground_columns=self._columns,
        )
        self._ladder = []
        for hstate in state["ladder"]:
            hierarchy = hierarchy_from(hstate)
            self._ladder.append(
                _TopFStructure(
                    hierarchy.levels[0], self.f, factory, self.params, rng,
                    self.stats, hierarchy=hierarchy,
                    columnar=self._columnar,
                )
            )
        self._ladder_rates = list(state["ladder_rates"])
        return self
