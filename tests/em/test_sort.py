"""Tests for external merge sort, including I/O growth shape."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.em.model import EMContext
from repro.em.sort import external_merge_sort


def test_empty_input():
    ctx = EMContext(B=4, M=8)
    assert external_merge_sort(ctx, []).to_list() == []


def test_single_run_fits_in_memory():
    ctx = EMContext(B=4, M=16)
    data = [5, 1, 4, 2, 3]
    assert external_merge_sort(ctx, data).to_list() == [1, 2, 3, 4, 5]


def test_multiway_merge_many_runs():
    ctx = EMContext(B=4, M=8)  # 2 frames -> fan-in 2, forces merge passes
    rng = random.Random(3)
    data = [rng.random() for _ in range(300)]
    assert external_merge_sort(ctx, data).to_list() == sorted(data)


def test_reverse_order():
    ctx = EMContext(B=4, M=8)
    data = [3, 1, 2, 5, 4]
    assert external_merge_sort(ctx, data, reverse=True).to_list() == [5, 4, 3, 2, 1]


def test_key_function():
    ctx = EMContext(B=4, M=8)
    data = [(1, "b"), (2, "a"), (3, "c")]
    out = external_merge_sort(ctx, data, key=lambda r: r[1]).to_list()
    assert out == [(2, "a"), (1, "b"), (3, "c")]


def test_duplicates_preserved():
    ctx = EMContext(B=4, M=8)
    data = [2, 1, 2, 1, 2]
    assert external_merge_sort(ctx, data).to_list() == [1, 1, 2, 2, 2]


def test_io_cost_is_near_linear_in_blocks():
    """Sorting 4x the data should cost roughly 4x (x log factor) I/Os."""
    costs = {}
    for n in (256, 1024):
        ctx = EMContext(B=8, M=32)
        rng = random.Random(1)
        ctx.stats.reset()
        external_merge_sort(ctx, [rng.random() for _ in range(n)])
        costs[n] = ctx.stats.total
    ratio = costs[1024] / costs[256]
    assert 3.0 <= ratio <= 8.0, costs


@settings(max_examples=30, deadline=None)
@given(
    data=st.lists(st.floats(allow_nan=False, allow_infinity=False), max_size=200),
    B=st.integers(2, 8),
    reverse=st.booleans(),
)
def test_matches_builtin_sorted(data, B, reverse):
    ctx = EMContext(B=B, M=4 * B)
    out = external_merge_sort(ctx, data, reverse=reverse).to_list()
    assert out == sorted(data, reverse=reverse)
