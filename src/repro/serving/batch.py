"""Batched top-k execution: group, sort, traverse once, slice prefixes.

A serving workload rarely issues one query at a time.  This module
turns a list of :class:`QueryRequest`\\ s into a *batch plan* that pays
each reduction traversal once:

* requests are **grouped by predicate shape** — two requests with the
  same predicate describe the same subset ``q(D)``, and top-k answers
  are prefix-closed (the top-``k`` answer is the first ``k`` entries of
  the top-``K`` answer for any ``K >= k``), so one traversal at the
  group's largest ``k`` serves every member by prefix slicing;
* groups are **sorted deterministically** (by predicate type, then
  repr) so repeated batches traverse core-set levels in the same order
  — answers are reproducible and adjacent groups of the same predicate
  family keep level/list accesses local;
* members inside a group are sorted by descending ``k`` so the group's
  cost is decided by its head and every other member is a slice.

:func:`execute_batch` is the engine-independent executor used by
:meth:`repro.core.interfaces.TopKIndex.query_topk_batch`; the
reductions override that hook only to wrap execution in their
:meth:`batched` probe-memo window (see ``theorem1.py`` /
``theorem2.py``).
"""

from __future__ import annotations

import dataclasses
import re
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.core.columnar import predicate_key
from repro.core.problem import Element, Predicate

#: ``object.__repr__`` embeds the instance's memory address; masking it
#: keeps sort keys equal across processes.
_ADDRESS_RE = re.compile(r"0x[0-9a-fA-F]+")

#: ``_sort_key`` walks dataclass fields and runs a regex per call —
#: measurably hot when every engine pass plans hundreds of groups, yet a
#: pure function of the predicate.  Cached per ``predicate_key``,
#: bounded so adversarial predicate churn cannot grow it without limit.
_SORT_KEY_CACHE: Dict[Hashable, Tuple[str, str]] = {}
_SORT_KEY_CACHE_MAX = 4096


@dataclass(frozen=True)
class QueryRequest:
    """One top-k request of a batch: ``(predicate, k)``."""

    predicate: Predicate
    k: int


# ``predicate_key`` now lives in repro.core.columnar (the compiled-
# predicate cache keys on it too, and core must not import serving);
# re-exported here because this module is its historical home.


def _sort_key(predicate: Predicate) -> Tuple[str, str]:
    """Deterministic cross-run ordering key for a predicate.

    Bare ``repr`` is not enough: a predicate class without its own
    ``__repr__`` inherits ``object``'s, which embeds the instance's
    memory address — the same batch would then plan its groups in a
    different order on every run (and on every process, under hash
    randomization).  Dataclass predicates (the repo convention) key on
    their field values; anything else falls back to ``repr``.  Either
    way, memory addresses are masked out — a dataclass field's *value*
    may itself be an object without its own ``__repr__``.
    """
    cache_key = predicate_key(predicate)
    cached = _SORT_KEY_CACHE.get(cache_key)
    if cached is not None:
        return cached
    if dataclasses.is_dataclass(predicate):
        detail = repr(
            [(f.name, _ADDRESS_RE.sub("0xADDR", repr(getattr(predicate, f.name))))
             for f in dataclasses.fields(predicate)]
        )
    else:
        detail = _ADDRESS_RE.sub("0xADDR", repr(predicate))
    key = (type(predicate).__qualname__, detail)
    if len(_SORT_KEY_CACHE) >= _SORT_KEY_CACHE_MAX:
        _SORT_KEY_CACHE.clear()
    _SORT_KEY_CACHE[cache_key] = key
    return key


@dataclass
class BatchGroup:
    """All requests of one batch that share a predicate."""

    key: Hashable
    predicate: Predicate
    max_k: int = 0
    #: ``(position in the original request list, requested k)``
    members: List[Tuple[int, int]] = field(default_factory=list)

    def add(self, position: int, k: int) -> None:
        self.members.append((position, k))
        if k > self.max_k:
            self.max_k = k


@dataclass
class BatchPlan:
    """The shared-traversal plan for one batch of requests."""

    size: int
    groups: List[BatchGroup]

    @property
    def traversals(self) -> int:
        """Distinct index traversals the plan pays for."""
        return len(self.groups)

    @property
    def shared(self) -> int:
        """Requests answered by another member's traversal."""
        return self.size - len(self.groups)


def plan_batch(requests: Sequence[QueryRequest]) -> BatchPlan:
    """Group requests by predicate and order them for shared traversal."""
    by_key: Dict[Hashable, BatchGroup] = {}
    for position, request in enumerate(requests):
        key = predicate_key(request.predicate)
        group = by_key.get(key)
        if group is None:
            group = by_key[key] = BatchGroup(key=key, predicate=request.predicate)
        group.add(position, request.k)
    groups = sorted(by_key.values(), key=lambda g: _sort_key(g.predicate))
    for group in groups:
        group.members.sort(key=lambda member: (-member[1], member[0]))
    return BatchPlan(size=len(requests), groups=groups)


def execute_batch(
    index,
    requests: Sequence[QueryRequest],
    query_fn: Optional[Callable[..., List[Element]]] = None,
    **query_kwargs,
) -> List[List[Element]]:
    """Answer every request, paying one traversal per distinct predicate.

    ``index`` is anything with ``query(predicate, k, **kwargs)``;
    ``query_fn`` overrides the callable (the serving engine points it
    at a specific replica).  Answers come back in request order and are
    exactly what serial one-at-a-time queries would have returned: the
    group head is answered at ``max_k`` and every member receives the
    prefix of its own ``k`` (top-k answers are prefix-closed under a
    total weight order).
    """
    run = query_fn if query_fn is not None else index.query
    answers: List[Optional[List[Element]]] = [None] * len(requests)
    for group in plan_batch(requests).groups:
        if group.max_k <= 0:
            for position, _ in group.members:
                answers[position] = []
            continue
        full = run(group.predicate, group.max_k, **query_kwargs)
        for position, k in group.members:
            # Always a fresh list: members (and any cache above) must
            # never alias one another's answers.
            answers[position] = full[:k]
    return answers  # type: ignore[return-value]


__all__ = [
    "QueryRequest",
    "BatchGroup",
    "BatchPlan",
    "predicate_key",
    "plan_batch",
    "execute_batch",
]
