"""LatencyHistogram: bounded-error quantiles, exact merges."""

from __future__ import annotations

import random

import pytest

from repro.loadgen import LatencyHistogram
from repro.resilience.errors import InvalidConfiguration


def exact_quantile(values, q):
    ordered = sorted(values)
    import math

    target = max(1, math.ceil(q * len(ordered) - 1e-9))
    return ordered[target - 1]


class TestBuckets:
    def test_empty_histogram_reports_zeros(self):
        hist = LatencyHistogram()
        assert len(hist) == 0
        assert hist.p50 == 0.0
        assert hist.p99 == 0.0
        assert hist.mean == 0.0
        assert hist.summary()["count"] == 0.0

    def test_zero_and_subresolution_values_have_buckets(self):
        hist = LatencyHistogram(resolution=1e-3)
        hist.record(0.0)
        hist.record(1e-6)
        hist.record(5e-4)
        assert hist.count == 3
        assert hist.quantile(0.0) <= 1e-3

    def test_negative_latency_rejected(self):
        hist = LatencyHistogram()
        with pytest.raises(InvalidConfiguration):
            hist.record(-0.1)

    def test_validation(self):
        with pytest.raises(InvalidConfiguration):
            LatencyHistogram(resolution=0.0)
        with pytest.raises(InvalidConfiguration):
            LatencyHistogram(growth=1.0)
        with pytest.raises(InvalidConfiguration):
            LatencyHistogram().quantile(1.5)


class TestQuantiles:
    def test_quantiles_within_growth_bound(self):
        """Reported quantiles overestimate by at most one growth factor."""
        rng = random.Random(42)
        values = [rng.uniform(1e-4, 2.0) for _ in range(5000)]
        hist = LatencyHistogram(growth=1.04)
        hist.record_all(values)
        for q in (0.5, 0.9, 0.99, 0.999):
            exact = exact_quantile(values, q)
            reported = hist.quantile(q)
            assert exact <= reported * 1.0000001
            assert reported <= exact * 1.04 * 1.0000001

    def test_quantile_never_exceeds_observed_max(self):
        hist = LatencyHistogram()
        hist.record_all([0.1, 0.2, 0.9])
        assert hist.quantile(1.0) == pytest.approx(0.9)
        assert hist.p999 <= 0.9

    def test_single_value_all_quantiles_agree(self):
        hist = LatencyHistogram()
        hist.record(0.25, count=100)
        assert hist.p50 == hist.p99 == hist.p999
        assert hist.p50 == pytest.approx(0.25, rel=0.05)

    def test_mean_is_exact(self):
        hist = LatencyHistogram()
        hist.record_all([0.1, 0.2, 0.3, 0.4])
        assert hist.mean == pytest.approx(0.25)


class TestMerge:
    def test_merge_equals_single_histogram(self):
        rng = random.Random(7)
        values = [rng.expovariate(10.0) for _ in range(2000)]
        whole = LatencyHistogram()
        whole.record_all(values)
        left, right = LatencyHistogram(), LatencyHistogram()
        left.record_all(values[:777])
        right.record_all(values[777:])
        left.merge(right)
        assert left.count == whole.count
        assert left.total == pytest.approx(whole.total)
        for q in (0.5, 0.99, 0.999):
            assert left.quantile(q) == whole.quantile(q)

    def test_merge_rejects_mismatched_geometry(self):
        a = LatencyHistogram(growth=1.04)
        b = LatencyHistogram(growth=1.10)
        with pytest.raises(InvalidConfiguration):
            a.merge(b)
