"""3D dominance structures (the substrate of Theorem 6).

Problem: ``D`` is a set of weighted points in ``R^3``; a predicate is a
corner ``q = (x, y, z)``, matched by every point dominated by it
coordinate-wise (``e <= q`` in all three coordinates).  The paper's
hotel example: (price, distance, negated security rating) per hotel,
weight = guest rating.

Structures — substitutes for Afshani et al. [2] (prioritized, i.e. 4D
dominance) and Rahul's point-location max structure [27], per DESIGN.md
section 4:

* :class:`DominancePrioritized` — a two-level range tree (x, then y)
  whose innermost level is a priority search tree on (z, weight):
  query ``O(log^2 n (log n) + t)``, i.e. polylog plus exact output.
* :class:`DominanceMax` — the same skeleton with ``max_in_prefix``
  probes at the PSTs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.columnar import register_predicate_compiler
from repro.core.interfaces import MaxIndex, OpCounter, PrioritizedIndex, PrioritizedResult
from repro.core.problem import Element, Predicate
from repro.geometry.primitives import Point
from repro.structures.priority_search import PrioritySearchTree


@dataclass(frozen=True)
class DominancePredicate(Predicate):
    """Matches every point dominated by the corner ``q`` (``e <= q``)."""

    q: Point

    def matches(self, obj: Point) -> bool:
        return obj[0] <= self.q[0] and obj[1] <= self.q[1] and obj[2] <= self.q[2]


@register_predicate_compiler(DominancePredicate)
def _compile_dominance(predicate: DominancePredicate):
    """Closure-specialized dominance test: corner unpacked into locals."""
    q0, q1, q2 = predicate.q[0], predicate.q[1], predicate.q[2]
    return lambda obj: obj[0] <= q0 and obj[1] <= q1 and obj[2] <= q2


def _z_of(element: Element) -> float:
    return element.obj[2]


class _RangeNode:
    """A node of a 1D balanced tree over one coordinate.

    ``lo``/``hi`` delimit the node's coordinate range among the sorted
    inputs; ``payload`` is the secondary structure over the node's
    elements (another range tree level, or the innermost PST).
    """

    __slots__ = ("max_key", "payload", "left", "right")

    def __init__(self) -> None:
        self.max_key: float = 0.0
        self.payload: object = None
        self.left: Optional["_RangeNode"] = None
        self.right: Optional["_RangeNode"] = None


def _build_range_tree(
    ordered: List[Element],
    key_index: int,
    payload_factory,
) -> Optional[_RangeNode]:
    """Balanced tree over ``ordered`` (sorted by coordinate ``key_index``).

    Every node carries ``payload_factory(subtree_elements)``; a prefix
    query ``key <= q`` decomposes into ``O(log n)`` disjoint payloads.
    """
    if not ordered:
        return None
    node = _RangeNode()
    node.max_key = ordered[-1].obj[key_index]
    node.payload = payload_factory(ordered)
    if len(ordered) > 1:
        mid = len(ordered) // 2
        node.left = _build_range_tree(ordered[:mid], key_index, payload_factory)
        node.right = _build_range_tree(ordered[mid:], key_index, payload_factory)
    return node


def _canonical_prefix(
    node: Optional[_RangeNode], bound: float, out: List[object], ops: OpCounter
) -> None:
    """Collect payloads of the canonical cover of ``{key <= bound}``."""
    while node is not None:
        ops.node_visits += 1
        if node.max_key <= bound:
            out.append(node.payload)
            return
        if node.left is None and node.right is None:
            return  # single element with key > bound
        # max of left subtree vs bound decides the split.
        left = node.left
        if left is not None and left.max_key <= bound:
            out.append(left.payload)
            node = node.right
        else:
            node = left
    return


class DominancePrioritized(PrioritizedIndex):
    """Prioritized 3D dominance via range-tree + PST composition.

    The x-tree decomposes ``{e_x <= q_x}`` into ``O(log n)`` canonical
    y-trees; each y-tree decomposes ``{e_y <= q_y}`` into ``O(log n)``
    canonical PSTs; each PST reports ``{e_z <= q_z, w >= tau}`` in
    ``O(log + t)``.  Space ``O(n log^2 n)`` words.
    """

    def __init__(self, elements: Sequence[Element]) -> None:
        self.ops = OpCounter()
        self._n = len(elements)

        def pst_factory(subset: List[Element]) -> PrioritySearchTree:
            return PrioritySearchTree(subset, _z_of)

        def ytree_factory(subset: List[Element]) -> Optional[_RangeNode]:
            ordered = sorted(subset, key=lambda e: e.obj[1])
            return _build_range_tree(ordered, 1, pst_factory)

        ordered_x = sorted(elements, key=lambda e: e.obj[0])
        self._root = _build_range_tree(ordered_x, 0, ytree_factory)
        self._stored = self._count_stored()

    def _count_stored(self) -> int:
        # Each element appears in O(log n) x-nodes x O(log n) y-nodes.
        log_n = max(1, int(math.log2(max(2, self._n))))
        return self._n * log_n * log_n

    @property
    def n(self) -> int:
        return self._n

    def query_cost_bound(self) -> float:
        """``Q_pri = O(log^3 n)`` (two canonical levels x PST search)."""
        log_n = max(1.0, math.log2(max(2, self._n)))
        return log_n**3

    def query(
        self, predicate: DominancePredicate, tau: float, limit: Optional[int] = None
    ) -> PrioritizedResult:
        qx, qy, qz = predicate.q
        ytrees: List[object] = []
        _canonical_prefix(self._root, qx, ytrees, self.ops)
        out: List[Element] = []
        for ytree in ytrees:
            psts: List[object] = []
            _canonical_prefix(ytree, qy, psts, self.ops)
            for pst in psts:
                for element in pst.query_prefix(qz, tau):
                    out.append(element)
                    self.ops.scanned += 1
                    if limit is not None and len(out) > limit:
                        return PrioritizedResult(out, truncated=True)
        return PrioritizedResult(out, truncated=False)

    def space_units(self) -> int:
        """``O(n log^2 n)`` words (each element in log^2 canonical PSTs)."""
        return self._stored


class DominanceMax(MaxIndex):
    """3D dominance max: the same skeleton probed with ``max_in_prefix``."""

    def __init__(self, elements: Sequence[Element]) -> None:
        self.ops = OpCounter()
        self._inner = DominancePrioritized(elements)

    @property
    def n(self) -> int:
        return self._inner.n

    def query_cost_bound(self) -> float:
        """``Q_max = O(log^2 n)`` canonical PSTs, each probed once."""
        log_n = max(1.0, math.log2(max(2, self.n)))
        return log_n**2

    def query(self, predicate: DominancePredicate) -> Optional[Element]:
        qx, qy, qz = predicate.q
        ytrees: List[object] = []
        _canonical_prefix(self._inner._root, qx, ytrees, self.ops)
        best: Optional[Element] = None
        for ytree in ytrees:
            psts: List[object] = []
            _canonical_prefix(ytree, qy, psts, self.ops)
            for pst in psts:
                candidate = pst.max_in_prefix(qz)
                if candidate is not None and (best is None or candidate.weight > best.weight):
                    best = candidate
        return best

    def space_units(self) -> int:
        return self._inner.space_units()
