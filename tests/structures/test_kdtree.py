"""Tests for the weight-augmented kd-tree (halfspace/ball, d >= 2)."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from oracles import oracle_max, oracle_prioritized, oracle_top_k, sorted_desc
from repro.core.problem import Element
from repro.geometry.primitives import Ball, Halfplane
from repro.structures.kdtree import (
    CONTAINED,
    DISJOINT,
    PARTIAL,
    HalfspacePredicate,
    KDTreeIndex,
    KDTreeMax,
    classify,
    classify_ball,
    classify_halfspace,
)


def make_points(n, d, seed=0):
    rng = random.Random(seed)
    weights = rng.sample(range(10 * n), n)
    return [
        Element(tuple(rng.uniform(-10, 10) for _ in range(d)), float(weights[i]), payload=i)
        for i in range(n)
    ]


def random_halfspace(rng, d):
    normal = tuple(rng.gauss(0, 1) for _ in range(d))
    c = rng.uniform(-8, 8)
    return Halfplane(normal, c)


class TestClassification:
    def test_halfspace_contained(self):
        hs = Halfplane((1.0, 0.0), -100.0)
        assert classify_halfspace(hs, (0, 0), (1, 1)) == CONTAINED

    def test_halfspace_disjoint(self):
        hs = Halfplane((1.0, 0.0), 100.0)
        assert classify_halfspace(hs, (0, 0), (1, 1)) == DISJOINT

    def test_halfspace_partial(self):
        hs = Halfplane((1.0, 0.0), 0.5)
        assert classify_halfspace(hs, (0, 0), (1, 1)) == PARTIAL

    def test_halfspace_negative_normal(self):
        hs = Halfplane((-1.0, 0.0), -0.5)  # x <= 0.5
        assert classify_halfspace(hs, (0, 0), (0.4, 1)) == CONTAINED
        assert classify_halfspace(hs, (0.6, 0), (1, 1)) == DISJOINT

    def test_ball_contained(self):
        assert classify_ball(Ball((0.0, 0.0), 10.0), (-1, -1), (1, 1)) == CONTAINED

    def test_ball_disjoint(self):
        assert classify_ball(Ball((100.0, 0.0), 1.0), (-1, -1), (1, 1)) == DISJOINT

    def test_ball_partial(self):
        assert classify_ball(Ball((0.0, 0.0), 1.0), (-1, -1), (1, 1)) == PARTIAL

    def test_classify_dispatch(self):
        assert classify(Halfplane((1.0,), 0.0), (1,), (2,)) == CONTAINED
        assert classify(Ball((0.0,), 5.0), (1,), (2,)) == CONTAINED

    def test_classify_rejects_unknown(self):
        with pytest.raises(TypeError):
            classify("not a region", (0,), (1,))


class TestPrioritized:
    @pytest.mark.parametrize("d", [2, 3, 4])
    def test_matches_oracle(self, d):
        elements = make_points(200, d, seed=d)
        index = KDTreeIndex(elements)
        rng = random.Random(d + 10)
        for _ in range(40):
            p = HalfspacePredicate(random_halfspace(rng, d))
            tau = rng.uniform(0, 2000)
            assert sorted_desc(index.query(p, tau).elements) == oracle_prioritized(
                elements, p, tau
            )

    def test_limit_truncation(self):
        elements = make_points(150, 2, seed=1)
        index = KDTreeIndex(elements)
        p = HalfspacePredicate(Halfplane((1.0, 0.0), -100.0))
        r = index.query(p, -math.inf, limit=4)
        assert r.truncated and len(r.elements) == 5

    def test_leaf_size_one(self):
        elements = make_points(60, 2, seed=2)
        index = KDTreeIndex(elements, leaf_size=1)
        p = HalfspacePredicate(Halfplane((0.0, 1.0), 0.0))
        assert sorted_desc(index.query(p, -math.inf).elements) == oracle_prioritized(
            elements, p, -math.inf
        )

    def test_predicate_without_region_rejected(self):
        from repro.structures.dominance import DominancePredicate

        index = KDTreeIndex(make_points(10, 3, seed=3))
        with pytest.raises(TypeError, match="region"):
            index.query(DominancePredicate((0.0, 0.0, 0.0)), 0.0)

    def test_query_cost_bound_polynomial(self):
        index = KDTreeIndex(make_points(256, 2, seed=4))
        assert index.query_cost_bound() == pytest.approx(256**0.5)


class TestMaxAndTopK:
    def test_max_matches_oracle(self):
        elements = make_points(200, 3, seed=5)
        index = KDTreeMax(elements)
        rng = random.Random(6)
        for _ in range(60):
            p = HalfspacePredicate(random_halfspace(rng, 3))
            assert index.query(p) == oracle_max(elements, p)

    def test_native_top_k_matches_oracle(self):
        elements = make_points(200, 2, seed=7)
        index = KDTreeIndex(elements)
        rng = random.Random(8)
        for _ in range(30):
            p = HalfspacePredicate(random_halfspace(rng, 2))
            for k in (1, 5, 50):
                assert index.top_k(p, k) == oracle_top_k(elements, p, k)

    def test_top_k_k_zero(self):
        index = KDTreeIndex(make_points(20, 2, seed=9))
        assert index.top_k(HalfspacePredicate(Halfplane((1.0, 0.0), 0.0)), 0) == []

    def test_pruning_visits_few_nodes_for_max(self):
        elements = make_points(2000, 2, seed=10)
        index = KDTreeMax(elements)
        index.ops.reset()
        index.query(HalfspacePredicate(Halfplane((1.0, 0.0), -100.0)))  # everything
        assert index.ops.node_visits <= 30  # heaviest found near the root


coordinate = st.integers(-12, 12)


@settings(max_examples=25, deadline=None)
@given(
    pts=st.lists(st.tuples(coordinate, coordinate, coordinate), min_size=1, max_size=40),
    nx=st.floats(-1, 1, allow_nan=False),
    ny=st.floats(-1, 1, allow_nan=False),
    nz=st.floats(-1, 1, allow_nan=False),
    c=st.integers(-15, 15),
    seed=st.integers(0, 100),
)
def test_property_matches_oracle_3d(pts, nx, ny, nz, c, seed):
    if abs(nx) + abs(ny) + abs(nz) < 1e-9:
        return
    rng = random.Random(seed)
    weights = rng.sample(range(10 * len(pts)), len(pts))
    elements = [
        Element(tuple(float(v) for v in p), float(w)) for p, w in zip(pts, weights)
    ]
    p = HalfspacePredicate(Halfplane((nx, ny, nz), float(c)))
    index = KDTreeIndex(elements, leaf_size=2)
    assert sorted_desc(index.query(p, -math.inf).elements) == oracle_prioritized(
        elements, p, -math.inf
    )
    assert index.max_query(p) == oracle_max(elements, p)
