"""Interval stabbing structures (the substrate of Theorem 4).

Problem: ``D`` is a set of weighted closed intervals on the real line; a
predicate is a stabbing point ``x``, matched by every interval
containing ``x``.

Structures provided:

* :class:`SegmentTreeIntervalPrioritized` — prioritized reporting in
  ``O(log n + t)`` time (``O(log n + t/B)`` I/Os in EM mode), space
  ``O(n log n)`` words.  Substitutes for Tao's ray-stabbing structure
  [34] (see DESIGN.md section 4).  Supports insert/delete; off-grid
  endpoints introduced by updates are handled exactly via partial
  assignments at boundary leaves, and the slab grid is rebuilt when
  ``n`` drifts by 2x (amortized).
* :class:`StaticIntervalStabbingMax` — the paper's own folklore static
  structure (Section 5.2, "1D Stabbing Max"): the ``2n`` endpoints cut
  the line into ``<= 2n + 1`` subintervals, each annotated with the max
  weight of the intervals spanning it, so a query is one predecessor
  search: ``O(log n)`` in RAM, ``O(log_B n)`` I/Os with the B-tree.
* :class:`DynamicIntervalStabbingMax` — max reporting over the dynamic
  segment tree (substitutes for Agarwal et al. [7]): ``O(log n)``
  query, ``O(log n)`` amortized update.
"""

from __future__ import annotations

import bisect
import heapq
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.interfaces import (
    CountingIndex,
    DynamicMaxIndex,
    DynamicPrioritizedIndex,
    OpCounter,
    PrioritizedResult,
)
from repro.core.columnar import register_predicate_compiler
from repro.core.problem import Element, Predicate
from repro.em.blockarray import BlockArray
from repro.em.btree import BPlusTree
from repro.em.model import EMContext
from repro.geometry.primitives import Interval


@dataclass(frozen=True)
class StabbingPredicate(Predicate):
    """Matches every interval containing the stabbing point ``x``."""

    x: float

    def matches(self, obj: Interval) -> bool:
        return obj.contains(self.x)


@register_predicate_compiler(StabbingPredicate)
def _compile_stabbing(predicate: StabbingPredicate):
    """Closure-specialized stabbing test: endpoint compare, no dispatch."""
    x = predicate.x
    return lambda obj: obj.lo <= x <= obj.hi


# ----------------------------------------------------------------------
# The slab grid and segment tree shared by the stabbing structures
# ----------------------------------------------------------------------
class _SegmentTree:
    """A segment tree over the elementary slabs of an endpoint grid.

    Leaves alternate between point slabs ``{c_i}`` and open slabs
    ``(c_i, c_{i+1})`` (with the two unbounded extremes), so closed
    intervals decompose exactly.  Each node stores the elements whose
    canonical range covers it, ordered by descending weight; elements at
    *leaf* nodes may cover the leaf's slab only partially (a consequence
    of off-grid insertions) and are re-checked exactly at query time.
    """

    def __init__(self, coords: Sequence[float], interval_of=None) -> None:
        self.interval_of = interval_of if interval_of is not None else _obj_interval
        self.coords: List[float] = sorted(set(coords))
        # Leaves: 0 .. 2m; even indices are open slabs, odd are points.
        self.num_leaves = 2 * len(self.coords) + 1 if self.coords else 1
        # Per-node element lists, keyed by (lo, hi) leaf ranges laid out
        # in an implicit recursion; nodes materialise lazily in a dict.
        self.lists: Dict[Tuple[int, int], List[Element]] = {}
        self.assignments: Dict[Element, List[Tuple[int, int]]] = {}

    # -- leaf arithmetic ------------------------------------------------
    def leaf_of(self, x: float) -> int:
        """The elementary slab containing the point ``x``."""
        i = bisect.bisect_left(self.coords, x)
        if i < len(self.coords) and self.coords[i] == x:
            return 2 * i + 1
        return 2 * i

    def full_leaf_range(self, interval: Interval) -> Tuple[int, int, bool, bool]:
        """Leaf range fully covered by ``interval`` plus partial flags.

        Returns ``(lo_leaf, hi_leaf, partial_lo, partial_hi)`` where the
        full range is ``[lo_leaf, hi_leaf]`` (may be empty when
        ``lo_leaf > hi_leaf``) and each partial flag says the interval
        additionally covers part of the slab just outside that end.
        """
        la = self.leaf_of(interval.lo)
        lb = self.leaf_of(interval.hi)
        partial_lo = la % 2 == 0  # off-grid endpoint sits in an open slab
        partial_hi = lb % 2 == 0
        lo_full = la + 1 if partial_lo else la
        hi_full = lb - 1 if partial_hi else lb
        return lo_full, hi_full, partial_lo, partial_hi

    # -- canonical assignment -------------------------------------------
    def insert(self, element: Element) -> None:
        interval: Interval = self.interval_of(element)
        lo_full, hi_full, partial_lo, partial_hi = self.full_leaf_range(interval)
        nodes: List[Tuple[int, int]] = []
        if lo_full <= hi_full:
            self._assign(0, self.num_leaves - 1, lo_full, hi_full, nodes)
        if partial_lo:
            leaf = self.leaf_of(interval.lo)
            if not (lo_full <= leaf <= hi_full):
                nodes.append(self._leaf_key(leaf))
        if partial_hi:
            leaf = self.leaf_of(interval.hi)
            key = self._leaf_key(leaf)
            if key not in nodes and not (lo_full <= leaf <= hi_full):
                nodes.append(key)
        for key in nodes:
            self._insort(key, element)
        self.assignments[element] = nodes

    def delete(self, element: Element) -> None:
        for key in self.assignments.pop(element):
            self.lists[key].remove(element)

    def _leaf_key(self, leaf: int) -> Tuple[int, int]:
        return (leaf, leaf)

    def _assign(
        self, lo: int, hi: int, a: int, b: int, out: List[Tuple[int, int]]
    ) -> None:
        if b < lo or hi < a:
            return
        if a <= lo and hi <= b:
            out.append((lo, hi))
            return
        mid = (lo + hi) // 2
        self._assign(lo, mid, a, b, out)
        self._assign(mid + 1, hi, a, b, out)

    def _insort(self, key: Tuple[int, int], element: Element) -> None:
        lst = self.lists.setdefault(key, [])
        bisect.insort(lst, element, key=lambda e: -e.weight)

    # -- query ------------------------------------------------------------
    def path_nodes(self, x: float) -> List[Tuple[Tuple[int, int], bool]]:
        """Node keys on the root-to-leaf path of ``x``.

        Each entry is ``(key, is_leaf)``; only leaf nodes may hold
        partial assignments needing an exact containment check.
        """
        leaf = self.leaf_of(x)
        path: List[Tuple[Tuple[int, int], bool]] = []
        lo, hi = 0, self.num_leaves - 1
        while True:
            path.append(((lo, hi), lo == hi))
            if lo == hi:
                return path
            mid = (lo + hi) // 2
            if leaf <= mid:
                hi = mid
            else:
                lo = mid + 1

    def total_stored(self) -> int:
        """Total list entries — the ``O(n log n)`` space figure."""
        return sum(len(lst) for lst in self.lists.values())


# ----------------------------------------------------------------------
# Prioritized reporting
# ----------------------------------------------------------------------
class SegmentTreeIntervalPrioritized(DynamicPrioritizedIndex):
    """Prioritized interval stabbing: ``O(log n + t)``, dynamic.

    Every canonical list is ordered by descending weight, so a query
    walks the ``O(log n)`` path nodes and scans each list only as deep
    as the threshold ``tau`` — every scanned entry of an internal node
    is reported, giving exact output sensitivity.  In EM mode (pass
    ``ctx``) the lists are mirrored into :class:`BlockArray`s and the
    scan costs ``O(t/B)`` I/Os; EM mode is static (updates raise).
    """

    def __init__(
        self,
        elements: Sequence[Element],
        ctx: Optional[EMContext] = None,
        interval_of=None,
    ) -> None:
        self.ops = OpCounter()
        self.ctx = ctx
        self.interval_of = interval_of if interval_of is not None else _obj_interval
        self._n = 0
        self._built_n = max(1, len(elements))
        self._tree = _SegmentTree(_endpoint_grid(elements, self.interval_of), self.interval_of)
        for element in elements:
            self._tree.insert(element)
            self._n += 1
        self._blocks: Optional[BlockArray] = None
        self._segments: Dict[Tuple[int, int], Tuple[int, int]] = {}
        self._node_blocks: Dict[Tuple[int, int], int] = {}
        if ctx is not None:
            self._freeze_to_blocks()

    def _freeze_to_blocks(self) -> None:
        """Pack every canonical list into one shared BlockArray.

        Sub-block lists would each waste most of a block if stored
        separately; concatenating them (recording per-key offsets) keeps
        the structure at ``ceil(total/B)`` blocks, as the EM model
        intends.  Lists stay weight-descending within their segment.
        """
        assert self.ctx is not None
        records: List[Element] = []
        self._segments = {}
        for key, lst in self._tree.lists.items():
            self._segments[key] = (len(records), len(lst))
            records.extend(lst)
        self._blocks = BlockArray(self.ctx, records)
        # Node metadata packed B keys per block, root-most nodes first:
        # reading a node costs an I/O only while its block is out of
        # cache, so repeated queries keep the upper tree levels resident
        # — matching the model machine rather than charging analytically.
        self._node_blocks = {}
        ordered_keys = sorted(self._tree.lists, key=lambda k: -(k[1] - k[0]))
        for start in range(0, len(ordered_keys), self.ctx.B):
            chunk = ordered_keys[start : start + self.ctx.B]
            block_id = self.ctx.allocate_block(list(chunk))
            for key in chunk:
                self._node_blocks[key] = block_id
        self.ctx.flush()

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self._n

    def query_cost_bound(self) -> float:
        """``Q_pri(n) = O(log n)`` — the path length."""
        return max(1.0, math.log2(max(2, self._n)))

    def query(
        self, predicate: StabbingPredicate, tau: float, limit: Optional[int] = None
    ) -> PrioritizedResult:
        x = predicate.x
        out: List[Element] = []
        for key, is_leaf in self._tree.path_nodes(x):
            self.ops.node_visits += 1
            if self.ctx is not None:
                block_id = self._node_blocks.get(key)
                if block_id is not None:
                    self.ctx.read_block(block_id)  # cached node metadata
            for element in self._scan_list(key, tau):
                if is_leaf and not self.interval_of(element).contains(x):
                    continue
                out.append(element)
                if limit is not None and len(out) > limit:
                    return PrioritizedResult(out, truncated=True)
        return PrioritizedResult(out, truncated=False)

    def _scan_list(self, key: Tuple[int, int], tau: float):
        """Scan one canonical list down to weight ``tau``."""
        if self._blocks is not None:
            segment = self._segments.get(key)
            if segment is None:
                return
            offset, length = segment
            for element in self._blocks.scan(offset, offset + length):
                if element.weight < tau:
                    return
                self.ops.scanned += 1
                yield element
            return
        lst = self._tree.lists.get(key)
        if not lst:
            return
        for element in lst:
            if element.weight < tau:
                return
            self.ops.scanned += 1
            yield element

    # ------------------------------------------------------------------
    # Updates (RAM mode only)
    # ------------------------------------------------------------------
    def insert(self, element: Element) -> None:
        """Insert in ``O(log^2 n)`` amortized (list insertion + rebuilds)."""
        self._require_ram_mode()
        self._tree.insert(element)
        self._n += 1
        self._maybe_rebuild()

    def delete(self, element: Element) -> None:
        """Delete in ``O(log n)`` canonical nodes (list removals)."""
        self._require_ram_mode()
        self._tree.delete(element)
        self._n -= 1
        self._maybe_rebuild()

    def _require_ram_mode(self) -> None:
        if self.ctx is not None:
            raise TypeError("EM-mode SegmentTreeIntervalPrioritized is static")

    def _maybe_rebuild(self) -> None:
        # Off-grid insertions pile elements onto boundary leaves; rebuild
        # the grid when n drifts so the leaf lists stay balanced.
        if self._n > 2 * self._built_n or (self._n < self._built_n // 2 and self._built_n > 4):
            elements = list(self._tree.assignments)
            self._built_n = max(1, self._n)
            self._tree = _SegmentTree(_endpoint_grid(elements, self.interval_of), self.interval_of)
            for element in elements:
                self._tree.insert(element)

    def space_units(self) -> int:
        """Stored list entries (``O(n log n)`` words)."""
        return self._tree.total_stored()

    # ------------------------------------------------------------------
    # Durability (snapshot/restore)
    # ------------------------------------------------------------------
    SNAPSHOT_FORMAT = "segtree-interval-prioritized"
    SNAPSHOT_VERSION = 1

    def snapshot_state(self) -> dict:
        """The element list — construction is otherwise deterministic.

        The grid, canonical assignments, and weight-ordered lists are
        all deterministic functions of the element set, so the restored
        structure is identical without recording them.  ``interval_of``
        is code; the restorer supplies it (and a context) again.
        """
        return {
            "format": self.SNAPSHOT_FORMAT,
            "version": self.SNAPSHOT_VERSION,
            "elements": list(self._tree.assignments),
            "built_n": self._built_n,
        }

    @classmethod
    def restore(
        cls,
        state: dict,
        ctx: Optional[EMContext] = None,
        interval_of=None,
    ) -> "SegmentTreeIntervalPrioritized":
        if state.get("format") != cls.SNAPSHOT_FORMAT:
            raise TypeError(
                f"snapshot format {state.get('format')!r} is not "
                f"{cls.SNAPSHOT_FORMAT!r}"
            )
        self = cls(state["elements"], ctx=ctx, interval_of=interval_of)
        self._built_n = state["built_n"]
        return self


# ----------------------------------------------------------------------
# Max reporting
# ----------------------------------------------------------------------
class StaticIntervalStabbingMax(DynamicMaxIndex):
    """The paper's folklore static 1D stabbing-max (Section 5.2).

    The ``2n`` endpoints split the line into at most ``2n + 1``
    subintervals; each carries the heaviest interval spanning it, found
    by a sweep.  A query is a predecessor search over the endpoints:
    ``O(log n)`` in RAM, ``O(log_B n)`` I/Os through the optional
    B-tree.  Despite subclassing the dynamic interface for registry
    uniformity, updates rebuild (amortised ``O(n)``) — use
    :class:`DynamicIntervalStabbingMax` when updates matter.
    """

    def __init__(
        self,
        elements: Sequence[Element],
        ctx: Optional[EMContext] = None,
        interval_of=None,
    ) -> None:
        self.ops = OpCounter()
        self.ctx = ctx
        self.interval_of = interval_of if interval_of is not None else _obj_interval
        self._elements = list(elements)
        self._build()

    def _build(self) -> None:
        # Elementary slabs over the endpoint grid: for m distinct
        # coordinates there are 2m + 1 slabs, alternating open gaps and
        # single points (the same indexing as _SegmentTree.leaf_of), so
        # closed intervals cover an exact slab range.
        self._coords: List[float] = sorted(
            {
                c
                for e in self._elements
                for c in (self.interval_of(e).lo, self.interval_of(e).hi)
            }
        )
        coord_index = {c: i for i, c in enumerate(self._coords)}
        opens: List[List[Element]] = [[] for _ in self._coords]
        closes: List[List[Element]] = [[] for _ in self._coords]
        for element in self._elements:
            interval: Interval = self.interval_of(element)
            opens[coord_index[interval.lo]].append(element)
            closes[coord_index[interval.hi]].append(element)
        num_slabs = 2 * len(self._coords) + 1
        self._champions: List[Optional[Element]] = [None] * num_slabs
        active: List[Tuple[float, int]] = []  # (-weight, seq) lazy-deletion heap
        alive: Dict[int, Element] = {}
        seqs_of: Dict[Element, List[int]] = {}
        dead: set = set()
        seq = 0
        for i in range(len(self._coords)):
            # Point slab {c_i} (index 2i + 1): intervals opening here count.
            for element in opens[i]:
                heapq.heappush(active, (-element.weight, seq))
                alive[seq] = element
                seqs_of.setdefault(element, []).append(seq)
                seq += 1
            self._champions[2 * i + 1] = self._heap_max(active, alive, dead)
            # Open slab (c_i, c_{i+1}) (index 2i + 2): closers drop out.
            for element in closes[i]:
                dead.add(seqs_of[element].pop())
            self._champions[2 * i + 2] = self._heap_max(active, alive, dead)
        self._btree: Optional[BPlusTree] = None
        if self.ctx is not None and self._coords:
            items = [(c, i) for i, c in enumerate(self._coords)]
            self._btree = BPlusTree(self.ctx, items, presorted=True)

    @staticmethod
    def _heap_max(active, alive, dead) -> Optional[Element]:
        while active and active[0][1] in dead:
            heapq.heappop(active)
        if not active:
            return None
        return alive[active[0][1]]

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return len(self._elements)

    def query_cost_bound(self) -> float:
        """``Q_max = O(log n)`` (``O(log_B n)`` with the B-tree)."""
        if self.ctx is not None and self._btree is not None:
            base = max(2.0, float(self.ctx.B))
            return max(1.0, math.log(max(2, self.n), base))
        return max(1.0, math.log2(max(2, self.n)))

    def query(self, predicate: StabbingPredicate) -> Optional[Element]:
        x = predicate.x
        if not self._coords:
            return None
        if self._btree is not None:
            hit = self._btree.predecessor(x)
            if hit is None:
                slab = 0  # x lies left of every endpoint
            elif hit[0] == x:
                slab = 2 * hit[1] + 1  # the point slab {x}
            else:
                slab = 2 * hit[1] + 2  # the open slab right of hit
        else:
            i = bisect.bisect_left(self._coords, x)
            if i < len(self._coords) and self._coords[i] == x:
                slab = 2 * i + 1
            else:
                slab = 2 * i
            self.ops.node_visits += max(1, int(math.log2(max(2, len(self._coords)))))
        return self._champions[slab]

    # Rebuild-style updates (registry uniformity; see class docstring).
    def insert(self, element: Element) -> None:
        self._elements.append(element)
        self._build()

    def delete(self, element: Element) -> None:
        self._elements.remove(element)
        self._build()

    @property
    def endpoint_grid(self) -> List[float]:
        """The sorted endpoint coordinates (the predecessor-search keys).

        Exposed so fractional-cascading consumers (Section 5.2's 2D
        stabbing max) can cascade over the same grid this structure
        searches.
        """
        return self._coords

    def champion_for_predecessor(self, pred: int, x: float) -> Optional[Element]:
        """Champion lookup given an externally computed predecessor.

        ``pred`` is the index of the largest endpoint ``<= x`` (``-1``
        if none) — e.g. produced by a fractional-cascading descent.
        Translates it to the elementary slab and returns that slab's
        heaviest spanning interval without re-searching.
        """
        if pred < 0:
            slab = 0
        elif self._coords[pred] == x:
            slab = 2 * pred + 1
        else:
            slab = 2 * pred + 2
        return self._champions[slab]

    def space_units(self) -> int:
        """Subinterval table size (``O(n)`` words)."""
        return 2 * (2 * len(self._coords) + 1)

    # ------------------------------------------------------------------
    # Durability (snapshot/restore)
    # ------------------------------------------------------------------
    SNAPSHOT_FORMAT = "static-interval-stabbing-max"
    SNAPSHOT_VERSION = 1

    def snapshot_state(self) -> dict:
        """The element list — the champion sweep is deterministic."""
        return {
            "format": self.SNAPSHOT_FORMAT,
            "version": self.SNAPSHOT_VERSION,
            "elements": list(self._elements),
        }

    @classmethod
    def restore(
        cls,
        state: dict,
        ctx: Optional[EMContext] = None,
        interval_of=None,
    ) -> "StaticIntervalStabbingMax":
        if state.get("format") != cls.SNAPSHOT_FORMAT:
            raise TypeError(
                f"snapshot format {state.get('format')!r} is not "
                f"{cls.SNAPSHOT_FORMAT!r}"
            )
        return cls(state["elements"], ctx=ctx, interval_of=interval_of)


class DynamicIntervalStabbingMax(DynamicMaxIndex):
    """Dynamic stabbing max over the segment tree: ``O(log n)`` query.

    Substitutes for the stabbing-semigroup structure of Agarwal et al.
    [7] — same interface, ``O(log n)`` query and ``O(log n)`` canonical
    nodes per update (list maintenance makes updates ``O(log^2 n)``
    amortized in this implementation).
    """

    def __init__(self, elements: Sequence[Element], interval_of=None) -> None:
        self.ops = OpCounter()
        self._inner = SegmentTreeIntervalPrioritized(elements, interval_of=interval_of)

    @property
    def n(self) -> int:
        return self._inner.n

    def query_cost_bound(self) -> float:
        return self._inner.query_cost_bound()

    def query(self, predicate: StabbingPredicate) -> Optional[Element]:
        x = predicate.x
        tree = self._inner._tree
        best: Optional[Element] = None
        for key, is_leaf in tree.path_nodes(x):
            self.ops.node_visits += 1
            lst = tree.lists.get(key)
            if not lst:
                continue
            if not is_leaf:
                candidate = lst[0]  # heaviest, lists are weight-descending
                if best is None or candidate.weight > best.weight:
                    best = candidate
            else:
                for element in lst:
                    if best is not None and element.weight <= best.weight:
                        break  # weight-descending: nothing better remains
                    if self._inner.interval_of(element).contains(x):
                        best = element
                        break
        return best

    def insert(self, element: Element) -> None:
        """Amortized ``O(log^2 n)`` (canonical nodes x list insertion)."""
        self._inner.insert(element)

    def delete(self, element: Element) -> None:
        """Amortized ``O(log^2 n)``."""
        self._inner.delete(element)

    def space_units(self) -> int:
        return self._inner.space_units()


class IntervalStabbingCounter(CountingIndex):
    """Exact stabbing counting in ``O(log n)`` via the segment tree.

    Internal canonical nodes contribute their full list sizes (every
    stored interval spans the node's slab); leaf assignments are checked
    exactly.  Supplies the counting black box of the Section 2 reduction
    (:class:`repro.core.counting.CountingTopKIndex`).
    """

    def __init__(self, elements: Sequence[Element], interval_of=None) -> None:
        self.ops = OpCounter()
        self.interval_of = interval_of if interval_of is not None else _obj_interval
        self._tree = _SegmentTree(_endpoint_grid(elements, self.interval_of), self.interval_of)
        for element in elements:
            self._tree.insert(element)
        self._n = len(elements)

    @property
    def n(self) -> int:
        return self._n

    @property
    def approximation_factor(self) -> float:
        return 1.0

    def count(self, predicate: StabbingPredicate) -> int:
        x = predicate.x
        total = 0
        for key, is_leaf in self._tree.path_nodes(x):
            self.ops.node_visits += 1
            lst = self._tree.lists.get(key)
            if not lst:
                continue
            if is_leaf:
                total += sum(1 for e in lst if self.interval_of(e).contains(x))
            else:
                total += len(lst)
        return total

    def space_units(self) -> int:
        return self._tree.total_stored()


def _endpoint_grid(elements: Sequence[Element], interval_of=None) -> List[float]:
    """All interval endpoints — the slab grid of the segment tree."""
    interval_of = interval_of if interval_of is not None else _obj_interval
    coords: List[float] = []
    for element in elements:
        interval: Interval = interval_of(element)
        coords.append(interval.lo)
        coords.append(interval.hi)
    return coords


def _obj_interval(element: Element) -> Interval:
    """Default accessor: the element's object *is* the interval."""
    return element.obj
