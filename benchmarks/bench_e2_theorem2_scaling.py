"""E2 — Theorem 2: no degradation — Q_top = O(Q_pri + Q_max + k/B).

Paper claim (eqs. (5)-(6)): combining prioritized + max structures
yields a top-k structure whose expected query cost matches the *sum* of
one prioritized and one max query plus the output term — no log factor.

Measured: I/Os per top-k query vs the measured cost of one prioritized
probe plus one max probe, as ``n`` doubles.  The overhead ratio must
stay bounded (flat in ``n``) instead of growing like E1's log ladder.
"""

import math

from repro.bench.runner import fit_loglog_slope
from repro.bench.tables import render_table
from repro.core.theorem2 import ExpectedTopKIndex

from helpers import em_context, em_interval_factories, interval_elements_scaled, measure_ios, stab_queries

SIZES = (1_000, 2_000, 4_000, 8_000)
K = 10
QUERIES = 24


def _build(n):
    ctx = em_context()
    prioritized, maxi = em_interval_factories(ctx)
    elements = list(interval_elements_scaled(n))
    index = ExpectedTopKIndex(elements, prioritized, maxi, B=ctx.B, seed=2)
    ground = prioritized(elements)
    max_index = maxi(elements)
    return ctx, index, ground, max_index


def _sweep():
    rows = []
    ratios = []
    topk_costs = []
    for n in SIZES:
        ctx, index, ground, max_index = _build(n)
        predicates = stab_queries(QUERIES, seed=n + 1)
        topk_ios = measure_ios(
            ctx, lambda: [index.query(p, K) for p in predicates]
        ) / QUERIES
        component_ios = measure_ios(
            ctx,
            lambda: [
                (ground.query(p, -math.inf, limit=4 * K), max_index.query(p))
                for p in predicates
            ],
        ) / QUERIES
        ratio = topk_ios / max(component_ios, 1e-9)
        rows.append([n, round(component_ios, 1), round(topk_ios, 1), round(ratio, 2)])
        ratios.append(ratio)
        topk_costs.append(topk_ios)
    ratio_slope = fit_loglog_slope(list(SIZES), ratios)
    return rows, ratio_slope


def bench_e2_theorem2_scaling(benchmark, results_sink):
    rows, ratio_slope = _sweep()
    results_sink(
        render_table(
            "E2  Theorem 2: top-k I/Os vs (one prioritized + one max) probe (k=10)",
            ["n", "Q_pri+Q_max I/Os", "Q_top I/Os", "overhead ratio"],
            rows,
            note=(
                "no-degradation claim: the overhead ratio stays flat in n "
                f"(log-log slope {ratio_slope:.3f})"
            ),
        )
    )
    # Flat overhead: the ratio must not grow with any clear trend.
    assert ratio_slope < 0.25, f"Theorem 2 overhead grows with n (slope {ratio_slope:.2f})"

    ctx, index, _, _ = _build(SIZES[-1])
    predicates = stab_queries(QUERIES, seed=3)

    def run_batch():
        for p in predicates:
            index.query(p, K)

    benchmark(run_batch)
