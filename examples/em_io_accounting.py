"""Watching the external-memory model at work: exact I/O accounting.

The paper analyses everything in the EM model of Aggarwal and Vitter:
cost = block transfers between a disk of B-word blocks and an M-word
memory.  This example builds the Theorem 2 top-k index over EM-resident
interval structures and prints *measured* I/O counts as the block size
B varies, on two workloads:

* a **sparse** one (few intervals stab any point) whose cost is the
  search term — it barely moves with B;
* a **dense** one (hundreds of intervals stab every point) whose cost
  is the output term — it scales down like 1/B,

together showing the shape of Theorem 4's ``O(log n + k/B)``.

Run:  python examples/em_io_accounting.py
"""

import math
import random

from repro import Element, ExpectedTopKIndex
from repro.em.model import EMContext
from repro.geometry.primitives import Interval
from repro.structures.interval_stabbing import (
    SegmentTreeIntervalPrioritized,
    StabbingPredicate,
    StaticIntervalStabbingMax,
)

N = 4_000
K = 16
QUERIES = 25


def make_intervals(n: int, seed: int, mean_length: float) -> list:
    rng = random.Random(seed)
    weights = rng.sample(range(10 * n), n)
    out = []
    for i in range(n):
        center = rng.uniform(0, 1_000)
        length = rng.uniform(0.5 * mean_length, 1.5 * mean_length)
        out.append(
            Element(Interval(center - length / 2, center + length / 2), float(weights[i]))
        )
    return out


def measure(B: int, elements) -> float:
    """Average I/Os per top-K query at block size B (cold cache)."""
    ctx = EMContext(B=B, M=8 * B)
    index = ExpectedTopKIndex(
        elements,
        prioritized_factory=lambda subset: SegmentTreeIntervalPrioritized(subset, ctx=ctx),
        max_factory=lambda subset: StaticIntervalStabbingMax(subset, ctx=ctx),
        B=B,
        seed=1,
    )
    rng = random.Random(2)
    predicates = [StabbingPredicate(rng.uniform(100, 900)) for _ in range(QUERIES)]
    ctx.drop_cache()
    ctx.stats.reset()
    for predicate in predicates:
        index.query(predicate, K)
    return ctx.stats.total / QUERIES


def main() -> None:
    sparse = make_intervals(N, seed=7, mean_length=2.0)    # ~8 stabs/query
    dense = make_intervals(N, seed=8, mean_length=200.0)   # ~800 stabs/query
    print(f"Top-{K} interval stabbing over n={N} intervals: I/Os per query")
    print("(Theorem 2 structure on a simulated disk, cold cache)\n")
    print(f"{'B':>4}  {'sparse workload':>16}  {'dense workload':>15}")
    print(f"{'-'*4}  {'-'*16}  {'-'*15}")
    for B in (8, 16, 32, 64, 128):
        print(f"{B:>4}  {measure(B, sparse):>16.1f}  {measure(B, dense):>15.1f}")
    print(
        "\nThe sparse column is the search term of O(log n + k/B): it barely"
        "\nmoves with B.  The dense column is output-dominated: it shrinks"
        "\nlike 1/B as each block carries more of the fetched candidates."
    )


if __name__ == "__main__":
    main()
