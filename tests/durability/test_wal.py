"""Write-ahead log: group commit, torn tails, idempotent replay."""

import pytest

from repro.core.problem import Element
from repro.durability.store import DurableStore
from repro.durability.wal import (
    OP_DELETE,
    OP_INSERT,
    WriteAheadLog,
    read_committed,
)


def elements(n, offset=0):
    return [Element(i + offset, float(i + offset)) for i in range(n)]


def reopened(store):
    return DurableStore.open(store.disk, B=store.ctx.B)


class TestCommit:
    def test_committed_group_survives_reopen(self):
        store = DurableStore(B=8)
        wal = WriteAheadLog(store)
        for element in elements(5):
            wal.append(OP_INSERT, element)
        assert wal.commit() == 5
        store.wal_head = wal.head
        store.commit_superblock()
        groups, discarded = read_committed(reopened(store), wal.head)
        assert discarded == 0
        assert [r.element for r in groups[0]] == elements(5)
        assert [r.op for r in groups[0]] == [OP_INSERT] * 5
        assert [r.lsn for r in groups[0]] == [1, 2, 3, 4, 5]

    def test_multiple_groups_in_order(self):
        store = DurableStore(B=8)
        wal = WriteAheadLog(store)
        for batch in range(3):
            for element in elements(4, offset=10 * batch):
                wal.append(OP_INSERT, element)
            wal.commit()
        store.wal_head = wal.head
        store.commit_superblock()
        groups, _ = read_committed(reopened(store), wal.head)
        assert len(groups) == 3
        assert [r.element for r in groups[2]] == elements(4, offset=20)

    def test_group_larger_than_a_block(self):
        store = DurableStore(B=4)  # 2 payload records per block
        wal = WriteAheadLog(store)
        for element in elements(11):
            wal.append(OP_INSERT, element)
        wal.commit()
        store.wal_head = wal.head
        store.commit_superblock()
        groups, discarded = read_committed(reopened(store), wal.head)
        assert discarded == 0
        assert [r.element for r in groups[0]] == elements(11)

    def test_empty_commit_is_a_noop(self):
        store = DurableStore(B=8)
        wal = WriteAheadLog(store)
        blocks_before = store.disk.num_blocks
        assert wal.commit() == 0
        assert store.disk.num_blocks == blocks_before

    def test_uncommitted_records_are_not_durable(self):
        store = DurableStore(B=8)
        wal = WriteAheadLog(store)
        for element in elements(3):
            wal.append(OP_INSERT, element)
        store.wal_head = wal.head
        store.commit_superblock()
        groups, discarded = read_committed(reopened(store), wal.head)
        assert groups == [] and discarded == 0
        assert wal.pending_records == 3

    def test_rollback_last_removes_the_append(self):
        store = DurableStore(B=8)
        wal = WriteAheadLog(store)
        wal.append(OP_INSERT, Element(1, 1.0))
        wal.append(OP_DELETE, Element(2, 2.0))
        wal.rollback_last()
        wal.commit()
        store.wal_head = wal.head
        store.commit_superblock()
        groups, _ = read_committed(reopened(store), wal.head)
        assert len(groups[0]) == 1 and groups[0][0].op == OP_INSERT
        assert wal.next_lsn == 2  # the rolled-back LSN was reissued


class TestTornTails:
    def test_torn_commit_block_discards_the_group(self):
        store = DurableStore(B=8)
        wal = WriteAheadLog(store)
        for element in elements(4):
            wal.append(OP_INSERT, element)
        wal.commit()
        for element in elements(4, offset=10):
            wal.append(OP_INSERT, element)
        wal.commit()
        store.wal_head = wal.head
        store.commit_superblock()
        # Tear the chain block holding the second group (the first commit
        # filled block 0 of the chain and pre-allocated block 1 for the
        # next one): only group 1 survives.
        victim = store._chain_blocks(wal.head)[1]
        store.disk.torn_write(victim, list(store.disk.raw_read(victim)), keep=1)
        groups, _ = read_committed(reopened(store), wal.head)
        assert len(groups) == 1
        assert [r.element for r in groups[0]] == elements(4)

    def test_open_tail_block_ends_the_log_cleanly(self):
        store = DurableStore(B=8)
        wal = WriteAheadLog(store)
        for element in elements(2):
            wal.append(OP_INSERT, element)
        wal.commit()
        store.wal_head = wal.head
        store.commit_superblock()
        # The chain's final pointer designates a pre-allocated, empty
        # open block; reading must stop there without raising.
        groups, discarded = read_committed(reopened(store), wal.head)
        assert len(groups) == 1 and discarded == 0

    def test_missing_head_means_empty_log(self):
        store = DurableStore(B=8)
        assert read_committed(store, None) == ([], 0)


class TestTruncate:
    def test_truncate_starts_a_fresh_chain(self):
        store = DurableStore(B=8)
        wal = WriteAheadLog(store)
        for element in elements(3):
            wal.append(OP_INSERT, element)
        wal.commit()
        old_head = wal.head
        wal.truncate()
        assert wal.head != old_head
        store.wal_head = wal.head
        store.commit_superblock()
        groups, _ = read_committed(reopened(store), wal.head)
        assert groups == []

    def test_lsns_keep_rising_across_truncation(self):
        store = DurableStore(B=8)
        wal = WriteAheadLog(store)
        wal.append(OP_INSERT, Element(1, 1.0))
        wal.commit()
        wal.truncate()
        lsn = wal.append(OP_INSERT, Element(2, 2.0))
        assert lsn == 2  # never reused

    def test_clean_chain_is_reused(self):
        store = DurableStore(B=8)
        wal = WriteAheadLog(store)
        head = wal.head
        wal.truncate()  # nothing ever committed: no new allocation
        assert wal.head == head


class TestIncrementalReads:
    """``after_lsn``: the watermark a replication follower ships from."""

    def test_after_lsn_filters_whole_groups(self):
        store = DurableStore(B=8)
        wal = WriteAheadLog(store)
        for batch in range(3):
            for element in elements(4, offset=10 * batch):
                wal.append(OP_INSERT, element)
            wal.commit()
        groups, _ = read_committed(store, wal.head, after_lsn=8)
        assert len(groups) == 1
        assert [r.lsn for r in groups[0]] == [9, 10, 11, 12]

    def test_after_lsn_splits_a_group_mid_way(self):
        store = DurableStore(B=8)
        wal = WriteAheadLog(store)
        for element in elements(6):
            wal.append(OP_INSERT, element)
        wal.commit()
        groups, _ = read_committed(store, wal.head, after_lsn=4)
        assert len(groups) == 1
        assert [r.lsn for r in groups[0]] == [5, 6]
        assert [r.element for r in groups[0]] == elements(2, offset=4)

    def test_watermark_at_or_past_the_tip_reads_nothing(self):
        store = DurableStore(B=8)
        wal = WriteAheadLog(store)
        for element in elements(3):
            wal.append(OP_INSERT, element)
        wal.commit()
        assert read_committed(store, wal.head, after_lsn=3) == ([], 0)
        assert read_committed(store, wal.head, after_lsn=99) == ([], 0)

    def test_resumed_shipping_covers_every_record_exactly_once(self):
        store = DurableStore(B=8)
        wal = WriteAheadLog(store)
        shipped = []
        watermark = 0
        for batch in range(4):
            for element in elements(3, offset=10 * batch):
                wal.append(OP_INSERT, element)
            wal.commit()
            groups, _ = read_committed(store, wal.head, after_lsn=watermark)
            for group in groups:
                shipped.extend(r.lsn for r in group)
                watermark = max(watermark, group[-1].lsn)
        assert shipped == list(range(1, 13))

    def test_torn_tail_then_resumed_shipping(self):
        """A torn group is never shipped; its records re-ship after the
        re-commit lands, and the watermark never skips or repeats."""
        store = DurableStore(B=8)
        wal = WriteAheadLog(store)
        for element in elements(4):
            wal.append(OP_INSERT, element)
        wal.commit()
        for element in elements(4, offset=10):
            wal.append(OP_INSERT, element)
        wal.commit()
        # First ship sees only group 1: group 2's block is torn.
        victim = store._chain_blocks(wal.head)[1]
        intact = list(store.disk.raw_read(victim))
        store.disk.torn_write(victim, intact, keep=1)
        store.ctx.drop_cache()
        groups, _ = read_committed(store, wal.head, after_lsn=0)
        assert [r.lsn for g in groups for r in g] == [1, 2, 3, 4]
        watermark = groups[-1][-1].lsn
        # The write completes (the torn block's full contents land) and
        # the follower resumes from its watermark: exactly the tail.
        store.disk.raw_write(victim, intact)
        store.ctx.drop_cache()
        groups, _ = read_committed(store, wal.head, after_lsn=watermark)
        assert [r.lsn for g in groups for r in g] == [5, 6, 7, 8]

    def test_group_crc_is_verified_across_the_watermark(self):
        """Filtering must not weaken integrity: the CRC covers the full
        group even when the watermark hides a prefix of it."""
        store = DurableStore(B=16)
        wal = WriteAheadLog(store)
        for element in elements(4):
            wal.append(OP_INSERT, element)
        wal.commit()
        # Damage an *already filtered* record inside the chain block.
        chain_block = store._chain_blocks(wal.head)[0]
        records = list(store.disk.raw_read(chain_block))
        header, payload, seal_rec = records[0], records[1:-1], records[-1]
        tampered = list(payload)
        op, lsn, opname, enc = tampered[0]
        tampered[0] = (op, lsn, opname, tampered[1][3])
        from repro.durability.store import seal

        store.disk.raw_write(chain_block, seal([header, *tampered]))
        store.ctx.drop_cache()
        groups, _ = read_committed(store, wal.head, after_lsn=2)
        assert groups == []  # the damaged group is rejected wholesale


class TestAppliedLsn:
    def test_applied_trails_committed_until_noted(self):
        store = DurableStore(B=8)
        wal = WriteAheadLog(store)
        for element in elements(3):
            wal.append(OP_INSERT, element)
        wal.commit()
        assert wal.committed_lsn == 3
        assert wal.applied_lsn == 0
        wal.note_applied(2)
        assert wal.applied_lsn == 2
        wal.note_applied(1)  # never regresses
        assert wal.applied_lsn == 2

    def test_nonzero_birth_lsn_marks_history_as_applied(self):
        store = DurableStore(B=8)
        wal = WriteAheadLog(store, next_lsn=41)
        assert wal.committed_lsn == 40
        assert wal.applied_lsn == 40
        assert wal.append(OP_INSERT, Element(1, 1.0)) == 41
