"""Tests for the Theorem 2 (expected, no-degradation) reduction."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from oracles import oracle_top_k
from repro.core.params import TuningParams
from repro.core.theorem2 import ExpectedTopKIndex
from toy import BrokenMax, LyingMax, RangePredicate, ToyMax, ToyPrioritized, make_toy_elements


def build(n=600, seed=0, max_factory=ToyMax, **kwargs):
    elements = make_toy_elements(n, seed)
    index = ExpectedTopKIndex(elements, ToyPrioritized, max_factory, seed=seed, **kwargs)
    return elements, index


def random_predicate(rng, n):
    a, b = sorted((rng.uniform(0, 10 * n), rng.uniform(0, 10 * n)))
    return RangePredicate(a, b)


class TestCorrectness:
    def test_exact_across_k(self):
        elements, index = build()
        rng = random.Random(1)
        for _ in range(40):
            p = random_predicate(rng, 600)
            for k in (1, 3, 17, 80, 400):
                assert index.query(p, k) == oracle_top_k(elements, p, k)

    def test_k_one_is_max_reporting(self):
        elements, index = build(n=300)
        rng = random.Random(2)
        for _ in range(25):
            p = random_predicate(rng, 300)
            expect = oracle_top_k(elements, p, 1)
            assert index.query(p, 1) == expect

    def test_k_zero(self):
        _, index = build(n=50)
        assert index.query(RangePredicate(0, 100), 0) == []

    def test_empty_dataset(self):
        index = ExpectedTopKIndex([], ToyPrioritized, ToyMax)
        assert index.query(RangePredicate(0, 1), 5) == []

    def test_k_beyond_ladder_scans(self):
        elements, index = build(n=400)
        before = index.stats.full_scans
        p = RangePredicate(-1, math.inf)
        result = index.query(p, 399)
        assert result == oracle_top_k(elements, p, 399)
        assert index.stats.full_scans > before

    def test_sorted_descending(self):
        elements, index = build(n=300)
        result = index.query(RangePredicate(0, math.inf), 40)
        weights = [e.weight for e in result]
        assert weights == sorted(weights, reverse=True)


class TestLadder:
    def test_ladder_heights(self):
        _, index = build(n=2000)
        assert index.num_levels == len(index.ladder_sample_sizes())
        # K_h <= n/4 with K_1 = B * log2(n) and ratio (1 + sigma).
        K1 = 2 * math.log2(2000)
        expected_h = int(math.log((2000 / 4) / K1) / math.log(1 + index.params.sigma)) + 1
        assert abs(index.num_levels - expected_h) <= 1

    def test_sample_sizes_decrease_in_expectation(self):
        _, index = build(n=4000)
        sizes = index.ladder_sample_sizes()
        assert sizes[0] > sizes[-1]

    def test_tiny_input_has_no_ladder(self):
        _, index = build(n=10)
        assert index.num_levels == 0  # every query scans

    def test_space_dominated_by_ground_plus_small_ladder(self):
        elements, index = build(n=3000)
        ground = index._ground.space_units()
        assert index.space_units() <= ground + 3 * sizes_sum(index)


def sizes_sum(index):
    return max(1, sum(index.ladder_sample_sizes()))


class TestFailureInjection:
    def test_broken_max_still_exact(self):
        """A max structure that never answers forces every round to fail;
        escalation must end in the exact full scan.  Pin ``columnar=False``
        so queries exercise the ladder rounds rather than the columnar
        first-k shortcut (which never consults the max structure)."""
        elements, index = build(n=400, max_factory=BrokenMax, columnar=False)
        rng = random.Random(3)
        for _ in range(20):
            p = random_predicate(rng, 400)
            k = rng.choice([1, 5, 40])
            assert index.query(p, k) == oracle_top_k(elements, p, k)
        assert index.stats.fallbacks > 0

    def test_lying_max_still_exact(self):
        """A max structure probing the *minimum* gives thresholds that
        overshoot the cost monitor; rounds must detect and escalate."""
        elements, index = build(n=400, max_factory=LyingMax)
        rng = random.Random(4)
        for _ in range(20):
            p = random_predicate(rng, 400)
            k = rng.choice([1, 5, 40])
            assert index.query(p, k) == oracle_top_k(elements, p, k)


class TestUpdates:
    def test_insert_then_query(self):
        elements, index = build(n=200, seed=5)
        extra = make_toy_elements(80, seed=99, weight_offset=2000.0)
        current = list(elements)
        for e in extra:
            index.insert(e)
            current.append(e)
        rng = random.Random(6)
        for _ in range(20):
            p = random_predicate(rng, 300)
            assert index.query(p, 9) == oracle_top_k(current, p, 9)

    def test_delete_then_query(self):
        elements, index = build(n=300, seed=7)
        current = list(elements)
        for e in elements[:120]:
            index.delete(e)
            current.remove(e)
        rng = random.Random(8)
        for _ in range(20):
            p = random_predicate(rng, 300)
            assert index.query(p, 6) == oracle_top_k(current, p, 6)

    def test_insert_duplicate_raises(self):
        elements, index = build(n=50)
        with pytest.raises(KeyError):
            index.insert(elements[0])

    def test_delete_missing_raises(self):
        _, index = build(n=50)
        from repro.core.problem import Element

        with pytest.raises(KeyError):
            index.delete(Element(-12345, 0.5))

    def test_mixed_workload(self):
        elements, index = build(n=250, seed=9)
        pool = make_toy_elements(400, seed=123, weight_offset=2500.0)[250:]
        current = list(elements)
        rng = random.Random(10)
        for step, e in enumerate(pool):
            index.insert(e)
            current.append(e)
            if step % 3 == 0:
                victim = current.pop(rng.randrange(len(current)))
                index.delete(victim)
            if step % 10 == 0:
                p = random_predicate(rng, 400)
                assert index.query(p, 8) == oracle_top_k(current, p, 8)

    def test_rebuild_triggers_on_growth(self):
        elements, index = build(n=64, seed=11)
        built = index._built_n
        for e in make_toy_elements(200, seed=321, weight_offset=640.0)[64:]:
            index.insert(e)
        assert index._built_n > built  # at least one rebuild happened

    def test_update_requires_dynamic_structures(self):
        from repro.core.interfaces import OpCounter, PrioritizedResult, PrioritizedIndex
        from repro.core.problem import Element

        class StaticPrioritized(PrioritizedIndex):
            def __init__(self, elements):
                self.ops = OpCounter()
                self._elements = list(elements)

            @property
            def n(self):
                return len(self._elements)

            def query(self, predicate, tau, limit=None):
                out = [
                    e
                    for e in self._elements
                    if e.weight >= tau and predicate.matches(e.obj)
                ]
                return PrioritizedResult(out, truncated=False)

        elements = make_toy_elements(50, 12)
        index = ExpectedTopKIndex(elements, StaticPrioritized, ToyMax)
        with pytest.raises(TypeError, match="Dynamic"):
            index.insert(Element(-1, 0.25))


class TestPreconditions:
    def test_duplicate_weights_rejected_at_construction(self):
        from repro.core.problem import Element
        from repro.resilience.errors import ContractViolation

        tied = [Element(0, 5.0), Element(1, 5.0)]
        with pytest.raises(ContractViolation, match="distinct-weights"):
            ExpectedTopKIndex(tied, ToyPrioritized, ToyMax)

    def test_insert_colliding_weight_rejected(self):
        from repro.core.problem import Element
        from repro.resilience.errors import ContractViolation

        elements, index = build(n=60, seed=20)
        clash = Element(-99, elements[0].weight)  # new element, old weight
        with pytest.raises(ContractViolation, match="duplicates an indexed weight"):
            index.insert(clash)
        # The failed insert left no trace: a fresh weight still works.
        index.insert(Element(-99, elements[0].weight + 0.5))


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(5, 200),
    seed=st.integers(0, 1000),
    k=st.integers(1, 250),
    qseed=st.integers(0, 1000),
)
def test_property_matches_oracle(n, seed, k, qseed):
    elements = make_toy_elements(n, seed)
    index = ExpectedTopKIndex(elements, ToyPrioritized, ToyMax, seed=seed)
    rng = random.Random(qseed)
    p = random_predicate(rng, n)
    assert index.query(p, k) == oracle_top_k(elements, p, k)
