"""Deterministic fault injection for the external-memory machine.

A :class:`FaultPlan` plugs into an :class:`~repro.em.model.EMContext`
(via ``EMContext(fault_plan=...)`` or ``ctx.attach_fault_plan``) and
intercepts every block transfer between disk and memory:

* **read faults** — with probability ``read_fail_rate`` a miss raises
  :class:`~repro.resilience.errors.TransientIOError` (the I/O is still
  charged, so retries show up in the counters);
* **write faults** — with probability ``write_fail_rate`` a dirty-frame
  write-back raises; the frame is *not* lost, so a retry re-attempts
  the same eviction;
* **corruption** — with probability ``corrupt_rate`` the records
  returned by a read are a corrupted copy (a record dropped or
  duplicated); the disk copy stays intact, modelling in-flight bit
  rot.  With per-block checksums enabled the context detects this and
  raises :class:`~repro.resilience.errors.CorruptBlockError`; with
  checksums disabled the corruption propagates silently — exactly the
  failure mode the checksums exist to close;
* **latency** — every intercepted transfer charges ``read_latency`` /
  ``write_latency`` *units* to :attr:`FaultStats.latency_units`.  Like
  the EM model itself, latency is counted, never slept.

The plan is seeded and draws from its own :class:`random.Random`, so a
fixed seed plus a fixed operation sequence yields an identical fault
sequence — chaos tests are exactly reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.resilience.errors import (
    InvalidConfiguration,
    SimulatedCrash,
    TransientIOError,
)


@dataclass
class FaultStats:
    """Counters of everything a :class:`FaultPlan` injected.

    ``machine`` labels which simulated machine the counters belong to,
    so multi-replica chaos tests can assert *which* replica was hit.
    """

    machine: str = ""
    reads_seen: int = 0
    writes_seen: int = 0
    read_faults: int = 0
    write_faults: int = 0
    corruptions: int = 0
    latency_units: int = 0
    crashes: int = 0
    torn_writes: int = 0

    @property
    def total_faults(self) -> int:
        return self.read_faults + self.write_faults + self.corruptions

    def reset(self) -> None:
        self.reads_seen = 0
        self.writes_seen = 0
        self.read_faults = 0
        self.write_faults = 0
        self.corruptions = 0
        self.latency_units = 0
        self.crashes = 0
        self.torn_writes = 0


class FaultPlan:
    """A seeded, deterministic chaos schedule for block I/O.

    Parameters
    ----------
    seed:
        Seed of the plan's private RNG; fixes the fault sequence.
    read_fail_rate / write_fail_rate:
        Per-transfer probability of raising a
        :class:`TransientIOError`.
    corrupt_rate:
        Per-read probability of returning a corrupted copy of the
        block (never both a fault and a corruption on one read).
    read_latency / write_latency:
        Latency units charged per intercepted transfer.
    armed:
        Whether the plan is active.  Build structures with the plan
        disarmed (or attach it after construction) and :meth:`arm` it
        for the query phase, so chaos targets steady-state operation.
    machine:
        Label of the simulated machine this plan belongs to.  A plan is
        *scoped to one machine's disk*: the first
        :meth:`~repro.em.model.EMContext.attach_fault_plan` binds it to
        that context's disk, and attaching it to a context over a
        different disk raises — a plan aimed at one replica can never
        fire on a sibling replica's transfers.  Rebooting (a fresh
        context over the *same* disk) re-binds cleanly.
    """

    def __init__(
        self,
        seed: int = 0,
        read_fail_rate: float = 0.0,
        write_fail_rate: float = 0.0,
        corrupt_rate: float = 0.0,
        read_latency: int = 0,
        write_latency: int = 0,
        armed: bool = True,
        machine: str = "",
    ) -> None:
        for name, rate in (
            ("read_fail_rate", read_fail_rate),
            ("write_fail_rate", write_fail_rate),
            ("corrupt_rate", corrupt_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise InvalidConfiguration(f"{name} must be in [0, 1], got {rate}")
        self.seed = seed
        self.read_fail_rate = read_fail_rate
        self.write_fail_rate = write_fail_rate
        self.corrupt_rate = corrupt_rate
        self.read_latency = read_latency
        self.write_latency = write_latency
        self.armed = armed
        self.machine = machine
        self.stats = FaultStats(machine=machine)
        self._rng = random.Random(seed)
        self._crash_countdown: Optional[int] = None
        self._crash_torn_fraction: float = 0.5
        self.crashed = False
        self._bound_disk: Optional[object] = None
        self._io_seen = 0
        # (absolute transfer number, attribute updates) — applied just
        # before that transfer is processed; see schedule_phase().
        self._phase_events: List[Tuple[int, Dict[str, float]]] = []

    # ------------------------------------------------------------------
    def bind(self, disk: object) -> None:
        """Scope this plan to one machine's disk (idempotent per disk).

        Called by :meth:`~repro.em.model.EMContext.attach_fault_plan`.
        Binding to a second, different disk raises: faults scheduled for
        one replica must never fire on a sibling replica's transfers.
        """
        if self._bound_disk is None:
            self._bound_disk = disk
            return
        if self._bound_disk is not disk:
            label = getattr(disk, "label", "") or "unlabelled"
            raise InvalidConfiguration(
                f"fault plan for machine {self.machine or 'unlabelled'!r} is "
                f"already bound to its own disk; attaching it to the disk of "
                f"{label!r} would leak faults across machines"
            )

    @property
    def bound_disk(self) -> Optional[object]:
        """The disk this plan is scoped to (``None`` before first attach)."""
        return self._bound_disk

    # ------------------------------------------------------------------
    def schedule_crash(self, at_io: int, torn_fraction: float = 0.5) -> None:
        """Kill the machine at the ``at_io``-th intercepted transfer.

        Counting starts *now* and covers both reads and writes (1-based:
        ``at_io=1`` crashes the very next transfer).  A crash landing on
        a write is a *torn* write: ``floor(torn_fraction * len(records))``
        records reach the disk, the rest — and every dirty frame still
        in memory — are lost.  A crash on a read persists nothing.

        The schedule is deterministic, so sweeping ``at_io`` over a
        scripted workload enumerates every possible crash point exactly
        once — the substrate of the E16 recovery sweep.  After the
        crash fires, every further transfer raises again
        (:attr:`crashed` stays set): a dead machine serves no I/O.
        Only a fresh :class:`~repro.em.model.EMContext` over the same
        disk (a reboot) may touch the data again.
        """
        if at_io < 1:
            raise InvalidConfiguration(f"at_io must be >= 1, got {at_io}")
        if not 0.0 <= torn_fraction <= 1.0:
            raise InvalidConfiguration(
                f"torn_fraction must be in [0, 1], got {torn_fraction}"
            )
        self._crash_countdown = at_io
        self._crash_torn_fraction = torn_fraction
        self.crashed = False

    def _crash_due(self) -> bool:
        """Advance the crash countdown; ``True`` when this transfer dies."""
        if self.crashed:
            return True
        if self._crash_countdown is None:
            return False
        self._crash_countdown -= 1
        if self._crash_countdown > 0:
            return False
        self._crash_countdown = None
        return True

    def arm(self) -> None:
        """Activate fault injection."""
        self.armed = True

    def disarm(self) -> None:
        """Suspend fault injection (counters are kept)."""
        self.armed = False

    @property
    def injects_corruption(self) -> bool:
        """Whether any (current or scheduled) phase can corrupt reads."""
        if self.corrupt_rate > 0.0:
            return True
        return any(
            updates.get("corrupt_rate", 0.0) > 0.0
            for _, updates in self._phase_events
        )

    # ------------------------------------------------------------------
    # Phase scheduling & composition
    # ------------------------------------------------------------------
    _PHASE_FIELDS = (
        "read_fail_rate",
        "write_fail_rate",
        "corrupt_rate",
        "read_latency",
        "write_latency",
    )

    def schedule_phase(self, at_io: int, **updates: float) -> None:
        """Change rates from the ``at_io``-th intercepted transfer on.

        Counting matches :meth:`schedule_crash`: it starts *now*, covers
        both reads and writes (armed or not), and is 1-based — with
        ``at_io=1`` the very next transfer already runs under the new
        rates.  ``updates`` may set any of ``read_fail_rate``,
        ``write_fail_rate``, ``corrupt_rate``, ``read_latency``,
        ``write_latency``; unnamed fields keep their previous value, so
        successive phases compose into a piecewise-constant schedule.
        Phases are deterministic — the RNG draw sequence is unaffected
        by when a phase flips.
        """
        if at_io < 1:
            raise InvalidConfiguration(f"at_io must be >= 1, got {at_io}")
        if not updates:
            raise InvalidConfiguration("schedule_phase needs at least one field")
        for name, value in updates.items():
            if name not in self._PHASE_FIELDS:
                raise InvalidConfiguration(f"unknown fault-plan field {name!r}")
            if name.endswith("_rate") and not 0.0 <= value <= 1.0:
                raise InvalidConfiguration(
                    f"{name} must be in [0, 1], got {value}"
                )
        self._phase_events.append((self._io_seen + at_io, dict(updates)))
        self._phase_events.sort(key=lambda event: event[0])

    def _tick_phases(self) -> None:
        """Count one transfer and apply every phase event now due."""
        self._io_seen += 1
        while self._phase_events and self._phase_events[0][0] <= self._io_seen:
            _, updates = self._phase_events.pop(0)
            for name, value in updates.items():
                setattr(self, name, value)

    def _timeline(
        self, offset: int, duration: Optional[int]
    ) -> List[Tuple[int, Dict[str, float]]]:
        """This plan's contribution as ``(from_transfer, rates)`` segments.

        ``from_transfer`` is 1-based in the *merged* plan's counting;
        the contribution is shifted by ``offset`` transfers and, when
        ``duration`` is given, drops to all-zero after
        ``offset + duration`` transfers.
        """
        current = {name: getattr(self, name) for name in self._PHASE_FIELDS}
        segments = [(offset + 1, dict(current))]
        for position, updates in self._phase_events:
            relative = position - self._io_seen
            if relative < 1:  # already applied
                continue
            current.update(updates)
            segments.append((offset + relative, dict(current)))
        if duration is not None:
            cutoff = offset + duration + 1
            segments = [(start, rates) for start, rates in segments if start < cutoff]
            segments.append((cutoff, {name: 0 for name in self._PHASE_FIELDS}))
        return segments

    @classmethod
    def merge(
        cls,
        *plans: "FaultPlan",
        offsets: Optional[Sequence[int]] = None,
        durations: Optional[Sequence[Optional[int]]] = None,
        seed: Optional[int] = None,
        machine: Optional[str] = None,
        armed: bool = True,
    ) -> "FaultPlan":
        """Compose single-fault plans into one multi-phase chaos script.

        Each constituent contributes its rate schedule over the window
        ``[offsets[i], offsets[i] + durations[i])``, counted in the
        merged plan's intercepted transfers (``offsets`` default to all
        zero; a ``None`` duration never expires).  Where windows
        overlap, fault *probabilities* combine by elementwise **max**
        (overlapping storms do not double-inject) while *latency* units
        **add** (stacked slowness is additive).  Pending
        :meth:`schedule_phase` events shift with their plan's offset,
        and the earliest pending crash (shifted likewise) carries over
        with its torn fraction.

        The result is a fresh, unbound plan — the constituents are left
        untouched, so a library of single-fault plans can be merged into
        many different scripts.  ``seed`` defaults to a deterministic
        combination of the constituents' seeds.
        """
        if not plans:
            raise InvalidConfiguration("merge needs at least one plan")
        offsets = list(offsets) if offsets is not None else [0] * len(plans)
        durations = list(durations) if durations is not None else [None] * len(plans)
        if len(offsets) != len(plans) or len(durations) != len(plans):
            raise InvalidConfiguration(
                "offsets/durations must match the number of plans"
            )
        if any(offset < 0 for offset in offsets):
            raise InvalidConfiguration("offsets must be >= 0")
        if any(d is not None and d < 1 for d in durations):
            raise InvalidConfiguration("durations must be >= 1 (or None)")

        if seed is None:
            seed = 0
            for plan in plans:
                seed = (seed * 1000003 + plan.seed + 1) & 0x7FFFFFFF
        if machine is None:
            machine = next((p.machine for p in plans if p.machine), "")

        timelines = [
            plan._timeline(offset, duration)
            for plan, offset, duration in zip(plans, offsets, durations)
        ]
        boundaries = sorted({start for segments in timelines for start, _ in segments})

        def combined_at(transfer: int) -> Dict[str, float]:
            rates: Dict[str, float] = {name: 0 for name in cls._PHASE_FIELDS}
            for segments in timelines:
                active: Optional[Dict[str, float]] = None
                for start, segment_rates in segments:
                    if start <= transfer:
                        active = segment_rates
                if active is None:
                    continue
                for name in cls._PHASE_FIELDS:
                    if name.endswith("_rate"):
                        rates[name] = max(rates[name], active[name])
                    else:
                        rates[name] = rates[name] + active[name]
            return rates

        base = combined_at(1)
        merged = cls(
            seed=seed,
            read_fail_rate=base["read_fail_rate"],
            write_fail_rate=base["write_fail_rate"],
            corrupt_rate=base["corrupt_rate"],
            read_latency=int(base["read_latency"]),
            write_latency=int(base["write_latency"]),
            armed=armed,
            machine=machine,
        )
        previous = base
        for boundary in boundaries:
            if boundary <= 1:
                continue
            rates = combined_at(boundary)
            updates = {
                name: value
                for name, value in rates.items()
                if value != previous[name]
            }
            if updates:
                merged.schedule_phase(boundary, **updates)
            previous = rates

        crash_at: Optional[int] = None
        torn = 0.5
        for plan, offset in zip(plans, offsets):
            if plan._crash_countdown is None or plan.crashed:
                continue
            due = offset + plan._crash_countdown
            if crash_at is None or due < crash_at:
                crash_at = due
                torn = plan._crash_torn_fraction
        if crash_at is not None:
            merged.schedule_crash(crash_at, torn_fraction=torn)
        return merged

    # ------------------------------------------------------------------
    # Hooks called by EMContext
    # ------------------------------------------------------------------
    def on_read(self, block_id: int, records: List[object]) -> List[object]:
        """Intercept one disk->memory transfer; returns the records seen.

        May raise :class:`TransientIOError`; may return a corrupted
        copy; otherwise passes ``records`` through untouched.
        """
        self._tick_phases()
        if self._crash_due():
            # Crash schedules fire regardless of arm state: scheduling
            # one is an explicit request, and a dead machine stays dead.
            if not self.crashed:
                self.crashed = True
                self.stats.crashes += 1
            raise SimulatedCrash(
                f"machine {self.machine or '?'} crashed reading block {block_id}",
                block_id=block_id,
            )
        if not self.armed:
            return records
        self.stats.reads_seen += 1
        self.stats.latency_units += self.read_latency
        if self.read_fail_rate and self._rng.random() < self.read_fail_rate:
            self.stats.read_faults += 1
            raise TransientIOError(
                f"injected read fault on block {block_id}", block_id=block_id
            )
        if self.corrupt_rate and records and self._rng.random() < self.corrupt_rate:
            self.stats.corruptions += 1
            return self._corrupt(records)
        return records

    def on_write(self, block_id: int, records: List[object]) -> None:
        """Intercept one memory->disk transfer (may raise)."""
        self._tick_phases()
        if self._crash_due():
            first = not self.crashed
            if first:
                self.crashed = True
                self.stats.crashes += 1
                self.stats.torn_writes += 1
            # torn_keep tells EMContext._evict how much of the block to
            # persist before the machine goes dark; a machine that is
            # already dead persists nothing further.
            raise SimulatedCrash(
                f"machine {self.machine or '?'} crashed writing block "
                f"{block_id} (torn write)",
                block_id=block_id,
                torn_keep=int(self._crash_torn_fraction * len(records)) if first else None,
            )
        if not self.armed:
            return
        self.stats.writes_seen += 1
        self.stats.latency_units += self.write_latency
        if self.write_fail_rate and self._rng.random() < self.write_fail_rate:
            self.stats.write_faults += 1
            raise TransientIOError(
                f"injected write fault on block {block_id}", block_id=block_id
            )

    # ------------------------------------------------------------------
    def _corrupt(self, records: List[object]) -> List[object]:
        """A corrupted copy: one record dropped or overwritten in place.

        The result stays a well-typed record list, so *undetected*
        corruption produces silently wrong answers rather than crashes
        — the failure mode checksums are there to catch.
        """
        out = list(records)
        i = self._rng.randrange(len(out))
        if len(out) >= 2:
            out[i] = out[(i + 1) % len(out)]
        else:
            out.pop(i)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultPlan(machine={self.machine!r}, seed={self.seed}, "
            f"read_fail={self.read_fail_rate}, "
            f"write_fail={self.write_fail_rate}, corrupt={self.corrupt_rate}, "
            f"armed={self.armed}, faults={self.stats.total_faults})"
        )


__all__ = ["FaultPlan", "FaultStats"]
