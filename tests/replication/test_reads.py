"""Read modes: primary, quorum, hedged — staleness bounds and fallbacks."""

import pytest

from conftest import elem, make_cluster
from repro.core.problem import top_k_of
from repro.resilience import HealthSummary, ResilientTopKIndex
from repro.resilience.errors import InvalidConfiguration
from toy import RangePredicate


def expected(n, k, lo=0, hi=10_000):
    return top_k_of([elem(i) for i in range(n)], RangePredicate(lo, hi), k)


class TestModes:
    def test_primary_mode_is_authoritative(self, cluster):
        answer = cluster.query(RangePredicate(0, 10_000), 5, mode="primary")
        assert answer == expected(40, 5)

    def test_quorum_mode_is_exact(self, cluster):
        for i in range(40, 50):
            cluster.insert(elem(i))
        answer = cluster.query(RangePredicate(0, 10_000), 7, mode="quorum")
        assert answer == expected(50, 7)
        assert cluster.stats.quorum_reads == 1
        assert cluster.stats.quorum_mismatches == 0

    def test_hedged_mode_is_exact_and_served_by_followers(self, cluster):
        cluster.align()
        answer = cluster.query(RangePredicate(0, 10_000), 5, mode="hedged")
        assert answer == expected(40, 5)
        assert cluster.stats.hedged_reads == 1
        assert cluster.stats.hedge_wins == 0  # the follower won the race

    def test_hedged_round_robins_the_followers(self, cluster):
        cluster.align()
        for _ in range(4):
            cluster.query(RangePredicate(0, 10_000), 3, mode="hedged")
        assert cluster.stats.hedged_reads == 4
        assert cluster.stats.hedge_wins == 0
        assert cluster._hedge_cursor == 4  # two followers, two laps

    def test_unknown_mode_raises(self, cluster):
        with pytest.raises(InvalidConfiguration, match="unknown read mode"):
            cluster.query(RangePredicate(0, 100), 3, mode="gossip")

    def test_negative_staleness_rejected_at_build(self):
        with pytest.raises(InvalidConfiguration, match="max_staleness"):
            make_cluster(max_staleness=-1)


class TestStaleness:
    def stale_followers(self, cluster):
        """Advance the primary *without* shipping: durable follower lag."""
        cluster.primary.durable.insert(elem(990))
        return cluster.primary

    def test_quorum_falls_back_to_the_primary_when_followers_lag(self, cluster):
        self.stale_followers(cluster)
        answer = cluster.query(
            RangePredicate(0, 10_000), 3, mode="quorum", max_staleness=0
        )
        assert [e.obj for e in answer] == [990, 39, 38]
        assert cluster.stats.stale_fallbacks == 2  # both followers refused
        assert cluster.stats.degraded_reads == 1  # one answer < majority

    def test_staleness_budget_admits_lagging_followers(self, cluster):
        self.stale_followers(cluster)
        answer = cluster.query(
            RangePredicate(0, 10_000), 3, mode="quorum", max_staleness=5
        )
        # Followers may serve within the bound; their (stale) answers
        # disagree with the primary's, which wins on freshness.
        assert [e.obj for e in answer] == [990, 39, 38]
        assert cluster.stats.stale_fallbacks == 0
        assert cluster.stats.quorum_mismatches == 1

    def test_hedged_stale_follower_loses_to_the_primary(self, cluster):
        self.stale_followers(cluster)
        answer = cluster.query(
            RangePredicate(0, 10_000), 3, mode="hedged", max_staleness=0
        )
        assert [e.obj for e in answer] == [990, 39, 38]
        assert cluster.stats.stale_fallbacks == 1
        assert cluster.stats.hedge_wins == 1

    def test_single_replica_hedge_always_goes_to_the_primary(self):
        cluster = make_cluster(num_replicas=1)
        answer = cluster.query(RangePredicate(0, 10_000), 4, mode="hedged")
        assert answer == expected(40, 4)
        assert cluster.stats.hedge_wins == 1


class TestDivergenceAtReadTime:
    def test_quorum_counts_mismatches_and_the_primary_wins(self, cluster):
        cluster.align()
        rogue = [r for r in cluster.replicas if not r.is_primary][0]
        rogue.durable.inner.insert(elem(999))  # silent divergence
        answer = cluster.query(RangePredicate(0, 10_000), 5, mode="quorum")
        assert cluster.stats.quorum_mismatches == 1
        assert 999 not in [e.obj for e in answer]  # rogue out-voted
        assert answer == expected(40, 5)


class TestGuardIntegration:
    def test_health_summary_mirrors_replication(self, cluster):
        guard = ResilientTopKIndex(
            cluster, elements=[elem(i) for i in range(40)]
        )
        answer = guard.query(RangePredicate(0, 10_000), 5)
        assert answer == expected(40, 5)
        assert guard.health.promotions == 0
        assert set(guard.health.replica_lag) == {
            r.name for r in cluster.replicas
        }
        cluster.primary.plan.schedule_crash(at_io=1)
        cluster.insert(elem(40))  # crash -> failover
        guard.query(RangePredicate(0, 10_000), 5)
        assert guard.health.promotions == 1

    def test_hedge_wins_and_scrub_repairs_surface_in_health(self, cluster):
        guard = ResilientTopKIndex(cluster)
        cluster.primary.durable.insert(elem(990))  # durable follower lag
        cluster.query(RangePredicate(0, 10_000), 3, mode="hedged")
        from test_antientropy import corrupt_snapshot_block

        victim = [r for r in cluster.replicas if not r.is_primary][0]
        corrupt_snapshot_block(victim)
        cluster.scrub()
        guard.query(RangePredicate(0, 10_000), 3)
        assert guard.health.hedge_wins == 1
        assert guard.health.scrub_repairs == 1
        assert all(lag == 0 for lag in guard.health.replica_lag.values())
