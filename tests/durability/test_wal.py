"""Write-ahead log: group commit, torn tails, idempotent replay."""

import pytest

from repro.core.problem import Element
from repro.durability.store import DurableStore
from repro.durability.wal import (
    OP_DELETE,
    OP_INSERT,
    WriteAheadLog,
    read_committed,
)


def elements(n, offset=0):
    return [Element(i + offset, float(i + offset)) for i in range(n)]


def reopened(store):
    return DurableStore.open(store.disk, B=store.ctx.B)


class TestCommit:
    def test_committed_group_survives_reopen(self):
        store = DurableStore(B=8)
        wal = WriteAheadLog(store)
        for element in elements(5):
            wal.append(OP_INSERT, element)
        assert wal.commit() == 5
        store.wal_head = wal.head
        store.commit_superblock()
        groups, discarded = read_committed(reopened(store), wal.head)
        assert discarded == 0
        assert [r.element for r in groups[0]] == elements(5)
        assert [r.op for r in groups[0]] == [OP_INSERT] * 5
        assert [r.lsn for r in groups[0]] == [1, 2, 3, 4, 5]

    def test_multiple_groups_in_order(self):
        store = DurableStore(B=8)
        wal = WriteAheadLog(store)
        for batch in range(3):
            for element in elements(4, offset=10 * batch):
                wal.append(OP_INSERT, element)
            wal.commit()
        store.wal_head = wal.head
        store.commit_superblock()
        groups, _ = read_committed(reopened(store), wal.head)
        assert len(groups) == 3
        assert [r.element for r in groups[2]] == elements(4, offset=20)

    def test_group_larger_than_a_block(self):
        store = DurableStore(B=4)  # 2 payload records per block
        wal = WriteAheadLog(store)
        for element in elements(11):
            wal.append(OP_INSERT, element)
        wal.commit()
        store.wal_head = wal.head
        store.commit_superblock()
        groups, discarded = read_committed(reopened(store), wal.head)
        assert discarded == 0
        assert [r.element for r in groups[0]] == elements(11)

    def test_empty_commit_is_a_noop(self):
        store = DurableStore(B=8)
        wal = WriteAheadLog(store)
        blocks_before = store.disk.num_blocks
        assert wal.commit() == 0
        assert store.disk.num_blocks == blocks_before

    def test_uncommitted_records_are_not_durable(self):
        store = DurableStore(B=8)
        wal = WriteAheadLog(store)
        for element in elements(3):
            wal.append(OP_INSERT, element)
        store.wal_head = wal.head
        store.commit_superblock()
        groups, discarded = read_committed(reopened(store), wal.head)
        assert groups == [] and discarded == 0
        assert wal.pending_records == 3

    def test_rollback_last_removes_the_append(self):
        store = DurableStore(B=8)
        wal = WriteAheadLog(store)
        wal.append(OP_INSERT, Element(1, 1.0))
        wal.append(OP_DELETE, Element(2, 2.0))
        wal.rollback_last()
        wal.commit()
        store.wal_head = wal.head
        store.commit_superblock()
        groups, _ = read_committed(reopened(store), wal.head)
        assert len(groups[0]) == 1 and groups[0][0].op == OP_INSERT
        assert wal.next_lsn == 2  # the rolled-back LSN was reissued


class TestTornTails:
    def test_torn_commit_block_discards_the_group(self):
        store = DurableStore(B=8)
        wal = WriteAheadLog(store)
        for element in elements(4):
            wal.append(OP_INSERT, element)
        wal.commit()
        for element in elements(4, offset=10):
            wal.append(OP_INSERT, element)
        wal.commit()
        store.wal_head = wal.head
        store.commit_superblock()
        # Tear the chain block holding the second group (the first commit
        # filled block 0 of the chain and pre-allocated block 1 for the
        # next one): only group 1 survives.
        victim = store._chain_blocks(wal.head)[1]
        store.disk.torn_write(victim, list(store.disk.raw_read(victim)), keep=1)
        groups, _ = read_committed(reopened(store), wal.head)
        assert len(groups) == 1
        assert [r.element for r in groups[0]] == elements(4)

    def test_open_tail_block_ends_the_log_cleanly(self):
        store = DurableStore(B=8)
        wal = WriteAheadLog(store)
        for element in elements(2):
            wal.append(OP_INSERT, element)
        wal.commit()
        store.wal_head = wal.head
        store.commit_superblock()
        # The chain's final pointer designates a pre-allocated, empty
        # open block; reading must stop there without raising.
        groups, discarded = read_committed(reopened(store), wal.head)
        assert len(groups) == 1 and discarded == 0

    def test_missing_head_means_empty_log(self):
        store = DurableStore(B=8)
        assert read_committed(store, None) == ([], 0)


class TestTruncate:
    def test_truncate_starts_a_fresh_chain(self):
        store = DurableStore(B=8)
        wal = WriteAheadLog(store)
        for element in elements(3):
            wal.append(OP_INSERT, element)
        wal.commit()
        old_head = wal.head
        wal.truncate()
        assert wal.head != old_head
        store.wal_head = wal.head
        store.commit_superblock()
        groups, _ = read_committed(reopened(store), wal.head)
        assert groups == []

    def test_lsns_keep_rising_across_truncation(self):
        store = DurableStore(B=8)
        wal = WriteAheadLog(store)
        wal.append(OP_INSERT, Element(1, 1.0))
        wal.commit()
        wal.truncate()
        lsn = wal.append(OP_INSERT, Element(2, 2.0))
        assert lsn == 2  # never reused

    def test_clean_chain_is_reused(self):
        store = DurableStore(B=8)
        wal = WriteAheadLog(store)
        head = wal.head
        wal.truncate()  # nothing ever committed: no new allocation
        assert wal.head == head
