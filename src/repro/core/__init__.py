"""The paper's primary contribution: general top-k reductions.

* :mod:`repro.core.problem` — elements, predicates, datasets.
* :mod:`repro.core.interfaces` — the three query-structure contracts
  (prioritized / max / top-k) the reductions compose.
* :mod:`repro.core.sampling` — rank-sampling lemmas (Lemmas 1 and 3).
* :mod:`repro.core.coreset` — top-k core-sets (Lemma 2).
* :mod:`repro.core.theorem1` — the worst-case reduction (Theorem 1).
* :mod:`repro.core.theorem2` — the expected, no-degradation reduction
  (Theorem 2), with insert/delete support.
* :mod:`repro.core.baseline` — the prior binary-search reduction of
  Rahul–Janardan [28] (eqs. (1)–(2)), the comparison point.
* :mod:`repro.core.inverse` — the opposite direction (prioritized from
  top-k) of [26, 28, 29], completing the equivalence picture.
"""

from repro.core.problem import Element, Predicate, ensure_distinct_weights
from repro.core.interfaces import (
    CountingIndex,
    MaxIndex,
    PrioritizedIndex,
    PrioritizedResult,
    TopKIndex,
    DynamicPrioritizedIndex,
    DynamicMaxIndex,
)
from repro.core.params import TuningParams
from repro.core.theorem1 import WorstCaseTopKIndex
from repro.core.theorem2 import ExpectedTopKIndex
from repro.core.baseline import BinarySearchTopKIndex
from repro.core.counting import CountingTopKIndex, InflatedCounter
from repro.core.extensions import ColoredTopKIndex, iter_top
from repro.core.validation import (
    ValidationReport,
    validate_counting,
    validate_max,
    validate_prioritized,
    validate_problem_factories,
)
from repro.core.inverse import PrioritizedFromTopK

__all__ = [
    "Element",
    "Predicate",
    "ensure_distinct_weights",
    "PrioritizedIndex",
    "PrioritizedResult",
    "MaxIndex",
    "TopKIndex",
    "DynamicPrioritizedIndex",
    "DynamicMaxIndex",
    "TuningParams",
    "WorstCaseTopKIndex",
    "ExpectedTopKIndex",
    "BinarySearchTopKIndex",
    "CountingTopKIndex",
    "InflatedCounter",
    "CountingIndex",
    "ColoredTopKIndex",
    "iter_top",
    "PrioritizedFromTopK",
    "ValidationReport",
    "validate_prioritized",
    "validate_max",
    "validate_counting",
    "validate_problem_factories",
]
