"""Shared fixtures: deterministic RNGs and mid-sized datasets per problem."""

from __future__ import annotations

import random
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.bench.workloads import PROBLEMS, make_problem  # noqa: E402


@pytest.fixture
def rng() -> random.Random:
    """A fresh deterministic RNG per test."""
    return random.Random(0xC0FFEE)


@pytest.fixture(params=sorted(PROBLEMS))
def problem(request):
    """Every registered problem at a size that exercises all code paths."""
    return make_problem(request.param, 180, seed=11)


@pytest.fixture
def interval_problem():
    return make_problem("interval_stabbing", 260, seed=5)
