"""repro — a reproduction of *Efficient Top-k Indexing via General Reductions*.

Rahul & Tao, PODS 2016.  The package provides:

* the paper's two black-box reductions —
  :class:`~repro.core.theorem1.WorstCaseTopKIndex` (prioritized -> top-k,
  worst case) and :class:`~repro.core.theorem2.ExpectedTopKIndex`
  (prioritized + max -> top-k, no degradation in expectation);
* the prior binary-search reduction used as the baseline
  (:class:`~repro.core.baseline.BinarySearchTopKIndex`);
* prioritized/max structures for the paper's five application problems
  (interval stabbing, 2D point enclosure, 3D dominance, halfplane and
  circular range reporting) in :mod:`repro.structures`;
* an external-memory model simulator with exact I/O counting in
  :mod:`repro.em`;
* fault injection, a structured error taxonomy, and the
  :class:`~repro.resilience.guard.ResilientTopKIndex` degradation
  ladder in :mod:`repro.resilience`;
* the high-throughput serving layer — batched execution, the
  LSN-versioned result cache, and parallel replica dispatch — in
  :mod:`repro.serving`;
* workload generators and the experiment harness in :mod:`repro.bench`.

Quickstart::

    from repro import Element, ExpectedTopKIndex
    from repro.structures import (
        StabbingPredicate, SegmentTreeIntervalPrioritized,
        DynamicIntervalStabbingMax)
    from repro.geometry import Interval

    data = [Element(Interval(0, 10), 5.0), Element(Interval(3, 7), 9.0)]
    index = ExpectedTopKIndex(
        data, SegmentTreeIntervalPrioritized, DynamicIntervalStabbingMax)
    index.query(StabbingPredicate(5.0), k=1)
"""

from repro.core import (
    BinarySearchTopKIndex,
    CountingIndex,
    CountingTopKIndex,
    DynamicMaxIndex,
    DynamicPrioritizedIndex,
    Element,
    ExpectedTopKIndex,
    MaxIndex,
    Predicate,
    PrioritizedFromTopK,
    PrioritizedIndex,
    PrioritizedResult,
    TopKIndex,
    TuningParams,
    WorstCaseTopKIndex,
    ensure_distinct_weights,
)
from repro.resilience import (
    AdmissionRejected,
    ContractViolation,
    DegradedAnswer,
    FaultPlan,
    FaultStats,
    GuardPolicy,
    HealthReport,
    RecoveryError,
    ReproError,
    ResilientTopKIndex,
    RetryBudgetExhausted,
    SimulatedCrash,
    SnapshotIntegrityError,
    TransientIOError,
    resilient_index,
)

__version__ = "1.3.0"

_DURABILITY_EXPORTS = (
    "DurableStore",
    "DurableTopKIndex",
    "RecoveryResult",
    "recover_index",
)

_SERVING_EXPORTS = (
    "QueryRequest",
    "ResultCache",
    "ServingEngine",
    "ServingStats",
    "plan_batch",
    "execute_batch",
    "serving_engine",
)


def __getattr__(name):
    # PEP 562: the durability and serving layers pull in core + em +
    # resilience (+ replication), so they are exposed lazily to keep
    # `import repro` light.
    if name in _DURABILITY_EXPORTS:
        from repro import durability

        return getattr(durability, name)
    if name in _SERVING_EXPORTS:
        from repro import serving

        return getattr(serving, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "Element",
    "Predicate",
    "ensure_distinct_weights",
    "PrioritizedIndex",
    "PrioritizedResult",
    "MaxIndex",
    "TopKIndex",
    "DynamicPrioritizedIndex",
    "DynamicMaxIndex",
    "TuningParams",
    "WorstCaseTopKIndex",
    "ExpectedTopKIndex",
    "BinarySearchTopKIndex",
    "CountingTopKIndex",
    "CountingIndex",
    "PrioritizedFromTopK",
    "ReproError",
    "TransientIOError",
    "ContractViolation",
    "AdmissionRejected",
    "RetryBudgetExhausted",
    "DegradedAnswer",
    "FaultPlan",
    "FaultStats",
    "GuardPolicy",
    "HealthReport",
    "ResilientTopKIndex",
    "resilient_index",
    "SimulatedCrash",
    "SnapshotIntegrityError",
    "RecoveryError",
    *_DURABILITY_EXPORTS,
    *_SERVING_EXPORTS,
    "__version__",
]
