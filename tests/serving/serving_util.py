"""Shared builders for serving tests: deterministic toy workloads.

Deliberately *not* a ``conftest.py``: test modules import helpers by
name, and a second module importable as ``conftest`` would shadow
``tests/replication/conftest.py`` (both directories are prepended to
``sys.path`` by pytest's default import mode).
"""

from __future__ import annotations

import random

from repro.replication import replicated_index
from repro.serving import QueryRequest, ServingEngine
from toy import RangePredicate, ToyMax, ToyPrioritized, make_toy_elements

N = 48


def make_elements(n=N, seed=7, weight_offset=0.0):
    return make_toy_elements(n, seed=seed, weight_offset=weight_offset)


def make_requests(count, seed=0, max_k=9):
    """A deterministic request mix with repeated predicates and mixed k."""
    rng = random.Random(seed)
    # Positions span [0, 10n); these ranges match substantial subsets.
    pool = [
        RangePredicate(float(lo), float(lo + span))
        for lo, span in [(0, 200), (50, 250), (100, 300), (0, 479), (300, 170)]
    ]
    return [
        QueryRequest(rng.choice(pool), rng.randint(1, max_k))
        for _ in range(count)
    ]


def make_engine(elements, **kwargs):
    cluster = replicated_index(
        elements, ToyPrioritized, ToyMax, num_replicas=3, seed=3
    )
    return ServingEngine(cluster, **kwargs)
