"""E1 — Theorem 1: query I/Os scale as Q_pri x log_B n; space stays O(S_pri).

Paper claim (eqs. (3)-(4)): from a prioritized structure with cost
``Q_pri(n) + O(t/B)``, the derived top-k structure answers in
``O(Q_pri(n) log_B n) + O(k/B)`` with no space blow-up.

Measured here on the EM interval-stabbing substrate: I/Os per top-k
query as ``n`` doubles, against the prioritized structure's own cost —
the ratio is the reduction's overhead and must grow at most
logarithmically (log-log slope far below any polynomial).
"""

import math

from repro.bench.runner import fit_loglog_slope
from repro.bench.tables import render_table
from repro.core.theorem1 import WorstCaseTopKIndex

from helpers import em_context, em_interval_factories, interval_elements, measure_ios, stab_queries

SIZES = (1_000, 2_000, 4_000, 8_000)
K = 10
QUERIES = 24


def _build(n):
    ctx = em_context()
    prioritized, _ = em_interval_factories(ctx)
    elements = list(interval_elements(n))
    index = WorstCaseTopKIndex(elements, prioritized, B=ctx.B, seed=1)
    ground = prioritized(elements)
    return ctx, index, ground


def _sweep():
    rows = []
    topk_costs, pri_costs = [], []
    for n in SIZES:
        ctx, index, ground = _build(n)
        predicates = stab_queries(QUERIES, seed=n)
        topk_ios = measure_ios(
            ctx, lambda: [index.query(p, K) for p in predicates]
        ) / QUERIES
        pri_ios = measure_ios(
            ctx, lambda: [ground.query(p, -math.inf, limit=4 * K) for p in predicates]
        ) / QUERIES
        ratio = topk_ios / max(pri_ios, 1e-9)
        space_ratio = index.space_units() / max(1, index.ground_space_units())
        rows.append([n, round(pri_ios, 1), round(topk_ios, 1), round(ratio, 2), round(space_ratio, 2)])
        topk_costs.append(topk_ios)
        pri_costs.append(pri_ios)
    slope = fit_loglog_slope(list(SIZES), topk_costs)
    return rows, slope


def bench_e1_theorem1_scaling(benchmark, results_sink):
    rows, slope = _sweep()
    results_sink(
        render_table(
            "E1  Theorem 1: top-k I/Os vs prioritized I/Os (k=10, EM interval stabbing)",
            ["n", "Q_pri I/Os", "Q_top I/Os", "ratio", "S_top/S_pri"],
            rows,
            note=f"log-log slope of Q_top in n = {slope:.3f} (polylog expected, <<1)",
        )
    )
    assert slope < 0.55, f"top-k query cost grew polynomially (slope {slope:.2f})"
    assert all(row[4] <= 10 for row in rows), "space blow-up beyond O(S_pri)"

    ctx, index, _ = _build(SIZES[-1])
    predicates = stab_queries(QUERIES, seed=7)

    def run_batch():
        for p in predicates:
            index.query(p, K)

    benchmark(run_batch)
