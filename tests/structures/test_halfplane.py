"""Tests for 2D halfplane structures."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from oracles import oracle_max, oracle_prioritized, sorted_desc
from repro.core.problem import Element
from repro.geometry.primitives import Halfplane
from repro.structures.halfplane import (
    ConvexLayerReporting,
    HalfplaneMax,
    HalfplanePredicate,
    HalfplanePrioritized,
)


def make_points(n, seed=0):
    rng = random.Random(seed)
    weights = rng.sample(range(10 * n), n)
    return [
        Element((rng.uniform(-10, 10), rng.uniform(-10, 10)), float(weights[i]), payload=i)
        for i in range(n)
    ]


def random_halfplane(rng):
    theta = rng.uniform(0, 2 * math.pi)
    normal = (math.cos(theta), math.sin(theta))
    c = rng.uniform(-12, 12)
    return Halfplane(normal, c)


class TestConvexLayerReporting:
    def test_reports_exactly_the_members(self):
        elements = make_points(200, 1)
        reporter = ConvexLayerReporting(elements)
        rng = random.Random(2)
        for _ in range(60):
            hp = random_halfplane(rng)
            got, truncated = reporter.report(hp)
            assert not truncated
            expect = [e for e in elements if hp.contains(e.obj)]
            assert sorted_desc(got) == sorted_desc(expect)

    def test_limit_truncates(self):
        elements = make_points(100, 3)
        reporter = ConvexLayerReporting(elements)
        hp = Halfplane((1.0, 0.0), -100.0)  # contains everything
        got, truncated = reporter.report(hp, limit=5)
        assert truncated and len(got) == 6

    def test_empty_halfplane(self):
        elements = make_points(50, 4)
        reporter = ConvexLayerReporting(elements)
        hp = Halfplane((1.0, 0.0), 100.0)  # contains nothing
        got, truncated = reporter.report(hp)
        assert got == [] and not truncated

    def test_duplicate_points_all_reported(self):
        elements = [Element((1.0, 1.0), 1.0), Element((1.0, 1.0), 2.0)]
        reporter = ConvexLayerReporting(elements)
        got, _ = reporter.report(Halfplane((1.0, 0.0), 0.0))
        assert len(got) == 2

    def test_single_point(self):
        reporter = ConvexLayerReporting([Element((0.0, 0.0), 1.0)])
        got, _ = reporter.report(Halfplane((1.0, 0.0), -1.0))
        assert len(got) == 1


class TestPrioritized:
    def test_matches_oracle(self):
        elements = make_points(200, 5)
        index = HalfplanePrioritized(elements)
        rng = random.Random(6)
        for _ in range(60):
            p = HalfplanePredicate(random_halfplane(rng))
            tau = rng.uniform(0, 2000)
            assert sorted_desc(index.query(p, tau).elements) == oracle_prioritized(
                elements, p, tau
            )

    def test_tau_above_everything(self):
        elements = make_points(80, 7)
        index = HalfplanePrioritized(elements)
        p = HalfplanePredicate(Halfplane((1.0, 0.0), -100.0))
        assert index.query(p, 1e9).elements == []

    def test_limit_truncation(self):
        elements = make_points(150, 8)
        index = HalfplanePrioritized(elements)
        p = HalfplanePredicate(Halfplane((1.0, 0.0), -100.0))
        r = index.query(p, -math.inf, limit=6)
        assert r.truncated and len(r.elements) == 7

    def test_empty(self):
        index = HalfplanePrioritized([])
        p = HalfplanePredicate(Halfplane((1.0, 0.0), 0.0))
        assert index.query(p, 0.0).elements == []


class TestMax:
    def test_matches_oracle(self):
        elements = make_points(200, 9)
        index = HalfplaneMax(elements)
        rng = random.Random(10)
        for _ in range(80):
            p = HalfplanePredicate(random_halfplane(rng))
            assert index.query(p) == oracle_max(elements, p)

    def test_empty_answer(self):
        elements = make_points(50, 11)
        index = HalfplaneMax(elements)
        p = HalfplanePredicate(Halfplane((1.0, 0.0), 1000.0))
        assert index.query(p) is None

    def test_single_element(self):
        index = HalfplaneMax([Element((1.0, 1.0), 5.0)])
        assert index.query(HalfplanePredicate(Halfplane((1.0, 0.0), 0.0))).weight == 5.0

    def test_heaviest_preferred_over_closer(self):
        elements = [
            Element((10.0, 0.0), 1.0),  # deep inside
            Element((0.5, 0.0), 2.0),  # barely inside, heavier
        ]
        index = HalfplaneMax(elements)
        hit = index.query(HalfplanePredicate(Halfplane((1.0, 0.0), 0.0)))
        assert hit.weight == 2.0


coordinate = st.integers(-15, 15)


@settings(max_examples=30, deadline=None)
@given(
    pts=st.lists(st.tuples(coordinate, coordinate), min_size=1, max_size=40),
    theta=st.floats(0, 2 * math.pi, allow_nan=False),
    c=st.integers(-20, 20),
    seed=st.integers(0, 100),
)
def test_property_prioritized_and_max(pts, theta, c, seed):
    rng = random.Random(seed)
    weights = rng.sample(range(10 * len(pts)), len(pts))
    elements = [
        Element((float(p[0]), float(p[1])), float(w)) for p, w in zip(pts, weights)
    ]
    hp = Halfplane((math.cos(theta), math.sin(theta)), float(c))
    p = HalfplanePredicate(hp)
    index = HalfplanePrioritized(elements)
    assert sorted_desc(index.query(p, -math.inf).elements) == oracle_prioritized(
        elements, p, -math.inf
    )
    assert HalfplaneMax(elements).query(p) == oracle_max(elements, p)
