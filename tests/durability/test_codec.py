"""Codec round-trips: every supported value survives encode/decode."""

import pytest

from repro.core.problem import Element
from repro.durability.codec import decode, encode, flatten_state, unflatten_state
from repro.geometry.primitives import Ball, Halfplane, Interval, Line2D, Rect
from repro.resilience.errors import SerializationError


class TestEncodeDecode:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            -17,
            3.5,
            float("-inf"),
            "hello",
            "",
            (1, "two", 3.0),
            [1, [2, [3]]],
            {"a": 1, "b": [2, 3]},
            (),
            [],
            {},
        ],
    )
    def test_primitives_round_trip(self, value):
        assert decode(encode(value)) == value

    def test_types_are_preserved(self):
        # tuple vs list and bool vs int must not blur.
        assert decode(encode((1, 2))) == (1, 2)
        assert isinstance(decode(encode((1, 2))), tuple)
        assert isinstance(decode(encode([1, 2])), list)
        assert decode(encode(True)) is True

    @pytest.mark.parametrize(
        "value",
        [
            Interval(1.0, 2.0),
            Rect(0.0, 1.0, 2.0, 3.0),
            Halfplane((1.0, 0.0), 5.0),
            Ball((0.5, 0.5), 2.0),
            Line2D(1.5, -3.0),
        ],
    )
    def test_geometry_round_trips(self, value):
        assert decode(encode(value)) == value

    def test_elements_round_trip(self):
        element = Element(Interval(0.0, 10.0), 4.5, payload="doc-17")
        assert decode(encode(element)) == element

    def test_nested_element_in_containers(self):
        value = {"batch": [Element(3, 1.0), Element(4, 2.0)]}
        assert decode(encode(value)) == value

    def test_rng_state_round_trips_exactly(self):
        import random

        rng = random.Random(42)
        rng.random()
        state = rng.getstate()
        other = random.Random()
        other.setstate(decode(encode(state)))
        assert other.random() == rng.random()

    def test_unsupported_type_raises_at_encode(self):
        with pytest.raises(SerializationError, match="cannot serialize"):
            encode(object())

    def test_non_string_dict_key_rejected(self):
        with pytest.raises(SerializationError, match="keys must be str"):
            encode({1: "a"})

    def test_unknown_tag_raises_at_decode(self):
        with pytest.raises(SerializationError, match="unknown codec tag"):
            decode(("MysteryType", ()))

    def test_malformed_encoding_raises(self):
        with pytest.raises(SerializationError):
            decode("not a tagged tuple")


class TestStateStreams:
    def test_round_trip(self):
        state = {
            "elements": [Element(i, float(i)) for i in range(10)],
            "nested": {"K": [1.0, 2.0], "deep": [[1], [2, 3]]},
            "scalar": 7,
        }
        assert unflatten_state(flatten_state(state)) == state

    def test_lists_flatten_to_linear_records(self):
        # n elements -> n + 1 records, so EM cost is ceil(n/B), not 1.
        state = {"xs": list(range(100))}
        records = flatten_state(state)
        assert len(records) == 1 + 1 + 1 + 100  # dict hdr, key, list hdr, items

    def test_trailing_records_rejected(self):
        records = flatten_state({"a": 1})
        with pytest.raises(SerializationError, match="trailing"):
            unflatten_state(records + [("S", ("raw", 2))])

    def test_truncated_stream_rejected(self):
        records = flatten_state({"a": [1, 2, 3]})
        with pytest.raises(SerializationError):
            unflatten_state(records[:-1])

    def test_non_dict_stream_rejected(self):
        with pytest.raises(SerializationError, match="does not describe a dict"):
            unflatten_state([("S", ("raw", 5))])
