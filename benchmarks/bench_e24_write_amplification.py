"""E24 — Write amplification: the FTL under the log-structured store.

Three claims about ``repro.flash`` + ``LogStructuredStore``:

1. **Compaction pays for itself.**  A steady churn workload on a
   fixed-pool flash device accretes manifest/WAL/snapshot garbage; with
   periodic ``compact_store()`` the steady-state write amplification
   (device writes per host write, measured over the post-warmup tail)
   stays >= 1.5x lower than the identical workload that never compacts.
2. **No crash point loses committed data.**  A deterministic sweep
   kills the machine at transfer boundaries of the insert workload, at
   transfer boundaries *inside a compaction*, and mid-flight inside the
   FTL's own garbage collection (after each relocation copy) — and
   every recovered index must match the brute-force oracle exactly at
   a committed prefix of the workload.
3. **Wear is observable.**  Per-erase-block wear counters and the
   host/device write ledger feed the report (and, in the live stack,
   the ops plane's ``write_amp_spike`` / ``wear_imbalance`` rules).

Results land as JSON in
``benchmarks/results/e24_write_amplification.json`` (the
``flash-durability`` CI job uploads it as an artifact).

Set ``REPRO_BENCH_QUICK=1`` for the reduced CI workload.
"""

import json
import os
import random
from pathlib import Path

from repro.bench.tables import render_table
from repro.core.problem import Element, top_k_of
from repro.core.theorem2 import ExpectedTopKIndex
from repro.durability.durable import DurableTopKIndex
from repro.durability.logstore import LogStructuredStore, open_store
from repro.durability.recovery import recover_index
from repro.em.model import Disk, EMContext
from repro.flash.disk import FlashDisk
from repro.flash.ftl import FlashConfig
from repro.resilience.errors import SimulatedCrash
from repro.resilience.faults import FaultPlan
from repro.structures.range1d import RangePredicate1D
from repro.structures.range1d_dynamic import DynamicRangeTreap

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

BASE_N = 40
EXTRA_N = 120
GROUP = 4          # commit interval of every durable victim
CHECKPOINT_EVERY = 8
K = 10

# Ablation workload (claim 1).  Cheap enough (<1 s) to run in full even
# in quick mode — the WA climb needs ~60 rounds of manifest accretion
# before the never-compacted run starts thrashing GC.
ABLATION_ROUNDS = 100
CHURN_PER_ROUND = 8
COMPACT_EVERY = 8

# Crash sweep (claim 2): workload / mid-compaction / mid-GC points.
# The full sweep totals 200 crash points.
WORKLOAD_POINTS = 20 if QUICK else 120
COMPACT_POINTS = 12 if QUICK else 50
GC_POINTS = 8 if QUICK else 30
WORKLOAD_STRIDE = 42 if QUICK else 7    # the workload spans ~870 transfers
COMPACT_STRIDE = 12 if QUICK else 3     # a compaction spans ~170 transfers

CHECK_QUERIES = 8 if QUICK else 15

RESULTS_JSON = (
    Path(__file__).resolve().parent / "results" / "e24_write_amplification.json"
)


def point_elements(n, start=0):
    """1D points with globally distinct coords and weights."""
    total = BASE_N + EXTRA_N + 2 * ABLATION_ROUNDS * CHURN_PER_ROUND
    rng = random.Random(1234)
    coords = rng.sample(range(10 * total), total)
    return [Element(float(coords[i]), float(i) + 0.5) for i in range(start, start + n)]


def restore_fn(state):
    return ExpectedTopKIndex.restore(state, DynamicRangeTreap, DynamicRangeTreap)


def build_fn(elements):
    return ExpectedTopKIndex(elements, DynamicRangeTreap, DynamicRangeTreap, seed=0)


def _victim(config=None):
    """A durable Theorem 2 index on a flash-backed log-structured store."""
    plan = FaultPlan(armed=False)
    disk = FlashDisk(config=config or FlashConfig(pages_per_block=8))
    ctx = EMContext(B=8, disk=disk, fault_plan=plan)
    store = LogStructuredStore(ctx=ctx, B=8)
    inner = ExpectedTopKIndex(
        point_elements(BASE_N), DynamicRangeTreap, DynamicRangeTreap, seed=7
    )
    durable = DurableTopKIndex(inner, store=store, commit_interval=GROUP)
    return durable, plan


def _insert_workload(durable, extras):
    """The sweep workload: group-committed inserts, periodic checkpoints."""
    applied = 0
    for i, element in enumerate(extras):
        durable.insert(element)
        applied += 1
        if i % CHECKPOINT_EVERY == CHECKPOINT_EVERY - 1:
            durable.checkpoint()
    return applied


def _range_queries(count, seed):
    rng = random.Random(seed)
    out = []
    for _ in range(count):
        a, b = sorted(rng.sample(range(10 * 10_000), 2))
        out.append(RangePredicate1D(float(a), float(b)))
    return out


# ----------------------------------------------------------------------
# E24a — compaction ablation
# ----------------------------------------------------------------------
def _churn_run(compact_every, device="flash"):
    """Steady-state churn on a deliberately tight fixed pool.

    Every round deletes and re-inserts ``CHURN_PER_ROUND`` elements and
    checkpoints; manifest blocks accrete one (or two) per commit and are
    only reclaimed by compaction, so the never-compacted run climbs
    toward GC thrash while the compacted run stays near WA = 1.

    ``device="plain"`` runs the identical workload on the magnetic
    ``Disk``, where overwrites are free — the device axis of the
    comparison: a plain disk's write amplification is 1 by construction.
    """
    if device == "plain":
        disk = Disk()
    else:
        disk = FlashDisk(config=FlashConfig(
            pages_per_block=8, capacity_pages=112, overprovision=0.1,
        ))
    ctx = EMContext(B=8, disk=disk)
    store = LogStructuredStore(ctx=ctx, B=8)
    inner = ExpectedTopKIndex(
        point_elements(BASE_N), DynamicRangeTreap, DynamicRangeTreap, seed=7
    )
    durable = DurableTopKIndex(inner, store=store, commit_interval=GROUP)
    live = point_elements(BASE_N)
    pool = iter(point_elements(
        ABLATION_ROUNDS * CHURN_PER_ROUND, start=BASE_N + EXTRA_N
    ))
    def device_ledger():
        if device == "plain":
            # Overwrite-in-place: one host write is one device write.
            return ctx.stats.writes, ctx.stats.writes
        return disk.ftl.stats.host_writes, disk.ftl.stats.device_writes

    warm_host = warm_device = 0
    warmup = ABLATION_ROUNDS // 3
    for round_no in range(1, ABLATION_ROUNDS + 1):
        for _ in range(CHURN_PER_ROUND):
            victim = live.pop(0)
            durable.delete(victim)
            fresh = next(pool)
            durable.insert(fresh)
            live.append(fresh)
        durable.checkpoint()
        if compact_every and round_no % compact_every == 0:
            durable.compact_store()
        if round_no == warmup:
            warm_host, warm_device = device_ledger()
    host, dev = device_ledger()
    tail_wa = (dev - warm_device) / max(host - warm_host, 1)
    if device == "plain":
        return {
            "tail_write_amp": 1.0,
            "total_write_amp": 1.0,
            "gc_page_copies": 0,
            "erases": 0,
            "compactions": store.compactions,
            "max_wear": 0,
            "mean_wear": 0.0,
        }
    stats = disk.ftl.stats
    return {
        "tail_write_amp": round(tail_wa, 4),
        "total_write_amp": round(stats.write_amplification, 4),
        "gc_page_copies": stats.gc_page_copies,
        "erases": stats.erases,
        "compactions": store.compactions,
        "max_wear": disk.ftl.max_wear,
        "mean_wear": round(disk.ftl.mean_wear, 3),
    }


# ----------------------------------------------------------------------
# E24b — the flash crash sweep
# ----------------------------------------------------------------------
def _verify_recovery(disk, applied, extras, predicates, point):
    recovered = DurableTopKIndex.recover(
        disk, restore_fn, build_fn, B=8, commit_interval=GROUP
    )
    result = recovered.recovery
    assert result.audit.ok, f"audit failed at {point}"
    assert not result.rebuilt, f"unnecessary rebuild at {point}"
    n_extra = recovered.n - BASE_N
    assert 0 <= n_extra <= applied, f"phantom inserts at {point}"
    assert n_extra % GROUP == 0, f"partial commit group survived at {point}"
    oracle = point_elements(BASE_N) + extras[:n_extra]
    assert set(result.elements) == set(oracle), f"element drift at {point}"
    for predicate in predicates:
        got = recovered.query(predicate, K)
        want = top_k_of(oracle, predicate, K)
        assert got == want, (
            f"{point}: recovered answer diverged from the never-crashed "
            f"oracle at prefix {n_extra}"
        )
    return n_extra


def _run_sweep():
    extras = point_elements(EXTRA_N, start=BASE_N)
    predicates = _range_queries(CHECK_QUERIES, seed=31)
    outcomes = {
        "workload": {"points": 0, "crashed": 0, "prefixes": set()},
        "compaction": {"points": 0, "crashed": 0, "prefixes": set()},
        "gc": {"points": 0, "crashed": 0, "prefixes": set()},
    }

    # -- crash at transfer boundaries of the insert workload ----------
    for index in range(WORKLOAD_POINTS):
        at_io = 1 + index * WORKLOAD_STRIDE
        durable, plan = _victim()
        plan.schedule_crash(at_io=at_io, torn_fraction=0.5)
        applied = 0
        crashed = True
        try:
            applied = _insert_workload(durable, extras)
            crashed = False
        except SimulatedCrash:
            applied = durable.inner.n - BASE_N
        bucket = outcomes["workload"]
        bucket["points"] += 1
        bucket["crashed"] += 1 if crashed else 0
        prefix = _verify_recovery(
            durable.store.disk, applied if crashed else EXTRA_N, extras,
            predicates, point=f"workload at_io={at_io}",
        )
        bucket["prefixes"].add(prefix)

    # -- crash at transfer boundaries inside a compaction -------------
    for index in range(COMPACT_POINTS):
        at_io = 1 + index * COMPACT_STRIDE
        durable, plan = _victim()
        _insert_workload(durable, extras)
        plan.schedule_crash(at_io=at_io, torn_fraction=0.5)
        crashed = True
        try:
            durable.compact_store()
            crashed = False
        except SimulatedCrash:
            pass
        bucket = outcomes["compaction"]
        bucket["points"] += 1
        bucket["crashed"] += 1 if crashed else 0
        # Everything was committed before the compaction began, so no
        # crash point inside it may lose a single element.
        prefix = _verify_recovery(
            durable.store.disk, EXTRA_N, extras, predicates,
            point=f"compaction at_io={at_io}",
        )
        assert prefix == EXTRA_N, f"compaction crash lost data at at_io={at_io}"
        bucket["prefixes"].add(prefix)

    # -- crash inside the FTL's garbage collector ---------------------
    gc_config = FlashConfig(pages_per_block=4, capacity_pages=48, overprovision=0.1)
    for index in range(GC_POINTS):
        durable, _ = _victim(config=gc_config)
        disk = durable.store.disk
        disk.ftl.schedule_gc_crash(after_copies=index)
        applied = 0
        crashed = True
        try:
            applied = _insert_workload(durable, extras)
            crashed = False
        except SimulatedCrash as crash:
            assert "garbage collection" in str(crash)
            applied = durable.inner.n - BASE_N
        bucket = outcomes["gc"]
        bucket["points"] += 1
        bucket["crashed"] += 1 if crashed else 0
        prefix = _verify_recovery(
            disk, applied if crashed else EXTRA_N, extras, predicates,
            point=f"gc after_copies={index}",
        )
        bucket["prefixes"].add(prefix)

    return outcomes


def bench_e24_write_amplification(benchmark, results_sink):
    # E24a — the ablation.
    plain = _churn_run(compact_every=0, device="plain")
    no_compact = _churn_run(compact_every=0)
    compacted = _churn_run(compact_every=COMPACT_EVERY)
    ratio = no_compact["tail_write_amp"] / compacted["tail_write_amp"]
    assert compacted["compactions"] > 0
    assert ratio >= 1.5, (
        f"compaction gained only {ratio:.2f}x on steady-state write "
        f"amplification ({no_compact['tail_write_amp']} vs "
        f"{compacted['tail_write_amp']})"
    )
    results_sink(
        render_table(
            f"E24a Compaction ablation ({ABLATION_ROUNDS} churn rounds, "
            f"fixed 112-page pool)",
            ["variant", "tail WA", "total WA", "GC copies", "erases",
             "max wear", "mean wear"],
            [
                ["plain disk", plain["tail_write_amp"],
                 plain["total_write_amp"], plain["gc_page_copies"],
                 plain["erases"], plain["max_wear"], plain["mean_wear"]],
                ["never compact", no_compact["tail_write_amp"],
                 no_compact["total_write_amp"], no_compact["gc_page_copies"],
                 no_compact["erases"], no_compact["max_wear"],
                 no_compact["mean_wear"]],
                [f"compact every {COMPACT_EVERY}", compacted["tail_write_amp"],
                 compacted["total_write_amp"], compacted["gc_page_copies"],
                 compacted["erases"], compacted["max_wear"],
                 compacted["mean_wear"]],
            ],
            note=f"steady-state (post-warmup) device/host write ratio; "
            f"compaction wins {ratio:.2f}x (floor 1.5x)",
        )
    )

    # E24b — the crash sweep.
    outcomes = _run_sweep()
    total_points = sum(b["points"] for b in outcomes.values())
    total_crashed = sum(b["crashed"] for b in outcomes.values())
    assert total_points == WORKLOAD_POINTS + COMPACT_POINTS + GC_POINTS
    assert outcomes["workload"]["crashed"] >= WORKLOAD_POINTS // 2
    assert outcomes["compaction"]["crashed"] >= COMPACT_POINTS // 2
    assert len(outcomes["workload"]["prefixes"]) > 1
    results_sink(
        render_table(
            "E24b Flash crash sweep (workload, mid-compaction, mid-GC)",
            ["phase", "points", "crashed", "distinct prefixes", "mismatches"],
            [
                [phase, b["points"], b["crashed"], len(b["prefixes"]), 0]
                for phase, b in outcomes.items()
            ],
            note=f"{total_points} crash points ({total_crashed} actually "
            "died); every recovered index matched the brute-force oracle "
            "exactly at a committed prefix",
        )
    )

    RESULTS_JSON.parent.mkdir(exist_ok=True)
    RESULTS_JSON.write_text(
        json.dumps(
            {
                "quick": QUICK,
                "ablation": {
                    "plain_disk": plain,
                    "no_compact": no_compact,
                    "compacted": compacted,
                    "ratio": round(ratio, 4),
                    "floor": 1.5,
                },
                "crash_sweep": {
                    phase: {
                        "points": b["points"],
                        "crashed": b["crashed"],
                        "distinct_prefixes": len(b["prefixes"]),
                        "mismatches": 0,
                    }
                    for phase, b in outcomes.items()
                },
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )

    # Timing: one full recovery (mount + snapshot + replay + audit) of a
    # flash platter that died mid-workload.  recover_index does not
    # mutate the disk, so repeated rounds measure identical work.
    durable, plan = _victim()
    plan.schedule_crash(at_io=400, torn_fraction=0.5)
    try:
        _insert_workload(durable, point_elements(EXTRA_N, start=BASE_N))
    except SimulatedCrash:
        pass

    def run_recovery():
        store = open_store(durable.store.disk, B=8)
        recover_index(store, restore_fn, build_fn)

    benchmark(run_recovery)
