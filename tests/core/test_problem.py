"""Tests for elements, predicates and the distinct-weights convention."""

import math

import pytest

from repro.core.problem import (
    Element,
    Predicate,
    ensure_distinct_weights,
    max_of,
    top_k_of,
    weights_are_distinct,
)


class GreaterThan(Predicate):
    """Toy predicate over integer objects."""

    def __init__(self, bound: int) -> None:
        self.bound = bound

    def matches(self, obj) -> bool:
        return obj > self.bound


def make(values_weights):
    return [Element(v, float(w)) for v, w in values_weights]


class TestElement:
    def test_frozen(self):
        e = Element(1, 2.0)
        with pytest.raises(AttributeError):
            e.weight = 5.0

    def test_ordering_by_weight(self):
        a, b = Element(1, 2.0), Element(2, 3.0)
        assert a < b

    def test_ordering_tie_broken_by_object(self):
        a, b = Element(1, 2.0), Element(2, 2.0)
        assert (a < b) != (b < a)

    def test_hashable(self):
        assert len({Element(1, 2.0), Element(1, 2.0)}) == 1


class TestPredicateFilter:
    def test_filter(self):
        elements = make([(1, 10), (5, 20), (9, 30)])
        assert GreaterThan(4).filter(elements) == elements[1:]


class TestEnsureDistinctWeights:
    def test_already_distinct_unchanged(self):
        elements = make([(1, 1), (2, 2), (3, 3)])
        assert ensure_distinct_weights(elements) == elements

    def test_ties_become_distinct(self):
        elements = make([(1, 5), (2, 5), (3, 5)])
        fixed = ensure_distinct_weights(elements)
        assert weights_are_distinct(fixed)

    def test_order_among_ties_preserved(self):
        elements = make([("a", 5), ("b", 5)])
        fixed = ensure_distinct_weights(elements)
        assert fixed[0].weight < fixed[1].weight  # earlier stays smaller

    def test_relative_order_of_distinct_weights_preserved(self):
        elements = make([(1, 1), (2, 5), (3, 5), (4, 9)])
        fixed = ensure_distinct_weights(elements)
        assert fixed[0].weight < fixed[1].weight < fixed[2].weight < fixed[3].weight

    def test_perturbation_is_minimal(self):
        elements = make([(1, 5), (2, 5)])
        fixed = ensure_distinct_weights(elements)
        assert fixed[1].weight == math.nextafter(5.0, math.inf)

    def test_payloads_preserved(self):
        elements = [Element(1, 5.0, payload="x"), Element(2, 5.0, payload="y")]
        fixed = ensure_distinct_weights(elements)
        assert [e.payload for e in fixed] == ["x", "y"]


class TestOracleHelpers:
    def test_top_k_of_sorted_descending(self):
        elements = make([(5, 1), (6, 2), (7, 3)])
        top = top_k_of(elements, GreaterThan(4), 2)
        assert [e.weight for e in top] == [3.0, 2.0]

    def test_top_k_of_returns_all_when_k_large(self):
        elements = make([(5, 1), (6, 2)])
        assert len(top_k_of(elements, GreaterThan(0), 99)) == 2

    def test_max_of_none_when_empty(self):
        assert max_of(make([(1, 5)]), GreaterThan(10)) is None

    def test_max_of_picks_heaviest(self):
        elements = make([(5, 1), (6, 9), (7, 3)])
        assert max_of(elements, GreaterThan(4)).weight == 9.0

    def test_weights_are_distinct(self):
        assert weights_are_distinct(make([(1, 1), (2, 2)]))
        assert not weights_are_distinct(make([(1, 1), (2, 1)]))
