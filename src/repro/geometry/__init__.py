"""Computational-geometry substrate shared by the per-problem structures.

* :mod:`repro.geometry.primitives` — points, intervals, rectangles,
  halfplanes, balls, and exact orientation tests.
* :mod:`repro.geometry.convexhull` — monotone-chain hulls and convex
  layers (the Chazelle–Guibas–Lee-style halfplane reporting substrate).
* :mod:`repro.geometry.duality` — point/line duality and the lifting
  map (circular queries -> halfspace queries, Corollary 1).
* :mod:`repro.geometry.envelope` — lower/upper envelopes of lines with
  ``O(log n)`` evaluation (halfplane max reporting substrate).
* :mod:`repro.geometry.cascading` — fractional cascading over binary
  trees [14], used to shave the extra ``log`` from root-to-leaf
  predecessor searches (Sections 5.2 and 5.4).
"""

from repro.geometry.primitives import (
    Ball,
    Halfplane,
    Interval,
    Point,
    Rect,
    cross,
    dot,
    squared_distance,
)
from repro.geometry.convexhull import convex_hull, convex_layers
from repro.geometry.duality import dual_line_of_point, dual_point_of_line, lift_point, lift_ball_to_halfspace
from repro.geometry.envelope import LowerEnvelope, UpperEnvelope

__all__ = [
    "Point",
    "Interval",
    "Rect",
    "Halfplane",
    "Ball",
    "dot",
    "cross",
    "squared_distance",
    "convex_hull",
    "convex_layers",
    "dual_line_of_point",
    "dual_point_of_line",
    "lift_point",
    "lift_ball_to_halfspace",
    "LowerEnvelope",
    "UpperEnvelope",
]
