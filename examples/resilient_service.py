"""A top-k query service that survives a misbehaving disk.

The EM machine is configured for chaos: 8% of block reads fail
transiently and 2% arrive corrupted (caught by per-block checksums).
:func:`repro.resilience.resilient_index` wraps the paper's reductions
in a degradation ladder — Theorem 2, then Theorem 1, then a host-memory
scan — with bounded retry and seeded answer spot-checks, so every query
still returns the *exact* top-k, and a :class:`HealthReport` says what
it took.

Run:  python examples/resilient_service.py
"""

import random

from repro import Element, GuardPolicy, resilient_index
from repro.core.problem import top_k_of
from repro.em.model import EMContext
from repro.geometry.primitives import Interval
from repro.resilience import FaultPlan
from repro.structures.interval_stabbing import (
    SegmentTreeIntervalPrioritized,
    StabbingPredicate,
    StaticIntervalStabbingMax,
)


def main() -> None:
    rng = random.Random(11)

    # Weighted intervals again: offers with scores, queried by a point.
    data = []
    for score in rng.sample(range(50_000), 2_000):
        center = rng.uniform(0, 1_000)
        half = rng.uniform(1, 60)
        data.append(Element(Interval(center - half, center + half), float(score)))

    # A chaos-configured EM machine.  Attaching a corrupting plan
    # auto-enables per-block checksums, so bad reads are *detected*
    # (CorruptBlockError) instead of silently served.
    ctx = EMContext(B=16, M=16 * 16)
    ctx.attach_fault_plan(FaultPlan(seed=3, read_fail_rate=0.08, corrupt_rate=0.02))

    guard = resilient_index(
        data,
        lambda subset: SegmentTreeIntervalPrioritized(subset, ctx=ctx),
        lambda subset: StaticIntervalStabbingMax(subset, ctx=ctx),
        policy=GuardPolicy(max_attempts=4, spot_check_rate=0.2, seed=1),
        ctx=ctx,
        B=ctx.B,
        seed=7,
    )
    print("Degradation ladder:", " -> ".join(guard.rung_names()))

    for x in (125.0, 500.0, 875.0):
        predicate = StabbingPredicate(x)
        answer, report = guard.query_with_report(predicate, 5)
        assert answer == top_k_of(data, predicate, 5)  # exact, despite chaos
        status = "degraded" if report.degraded else "healthy"
        print(
            f"x={x:5.0f}: top-5 scores {[int(e.weight) for e in answer]}  "
            f"[{status}: {report.attempts} attempt(s), "
            f"{report.transient_faults} fault(s), answered by {report.answered_by}]"
        )

    # A burst of queries, then the service health roll-up.
    for _ in range(60):
        predicate = StabbingPredicate(rng.uniform(0, 1_000))
        assert guard.query(predicate, 5) == top_k_of(data, predicate, 5)

    s = guard.health
    faults = ctx.fault_plan.stats
    print(
        f"\nServed {s.queries} queries over {faults.reads_seen} faulted-path reads:"
    )
    print(f"  transient faults survived : {s.transient_faults}")
    print(f"  corrupt blocks caught     : {s.corrupt_blocks}")
    print(f"  retries / backoff units   : {s.retries} / {s.backoff_units:.0f}")
    print(f"  spot-checks (failures)    : {s.spot_checks} ({s.spot_check_failures})")
    print(f"  degraded queries          : {s.degraded_queries} of {s.queries}")
    print("\nEvery answer matched the brute-force oracle. ✓")


if __name__ == "__main__":
    main()
