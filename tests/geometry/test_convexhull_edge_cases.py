"""Degenerate-configuration tests for hulls, layers and prepared hulls."""

import math
import random

import pytest

from repro.geometry.convexhull import PreparedHull, convex_hull, convex_layers


class TestDegenerateHulls:
    def test_all_points_identical(self):
        assert convex_hull([(1, 1)] * 10) == [(1, 1)]

    def test_all_points_collinear_horizontal(self):
        pts = [(float(i), 2.0) for i in range(10)]
        hull = convex_hull(pts)
        assert hull == [(0.0, 2.0), (9.0, 2.0)]

    def test_all_points_collinear_diagonal(self):
        pts = [(float(i), float(i)) for i in range(8)]
        hull = convex_hull(pts)
        assert set(hull) == {(0.0, 0.0), (7.0, 7.0)}

    def test_three_points_triangle(self):
        hull = convex_hull([(0, 0), (4, 0), (2, 3)])
        assert set(hull) == {(0, 0), (4, 0), (2, 3)}

    def test_duplicated_hull_vertices(self):
        pts = [(0, 0), (4, 0), (2, 3)] * 5
        assert len(convex_hull(pts)) == 3


class TestDegenerateLayers:
    def test_collinear_points_peel_to_pairs(self):
        pts = [(float(i), 0.0) for i in range(6)]
        layers = convex_layers(pts)
        assert sum(len(layer) for layer in layers) == 6
        assert len(layers[0]) == 2  # the two extremes

    def test_single_point(self):
        assert convex_layers([(5, 5)]) == [[(5, 5)]]

    def test_concentric_squares(self):
        outer = [(0, 0), (10, 0), (10, 10), (0, 10)]
        inner = [(3, 3), (7, 3), (7, 7), (3, 7)]
        layers = convex_layers(outer + inner)
        assert len(layers) == 2
        assert set(layers[0]) == set(outer)
        assert set(layers[1]) == set(inner)


class TestPreparedHullDegenerate:
    def test_two_point_hull(self):
        hull = PreparedHull([(0.0, 0.0), (4.0, 0.0)])
        assert hull.hull[hull.extreme_index((1.0, 0.0))] == (4.0, 0.0)
        assert hull.hull[hull.extreme_index((-1.0, 0.0))] == (0.0, 0.0)

    def test_single_point_hull(self):
        hull = PreparedHull([(2.0, 3.0)])
        assert hull.extreme_index((0.7, -0.7)) == 0

    def test_empty_hull_raises(self):
        with pytest.raises(ValueError):
            PreparedHull([]).extreme_index((1.0, 0.0))

    def test_direction_perpendicular_to_edge(self):
        """Both endpoints of an edge are extreme; either index is valid."""
        hull = PreparedHull(convex_hull([(0, 0), (4, 0), (4, 4), (0, 4)]))
        index = hull.extreme_index((0.0, 1.0))
        assert hull.hull[index][1] == 4

    def test_many_directions_on_regular_polygon(self):
        vertices = [
            (math.cos(2 * math.pi * i / 12), math.sin(2 * math.pi * i / 12))
            for i in range(12)
        ]
        hull = PreparedHull(convex_hull(vertices))
        rng = random.Random(5)
        for _ in range(300):
            theta = rng.uniform(0, 2 * math.pi)
            d = (math.cos(theta), math.sin(theta))
            index = hull.extreme_index(d)
            got = hull.hull[index][0] * d[0] + hull.hull[index][1] * d[1]
            best = max(p[0] * d[0] + p[1] * d[1] for p in vertices)
            assert got >= best - 1e-9
