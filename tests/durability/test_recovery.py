"""Crash -> recover -> verify: the full durability protocol end to end.

The scenario throughout: an `ExpectedTopKIndex` wrapped in a
`DurableTopKIndex`, a crash injected at a chosen transfer, recovery
from the surviving disk, and answers compared against a brute-force
oracle over the committed prefix of the workload.
"""

import random

import pytest

from toy import RangePredicate, ToyMax, ToyPrioritized, make_toy_elements
from repro.core.theorem2 import ExpectedTopKIndex
from repro.durability.durable import DurableTopKIndex
from repro.durability.logstore import LogStructuredStore
from repro.durability.recovery import apply_record, audit_index, recover_index
from repro.durability.store import DurableStore
from repro.durability.wal import OP_INSERT, WALRecord
from repro.em.model import EMContext
from repro.flash.disk import FlashDisk
from repro.flash.ftl import FlashConfig
from repro.resilience.errors import RecoveryError, SimulatedCrash
from repro.resilience.faults import FaultPlan
from repro.resilience.guard import ResilientTopKIndex


BASE_N = 60
EXTRA_N = 40
GROUP = 4


def restore_fn(state):
    return ExpectedTopKIndex.restore(state, ToyPrioritized, ToyMax)


def build_fn(elements):
    return ExpectedTopKIndex(elements, ToyPrioritized, ToyMax, seed=0)


def top_k_of(elements, predicate, k):
    matching = [e for e in elements if predicate.matches(e.obj)]
    matching.sort(key=lambda e: -e.weight)
    return matching[:k]


def base_elements():
    return make_toy_elements(BASE_N, seed=1)


def extra_elements():
    return make_toy_elements(EXTRA_N, seed=2, weight_offset=0.5)


DEVICES = ["plain", "flash", "flash-log"]


def durable_victim(commit_interval=GROUP, device="plain"):
    """A durable index with a fault plan wired into its store's machine.

    ``device`` picks the platter and layout: ``plain`` is the in-place
    store on a magnetic ``Disk``; ``flash`` runs the same in-place store
    on a ``FlashDisk`` (the FTL hides the no-overwrite constraint);
    ``flash-log`` pairs the flash device with the log-structured store.
    """
    plan = FaultPlan(armed=False)
    if device == "plain":
        ctx = EMContext(B=8, fault_plan=plan)
    else:
        disk = FlashDisk(config=FlashConfig(pages_per_block=8))
        ctx = EMContext(B=8, disk=disk, fault_plan=plan)
    if device == "flash-log":
        store = LogStructuredStore(ctx=ctx, B=8)
    else:
        store = DurableStore(ctx=ctx, B=8)
    inner = ExpectedTopKIndex(base_elements(), ToyPrioritized, ToyMax, seed=3)
    durable = DurableTopKIndex(inner, store=store, commit_interval=commit_interval)
    return durable, plan


def crash_while_inserting(at_io, device="plain"):
    """Run the insert workload until the scheduled crash fires.

    Returns ``(disk, applied)`` — the surviving platter and how many
    inserts went through before the machine died.
    """
    durable, plan = durable_victim(device=device)
    plan.schedule_crash(at_io=at_io, torn_fraction=0.5)
    applied = 0
    try:
        for element in extra_elements():
            durable.insert(element)
            applied += 1
    except SimulatedCrash:
        return durable.store.disk, applied
    pytest.skip(f"workload finished before transfer {at_io}")


def assert_matches_committed_prefix(recovered, applied):
    """The recovered index equals the oracle at some committed prefix."""
    n_extra = recovered.n - BASE_N
    assert 0 <= n_extra <= applied
    assert n_extra % GROUP == 0, "recovery resurrected a partial commit group"
    expected = base_elements() + extra_elements()[:n_extra]
    assert set(recovered.recovery.elements) == set(expected)
    rng = random.Random(97)
    for _ in range(25):
        a, b = sorted((rng.uniform(-5, 2500), rng.uniform(-5, 2500)))
        k = rng.randint(1, 10)
        assert recovered.query(RangePredicate(a, b), k) == top_k_of(
            expected, RangePredicate(a, b), k
        )


class TestCrashSweep:
    # The insert workload performs exactly 10 durability transfers
    # (one group-commit write-back per 4 inserts); crash at every one,
    # on every device/layout combination.
    @pytest.mark.parametrize("device", DEVICES)
    @pytest.mark.parametrize("at_io", list(range(1, 11)))
    def test_recovery_matches_oracle_at_committed_prefix(self, at_io, device):
        disk, applied = crash_while_inserting(at_io, device=device)
        recovered = DurableTopKIndex.recover(
            disk, restore_fn, build_fn, B=8, commit_interval=GROUP
        )
        assert recovered.recovered
        assert recovered.recovery.audit.ok
        assert not recovered.recovery.rebuilt
        assert_matches_committed_prefix(recovered, applied)

    @pytest.mark.parametrize("device", DEVICES)
    def test_crash_during_checkpoint_keeps_previous_root(self, device):
        durable, plan = durable_victim(device=device)
        for element in extra_elements()[:12]:
            durable.insert(element)
        plan.schedule_crash(at_io=2, torn_fraction=0.5)
        with pytest.raises(SimulatedCrash):
            durable.checkpoint()
        recovered = DurableTopKIndex.recover(
            durable.store.disk, restore_fn, build_fn, B=8, commit_interval=GROUP
        )
        assert recovered.recovery.audit.ok
        assert_matches_committed_prefix(recovered, applied=12)

    def test_repeat_crashes_during_recovery_workload(self):
        # Crash, recover, crash the recovered instance, recover again.
        disk, _ = crash_while_inserting(at_io=7)
        first = DurableTopKIndex.recover(
            disk, restore_fn, build_fn, B=8, commit_interval=GROUP
        )
        checkpoint_n = first.n
        plan = FaultPlan(armed=False)
        first.store.ctx.attach_fault_plan(plan, enable_checksums=False)
        plan.schedule_crash(at_io=3, torn_fraction=0.5)
        survivors = [e for e in extra_elements() if e not in first.inner]
        died = False
        for element in survivors:
            try:
                first.insert(element)
            except SimulatedCrash:
                died = True
                break
        assert died
        second = DurableTopKIndex.recover(
            disk, restore_fn, build_fn, B=8, commit_interval=GROUP
        )
        assert second.recovery.audit.ok
        assert second.n >= checkpoint_n  # the re-checkpointed baseline held


class TestReplayIdempotence:
    def test_recovering_the_same_disk_twice_is_identical(self):
        disk, _ = crash_while_inserting(at_io=5)
        results = []
        for _ in range(2):
            store = DurableStore.open(disk, B=8)  # read-only: no re-checkpoint
            results.append(recover_index(store, restore_fn))
        first, second = results
        assert first.wal_records_replayed == second.wal_records_replayed
        assert first.snapshot_id == second.snapshot_id
        assert first.elements == second.elements
        assert first.index.snapshot_state() == second.index.snapshot_state()

    def test_recovered_disk_recovers_cleanly_with_empty_log(self):
        disk, applied = crash_while_inserting(at_io=6)
        DurableTopKIndex.recover(disk, restore_fn, build_fn, B=8)
        again = DurableTopKIndex.recover(disk, restore_fn, build_fn, B=8)
        # The first recovery re-checkpointed, retiring the old log.
        assert again.recovery.wal_records_replayed == 0
        assert_matches_committed_prefix(again, applied)

    def test_apply_record_skips_present_inserts(self):
        index = ExpectedTopKIndex(base_elements(), ToyPrioritized, ToyMax)
        record = WALRecord(1, OP_INSERT, base_elements()[0])
        assert apply_record(index, record) is False
        fresh = make_toy_elements(1, seed=50, weight_offset=0.25)[0]
        assert apply_record(index, WALRecord(2, OP_INSERT, fresh)) is True
        assert apply_record(index, WALRecord(3, OP_INSERT, fresh)) is False


class TestAuditAndRebuild:
    def test_audit_passes_on_a_healthy_index(self):
        index = ExpectedTopKIndex(base_elements(), ToyPrioritized, ToyMax)
        report = audit_index(index, base_elements())
        assert report.ok and not report.failures

    def test_audit_flags_size_mismatch(self):
        index = ExpectedTopKIndex(base_elements(), ToyPrioritized, ToyMax)
        report = audit_index(index, base_elements()[:-1])
        assert not report.ok
        assert any("size" in check.name for check in report.failures)

    def test_failed_audit_falls_back_to_rebuild(self):
        disk, _ = crash_while_inserting(at_io=4)

        def mangling_restore(state):
            index = restore_fn(state)
            index._elements.popitem()  # simulate latent in-memory damage
            return index

        store = DurableStore.open(disk, B=8)
        result = recover_index(store, mangling_restore, build_fn)
        assert result.rebuilt
        assert result.audit.ok
        assert result.index.n == len(result.elements)

    def test_failed_audit_without_rebuild_is_fatal(self):
        disk, _ = crash_while_inserting(at_io=4)

        def mangling_restore(state):
            index = restore_fn(state)
            index._elements.popitem()
            return index

        store = DurableStore.open(disk, B=8)
        with pytest.raises(RecoveryError, match="audit failed"):
            recover_index(store, mangling_restore, build_fn=None)

    def test_all_snapshots_damaged_is_fatal(self):
        durable, _ = durable_victim()
        store = durable.store
        for entry in store.snapshots:
            head = entry.head_block
            store.disk.torn_write(
                head, list(store.disk.raw_read(head)), keep=1
            )
        survivor = DurableStore.open(store.disk, B=8)
        with pytest.raises(RecoveryError, match="no usable snapshot"):
            recover_index(survivor, restore_fn)


class TestGuardIntegration:
    def test_recovery_surfaces_in_health_summary(self):
        disk, applied = crash_while_inserting(at_io=5)
        recovered = DurableTopKIndex.recover(
            disk, restore_fn, build_fn, B=8, commit_interval=GROUP
        )
        guard = ResilientTopKIndex(
            recovered, elements=recovered.recovery.elements
        )
        assert guard.health.recoveries == 1
        assert (
            guard.health.wal_records_replayed
            == recovered.recovery.wal_records_replayed
        )
        answer = guard.query(RangePredicate(0, 2500), 5)
        assert answer == top_k_of(
            recovered.recovery.elements, RangePredicate(0, 2500), 5
        )

    def test_durability_io_stays_off_the_query_path(self):
        durable, _ = durable_victim()
        guard = ResilientTopKIndex(durable)
        persisted_before = durable.durability_io.total
        for lo in range(0, 2000, 100):
            guard.query(RangePredicate(lo, lo + 400), 3)
        # Queries read the in-memory index; persistence I/O is untouched
        # and lives in the store's private context, not the guard's.
        assert durable.durability_io.total == persisted_before
        assert durable.durability_io.total > 0

    def test_unrecovered_backend_reports_no_recoveries(self):
        durable, _ = durable_victim()
        guard = ResilientTopKIndex(durable)
        assert guard.health.recoveries == 0
        assert guard.health.wal_records_replayed == 0
