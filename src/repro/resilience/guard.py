"""A resilient wrapper around any top-k index: retry, verify, degrade.

:class:`ResilientTopKIndex` wraps a ladder of :class:`TopKIndex`
backends (canonically Theorem 2 -> Theorem 1 -> brute-force scan) and
guarantees that every query returns a *correct* answer together with a
:class:`HealthReport`, whatever the environment throws at it:

* **bounded retry with deterministic backoff** — a
  :class:`~repro.resilience.errors.TransientIOError` (injected read /
  write fault, detected block corruption) is retried up to
  ``GuardPolicy.max_attempts`` times per rung; backoff is *counted* in
  deterministic units — capped exponential
  (``min(cap, base * factor^attempt)``) with seeded jitter — never
  slept, matching the EM simulator's counted-not-measured philosophy;
* **runtime contract spot-checks** — a seeded sample of answers is
  checked with :func:`repro.core.validation.spot_check_topk` (matches
  the predicate, strictly descending distinct weights, <= k elements);
  a failed check is a :class:`ContractViolation` and the rung is
  abandoned;
* **per-query round budget** — an
  :class:`~repro.core.theorem2.ExpectedTopKIndex` primary is queried
  with ``round_budget=GuardPolicy.round_budget`` so a pathological
  escalation ladder cannot consume unbounded rounds before the guard
  takes over;
* **degradation ladder** — contract violations and exhausted budgets
  fall through to the next rung; the final rung (a brute-force scan of
  a host-memory element list) touches no simulated disk and therefore
  cannot fail, so an answer is always produced.

The guard is itself deterministic: its spot-check sampling is seeded,
so a fixed (guard seed, fault-plan seed, workload) triple reproduces
the same retries, degradations, and reports exactly.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.interfaces import TopKIndex
from repro.core.problem import Element, Predicate, top_k_of
from repro.core.theorem2 import ExpectedTopKIndex
from repro.core.validation import spot_check_topk
from repro.em.model import EMContext
from repro.resilience.errors import (
    ContractViolation,
    CorruptBlockError,
    DegradedAnswer,
    InvalidConfiguration,
    ReplicaUnavailable,
    RetryBudgetExhausted,
    TransientIOError,
)


class RetryBudget:
    """A token bucket capping retries as a fraction of fresh traffic.

    The classic retry-storm failure: a brownout slows the backend,
    every client retries, and the retries *are* the overload — offered
    load amplifies precisely when capacity is scarcest.  A retry
    budget breaks the loop structurally: fresh (first-attempt) work
    deposits ``ratio`` tokens, every retry must withdraw one, and the
    bucket is capped at ``burst`` — so over any window, retries can
    never exceed ``ratio`` × fresh traffic plus the burst allowance,
    no matter how many callers are failing.

    Shared freely: one budget may serve a guard's backoff loop and a
    load generator's resubmit-on-shed policy at once (all mutation is
    under one lock), which is exactly how a service keeps *total*
    amplification bounded rather than per-client amplification.
    Deterministic — no clocks, no randomness.
    """

    def __init__(
        self,
        ratio: float = 0.1,
        burst: float = 8.0,
        initial: Optional[float] = None,
    ) -> None:
        if ratio < 0.0:
            raise InvalidConfiguration(f"ratio must be >= 0, got {ratio}")
        if burst < 1.0:
            raise InvalidConfiguration(f"burst must be >= 1, got {burst}")
        self.ratio = ratio
        self.burst = burst
        self._tokens = burst if initial is None else min(float(initial), burst)
        self._lock = threading.Lock()
        self.deposits = 0
        self.granted = 0
        self.denied = 0

    @property
    def tokens(self) -> float:
        with self._lock:
            return self._tokens

    def deposit(self, fresh: int = 1) -> None:
        """Credit the bucket for ``fresh`` first-attempt requests."""
        with self._lock:
            self.deposits += fresh
            self._tokens = min(self.burst, self._tokens + self.ratio * fresh)

    def try_spend(self, cost: float = 1.0) -> bool:
        """Withdraw ``cost`` tokens for a retry; ``False`` denies it."""
        with self._lock:
            if self._tokens >= cost:
                self._tokens -= cost
                self.granted += 1
                return True
            self.denied += 1
            return False


@dataclass(frozen=True)
class GuardPolicy:
    """Tuning knobs of :class:`ResilientTopKIndex`.

    Attributes
    ----------
    max_attempts:
        Attempts per ladder rung before degrading (>= 1).
    backoff_base / backoff_factor / backoff_cap / backoff_jitter:
        Seeded, capped exponential backoff: attempt ``i`` (0-based) of
        a rung adds ``min(backoff_cap, backoff_base * backoff_factor**i)``
        units, scaled by a jitter draw in ``[1 - backoff_jitter, 1]``
        from a dedicated RNG seeded by ``seed`` — decorrelated across
        retriers yet exactly reproducible for a fixed seed, so failover
        and chaos tests replay identical schedules.  ``backoff_jitter=0``
        disables the jitter; the cap keeps a long outage from producing
        unbounded waits.
    spot_check_rate:
        Probability that a successful answer is spot-checked (seeded).
        ``1.0`` checks every answer; ``0.0`` disables checking.
    round_budget:
        Cap on Theorem 2 escalation rounds per query attempt (``None``
        leaves the ladder unbounded, its built-in scan applying).
    raise_on_degraded:
        Raise :class:`DegradedAnswer` (carrying the answer and report)
        whenever a query was not answered by the primary rung.
    retry_budget_ratio / retry_budget_burst:
        When ``retry_budget_ratio`` is set, the guard routes every
        retry through a :class:`RetryBudget` with that deposit ratio
        and ``retry_budget_burst`` bucket cap; a denied withdrawal
        skips the remaining attempts of the rung (degrading instead of
        retrying), so retries can never amplify offered load beyond
        ``1 + ratio`` in steady state.  ``None`` (default) keeps
        retries budget-free.
    seed:
        Seed of the guard's private spot-check RNG.
    """

    max_attempts: int = 3
    backoff_base: float = 1.0
    backoff_factor: float = 2.0
    backoff_cap: float = 64.0
    backoff_jitter: float = 0.5
    spot_check_rate: float = 0.05
    round_budget: Optional[int] = None
    raise_on_degraded: bool = False
    retry_budget_ratio: Optional[float] = None
    retry_budget_burst: float = 8.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise InvalidConfiguration(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.retry_budget_ratio is not None and self.retry_budget_ratio < 0.0:
            raise InvalidConfiguration(
                "retry_budget_ratio must be >= 0 or None, got "
                f"{self.retry_budget_ratio}"
            )
        if self.retry_budget_burst < 1.0:
            raise InvalidConfiguration(
                f"retry_budget_burst must be >= 1, got {self.retry_budget_burst}"
            )
        if not 0.0 <= self.spot_check_rate <= 1.0:
            raise InvalidConfiguration(
                f"spot_check_rate must be in [0, 1], got {self.spot_check_rate}"
            )
        if self.backoff_cap <= 0.0:
            raise InvalidConfiguration(
                f"backoff_cap must be > 0, got {self.backoff_cap}"
            )
        if not 0.0 <= self.backoff_jitter <= 1.0:
            raise InvalidConfiguration(
                f"backoff_jitter must be in [0, 1], got {self.backoff_jitter}"
            )


@dataclass
class HealthReport:
    """Everything that happened while answering one query."""

    k: int = 0
    attempts: int = 0
    retries: int = 0
    transient_faults: int = 0
    corrupt_blocks: int = 0
    contract_violations: int = 0
    budget_exhaustions: int = 0
    rung_unavailable: int = 0
    spot_checks: int = 0
    spot_check_failures: int = 0
    retry_budget_denied: int = 0
    backoff_units: float = 0.0
    degradation_level: int = 0
    answered_by: str = ""
    rungs_tried: List[str] = field(default_factory=list)
    io_total: Optional[int] = None
    answer_size: int = 0

    @property
    def degraded(self) -> bool:
        """Whether the answer came from anything but the primary rung."""
        return self.degradation_level > 0

    @property
    def faults_seen(self) -> int:
        return self.transient_faults + self.contract_violations + self.budget_exhaustions


@dataclass
class HealthSummary:
    """Aggregate health across every query a guard has served.

    Besides per-query reports, the summary also aggregates *crash
    recoveries*: a guard built over recovered
    :class:`~repro.durability.durable.DurableTopKIndex` backends
    records how many of them came back from a crash and how many WAL
    records their recovery replayed.

    A guard whose primary is a
    :class:`~repro.replication.cluster.ReplicaSet` additionally mirrors
    the cluster's replication health after every query: primary
    promotions, hedge wins, anti-entropy scrub repairs, and the current
    per-replica applied-LSN lag — operators read one summary for the
    whole ladder, machines included.

    All mutators take an internal lock: a summary is shared between the
    guard's query path and :class:`~repro.serving.engine.ServingEngine`
    parallel replica dispatch, whose worker threads mirror serving
    stats concurrently (the same race
    :class:`~repro.sharding.sharded.ShardingStats` closed with its
    ``stats_lock``).  :meth:`snapshot` and :meth:`delta` give the ops
    control plane a consistent periodic time series over the counters.
    """

    queries: int = 0
    degraded_queries: int = 0
    attempts: int = 0
    retries: int = 0
    transient_faults: int = 0
    corrupt_blocks: int = 0
    contract_violations: int = 0
    budget_exhaustions: int = 0
    rung_unavailable: int = 0
    spot_checks: int = 0
    spot_check_failures: int = 0
    retry_budget_denied: int = 0
    backoff_units: float = 0.0
    recoveries: int = 0
    wal_records_replayed: int = 0
    promotions: int = 0
    hedge_wins: int = 0
    scrub_repairs: int = 0
    replica_lag: Dict[str, int] = field(default_factory=dict)
    partitions_active: int = 0
    fenced_rejects: int = 0
    lease_expirations: int = 0
    served_queries: int = 0
    served_batches: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_hit_rate: float = 0.0
    load_sheds: int = 0
    queue_sheds: int = 0
    deadline_sheds: int = 0
    brownout_level: int = 0
    brownout_escalations: int = 0
    reduced_k_answers: int = 0
    partial_served: int = 0
    parallel_batches: int = 0
    dispatch_failovers: int = 0
    serving_qps: float = 0.0
    serving_avg_latency: float = 0.0
    shards: int = 0
    shard_splits: int = 0
    shard_merges: int = 0
    shard_losses: int = 0
    shard_recoveries: int = 0
    partial_answers: int = 0
    stale_map_retries: int = 0
    scatter_contact_ratio: float = 0.0
    shard_sizes: Dict[str, int] = field(default_factory=dict)
    flash_write_amp: float = 0.0
    flash_max_wear: int = 0
    flash_mean_wear: float = 0.0
    flash_erases: int = 0
    flash_gc_stalls: int = 0

    def __post_init__(self) -> None:
        # Deliberately not a dataclass field: asdict()/fields() stay
        # pickleable and field-only, while every mutator below still
        # serialises on one per-summary lock.
        self._lock = threading.Lock()

    def record_recovery(self, result) -> None:
        """Fold one :class:`RecoveryResult` into the aggregate."""
        with self._lock:
            self.recoveries += 1
            self.wal_records_replayed += result.wal_records_replayed

    def record_replication(self, cluster) -> None:
        """Mirror a :class:`ReplicaSet`'s live health into the summary.

        The cluster's counters are already cumulative, so this is an
        overwrite, not an accumulation — call after each query (the
        guard does) to keep the mirror current.
        """
        stats = cluster.stats
        fabric = getattr(cluster, "fabric", None)
        with self._lock:
            self.promotions = stats.promotions
            self.hedge_wins = stats.hedge_wins
            self.scrub_repairs = stats.scrub_repairs
            self.replica_lag = cluster.replica_lag()
            if fabric is not None:
                # The network's health rides the same mirror: active
                # partition windows are a gauge, the rest cumulative.
                self.partitions_active = fabric.active_partitions()
                self.fenced_rejects = fabric.stats.fenced_rejects
                self.lease_expirations = fabric.stats.lease_expirations

    def record_serving(self, engine) -> None:
        """Mirror a :class:`~repro.serving.engine.ServingEngine`'s health.

        Same overwrite-not-accumulate contract as
        :meth:`record_replication`: the engine's counters are
        cumulative, and the engine calls this after every batch.
        """
        stats = engine.stats
        cache = engine.cache.stats
        brownout = getattr(engine, "brownout", None)
        with self._lock:
            self.served_queries = stats.queries
            self.served_batches = stats.batches
            self.cache_hits = cache.hits
            self.cache_misses = cache.misses
            self.cache_hit_rate = cache.hit_rate
            self.load_sheds = stats.load_sheds
            self.queue_sheds = stats.queue_sheds
            self.deadline_sheds = stats.deadline_sheds
            self.reduced_k_answers = stats.reduced_k_answers
            self.partial_served = stats.partial_served
            if brownout is not None:
                self.brownout_level = brownout.level
                self.brownout_escalations = brownout.stats.escalations
            self.parallel_batches = stats.parallel_batches
            self.dispatch_failovers = stats.dispatch_failovers
            self.serving_qps = stats.qps
            self.serving_avg_latency = stats.avg_latency_seconds

    def record_sharding(self, sharded) -> None:
        """Mirror a :class:`ShardedTopKIndex`'s live health.

        Same overwrite-not-accumulate contract as
        :meth:`record_replication`: the sharded index's counters are
        cumulative, so the latest call reflects the current truth —
        topology (shard count and per-shard sizes feed rebalancing
        decisions), churn (splits, merges, losses, recoveries), and the
        scatter-gather pruning efficiency (mean fraction of mapped
        shards a query actually contacted).
        """
        stats = sharded.stats
        with self._lock:
            self.shards = sharded.router.num_shards
            self.shard_splits = stats.splits
            self.shard_merges = stats.merges
            self.shard_losses = stats.shard_losses
            self.shard_recoveries = stats.shard_recoveries
            self.partial_answers = stats.partial_answers
            self.stale_map_retries = stats.stale_map_retries
            self.scatter_contact_ratio = stats.contact_ratio
            self.shard_sizes = sharded.router.shard_sizes()

    def record_flash(self, io_stats) -> None:
        """Mirror a flash-backed store's wear and write-amplification.

        ``io_stats`` is the durability context's
        :class:`~repro.em.model.IOStats`; on a plain (non-flash) disk
        its ``flash_*`` fields stay zero and the mirror is a no-op in
        effect.  Same overwrite-not-accumulate contract as
        :meth:`record_replication`.
        """
        with self._lock:
            self.flash_write_amp = io_stats.write_amplification
            self.flash_max_wear = io_stats.flash_max_wear
            self.flash_mean_wear = io_stats.flash_mean_wear
            self.flash_erases = io_stats.flash_erases
            self.flash_gc_stalls = io_stats.flash_gc_stalls

    def record(self, report: HealthReport) -> None:
        with self._lock:
            self.queries += 1
            self.degraded_queries += 1 if report.degraded else 0
            self.attempts += report.attempts
            self.retries += report.retries
            self.transient_faults += report.transient_faults
            self.corrupt_blocks += report.corrupt_blocks
            self.contract_violations += report.contract_violations
            self.budget_exhaustions += report.budget_exhaustions
            self.rung_unavailable += report.rung_unavailable
            self.spot_checks += report.spot_checks
            self.spot_check_failures += report.spot_check_failures
            self.retry_budget_denied += report.retry_budget_denied
            self.backoff_units += report.backoff_units

    def reset(self) -> None:
        with self._lock:
            for name, value in vars(self).items():
                if name.startswith("_"):
                    continue  # the lock itself, and any future internals
                setattr(self, name, type(value)())

    # ------------------------------------------------------------------
    # Periodic observation (the ops control plane's tick hooks)
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """A consistent point-in-time copy of every public field.

        Scalars are copied by value and dict-valued gauges shallow-
        copied under the lock, so a snapshot taken mid-dispatch never
        mixes counters from two different instants.
        """
        with self._lock:
            out: Dict[str, Any] = {}
            for name, value in vars(self).items():
                if name.startswith("_"):
                    continue
                out[name] = dict(value) if isinstance(value, dict) else value
            return out

    def delta(self, previous: Optional[Dict[str, Any]]) -> Dict[str, Any]:
        """Snapshot minus ``previous``: one tick of the health time series.

        Numeric fields become differences (a counter that *shrank* —
        a reset between ticks — contributes its current value, never a
        negative delta); dict-valued and string gauges pass through as
        current values.  Returns the current :meth:`snapshot` when
        ``previous`` is ``None``, so the first tick is usable as-is.
        """
        current = self.snapshot()
        if previous is None:
            return current
        out: Dict[str, Any] = {}
        for name, value in current.items():
            before = previous.get(name)
            if isinstance(value, (int, float)) and isinstance(before, (int, float)):
                out[name] = value - before if value >= before else value
            else:
                out[name] = value
        return out


class ResilientTopKIndex(TopKIndex):
    """Guard any :class:`TopKIndex` with retry, spot-checks, and fallbacks.

    Parameters
    ----------
    primary:
        The index answering queries on the happy path.
    fallbacks:
        Further :class:`TopKIndex` rungs tried in order when the
        primary keeps failing (e.g. a Theorem 1 structure).
    elements:
        Optional host-memory copy of ``D``.  When given, a brute-force
        scan becomes the terminal rung, making the guard total: some
        rung always succeeds.  (The scan bypasses the simulated disk,
        so injected I/O faults cannot reach it.)
    policy:
        A :class:`GuardPolicy`; defaults are production-lean.
    ctx:
        Optional :class:`EMContext` whose I/O delta is recorded in
        reports returned by :meth:`query_with_report` (diagnostics
        only; plain :meth:`query` skips the accounting).
    """

    _SCAN_RUNG = "scan"

    def __init__(
        self,
        primary: TopKIndex,
        fallbacks: Sequence[TopKIndex] = (),
        elements: Optional[Sequence[Element]] = None,
        policy: Optional[GuardPolicy] = None,
        ctx: Optional[EMContext] = None,
    ) -> None:
        self.policy = policy if policy is not None else GuardPolicy()
        self.primary = primary
        self.ctx = ctx
        self._elements = list(elements) if elements is not None else None
        self._rungs: List[Tuple[str, Callable[[Predicate, int], List[Element]]]] = []
        for backend in (primary, *fallbacks):
            self._rungs.append((type(backend).__name__, self._backend_fn(backend)))
        if self._elements is not None:
            self._rungs.append((self._SCAN_RUNG, self._scan))
        self._rng = random.Random(self.policy.seed)
        # A dedicated stream for backoff jitter: spot-check draws and
        # retry draws never perturb each other's determinism.
        self._backoff_rng = random.Random(f"guard-backoff-{self.policy.seed}")
        self.retry_budget: Optional[RetryBudget] = (
            RetryBudget(
                ratio=self.policy.retry_budget_ratio,
                burst=self.policy.retry_budget_burst,
            )
            if self.policy.retry_budget_ratio is not None
            else None
        )
        self.health = HealthSummary()
        self.last_report: Optional[HealthReport] = None
        # Backends that came back from a crash surface their recovery in
        # the aggregate health, so operators see it where they already look.
        from repro.durability.durable import DurableTopKIndex
        from repro.replication.cluster import ReplicaSet

        for backend in (primary, *fallbacks):
            if isinstance(backend, DurableTopKIndex) and backend.recovery is not None:
                self.health.record_recovery(backend.recovery)
        # A durable backend's device health (flash wear / write amp)
        # rides the same summary; zeros on a plain disk.
        self._durable_backend = next(
            (
                backend
                for backend in (primary, *fallbacks)
                if isinstance(backend, DurableTopKIndex)
            ),
            None,
        )
        if self._durable_backend is not None:
            self.health.record_flash(self._durable_backend.durability_io)
        self._replica_set = primary if isinstance(primary, ReplicaSet) else None
        if self._replica_set is not None:
            self.health.record_replication(self._replica_set)
        from repro.sharding.sharded import ShardedTopKIndex

        self._sharded = primary if isinstance(primary, ShardedTopKIndex) else None
        if self._sharded is not None:
            self.health.record_sharding(self._sharded)

    def _backend_fn(
        self, backend: TopKIndex
    ) -> Callable[[Predicate, int], List[Element]]:
        """Query adapter for one rung.

        A :class:`~repro.durability.durable.DurableTopKIndex` is
        unwrapped only for *inspection* (does a round budget apply?);
        queries still go through the wrapper, whose durability I/O
        lives in its own private context — the guard's ``io_total``
        accounting never double-counts persistence traffic.
        """
        from repro.durability.durable import DurableTopKIndex

        budget = self.policy.round_budget
        target = backend.inner if isinstance(backend, DurableTopKIndex) else backend
        if budget is not None and isinstance(target, ExpectedTopKIndex):
            return lambda predicate, k: backend.query(predicate, k, round_budget=budget)
        return backend.query

    def _scan(self, predicate: Predicate, k: int) -> List[Element]:
        assert self._elements is not None
        return top_k_of(self._elements, predicate, k)

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self.primary.n

    @property
    def num_rungs(self) -> int:
        return len(self._rungs)

    def rung_names(self) -> List[str]:
        return [name for name, _ in self._rungs]

    def query(self, predicate: Predicate, k: int) -> List[Element]:
        """An exact top-k answer, whatever it takes (see class docs)."""
        answer, _ = self.query_with_report(predicate, k, _want_io=False)
        return answer

    def query_with_report(
        self, predicate: Predicate, k: int, _want_io: bool = True
    ) -> Tuple[List[Element], HealthReport]:
        """Answer plus the :class:`HealthReport` describing how.

        ``_want_io`` is internal: plain :meth:`query` skips the I/O
        snapshot/delta pair so the healthy path stays cheap; reports
        requested explicitly always carry ``io_total`` when a ``ctx``
        is attached.
        """
        report = HealthReport(k=k)
        if self.retry_budget is not None:
            # Fresh traffic funds future retries (one deposit per
            # query, regardless of how many rungs it ends up trying).
            self.retry_budget.deposit()
        io_before = (
            self.ctx.stats.snapshot() if _want_io and self.ctx is not None else None
        )
        for level, (name, query_fn) in enumerate(self._rungs):
            report.rungs_tried.append(name)
            answer = self._try_rung(name, query_fn, predicate, k, report)
            if answer is None:
                continue
            report.degradation_level = level
            report.answered_by = name
            report.answer_size = len(answer)
            if io_before is not None:
                report.io_total = self.ctx.stats.delta(io_before).total
            self.health.record(report)
            if self._replica_set is not None:
                self.health.record_replication(self._replica_set)
            if self._sharded is not None:
                self.health.record_sharding(self._sharded)
            if self._durable_backend is not None:
                self.health.record_flash(self._durable_backend.durability_io)
            self.last_report = report
            if report.degraded and self.policy.raise_on_degraded:
                raise DegradedAnswer(
                    f"query answered by rung {level} ({name}), "
                    f"not the primary index",
                    answer=answer,
                    report=report,
                )
            return answer, report
        self.last_report = report
        raise RetryBudgetExhausted(
            f"every rung failed ({' -> '.join(report.rungs_tried)}); "
            "provide `elements` for a terminal scan rung to make the "
            "guard total",
            attempts=report.attempts,
        )

    def _try_rung(
        self,
        name: str,
        query_fn: Callable[[Predicate, int], List[Element]],
        predicate: Predicate,
        k: int,
        report: HealthReport,
    ) -> Optional[List[Element]]:
        """Run one rung under the retry policy; ``None`` means degrade."""
        for attempt in range(self.policy.max_attempts):
            report.attempts += 1
            try:
                answer = query_fn(predicate, k)
            except CorruptBlockError:
                report.transient_faults += 1
                report.corrupt_blocks += 1
                if not self._backoff(attempt, report):
                    return None
                continue
            except TransientIOError:
                report.transient_faults += 1
                if not self._backoff(attempt, report):
                    return None
                continue
            except RetryBudgetExhausted:
                report.budget_exhaustions += 1
                return None
            except ContractViolation:
                report.contract_violations += 1
                return None
            except ReplicaUnavailable:
                # A replica set with no serving machine, or a sharded
                # index with an unrecoverable shard (ShardUnavailable).
                # Not retryable from here — the backend already walked
                # its own failover/recovery ladder; the next rung of
                # this one takes over.
                report.rung_unavailable += 1
                return None
            if name != self._SCAN_RUNG and self._should_spot_check():
                report.spot_checks += 1
                check = spot_check_topk(answer, predicate, k)
                if not check.ok:
                    report.spot_check_failures += 1
                    report.contract_violations += 1
                    return None
            return answer
        return None

    def _backoff(self, attempt: int, report: HealthReport) -> bool:
        """Record backoff before a retry; ``False`` when out of attempts.

        Capped exponential with seeded jitter — deterministic for a
        fixed policy seed, so chaos and failover tests replay the same
        backoff schedule (units are counted, never slept).
        """
        if attempt + 1 >= self.policy.max_attempts:
            return False
        if self.retry_budget is not None and not self.retry_budget.try_spend():
            # Retrying is a privilege fresh traffic pays for; with the
            # bucket empty the rung degrades instead of storming.
            report.retry_budget_denied += 1
            return False
        report.retries += 1
        units = min(
            self.policy.backoff_cap,
            self.policy.backoff_base * self.policy.backoff_factor**attempt,
        )
        if self.policy.backoff_jitter > 0.0:
            units *= 1.0 - self.policy.backoff_jitter * self._backoff_rng.random()
        report.backoff_units += units
        return True

    def _should_spot_check(self) -> bool:
        rate = self.policy.spot_check_rate
        if rate <= 0.0:
            return False
        return rate >= 1.0 or self._rng.random() < rate


def resilient_index(
    elements: Sequence[Element],
    prioritized_factory,
    max_factory,
    policy: Optional[GuardPolicy] = None,
    ctx: Optional[EMContext] = None,
    seed: int = 0,
    B: int = 2,
    with_theorem1_fallback: bool = True,
    **theorem2_kwargs,
) -> ResilientTopKIndex:
    """The canonical degradation ladder, assembled in one call.

    Builds Theorem 2 (primary) and optionally Theorem 1 (first
    fallback) over the same factories, keeps a host-memory copy of
    ``elements`` as the terminal scan rung, and wraps everything in a
    :class:`ResilientTopKIndex`.
    """
    from repro.core.theorem1 import WorstCaseTopKIndex

    primary = ExpectedTopKIndex(
        elements, prioritized_factory, max_factory, B=B, seed=seed, **theorem2_kwargs
    )
    fallbacks: List[TopKIndex] = []
    if with_theorem1_fallback:
        fallbacks.append(
            WorstCaseTopKIndex(elements, prioritized_factory, B=B, seed=seed)
        )
    return ResilientTopKIndex(
        primary, fallbacks=fallbacks, elements=elements, policy=policy, ctx=ctx
    )


__all__ = [
    "GuardPolicy",
    "HealthReport",
    "HealthSummary",
    "ResilientTopKIndex",
    "RetryBudget",
    "resilient_index",
]
