"""White-box tests for Theorem 2's ladder and round machinery."""

import math
import random

import pytest

from oracles import oracle_top_k
from repro.core.params import TuningParams
from repro.core.theorem2 import ExpectedTopKIndex
from toy import RangePredicate, ToyMax, ToyPrioritized, make_toy_elements


def build(n=1000, seed=0, **kwargs):
    elements = make_toy_elements(n, seed)
    return elements, ExpectedTopKIndex(elements, ToyPrioritized, ToyMax, seed=seed, **kwargs)


class TestLadderConstruction:
    def test_K_follows_geometric_formula(self):
        _, index = build(n=4000)
        sigma = index.params.sigma
        for a, b in zip(index._K, index._K[1:]):
            assert b == pytest.approx(a * (1 + sigma))

    def test_K1_is_B_times_qmax(self):
        elements = make_toy_elements(4000, 1)
        index = ExpectedTopKIndex(elements, ToyPrioritized, ToyMax, B=8, seed=1)
        assert index._K[0] == pytest.approx(8 * math.log2(4000))

    def test_custom_q_max_bound(self):
        elements = make_toy_elements(1000, 2)
        index = ExpectedTopKIndex(
            elements, ToyPrioritized, ToyMax, B=2, seed=2, q_max_bound=lambda n: 50.0
        )
        assert index._K[0] == pytest.approx(100.0)

    def test_ladder_capped_at_quarter_n(self):
        _, index = build(n=2000)
        assert all(K <= 2000 / 4 for K in index._K)

    def test_membership_bookkeeping_matches_samples(self):
        _, index = build(n=1500)
        for i, sample in enumerate(index._samples):
            for element in sample:
                assert i in index._membership[element]
        for element, levels in index._membership.items():
            for level in levels:
                assert element in index._samples[level]

    def test_samples_support_constant_time_membership_updates(self):
        """Level samples are ordered hash sets (dicts), so ``delete``
        is O(#levels containing the element), not O(|R_i|) list scans."""
        elements, index = build(n=1500)
        assert all(isinstance(sample, dict) for sample in index._samples)
        victim = elements[17]
        index.delete(victim)
        for sample in index._samples:
            assert victim not in sample
        assert victim not in index._membership

    def test_expected_membership_is_constant(self):
        """Each element sits in O(1) samples in expectation (update cost)."""
        _, index = build(n=4000)
        total_memberships = sum(len(v) for v in index._membership.values())
        assert total_memberships <= 1.2 * 4000  # sum of 1/K_i is < 1 here


class TestLevelSelection:
    def test_first_level_at_least(self):
        _, index = build(n=4000)
        for target in (index._K[0], index._K[0] + 1, index._K[-1]):
            i = index._first_level_at_least(target)
            assert index._K[i] >= target
            if i > 0:
                assert index._K[i - 1] < target

    def test_small_k_promoted_to_K1(self):
        """k below B*Q_max is answered as a top-ceil(K_1) query."""
        elements, index = build(n=2000, seed=3)
        rng = random.Random(4)
        for _ in range(10):
            p = RangePredicate(*sorted((rng.uniform(0, 20000), rng.uniform(0, 20000))))
            assert index.query(p, 2) == oracle_top_k(elements, p, 2)


class TestRoundAccounting:
    def test_round_success_counts_probe(self):
        elements, index = build(n=800, seed=5)
        index.stats.reset()
        p = RangePredicate(-1, math.inf)
        index.query(p, 5)
        assert index.stats.monitored_probes >= 1
        assert index.stats.queries == 1

    def test_sigma_controls_ladder_height(self):
        elements = make_toy_elements(4000, 6)
        steep = ExpectedTopKIndex(
            elements, ToyPrioritized, ToyMax, params=TuningParams(sigma=1.0), seed=6
        )
        shallow = ExpectedTopKIndex(
            elements,
            ToyPrioritized,
            ToyMax,
            params=TuningParams.paper_faithful(),  # sigma = 1/20
            seed=6,
        )
        assert shallow.num_levels > 2 * steep.num_levels

    def test_paper_sigma_still_exact(self):
        elements = make_toy_elements(600, 7)
        index = ExpectedTopKIndex(
            elements,
            ToyPrioritized,
            ToyMax,
            params=TuningParams.paper_faithful(),
            seed=7,
        )
        rng = random.Random(8)
        for _ in range(15):
            p = RangePredicate(*sorted((rng.uniform(0, 6000), rng.uniform(0, 6000))))
            for k in (1, 9, 77):
                assert index.query(p, k) == oracle_top_k(elements, p, k)
