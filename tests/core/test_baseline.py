"""Tests for the binary-search baseline reduction of [28]."""

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from oracles import oracle_top_k
from repro.core.baseline import BinarySearchTopKIndex
from toy import RangePredicate, ToyPrioritized, make_toy_elements


def build(n=400, seed=0):
    elements = make_toy_elements(n, seed)
    return elements, BinarySearchTopKIndex(elements, ToyPrioritized)


def random_predicate(rng, n):
    a, b = sorted((rng.uniform(0, 10 * n), rng.uniform(0, 10 * n)))
    return RangePredicate(a, b)


class TestCorrectness:
    def test_exact_across_k(self):
        elements, index = build()
        rng = random.Random(1)
        for _ in range(40):
            p = random_predicate(rng, 400)
            for k in (1, 2, 10, 77, 399):
                assert index.query(p, k) == oracle_top_k(elements, p, k)

    def test_fewer_matches_than_k(self):
        elements, index = build(n=100)
        p = RangePredicate(0, 50)  # few positions land here
        expect = oracle_top_k(elements, p, 1000)
        assert index.query(p, 1000) == expect

    def test_empty_result(self):
        elements, index = build(n=100)
        assert index.query(RangePredicate(-5, -1), 10) == []

    def test_k_zero(self):
        _, index = build(n=50)
        assert index.query(RangePredicate(0, 100), 0) == []

    def test_empty_dataset(self):
        index = BinarySearchTopKIndex([], ToyPrioritized)
        assert index.query(RangePredicate(0, 1), 5) == []


class TestProbeCount:
    def test_logarithmic_probe_count(self):
        """The defining property: O(log n) cost-monitored probes/query."""
        elements, index = build(n=1024)
        index.stats.reset()
        index.query(RangePredicate(0, math.inf), 5)
        assert index.stats.monitored_probes <= math.ceil(math.log2(1024)) + 2

    def test_probe_count_grows_with_n(self):
        _, small = build(n=64)
        _, large = build(n=4096)
        p = RangePredicate(0, math.inf)
        small.stats.reset()
        small.query(p, 3)
        large.stats.reset()
        large.query(p, 3)
        assert large.stats.monitored_probes > small.stats.monitored_probes


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(1, 200),
    seed=st.integers(0, 1000),
    k=st.integers(1, 250),
    qseed=st.integers(0, 1000),
)
def test_property_matches_oracle(n, seed, k, qseed):
    elements = make_toy_elements(n, seed)
    index = BinarySearchTopKIndex(elements, ToyPrioritized)
    rng = random.Random(qseed)
    p = random_predicate(rng, n)
    assert index.query(p, k) == oracle_top_k(elements, p, k)
