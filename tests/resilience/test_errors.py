"""The error taxonomy: hierarchy, compat parentage, and payloads."""

import pytest

from repro.resilience.errors import (
    BlockOverflowError,
    ContractViolation,
    CorruptBlockError,
    DegradedAnswer,
    ElementMembershipError,
    InvalidConfiguration,
    ReproError,
    RetryBudgetExhausted,
    StaticStructureError,
    TransientIOError,
    ValidationFailure,
)


class TestHierarchy:
    def test_everything_is_a_repro_error(self):
        for cls in (
            TransientIOError,
            CorruptBlockError,
            ContractViolation,
            ValidationFailure,
            ElementMembershipError,
            StaticStructureError,
            BlockOverflowError,
            InvalidConfiguration,
            RetryBudgetExhausted,
            DegradedAnswer,
        ):
            assert issubclass(cls, ReproError)

    def test_corrupt_block_is_transient(self):
        """Corruption is in-flight; a re-read succeeds, so it is retryable."""
        assert issubclass(CorruptBlockError, TransientIOError)

    def test_contract_violations_are_not_transient(self):
        assert not issubclass(ContractViolation, TransientIOError)
        assert not issubclass(RetryBudgetExhausted, TransientIOError)

    def test_backwards_compatible_parentage(self):
        """Pre-taxonomy call sites raised builtins; the new types still match."""
        assert issubclass(ValidationFailure, AssertionError)
        assert issubclass(ElementMembershipError, KeyError)
        assert issubclass(StaticStructureError, TypeError)
        assert issubclass(BlockOverflowError, ValueError)
        assert issubclass(InvalidConfiguration, ValueError)


class TestPayloads:
    def test_transient_carries_block_id(self):
        exc = TransientIOError("boom", block_id=42)
        assert exc.block_id == 42

    def test_membership_error_message_is_not_repr_quoted(self):
        # Plain KeyError str()s to the repr of its argument; the
        # subclass restores a readable message.
        exc = ElementMembershipError("element not present: X")
        assert str(exc) == "element not present: X"

    def test_retry_budget_carries_attempts(self):
        exc = RetryBudgetExhausted("out of rounds", attempts=7)
        assert exc.attempts == 7

    def test_degraded_answer_carries_answer_and_report(self):
        exc = DegradedAnswer("fell back", answer=[1, 2], report={"level": 1})
        assert exc.answer == [1, 2]
        assert exc.report == {"level": 1}

    def test_catchable_via_pytest_raises_legacy_type(self):
        with pytest.raises(KeyError):
            raise ElementMembershipError("gone")
        with pytest.raises(ValueError):
            raise InvalidConfiguration("bad B")
