"""Tests for the static priority search tree."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.problem import Element
from repro.structures.priority_search import PrioritySearchTree


def key_of(element):
    return element.obj


def make_elements(n, seed=0):
    rng = random.Random(seed)
    weights = rng.sample(range(10 * n), n)
    keys = rng.sample(range(10 * n), n)
    return [Element(float(keys[i]), float(weights[i])) for i in range(n)]


def oracle_prefix(elements, x, tau):
    out = [e for e in elements if e.obj <= x and e.weight >= tau]
    return sorted(out, key=lambda e: -e.weight)


class TestQueryPrefix:
    def test_matches_oracle(self):
        elements = make_elements(300, 1)
        pst = PrioritySearchTree(elements, key_of)
        rng = random.Random(2)
        for _ in range(80):
            x = rng.uniform(-10, 3100)
            tau = rng.uniform(0, 3100)
            got = sorted(pst.query_prefix(x, tau), key=lambda e: -e.weight)
            assert got == oracle_prefix(elements, x, tau)

    def test_empty_tree(self):
        pst = PrioritySearchTree([], key_of)
        assert pst.query_prefix(10.0, 0.0) == []
        assert pst.max_in_prefix(10.0) is None

    def test_tau_above_all_prunes_at_root(self):
        elements = make_elements(100, 3)
        pst = PrioritySearchTree(elements, key_of)
        pst.ops.reset()
        assert pst.query_prefix(1e9, 1e9) == []
        assert pst.ops.node_visits == 1  # the root champion already fails

    def test_prefix_below_all_keys(self):
        elements = make_elements(50, 4)
        pst = PrioritySearchTree(elements, key_of)
        assert pst.query_prefix(-1.0, 0.0) == []

    def test_visit_count_output_sensitive(self):
        """Visits = O(log n + t), far below n for a tiny threshold window."""
        elements = make_elements(2000, 5)
        pst = PrioritySearchTree(elements, key_of)
        pst.ops.reset()
        top = max(e.weight for e in elements)
        result = pst.query_prefix(1e9, top - 0.5)  # only the heaviest
        assert len(result) == 1
        assert pst.ops.node_visits <= 40


class TestMaxInPrefix:
    def test_matches_oracle(self):
        elements = make_elements(300, 6)
        pst = PrioritySearchTree(elements, key_of)
        rng = random.Random(7)
        for _ in range(80):
            x = rng.uniform(-10, 3100)
            expect = max(
                (e for e in elements if e.obj <= x), key=lambda e: e.weight, default=None
            )
            assert pst.max_in_prefix(x) == expect

    def test_single_element(self):
        pst = PrioritySearchTree([Element(5.0, 1.0)], key_of)
        assert pst.max_in_prefix(5.0).weight == 1.0
        assert pst.max_in_prefix(4.9) is None


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(1, 120),
    seed=st.integers(0, 1000),
    x=st.integers(-10, 1300),
    tau=st.integers(0, 1300),
)
def test_property_matches_oracle(n, seed, x, tau):
    elements = make_elements(n, seed)
    pst = PrioritySearchTree(elements, key_of)
    got = sorted(pst.query_prefix(float(x), float(tau)), key=lambda e: -e.weight)
    assert got == oracle_prefix(elements, float(x), float(tau))
    expect_max = max(
        (e for e in elements if e.obj <= x), key=lambda e: e.weight, default=None
    )
    assert pst.max_in_prefix(float(x)) == expect_max
