"""WAL shipping: incremental tails, durable acks, lazy apply."""

import pytest

from conftest import elem, make_cluster
from repro.durability.wal import read_committed
from toy import RangePredicate


class TestShipping:
    def test_every_update_is_durable_on_every_follower(self, cluster):
        for i in range(40, 60):
            cluster.insert(elem(i))
        for i in range(5):
            cluster.delete(elem(i))
        for replica in cluster.replicas:
            assert replica.durable_lsn == 25
        assert cluster.stats.records_shipped == 50  # 25 records x 2 followers
        assert cluster.stats.acks == 50

    def test_followers_apply_lazily_by_default(self, cluster):
        for i in range(40, 50):
            cluster.insert(elem(i))
        for follower in (r for r in cluster.replicas if not r.is_primary):
            assert follower.durable_lsn == 10
            assert follower.applied_lsn == 0
            assert follower.durable.inner.n == 40  # memory untouched

    def test_eager_mode_applies_at_ship_time(self):
        cluster = make_cluster(apply_mode="eager")
        for i in range(40, 50):
            cluster.insert(elem(i))
        for follower in (r for r in cluster.replicas if not r.is_primary):
            assert follower.applied_lsn == 10
            assert follower.durable.inner.n == 50

    def test_shipped_tail_matches_the_primary_log(self, cluster):
        for i in range(40, 52):
            cluster.insert(elem(i))
        primary = cluster.primary
        follower = [r for r in cluster.replicas if not r.is_primary][0]
        ours, _ = read_committed(follower.store, follower.durable.wal.head)
        theirs, _ = read_committed(primary.store, primary.durable.wal.head)
        flat = lambda groups: [(r.lsn, r.op, r.element) for g in groups for r in g]
        assert flat(ours) == flat(theirs)

    def test_reshipping_is_idempotent(self, cluster):
        for i in range(40, 45):
            cluster.insert(elem(i))
        follower = [r for r in cluster.replicas if not r.is_primary][0]
        groups, _ = read_committed(
            cluster.primary.store, cluster.primary.durable.wal.head
        )
        assert follower.durable.apply_shipped(groups) == 0  # all duplicates
        assert follower.durable_lsn == 5

    def test_align_equalises_applied_lsns(self, cluster):
        for i in range(40, 55):
            cluster.insert(elem(i))
        cluster.align()
        lsns = {r.applied_lsn for r in cluster.replicas}
        assert lsns == {15}
        assert all(r.durable.inner.n == 55 for r in cluster.replicas)

    def test_replica_lag_reports_applied_lag(self, cluster):
        for i in range(40, 48):
            cluster.insert(elem(i))
        lag = cluster.replica_lag()
        assert lag[cluster.primary.name] == 0
        for follower in (r for r in cluster.replicas if not r.is_primary):
            assert lag[follower.name] == 8
        cluster.align()
        assert set(cluster.replica_lag().values()) == {0}


class TestShipFaults:
    def test_faulty_follower_catches_up_on_the_next_ship(self):
        from repro.replication import FailoverPolicy

        cluster = make_cluster(
            failover_policy=FailoverPolicy(max_consecutive_faults=100)
        )
        follower = [r for r in cluster.replicas if not r.is_primary][0]
        follower.plan.write_fail_rate = 1.0
        follower.plan.arm()
        cluster.insert(elem(40))
        assert cluster.stats.ship_failures >= 1
        assert follower.durable_lsn < 1  # the ack never landed
        follower.plan.write_fail_rate = 0.0
        cluster.insert(elem(41))
        assert follower.durable_lsn == 2  # resumed exactly, no gap
        cluster.align()
        assert follower.state_digest() == cluster.primary.state_digest()

    def test_dead_follower_is_skipped_not_fatal(self, cluster):
        follower = [r for r in cluster.replicas if not r.is_primary][0]
        follower.plan.schedule_crash(at_io=1)
        for i in range(40, 50):
            cluster.insert(elem(i))
        assert not follower.alive
        assert cluster.stats.follower_deaths == 1
        live_followers = [
            r for r in cluster.replicas if r.alive and not r.is_primary
        ]
        assert all(r.durable_lsn == 10 for r in live_followers)

    def test_checkpoint_runs_cluster_wide(self, cluster):
        for i in range(40, 50):
            cluster.insert(elem(i))
        cluster.checkpoint()
        for replica in cluster.replicas:
            assert replica.durable.checkpoints >= 2  # initial + this one
            assert replica.applied_lsn == 10
        answer = cluster.query(RangePredicate(0, 100), 3, mode="quorum")
        assert [e.obj for e in answer] == [49, 48, 47]
