"""Tests for persistent-tree vertical ray shooting (Sarnak–Tarjan [31])."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.structures.point_location import PLSegment, SlabPointLocation


def brute_shoot_up(segments, x, y):
    """Reference: lowest segment at abscissa x with height >= y."""
    best = None
    best_y = None
    for segment in segments:
        if segment.x1 <= x <= segment.x2:
            height = segment.y_at(x)
            if height >= y and (best_y is None or height < best_y):
                best, best_y = segment, height
    return best


class TestPLSegment:
    def test_y_at_interpolates(self):
        segment = PLSegment(0, 0, 10, 20)
        assert segment.y_at(5) == 10
        assert segment.y_at(0) == 0
        assert segment.y_at(10) == 20

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            PLSegment(5, 0, 5, 1)
        with pytest.raises(ValueError):
            PLSegment(6, 0, 5, 1)

    def test_slope(self):
        assert PLSegment(0, 0, 2, 4).slope == 2.0


class TestKnownConfigurations:
    def test_stacked_horizontals(self):
        segments = [
            PLSegment(0, 1, 10, 1, "low"),
            PLSegment(0, 2, 10, 2, "mid"),
            PLSegment(0, 3, 10, 3, "high"),
        ]
        locator = SlabPointLocation(segments)
        assert locator.shoot_up(5, 0).payload == "low"
        assert locator.shoot_up(5, 1.5).payload == "mid"
        assert locator.shoot_up(5, 2.5).payload == "high"
        assert locator.shoot_up(5, 3.5) is None

    def test_ray_outside_all_slabs(self):
        locator = SlabPointLocation([PLSegment(0, 0, 1, 0)])
        assert locator.shoot_up(-5, 0) is None
        assert locator.shoot_up(5, 0) is None

    def test_staircase(self):
        segments = [
            PLSegment(0, 0, 4, 0, "a"),
            PLSegment(2, 1, 6, 1, "b"),
            PLSegment(4, 2, 8, 2, "c"),
        ]
        locator = SlabPointLocation(segments)
        assert locator.shoot_up(1, -1).payload == "a"
        assert locator.shoot_up(3, 0.5).payload == "b"
        assert locator.shoot_up(5, 1.5).payload == "c"
        assert locator.shoot_up(7, 1.5).payload == "c"
        assert locator.shoot_up(7, 2.5) is None

    def test_touching_endpoints(self):
        """Segments sharing an endpoint (the envelope-onion pattern)."""
        segments = [
            PLSegment(0, 0, 5, 5, "up"),
            PLSegment(5, 5, 10, 0, "down"),
        ]
        locator = SlabPointLocation(segments)
        assert locator.shoot_up(2, 0).payload == "up"
        assert locator.shoot_up(8, 0).payload == "down"

    def test_empty(self):
        locator = SlabPointLocation([])
        assert locator.shoot_up(0, 0) is None

    def test_segments_crossing_diagnostic(self):
        segments = [PLSegment(0, 0, 10, 0, "a"), PLSegment(3, 1, 6, 1, "b")]
        locator = SlabPointLocation(segments)
        assert len(locator.segments_crossing(4)) == 2
        assert len(locator.segments_crossing(8)) == 1
        assert locator.segments_crossing(-1) == []


class TestShootUpCandidates:
    def test_single_candidate_in_generic_position(self):
        segments = [PLSegment(0, 1, 10, 1, "a"), PLSegment(0, 2, 10, 2, "b")]
        locator = SlabPointLocation(segments)
        candidates = locator.shoot_up_candidates(5.0, 0.5)
        assert [s.payload for s in candidates] == ["a"]

    def test_tie_at_shared_vertex_returns_both(self):
        """Two segments meeting at a vertex; query exactly at it."""
        segments = [
            PLSegment(0, 0, 5, 5, "rising"),
            PLSegment(5, 5, 10, 5, "flat"),
        ]
        locator = SlabPointLocation(segments)
        candidates = locator.shoot_up_candidates(5.0, 5.0)
        assert {s.payload for s in candidates} == {"rising", "flat"}

    def test_boundary_x_sees_closing_segment(self):
        """A segment ending exactly at the query x still contains it."""
        segments = [PLSegment(0, 3, 5, 3, "ends-here")]
        locator = SlabPointLocation(segments)
        candidates = locator.shoot_up_candidates(5.0, 1.0)
        assert [s.payload for s in candidates] == ["ends-here"]
        # Plain shoot_up misses it (documented boundary semantics).
        assert locator.shoot_up(5.0, 1.0) is None

    def test_no_candidates_above(self):
        locator = SlabPointLocation([PLSegment(0, 1, 10, 1)])
        assert locator.shoot_up_candidates(5.0, 2.0) == []

    def test_support_evaluator_exactness(self):
        """Clipped segments evaluate via their support, not interpolation."""
        from repro.geometry.primitives import Line2D

        line = Line2D(-3.0, 1.0)
        clipped = PLSegment(-1e7, line.at(-1e7), 10.0, line.at(10.0), support=line)
        assert clipped.y_at(0.0) == 1.0  # exact despite the huge endpoint


def _random_disjoint_segments(rng, count):
    """Non-crossing segments: horizontal strips at distinct heights."""
    segments = []
    heights = rng.sample(range(1000), count)
    for i in range(count):
        x1 = rng.uniform(0, 90)
        x2 = x1 + rng.uniform(1, 30)
        y = float(heights[i])
        segments.append(PLSegment(x1, y, x2, y, payload=i))
    return segments


class TestRandomised:
    def test_matches_brute_force_horizontals(self):
        rng = random.Random(7)
        segments = _random_disjoint_segments(rng, 120)
        locator = SlabPointLocation(segments)
        for _ in range(400):
            x = rng.uniform(-5, 130)
            y = rng.uniform(-10, 1010)
            got = locator.shoot_up(x, y)
            expect = brute_shoot_up(segments, x, y)
            assert got == expect, (x, y)

    def test_matches_brute_force_slanted(self):
        """Non-crossing slanted segments from a shifted family."""
        rng = random.Random(8)
        segments = []
        for i in range(80):
            x1 = rng.uniform(0, 50)
            x2 = x1 + rng.uniform(2, 20)
            base = 20.0 * i  # vertical separation exceeds max slope * span
            slope = rng.uniform(-0.5, 0.5)
            segments.append(
                PLSegment(x1, base + slope * 0, x2, base + slope * (x2 - x1), payload=i)
            )
        locator = SlabPointLocation(segments)
        for _ in range(300):
            x = rng.uniform(-5, 80)
            y = rng.uniform(-10, 20.0 * 82)
            assert locator.shoot_up(x, y) == brute_shoot_up(segments, x, y)


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 10**6),
    count=st.integers(1, 60),
    qx=st.floats(-5, 130, allow_nan=False),
    qy=st.floats(-10, 1010, allow_nan=False),
)
def test_property_matches_brute_force(seed, count, qx, qy):
    rng = random.Random(seed)
    segments = _random_disjoint_segments(rng, count)
    locator = SlabPointLocation(segments)
    assert locator.shoot_up(qx, qy) == brute_shoot_up(segments, qx, qy)
