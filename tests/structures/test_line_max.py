"""Tests for the Section 5.4 max structure (envelope onion + ray shooting)."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from oracles import oracle_max
from repro.core.problem import Element
from repro.geometry.primitives import Halfplane, Line2D
from repro.structures.halfplane import HalfplaneMax, HalfplanePredicate
from repro.structures.line_max import (
    LineAbovePointMax,
    LineAboveQuery,
    UpperHalfplanePointMax,
)


def make_lines(n, seed=0):
    rng = random.Random(seed)
    weights = rng.sample(range(10 * n), n)
    return [
        Element(Line2D(rng.uniform(-5, 5), rng.uniform(-50, 50)), float(weights[i]))
        for i in range(n)
    ]


def make_points(n, seed=0):
    rng = random.Random(seed)
    weights = rng.sample(range(10 * n), n)
    return [
        Element((rng.uniform(-10, 10), rng.uniform(-10, 10)), float(weights[i]))
        for i in range(n)
    ]


class TestLineAbovePointMax:
    def test_matches_oracle(self):
        elements = make_lines(300, 1)
        index = LineAbovePointMax(elements)
        rng = random.Random(2)
        for _ in range(300):
            q = (rng.uniform(-20, 20), rng.uniform(-150, 150))
            p = LineAboveQuery(q)
            assert index.query(p) == oracle_max(elements, p), q

    def test_point_above_everything(self):
        elements = make_lines(50, 3)
        index = LineAbovePointMax(elements)
        assert index.query(LineAboveQuery((0.0, 1e6))) is None

    def test_point_below_everything_gets_heaviest(self):
        elements = make_lines(50, 4)
        index = LineAbovePointMax(elements)
        heaviest = max(elements, key=lambda e: e.weight)
        assert index.query(LineAboveQuery((0.0, -1e6))) == heaviest

    def test_single_line(self):
        element = Element(Line2D(1.0, 0.0), 5.0)
        index = LineAbovePointMax([element])
        assert index.query(LineAboveQuery((2.0, 1.5))) == element
        assert index.query(LineAboveQuery((2.0, 2.5))) is None

    def test_parallel_lines(self):
        elements = [
            Element(Line2D(1.0, 0.0), 1.0),
            Element(Line2D(1.0, 5.0), 2.0),
            Element(Line2D(1.0, 10.0), 3.0),
        ]
        index = LineAbovePointMax(elements)
        # All above: the heaviest (which is also the highest here) wins.
        assert index.query(LineAboveQuery((0.0, -1.0))).weight == 3.0
        # Only the highest line is above y=7.
        assert index.query(LineAboveQuery((0.0, 7.0))).weight == 3.0
        assert index.query(LineAboveQuery((0.0, 11.0))) is None

    def test_hidden_light_line_never_answers(self):
        """A light line below a heavy one is never the answer."""
        heavy = Element(Line2D(0.0, 10.0), 9.0)
        light = Element(Line2D(0.0, 5.0), 1.0)
        index = LineAbovePointMax([heavy, light])
        # Point between them: only the light line is above... no — the
        # light line is at y=5, the point y=7 is above it; the heavy
        # line (y=10) is above the point, so heavy answers.
        assert index.query(LineAboveQuery((0.0, 7.0))) == heavy
        # Point below both: heavy still answers (max weight).
        assert index.query(LineAboveQuery((0.0, 0.0))) == heavy
        # Point above heavy: nothing.
        assert index.query(LineAboveQuery((0.0, 11.0))) is None

    def test_exposed_segments_at_most_n(self):
        elements = make_lines(200, 5)
        index = LineAbovePointMax(elements)
        assert index._locator.n <= 200

    def test_query_cost_bound(self):
        index = LineAbovePointMax(make_lines(1024, 6))
        assert index.query_cost_bound() == pytest.approx(10.0)


class TestUpperHalfplanePointMax:
    def test_matches_oracle(self):
        elements = make_points(250, 7)
        index = UpperHalfplanePointMax(elements)
        rng = random.Random(8)
        for _ in range(200):
            theta = rng.uniform(0.05, math.pi - 0.05)  # normal_y > 0
            hp = Halfplane((math.cos(theta), math.sin(theta)), rng.uniform(-12, 12))
            p = HalfplanePredicate(hp)
            assert index.query(p) == oracle_max(elements, p)

    def test_agrees_with_hull_partition_structure(self):
        """The O(log n) persistent structure vs the O(log^2 n) hull tree."""
        elements = make_points(300, 9)
        fast = UpperHalfplanePointMax(elements)
        general = HalfplaneMax(elements)
        rng = random.Random(10)
        for _ in range(150):
            theta = rng.uniform(0.05, math.pi - 0.05)
            hp = Halfplane((math.cos(theta), math.sin(theta)), rng.uniform(-12, 12))
            p = HalfplanePredicate(hp)
            assert fast.query(p) == general.query(p)

    def test_rejects_lower_halfplanes(self):
        index = UpperHalfplanePointMax(make_points(20, 11))
        with pytest.raises(ValueError, match="upper halfplanes"):
            index.query(HalfplanePredicate(Halfplane((0.0, -1.0), 0.0)))

    def test_empty_halfplane(self):
        elements = make_points(60, 12)
        index = UpperHalfplanePointMax(elements)
        assert index.query(HalfplanePredicate(Halfplane((0.0, 1.0), 1e9))) is None


slope = st.integers(-8, 8)
intercept = st.integers(-40, 40)


@settings(max_examples=40, deadline=None)
@given(
    params=st.lists(st.tuples(slope, intercept), min_size=1, max_size=50, unique=True),
    qx=st.integers(-15, 15),
    qy=st.integers(-200, 200),
    seed=st.integers(0, 100),
)
def test_property_matches_oracle(params, qx, qy, seed):
    rng = random.Random(seed)
    weights = rng.sample(range(10 * len(params)), len(params))
    elements = [
        Element(Line2D(float(a), float(b)), float(w))
        for (a, b), w in zip(params, weights)
    ]
    index = LineAbovePointMax(elements)
    p = LineAboveQuery((float(qx), float(qy)))
    assert index.query(p) == oracle_max(elements, p)
