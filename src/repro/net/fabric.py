"""`NetworkFabric`: a seeded simulated network between machines.

Every prior fault axis (PR 1's disk chaos, PR 2's crashes, PR 3's
machine deaths) lives *inside* a machine; this module adds the axis
between them.  A :class:`NetworkFabric` owns one directed
:class:`Link` per ``(src, dst)`` pair, each with its own seeded RNG
and a :class:`LinkPlan` of faults:

* **drop** — the message (or only its reply) vanishes; the sender sees
  a timeout and cannot know whether the handler ran
  (:class:`~repro.resilience.errors.PartitionedError` with
  ``indeterminate=True``);
* **duplication** — the handler is invoked twice for one send; the
  receiver's idempotency-key dedupe cache must make the second
  delivery a no-op;
* **reordering** — the message is held back and delivered *late*,
  after younger traffic on the same link (the sender sees a timeout;
  the stale delivery races the retry);
* **counted delay** — each traversal advances the fabric's virtual
  clock by ``1 + delay`` units (lease TTLs count this clock);
* **scheduled partitions** — virtual-time windows during which the
  link refuses traffic outright.  Windows are per *directed* link, so
  asymmetric partitions (A→B dead while B→A lives) are first-class.

Transport is synchronous request/reply: :meth:`NetworkFabric.send`
invokes the destination's registered handler and returns its reply.
Every envelope is a typed :class:`Message` carrying a fencing
``epoch`` and an idempotency ``key``; receivers cache replies by key
(bounded LRU) so duplicated and retried deliveries are *detected* —
counted in :class:`NetStats` — rather than applied twice.

Determinism: one ``random.Random`` per link, seeded from
``(fabric seed, src, dst)``; the virtual clock only moves when
messages move or a caller advances it.  A fabric with no faults
scheduled behaves exactly like direct calls (plus clock ticks), which
is why every distributed layer can route through it unconditionally.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.resilience.errors import (
    FencedError,
    InvalidConfiguration,
    PartitionedError,
)

# Message kinds (the typed envelope vocabulary).
MSG_WAL_SHIP = "wal_ship"        # primary -> follower: committed WAL groups
MSG_LEASE_RENEW = "lease_renew"  # primary -> follower: lease heartbeat / epoch announce
MSG_RESYNC = "resync"            # source -> target: anti-entropy snapshot handoff
MSG_PROBE = "probe"              # coordinator -> shard: scatter-gather top-k' probe

_DEDUPE_CAPACITY = 4096


@dataclass(frozen=True)
class Message:
    """One typed envelope on a link.

    ``key`` is the idempotency key: a sender retrying after an
    indeterminate timeout reuses the key, and the receiver's dedupe
    cache replays the original reply instead of re-running the handler.
    ``epoch`` is the fencing token (see ``ReplicaSet``); 0 when the
    sender is not fenced.
    """

    kind: str
    src: str
    dst: str
    key: Any
    epoch: int = 0
    payload: Any = None


@dataclass
class LinkPlan:
    """Fault schedule of one directed link.

    Rates are per-send probabilities drawn from the link's own seeded
    RNG; ``partitions`` is a list of half-open virtual-time windows
    ``(start, end)`` (``end=None`` = until healed) during which the
    link refuses traffic.  ``reorder_window`` is how many subsequent
    sends on the link a held-back message waits behind before its late
    delivery.
    """

    drop_rate: float = 0.0
    dup_rate: float = 0.0
    reorder_rate: float = 0.0
    reorder_window: int = 2
    delay: int = 0
    partitions: List[Tuple[int, Optional[int]]] = field(default_factory=list)

    def __post_init__(self) -> None:
        for name in ("drop_rate", "dup_rate", "reorder_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise InvalidConfiguration(
                    f"{name} must be in [0, 1], got {value!r}"
                )
        if self.drop_rate + self.dup_rate + self.reorder_rate > 1.0:
            raise InvalidConfiguration(
                "drop_rate + dup_rate + reorder_rate must not exceed 1"
            )
        if self.reorder_window < 1:
            raise InvalidConfiguration(
                f"reorder_window must be >= 1, got {self.reorder_window}"
            )
        if self.delay < 0:
            raise InvalidConfiguration(f"delay must be >= 0, got {self.delay}")

    def blocked(self, now: int) -> bool:
        return any(
            start <= now and (end is None or now < end)
            for start, end in self.partitions
        )


@dataclass
class NetStats:
    """Counters of everything the fabric did (and prevented)."""

    sends: int = 0
    delivered: int = 0
    partition_refusals: int = 0
    drops: int = 0
    reply_drops: int = 0
    duplicates: int = 0
    duplicates_detected: int = 0   # dedupe-cache hits: a dup/retry was absorbed
    reorders_held: int = 0
    late_deliveries: int = 0
    timeouts: int = 0              # indeterminate failures surfaced to senders
    fenced_rejects: int = 0        # stale-epoch messages refused at delivery
    stale_epoch_applies: int = 0   # stale-epoch messages that mutated state
    lease_expirations: int = 0     # mirrored by the cluster on self-demotion


class Link:
    """One directed pipe with its own RNG, plan, and holdback queue."""

    def __init__(self, src: str, dst: str, seed: int) -> None:
        self.src = src
        self.dst = dst
        self.plan = LinkPlan()
        self.rng = random.Random(repr((seed, src, dst)))
        # Messages held for late delivery: (due_serial, Message).
        self._holdback: List[Tuple[int, Message]] = []
        self._serial = 0


class NetworkFabric:
    """All links + the virtual clock + per-endpoint dedupe caches."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.now = 0
        self.stats = NetStats()
        self._links: Dict[Tuple[str, str], Link] = {}
        self._handlers: Dict[str, Callable[[Message], Any]] = {}
        # Per-endpoint idempotency cache: key -> reply of the first
        # successful delivery.  Bounded LRU; duplicates and retries of
        # recent traffic replay the cached reply.
        self._dedupe: Dict[str, "OrderedDict[Any, Any]"] = {}

    # ------------------------------------------------------------------
    # Topology / registration
    # ------------------------------------------------------------------
    def register(self, name: str, handler: Callable[[Message], Any]) -> None:
        """Attach (or replace) the delivery handler for endpoint ``name``."""
        self._handlers[name] = handler
        self._dedupe.setdefault(name, OrderedDict())

    def link(self, src: str, dst: str) -> Link:
        """The directed link ``src -> dst`` (created perfect on demand)."""
        key = (src, dst)
        found = self._links.get(key)
        if found is None:
            found = Link(src, dst, self.seed)
            self._links[key] = found
        return found

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    def advance(self, units: int = 1) -> int:
        self.now += max(0, units)
        return self.now

    def advance_to(self, t: int) -> int:
        self.now = max(self.now, t)
        return self.now

    # ------------------------------------------------------------------
    # Fault scheduling / healing
    # ------------------------------------------------------------------
    def partition(
        self,
        src: str,
        dst: str,
        start: Optional[int] = None,
        end: Optional[int] = None,
        symmetric: bool = True,
    ) -> None:
        """Schedule a partition window on ``src -> dst``.

        ``symmetric=False`` leaves the reverse direction untouched —
        the asymmetric case (A cannot reach B while B still reaches A).
        """
        window = (self.now if start is None else start, end)
        self.link(src, dst).plan.partitions.append(window)
        if symmetric:
            self.link(dst, src).plan.partitions.append(window)

    def isolate(
        self, name: str, peers: List[str],
        start: Optional[int] = None, end: Optional[int] = None,
    ) -> None:
        """Cut ``name`` off from every peer, both directions."""
        for peer in peers:
            if peer != name:
                self.partition(name, peer, start=start, end=end)

    def blocked(self, src: str, dst: str) -> bool:
        """Whether ``src -> dst`` refuses traffic right now."""
        return self.link(src, dst).plan.blocked(self.now)

    def active_partitions(self) -> int:
        """Directed links currently refusing traffic (the ops gauge)."""
        return sum(
            1 for link in self._links.values() if link.plan.blocked(self.now)
        )

    def heal(self) -> int:
        """Clear every scheduled partition window; returns links healed.

        The operator's ``heal_partition`` lever.  Loss/dup/reorder
        rates are left in place — healing reconnects the topology, it
        does not replace flaky hardware.
        """
        healed = 0
        for link in self._links.values():
            if link.plan.partitions:
                link.plan.partitions.clear()
                healed += 1
        return healed

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def send(
        self,
        src: str,
        dst: str,
        kind: str,
        payload: Any = None,
        epoch: int = 0,
        key: Any = None,
    ) -> Any:
        """Synchronous request/reply through the ``src -> dst`` link.

        Raises :class:`PartitionedError` — ``indeterminate=False`` when
        the link refused the message outright (partition window),
        ``indeterminate=True`` when the message or its reply was lost
        (the handler may or may not have run).  Handler exceptions
        (e.g. :class:`FencedError`, a follower's ``SimulatedCrash``)
        propagate to the sender as the RPC's failure reply.
        """
        link = self.link(src, dst)
        message = Message(
            kind=kind, src=src, dst=dst, key=key, epoch=epoch, payload=payload
        )
        self.stats.sends += 1
        self.now += 1 + link.plan.delay
        link._serial += 1
        self._flush_holdback(link)
        if link.plan.blocked(self.now):
            self.stats.partition_refusals += 1
            raise PartitionedError(
                f"link {src!r} -> {dst!r} is partitioned",
                src=src, dst=dst, indeterminate=False,
            )
        draw = link.rng.random()
        plan = link.plan
        if draw < plan.drop_rate:
            self.stats.drops += 1
            self.stats.timeouts += 1
            if link.rng.random() < 0.5:
                # Reply-drop: the handler runs, the ack is lost.  The
                # sender's retry MUST dedupe — this is the case the
                # idempotency keys exist for.
                self.stats.reply_drops += 1
                self._deliver(message, swallow=False)
            raise PartitionedError(
                f"message {kind!r} {src!r} -> {dst!r} timed out",
                src=src, dst=dst, indeterminate=True,
            )
        if draw < plan.drop_rate + plan.reorder_rate:
            # Held back: delivered late, behind the next few sends on
            # this link.  The sender sees a timeout now.
            self.stats.reorders_held += 1
            self.stats.timeouts += 1
            link._holdback.append(
                (link._serial + plan.reorder_window, message)
            )
            raise PartitionedError(
                f"message {kind!r} {src!r} -> {dst!r} timed out (reordered)",
                src=src, dst=dst, indeterminate=True,
            )
        if draw < plan.drop_rate + plan.reorder_rate + plan.dup_rate:
            self.stats.duplicates += 1
            reply = self._deliver(message, swallow=False)
            self._deliver(message, swallow=True)  # the duplicate
            return reply
        return self._deliver(message, swallow=False)

    def _flush_holdback(self, link: Link) -> None:
        """Deliver any held messages whose reorder window has passed.

        Late deliveries are one-way (their sender gave up long ago):
        replies are discarded and failures — a fencing reject of the
        stale epoch, a dedupe hit — are counted but not raised.
        """
        if not link._holdback:
            return
        due = [m for serial, m in link._holdback if serial <= link._serial]
        link._holdback = [
            (serial, m) for serial, m in link._holdback if serial > link._serial
        ]
        for message in due:
            self.stats.late_deliveries += 1
            self._deliver(message, swallow=True)

    def flush_all_holdback(self) -> None:
        """Force every held message out (end-of-scenario drain)."""
        for link in self._links.values():
            held = [m for _, m in link._holdback]
            link._holdback = []
            for message in held:
                self.stats.late_deliveries += 1
                self._deliver(message, swallow=True)

    def _deliver(self, message: Message, swallow: bool) -> Any:
        handler = self._handlers.get(message.dst)
        if handler is None:
            if swallow:
                return None
            raise PartitionedError(
                f"no endpoint registered for {message.dst!r}",
                src=message.src, dst=message.dst, indeterminate=False,
            )
        cache = self._dedupe.setdefault(message.dst, OrderedDict())
        if message.key is not None and message.key in cache:
            # A duplicate (or a retry after an indeterminate timeout):
            # detected, not applied twice.
            self.stats.duplicates_detected += 1
            cache.move_to_end(message.key)
            return cache[message.key]
        try:
            reply = handler(message)
        except FencedError:
            self.stats.fenced_rejects += 1
            if swallow:
                return None
            raise
        except Exception:
            if swallow:
                return None
            raise
        self.stats.delivered += 1
        if message.key is not None:
            cache[message.key] = reply
            while len(cache) > _DEDUPE_CAPACITY:
                cache.popitem(last=False)
        return reply


__all__ = [
    "NetworkFabric",
    "Link",
    "LinkPlan",
    "Message",
    "NetStats",
    "MSG_WAL_SHIP",
    "MSG_LEASE_RENEW",
    "MSG_RESYNC",
    "MSG_PROBE",
]
