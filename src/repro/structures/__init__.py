"""Per-problem structures: the black boxes the reductions compose.

Each module defines the problem's predicate type plus its prioritized,
max and (where the paper gives one) native structures:

* :mod:`repro.structures.interval_stabbing` — Theorem 4's substrate.
* :mod:`repro.structures.point_enclosure` — Theorem 5's substrate.
* :mod:`repro.structures.dominance` — Theorem 6's substrate.
* :mod:`repro.structures.halfplane` — Theorem 3, d = 2.
* :mod:`repro.structures.kdtree` — Theorem 3, the polynomial-query
  regimes (d >= 3).
* :mod:`repro.structures.circular` — Corollary 1 via the lifting map.
* :mod:`repro.structures.priority_search` — McCreight's PST, the
  innermost level of the dominance range trees.
"""

from repro.structures.interval_stabbing import (
    StabbingPredicate,
    SegmentTreeIntervalPrioritized,
    StaticIntervalStabbingMax,
    DynamicIntervalStabbingMax,
)
from repro.structures.point_enclosure import (
    EnclosurePredicate,
    RectanglePrioritized,
    RectangleStabbingMax,
    CascadedRectangleStabbingMax,
)
from repro.structures.dominance import (
    DominancePredicate,
    DominancePrioritized,
    DominanceMax,
)
from repro.structures.halfplane import (
    HalfplanePredicate,
    ConvexLayerReporting,
    HalfplanePrioritized,
    HalfplaneMax,
)
from repro.structures.kdtree import (
    Box,
    HalfspacePredicate,
    KDTreeIndex,
    KDTreeMax,
    OrthogonalRangePredicate,
)
from repro.structures.circular import (
    CircularPredicate,
    LiftedCircularPrioritized,
    LiftedCircularMax,
)
from repro.structures.priority_search import PrioritySearchTree
from repro.structures.range1d import (
    RangePredicate1D,
    RangeTree1DPrioritized,
    RangeTree1DMax,
    RangeTree1DCounter,
)
from repro.structures.interval_stabbing import IntervalStabbingCounter
from repro.structures.range1d_dynamic import DynamicRangeTreap
from repro.structures.weight_suffix import (
    WeightSuffixPrioritized,
    em_halfspace_prioritized,
)
from repro.structures.persistent import PersistentTreap
from repro.structures.point_location import PLSegment, SlabPointLocation
from repro.structures.line_max import (
    LineAbovePointMax,
    LineAboveQuery,
    UpperHalfplanePointMax,
)

__all__ = [
    "StabbingPredicate",
    "SegmentTreeIntervalPrioritized",
    "StaticIntervalStabbingMax",
    "DynamicIntervalStabbingMax",
    "EnclosurePredicate",
    "RectanglePrioritized",
    "RectangleStabbingMax",
    "CascadedRectangleStabbingMax",
    "DominancePredicate",
    "DominancePrioritized",
    "DominanceMax",
    "HalfplanePredicate",
    "ConvexLayerReporting",
    "HalfplanePrioritized",
    "HalfplaneMax",
    "HalfspacePredicate",
    "Box",
    "OrthogonalRangePredicate",
    "KDTreeIndex",
    "KDTreeMax",
    "CircularPredicate",
    "LiftedCircularPrioritized",
    "LiftedCircularMax",
    "PrioritySearchTree",
    "RangePredicate1D",
    "RangeTree1DPrioritized",
    "RangeTree1DMax",
    "RangeTree1DCounter",
    "IntervalStabbingCounter",
    "DynamicRangeTreap",
    "WeightSuffixPrioritized",
    "em_halfspace_prioritized",
    "PersistentTreap",
    "PLSegment",
    "SlabPointLocation",
    "LineAbovePointMax",
    "LineAboveQuery",
    "UpperHalfplanePointMax",
]
