"""A fenced replicated top-k service that survives a network partition.

Three simulated machines serve one logical top-k index across a
seeded :class:`repro.net.NetworkFabric` — every WAL ship, lease
heartbeat, and resync crosses the (fault-injectable) network in a
typed envelope carrying an idempotency key:

1. the cluster runs **fenced**: the primary must renew a counted
   virtual-time lease against a quorum before acknowledging writes,
   and the commit epoch rides every envelope as a fencing token;
2. the primary is then cut off from both followers.  Its lease lapses
   and it *demotes itself to read-only*; the majority side elects a
   successor under a bumped epoch — after waiting out the old grant,
   so two leaseholders never coexist;
3. the deposed machine's stale-epoch traffic bounces off the fence,
   and once the partition heals its divergent tail is thrown away by
   a full resync — never spliced in by LSN;
4. the whole run is recorded as a Jepsen-style history and replayed
   through the offline checker: no acknowledged write lost, no
   unacknowledged write visible, every read the exact top-k.

Run:  python examples/partitioned_service.py
"""

import random

from repro.core.problem import Element
from repro.net import NetworkFabric, check_history, HistoryRecorder
from repro.replication import replicated_index
from repro.structures.range1d import RangePredicate1D
from repro.structures.range1d_dynamic import DynamicRangeTreap

LEASE_TTL = 48


def main() -> None:
    rng = random.Random(8)
    coords = rng.sample(range(100_000), 400)
    listings = [
        Element(float(c), float(i) + 0.5) for i, c in enumerate(coords[:300])
    ]
    arrivals = [
        Element(float(c), 300.0 + i) for i, c in enumerate(coords[300:])
    ]

    # ------------------------------------------------------------------
    # 1. Three machines, one fabric, fenced leases.
    # ------------------------------------------------------------------
    fabric = NetworkFabric(seed=8)
    cluster = replicated_index(
        listings, DynamicRangeTreap, DynamicRangeTreap,
        num_replicas=3, seed=4, B=16,
        fabric=fabric, lease_ttl=LEASE_TTL,
    )
    recorder = HistoryRecorder()
    print(f"cluster up (fenced, lease ttl {LEASE_TTL}): {cluster!r}")

    everything = RangePredicate1D(0.0, 100_000.0)
    acked = list(listings)

    def write(element: Element) -> None:
        op = recorder.invoke_insert(element)
        try:
            cluster.insert(element)
        except Exception as exc:  # Partitioned / Fenced: the write failed
            indeterminate = bool(getattr(exc, "indeterminate", False))
            (recorder.info if indeterminate else recorder.fail)(op)
            print(f"  write refused ({type(exc).__name__}): {exc}")
            return
        recorder.ok(op)
        acked.append(element)

    def read(k: int = 5) -> None:
        op = recorder.invoke_query(everything, k)
        answer = cluster.query(everything, k)
        recorder.ok(op, answer)
        print(f"  top-{k} weights: {[e.weight for e in answer]}")

    for element in arrivals[:10]:
        write(element)
    read()

    # ------------------------------------------------------------------
    # 2. Isolate the primary.  Lease lapses; the majority takes over.
    # ------------------------------------------------------------------
    old_primary = cluster.primary.name
    others = [r.name for r in cluster.replicas if r.name != old_primary]
    fabric.isolate(
        old_primary, others, start=fabric.now, end=fabric.now + 50 * LEASE_TTL
    )
    fabric.advance(LEASE_TTL + 1)
    print(f"\npartition: {old_primary} cut off from {others}")

    for element in arrivals[10:20]:
        write(element)
    deposed = next(r for r in cluster.replicas if r.name == old_primary)
    print(f"new primary: {cluster.primary.name} (epoch {cluster.commit_epoch})")
    print(f"deposed {old_primary}: role={deposed.role}, "
          f"lease expirations={cluster.stats.lease_expirations}")
    read()

    # ------------------------------------------------------------------
    # 3. Heal.  Stale traffic bounced; the divergent tail is resynced.
    # ------------------------------------------------------------------
    healed = fabric.heal()
    print(f"\nhealed {healed} links")
    for element in arrivals[20:30]:
        write(element)
    cluster.scrub(repair=True)
    read()
    print(f"fenced rejects: {fabric.stats.fenced_rejects}, "
          f"resyncs: {cluster.stats.resyncs}, "
          f"stale-epoch applies: {fabric.stats.stale_epoch_applies}")

    # ------------------------------------------------------------------
    # 4. The history checker has the last word.
    # ------------------------------------------------------------------
    result = check_history(recorder.events, listings)
    print(f"\nhistory: {result.ok_writes} acked, "
          f"{result.failed_writes} refused, "
          f"{result.indeterminate_writes} indeterminate, "
          f"{result.reads_checked} reads checked")
    assert result.ok, result.violations
    print("checker verdict: linearizable — no acked write lost, no "
          "phantom, every read exact")


if __name__ == "__main__":
    main()
