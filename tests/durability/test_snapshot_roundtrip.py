"""Snapshot round trips: build -> snapshot -> restore -> identical answers.

Every serializable structure must come back *bit-for-bit*: 50 seeded
queries agree exactly with the pre-snapshot index, and (for dynamic
structures) subsequent updates evolve both copies identically because
the RNG state travels with the snapshot.
"""

import random

import pytest

from toy import RangePredicate, ToyMax, ToyPrioritized, make_toy_elements
from repro.core.problem import Element
from repro.core.theorem1 import WorstCaseTopKIndex
from repro.core.theorem2 import ExpectedTopKIndex
from repro.durability.codec import flatten_state, unflatten_state
from repro.durability.snapshot import read_snapshot, write_snapshot
from repro.durability.store import DurableStore
from repro.geometry.primitives import Interval
from repro.resilience.errors import SerializationError
from repro.structures.interval_stabbing import (
    SegmentTreeIntervalPrioritized,
    StabbingPredicate,
    StaticIntervalStabbingMax,
)
from repro.structures.range1d import RangePredicate1D
from repro.structures.range1d_dynamic import DynamicRangeTreap

QUERIES = 50


def make_points(n, seed=0, universe=4000):
    rng = random.Random(seed)
    weights = rng.sample(range(10 * n), n)
    coords = rng.sample(range(universe), n)
    return [Element(coords[i], float(weights[i])) for i in range(n)]


def make_intervals(n, seed=0, universe=100):
    rng = random.Random(seed)
    weights = rng.sample(range(10 * n), n)
    out = []
    for i in range(n):
        a, b = sorted(rng.sample(range(universe), 2))
        out.append(Element(Interval(float(a), float(b)), float(weights[i])))
    return out


def through_disk(state):
    """Persist a state onto a disk, crash the machine, read it back.

    The reopened store has a cold cache, so every record really comes
    off the (simulated) platter.
    """
    store = DurableStore(B=8)
    entry = write_snapshot(store, state)
    store.flush()
    store.snapshots = [entry]
    store.commit_superblock()
    survivor = DurableStore.open(store.disk, B=8)
    assert survivor.snapshots == [entry]
    return read_snapshot(survivor, survivor.snapshots[0])


def range_queries(seed):
    rng = random.Random(seed)
    for _ in range(QUERIES):
        a, b = sorted((rng.uniform(-10, 4100), rng.uniform(-10, 4100)))
        yield a, b, rng.randint(1, 12)


class TestExpectedTopK:
    def build(self, n=300, seed=3):
        elements = make_toy_elements(n, seed=seed)
        return ExpectedTopKIndex(elements, ToyPrioritized, ToyMax, seed=seed), elements

    def test_restored_answers_match_bit_for_bit(self):
        index, _ = self.build()
        state = through_disk(index.snapshot_state())
        twin = ExpectedTopKIndex.restore(state, ToyPrioritized, ToyMax)
        assert twin.n == index.n
        for a, b, k in range_queries(11):
            assert twin.query(RangePredicate(a, b), k) == index.query(
                RangePredicate(a, b), k
            )

    def test_membership_survives(self):
        index, elements = self.build(n=60)
        twin = ExpectedTopKIndex.restore(
            unflatten_state(flatten_state(index.snapshot_state())),
            ToyPrioritized,
            ToyMax,
        )
        for element in elements:
            assert element in twin
        assert Element(99999, 1.0) not in twin

    def test_post_restore_updates_track_the_original(self):
        # The RNG state rides in the snapshot, so both copies make the
        # same sampling decisions for every subsequent update.
        index, _ = self.build(n=200)
        twin = ExpectedTopKIndex.restore(
            index.snapshot_state(), ToyPrioritized, ToyMax
        )
        fresh = make_toy_elements(40, seed=77, weight_offset=0.5)
        for element in fresh:
            index.insert(element)
            twin.insert(element)
        for element in fresh[::3]:
            index.delete(element)
            twin.delete(element)
        for a, b, k in range_queries(13):
            assert twin.query(RangePredicate(a, b), k) == index.query(
                RangePredicate(a, b), k
            )

    def test_wrong_format_rejected(self):
        index, _ = self.build(n=30)
        state = index.snapshot_state()
        state["format"] = "not-a-topk-snapshot"
        with pytest.raises(SerializationError, match="format"):
            ExpectedTopKIndex.restore(state, ToyPrioritized, ToyMax)

    def test_future_version_rejected(self):
        index, _ = self.build(n=30)
        state = index.snapshot_state()
        state["version"] = 99
        with pytest.raises(SerializationError, match="version"):
            ExpectedTopKIndex.restore(state, ToyPrioritized, ToyMax)


class TestWorstCaseTopK:
    def test_restored_answers_match_bit_for_bit(self):
        elements = make_toy_elements(300, seed=5)
        index = WorstCaseTopKIndex(elements, ToyPrioritized, seed=5)
        state = through_disk(index.snapshot_state())
        twin = WorstCaseTopKIndex.restore(state, ToyPrioritized)
        assert twin.n == index.n
        for a, b, k in range_queries(17):
            assert twin.query(RangePredicate(a, b), k) == index.query(
                RangePredicate(a, b), k
            )

    def test_coreset_hierarchy_is_reproduced(self):
        elements = make_toy_elements(220, seed=9)
        index = WorstCaseTopKIndex(elements, ToyPrioritized, seed=9)
        twin = WorstCaseTopKIndex.restore(index.snapshot_state(), ToyPrioritized)
        # The recorded level sets, not merely the answers, must match:
        # the restored index re-serializes to the identical state.
        assert twin.snapshot_state() == index.snapshot_state()


class TestDynamicRangeTreap:
    def test_restored_answers_match_bit_for_bit(self):
        treap = DynamicRangeTreap(make_points(250, seed=2), seed=2)
        state = through_disk(treap.snapshot_state())
        twin = DynamicRangeTreap.restore(state)
        assert twin.n == treap.n
        rng = random.Random(23)
        for _ in range(QUERIES):
            a, b = sorted((rng.uniform(-10, 4100), rng.uniform(-10, 4100)))
            p = RangePredicate1D(a, b)
            tau = rng.uniform(0, 2500)
            assert twin.query(p, tau).elements == treap.query(p, tau).elements
            assert twin.query(p) == treap.query(p)

    def test_post_restore_inserts_pick_identical_priorities(self):
        treap = DynamicRangeTreap(make_points(100, seed=4), seed=4)
        twin = DynamicRangeTreap.restore(treap.snapshot_state())
        for element in make_points(30, seed=41, universe=9000):
            treap.insert(element)
            twin.insert(element)
        # Identical priorities -> identical shapes -> identical states.
        assert twin.snapshot_state() == treap.snapshot_state()


class TestIntervalStructures:
    def test_segment_tree_round_trips(self):
        elements = make_intervals(180, seed=6)
        index = SegmentTreeIntervalPrioritized(elements)
        state = through_disk(index.snapshot_state())
        twin = SegmentTreeIntervalPrioritized.restore(state)
        rng = random.Random(29)
        for _ in range(QUERIES):
            p = StabbingPredicate(rng.uniform(-5, 105))
            tau = rng.uniform(0, 1200)
            assert twin.query(p, tau).elements == index.query(p, tau).elements

    def test_static_stabbing_max_round_trips(self):
        elements = make_intervals(180, seed=8)
        index = StaticIntervalStabbingMax(elements)
        state = through_disk(index.snapshot_state())
        twin = StaticIntervalStabbingMax.restore(state)
        rng = random.Random(31)
        for _ in range(QUERIES):
            p = StabbingPredicate(rng.uniform(-5, 105))
            assert twin.query(p) == index.query(p)
