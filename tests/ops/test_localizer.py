"""FaultLocalizer: scope canonicalization, absorption, severity order."""

from types import SimpleNamespace

from repro.ops.detector import Anomaly
from repro.ops.localizer import FaultLocalizer


def anomaly(kind, scope, tick=1):
    return Anomaly(
        tick=tick, kind=kind, scope=scope, metric="m", value=1.0, threshold=1.0
    )


def fake_cluster(*names):
    return SimpleNamespace(replicas=[SimpleNamespace(name=n) for n in names])


def fake_sharded(*names):
    return SimpleNamespace(
        router=SimpleNamespace(shards={n: object() for n in names})
    )


class TestCanonicalScope:
    def test_replica_signals_unify_with_machine_signals(self):
        localizer = FaultLocalizer(cluster=fake_cluster("replica-0", "replica-1"))
        blames = localizer.localize([
            anomaly("fault_spike", ("machine", "replica-1")),
            anomaly("replica_down", ("replica", "replica-1")),
        ])
        assert len(blames) == 1  # one sick machine, not two incidents
        assert blames[0].scope == ("machine", "replica-1")
        assert blames[0].kind == "replica_down"  # dominant by severity

    def test_shard_named_machine_collapses_to_shard(self):
        localizer = FaultLocalizer(sharded=fake_sharded("shard-0", "shard-1"))
        blames = localizer.localize([
            anomaly("machine_crash", ("machine", "shard-1")),
        ])
        assert blames[0].scope == ("shard", "shard-1")

    def test_replica_set_shard_machine_collapses_to_shard(self):
        localizer = FaultLocalizer(sharded=fake_sharded("shard-0"))
        blames = localizer.localize([
            anomaly("fault_spike", ("machine", "shard-0/r2")),
        ])
        assert blames[0].scope == ("shard", "shard-0")

    def test_unknown_labels_pass_through(self):
        localizer = FaultLocalizer()
        blames = localizer.localize([
            anomaly("fault_spike", ("machine", "mystery")),
        ])
        assert blames[0].scope == ("machine", "mystery")


class TestAbsorption:
    def test_rung_burst_corroborates_specific_blames(self):
        localizer = FaultLocalizer()
        blames = localizer.localize([
            anomaly("fault_spike", ("machine", "m")),
            anomaly("rung_burst", ("subsystem", "query")),
        ])
        assert len(blames) == 1
        assert blames[0].scope == ("machine", "m")
        assert {a.kind for a in blames[0].anomalies} == {
            "fault_spike", "rung_burst"
        }
        # Two corroborating kinds raise confidence above the floor.
        assert blames[0].confidence > 0.5

    def test_rung_burst_alone_surfaces_as_subsystem(self):
        localizer = FaultLocalizer()
        blames = localizer.localize([
            anomaly("rung_burst", ("subsystem", "query")),
        ])
        assert len(blames) == 1
        assert blames[0].scope == ("subsystem", "query")


class TestOrdering:
    def test_blames_sorted_most_severe_first(self):
        localizer = FaultLocalizer()
        blames = localizer.localize([
            anomaly("hot_shard", ("shard", "shard-3")),
            anomaly("machine_crash", ("machine", "m")),
        ])
        assert [b.kind for b in blames] == ["machine_crash", "hot_shard"]

    def test_empty_input_empty_output(self):
        assert FaultLocalizer().localize([]) == []
