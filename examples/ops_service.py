"""A replicated top-k service that heals itself from a flash fault.

A 3-replica cluster serves range top-k queries behind the resilience
guard while an :class:`~repro.ops.operator.Operator` ticks alongside —
collecting telemetry, detecting anomalies, localizing blame, and
pulling existing repair levers with post-mitigation verification.

The script injects a *flash brownout*: mid-workload, the primary's
disk starts charging heavy latency on every transfer.  No fault is
ever raised, so the cluster's reactive streak policy never sees it —
only the control plane can, via counted latency units in telemetry.
Watch the incident timeline: blame lands on the slow primary, the
gentle ``force_failover`` lever moves traffic off it, a follow-up
reboot clears the injected latency, queries stay oracle-exact
throughout, and the operator closes the incident only after verified
health plus a quiet period.

Run:  python examples/ops_service.py
"""

import random

from repro.core.problem import Element, top_k_of
from repro.ops import Operator
from repro.replication import replicated_index
from repro.resilience import FaultPlan
from repro.resilience.guard import GuardPolicy, ResilientTopKIndex
from repro.structures.range1d import RangePredicate1D
from repro.structures.range1d_dynamic import DynamicRangeTreap


def main() -> None:
    rng = random.Random(42)

    # Products with distinct popularity scores, indexed by price.
    n = 120
    prices = rng.sample(range(10_000), n + 40)
    scores = rng.sample(range(100_000), n + 40)
    catalog = [
        Element(float(prices[i]), float(scores[i])) for i in range(n)
    ]
    restock = [
        Element(float(prices[i]), float(scores[i])) for i in range(n, n + 40)
    ]

    # A 3-replica cluster; the primary carries a (disarmed) chaos plan.
    names = [f"replica-{i}" for i in range(3)]
    flash = FaultPlan(
        seed=9, read_latency=4, write_latency=4,
        armed=False, machine="replica-0",
    )
    plans = [flash] + [
        FaultPlan(seed=9 + i, armed=False, machine=name)
        for i, name in enumerate(names[1:], start=1)
    ]
    cluster = replicated_index(
        catalog, DynamicRangeTreap, DynamicRangeTreap,
        num_replicas=3, seed=5, names=names, fault_plans=plans,
    )
    guard = ResilientTopKIndex(
        cluster, elements=catalog, policy=GuardPolicy(seed=5)
    )

    # Probe workload the operator verifies mitigations against.
    probes = [
        (RangePredicate1D(float(lo), float(lo + 4_000)), k)
        for lo in range(0, 6_001, 1_500)
        for k in (3, 5)
    ]
    operator = Operator(guard=guard, probes=probes, elements=catalog)

    print("tick | event")
    print("-----+------------------------------------------------------------")
    for tick in range(1, 19):
        if tick == 4:
            flash.arm()
            print(f"{tick:4d} | !! flash brownout: replica-0 disk slows down")

        report = operator.tick()
        for incident in report.opened:
            print(f"{tick:4d} | incident #{incident.id} opened: "
                  f"{incident.scope[0]}:{incident.scope[1]} [{incident.kind}]")
        for action in report.actions:
            verdict = (
                "" if action.verified is None
                else " verified" if action.verified else " UNVERIFIED"
            )
            print(f"{tick:4d} | lever {action.lever} -> {action.target}: "
                  f"{action.outcome}{verdict}")
        for incident in report.resolved:
            print(f"{tick:4d} | incident #{incident.id} resolved "
                  f"(time-to-mitigate {incident.time_to_mitigate} ticks)")

        # Steady workload: writes + exact-checked queries.
        for _ in range(2):
            if restock:
                item = restock.pop(0)
                cluster.insert(item)
                catalog.append(item)
        for _ in range(6):
            predicate, k = probes[rng.randrange(len(probes))]
            assert guard.query(predicate, k) == top_k_of(catalog, predicate, k)

    print("-----+------------------------------------------------------------")
    print("incident log:")
    for line in operator.log.timeline():
        print(f"  {line}")
    alive = sum(r.alive for r in cluster.replicas)
    primary = cluster.replicas[cluster.primary_index].name
    assert not operator.log.open
    print(
        f"final state: {alive}/3 replicas alive, primary={primary}, "
        f"every answer matched the brute-force oracle"
    )


if __name__ == "__main__":
    main()
