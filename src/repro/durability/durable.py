"""`DurableTopKIndex`: crash-consistent persistence around any index.

The wrapper owns a :class:`~repro.durability.store.DurableStore` (with
its *own* EM context, so durability I/O is accounted separately from
the query path — health reports never double-count it) and follows the
standard protocol:

* **updates** are WAL-first: the op record is appended to the log
  buffer, then applied in memory; every ``commit_interval`` updates the
  group is committed (sealed blocks + flush).  A crash loses at most
  the current uncommitted group — never a committed one;
* **checkpoints** snapshot the inner index (``snapshot_state()``),
  flush, then atomically publish snapshot + truncated WAL via a
  superblock commit.  The two most recent snapshots are retained, so a
  crash *during* a checkpoint still recovers from the previous one;
* **recovery** (:meth:`DurableTopKIndex.recover`) mounts the surviving
  disk with a fresh context, runs the
  :func:`~repro.durability.recovery.recover_index` sequence, and
  re-checkpoints the recovered state as the new baseline.

Queries pass straight through (including keyword extras such as
Theorem 2's ``round_budget``), so the wrapper is drop-in wherever a
:class:`~repro.core.interfaces.TopKIndex` is expected — in particular
as a backend of
:class:`~repro.resilience.guard.ResilientTopKIndex`, which reports the
wrapper's recovery counters through its health summary.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.core.interfaces import TopKIndex
from repro.core.problem import Element, Predicate
from repro.durability.recovery import RecoveryResult, recover_index
from repro.durability.snapshot import write_snapshot
from repro.durability.store import DurableStore
from repro.durability.wal import OP_DELETE, OP_INSERT, WriteAheadLog
from repro.em.model import Disk, IOStats

STATE_KIND = "durable-topk"
SNAPSHOTS_RETAINED = 2


class DurableTopKIndex(TopKIndex):
    """Crash-consistent wrapper (see module docstring for the protocol).

    Parameters
    ----------
    inner:
        Any index exposing ``snapshot_state()`` (and ``insert`` /
        ``delete`` if updates are used).
    store:
        The durable store; a private one (private disk) by default.
    commit_interval:
        Group-commit size: every this-many updates, the WAL group is
        made durable.  ``1`` commits each update individually.
    checkpoint_now:
        Write the initial snapshot immediately (default) so the index
        is recoverable from the moment it exists.
    recovery:
        Set by :meth:`recover` — the :class:`RecoveryResult` describing
        how this instance came back.
    """

    def __init__(
        self,
        inner: TopKIndex,
        store: Optional[DurableStore] = None,
        commit_interval: int = 1,
        checkpoint_now: bool = True,
        recovery: Optional[RecoveryResult] = None,
    ) -> None:
        self.inner = inner
        self.store = store if store is not None else DurableStore()
        self.commit_interval = max(1, commit_interval)
        self.wal = WriteAheadLog(self.store)
        self._since_commit = 0
        self.recovery = recovery
        self.checkpoints = 0
        if checkpoint_now:
            self.checkpoint()

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self.inner.n

    @property
    def recovered(self) -> bool:
        """Whether this instance was produced by crash recovery."""
        return self.recovery is not None

    @property
    def durability_io(self) -> IOStats:
        """I/O spent on persistence — separate from the query path."""
        return self.store.ctx.stats

    def query(self, predicate: Predicate, k: int, **kwargs) -> List[Element]:
        return self.inner.query(predicate, k, **kwargs)

    def space_units(self) -> int:
        return self.inner.space_units()

    # ------------------------------------------------------------------
    # Updates (WAL-first)
    # ------------------------------------------------------------------
    def insert(self, element: Element) -> None:
        self.wal.append(OP_INSERT, element)
        try:
            self.inner.insert(element)
        except Exception:
            # The in-memory apply failed, so the (uncommitted) record
            # must not survive to replay against a state it never changed.
            self.wal.rollback_last()
            raise
        self._after_update()

    def delete(self, element: Element) -> None:
        self.wal.append(OP_DELETE, element)
        try:
            self.inner.delete(element)
        except Exception:
            self.wal.rollback_last()
            raise
        self._after_update()

    def _after_update(self) -> None:
        self._since_commit += 1
        if self._since_commit >= self.commit_interval:
            self.commit()

    def commit(self) -> int:
        """Force the pending WAL group to disk; returns records committed."""
        self._since_commit = 0
        return self.wal.commit()

    # ------------------------------------------------------------------
    # Checkpoint
    # ------------------------------------------------------------------
    def checkpoint(self) -> None:
        """Snapshot the index and atomically make it the recovery root.

        Ordering is load-bearing: the snapshot chain is flushed
        *before* the superblock commit publishes its entry, and the WAL
        is truncated in the same superblock commit — a crash at any
        point leaves either the old root (snapshot + old log) or the
        new root (snapshot + empty log) fully consistent.
        """
        self.commit()
        state = {
            "kind": STATE_KIND,
            "last_lsn": self.wal.last_lsn,
            "index": self.inner.snapshot_state(),
        }
        entry = write_snapshot(self.store, state)
        self.store.flush()  # barrier: data before the pointer to it
        self.store.snapshots = [entry, *self.store.snapshots][:SNAPSHOTS_RETAINED]
        self.wal.truncate()
        self.store.wal_head = self.wal.head
        self.store.commit_superblock()
        self.checkpoints += 1

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    @classmethod
    def recover(
        cls,
        disk: Disk,
        restore_fn: Callable[[dict], TopKIndex],
        build_fn: Optional[Callable[[List[Element]], TopKIndex]] = None,
        B: int = 16,
        M: Optional[int] = None,
        commit_interval: int = 1,
    ) -> "DurableTopKIndex":
        """Reboot from a surviving disk.

        Mounts the disk with a fresh context, runs the recovery
        sequence, and wraps the recovered index — re-checkpointing it
        immediately so the pre-crash log is retired and the recovered
        state becomes the new durable baseline.
        """
        store = DurableStore.open(disk, B=B, M=M)
        result = recover_index(store, restore_fn, build_fn)
        return cls(
            result.index,
            store=store,
            commit_interval=commit_interval,
            checkpoint_now=True,
            recovery=result,
        )


__all__ = ["DurableTopKIndex", "STATE_KIND", "SNAPSHOTS_RETAINED"]
