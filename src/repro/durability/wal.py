"""The write-ahead log: grouped commits, torn-tail-safe replay.

Update durability follows the classic WAL discipline, adapted to the
EM simulator's block granularity:

* every ``insert``/``delete`` first *appends* an ``("OP", lsn, op,
  element)`` record to an in-memory group buffer, then applies to the
  in-memory index;
* a **commit** seals the group — op records plus a ``("COMMIT",
  last_lsn, group_crc)`` marker — into *freshly allocated* chain
  blocks and flushes.  Blocks already sealed are never rewritten, so a
  torn write can only damage the group being committed, never one that
  was previously durable;
* **replay** walks the chain from the head recorded in the superblock,
  stops cleanly at the first unreadable block (the pre-allocated open
  tail on a clean shutdown; the torn block after a crash), and applies
  only *complete* groups — op records with no following valid COMMIT
  marker are discarded, exactly as an interrupted transaction should
  be;
* **truncation** (at checkpoint) simply starts a new chain; the old
  one is unreferenced once the superblock commit lands.

LSNs are global and never reused, so replay against a snapshot that
already contains a prefix of the log (``last_lsn`` in the snapshot
state) skips the duplicate records — replaying twice is a no-op.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.problem import Element
from repro.durability.codec import decode, encode
from repro.durability.store import DurableStore
from repro.em.model import stable_repr
from repro.resilience.errors import SnapshotIntegrityError

OP_INSERT = "insert"
OP_DELETE = "delete"
_CHAIN_KIND = "WAL"


def _group_crc(op_records: List[Tuple]) -> int:
    # stable_repr, not repr: group CRCs must agree across processes
    # (a follower verifies CRCs over groups a primary computed).
    return zlib.crc32(stable_repr(op_records).encode("utf-8", "backslashreplace"))


@dataclass(frozen=True)
class WALRecord:
    """One decoded, committed log record."""

    lsn: int
    op: str
    element: Element


class WriteAheadLog:
    """Appender side of the log (see module docstring for the format)."""

    def __init__(self, store: DurableStore, next_lsn: int = 1) -> None:
        self.store = store
        self.head = store.allocate()
        self._open = self.head
        self._next_seq = 0
        self.next_lsn = next_lsn
        self._pending: List[Tuple] = []
        self.records_appended = 0
        self.commits = 0
        self._chain_dirty = False
        # A group whose commit was interrupted by a *transient* write
        # fault: (records, resume offset).  The next commit() finishes
        # writing it before anything new — without this, the group
        # would be silently lost (its pending buffer is consumed the
        # moment commit() starts).
        self._inflight: Optional[Tuple[List[Tuple], int]] = None
        # Everything before this log's birth is, by definition, already
        # durable and applied (it lives in the snapshot the log extends).
        self.committed_lsn = next_lsn - 1
        self.applied_lsn = next_lsn - 1

    @property
    def last_lsn(self) -> int:
        """Highest LSN handed out so far (0 before the first append)."""
        return self.next_lsn - 1

    def note_applied(self, lsn: int) -> None:
        """Record that the in-memory index has absorbed ``lsn``.

        ``applied_lsn`` can trail ``committed_lsn`` on a replication
        follower (records shipped and durable, apply deferred); failover
        promotion replays exactly the ``(applied_lsn, committed_lsn]``
        tail before admitting writes.
        """
        if lsn > self.applied_lsn:
            self.applied_lsn = lsn

    @property
    def pending_records(self) -> int:
        """Appended-but-uncommitted records (lost if the machine dies)."""
        return len(self._pending)

    def append(self, op: str, element: Element) -> int:
        """Buffer one operation record; returns its LSN.

        The record is *not* durable until :meth:`commit` — group commit
        trades a bounded window of recent updates for one flush per
        group instead of per update.
        """
        lsn = self.next_lsn
        self.next_lsn += 1
        self._pending.append(("OP", lsn, op, encode(element)))
        self.records_appended += 1
        return lsn

    def rollback_last(self) -> None:
        """Drop the most recent uncommitted append (failed in-memory apply)."""
        if self._pending:
            self._pending.pop()
            self.next_lsn -= 1
            self.records_appended -= 1

    def commit(self) -> int:
        """Seal the pending group to disk; returns records committed.

        Writes the group into fresh chain blocks — the current
        pre-allocated open block first — each sealed with a header
        pointing at the *next* pre-allocated block, then flushes.  The
        final pointer designates the new open block: recovery reads it
        as unsealed and stops there, which is the normal end of log.
        """
        if self._inflight is not None:
            # Finish the group whose write-back faulted before anything
            # new: faulted frames are never dropped, so resuming at the
            # saved chunk re-attempts exactly the interrupted transfers.
            records, offset = self._inflight
            self._write_group(records, offset)
            self.committed_lsn = max(self.committed_lsn, records[-1][1])
            self._inflight = None
        if not self._pending:
            return 0
        ops = list(self._pending)
        self._pending.clear()
        records = ops + [("COMMIT", ops[-1][1], _group_crc(ops))]
        self._write_group(records, 0)
        self._inflight = None
        self.committed_lsn = ops[-1][1]
        return len(ops)

    def _write_group(self, records: List[Tuple], offset: int) -> None:
        """Write (or resume writing) one commit group into the chain.

        On a fault, the resume point is saved so a later :meth:`commit`
        can complete the group — chunks already sealed are never
        rewritten, keeping the chain replayable.
        """
        capacity = self.store.chain_capacity
        try:
            while offset < len(records):
                chunk = records[offset : offset + capacity]
                next_id = self.store.allocate()
                self.store.write_sealed(
                    self._open, [(_CHAIN_KIND, self._next_seq, next_id), *chunk]
                )
                offset += len(chunk)
                self._next_seq += 1
                self._open = next_id
            self.store.flush()
        except Exception:
            self._inflight = (records, offset)
            raise
        self.commits += 1
        self._chain_dirty = True

    def truncate(self) -> None:
        """Start a new, empty chain (checkpoint step; LSNs keep rising).

        The caller must publish :attr:`head` through a superblock
        commit; until then recovery still reads the old chain.  A chain
        nothing was ever committed to is reused as-is.
        """
        if not self._chain_dirty:
            return
        old_head = self.head
        self.head = self.store.allocate()
        self._open = self.head
        self._next_seq = 0
        self._chain_dirty = False
        # On a log-structured store the old chain's blocks re-enter
        # service once the superblock commit that stops referencing
        # them lands; the plain store just abandons them.
        self.store.retire_chain(old_head)


def read_committed(
    store: DurableStore, head: Optional[int], after_lsn: int = 0
) -> Tuple[List[List[WALRecord]], int]:
    """All complete committed groups of a chain, plus records discarded.

    Walks sealed blocks from ``head``; the first unreadable block —
    pre-allocated open tail, torn write, damaged seal, broken header —
    ends the log.  Trailing op records without a valid COMMIT marker
    (an interrupted group) are discarded and counted.

    ``after_lsn`` makes the read *incremental*: records with LSN
    ``<= after_lsn`` are filtered out without being decoded, and groups
    that fall entirely at or below the watermark are skipped.  This is
    the tail a replication follower fetches on every ship — calling
    again with the last LSN it acknowledged resumes exactly where the
    previous ship stopped, including across a torn tail (the torn group
    was never committed, so it is never shipped, and re-appears in a
    later read once its re-commit lands).  Group CRCs are verified over
    the *full* group regardless of the watermark.
    """
    if head is None:
        return [], 0
    raw: List[Tuple] = []
    block_id: Optional[int] = head
    expect_seq = 0
    while block_id is not None:
        try:
            payload = store.read_sealed(block_id)
        except SnapshotIntegrityError:
            break  # open tail or torn block: the log ends here
        if not payload:
            break
        header = payload[0]
        if not (
            isinstance(header, tuple)
            and len(header) == 3
            and header[0] == _CHAIN_KIND
            and header[1] == expect_seq
        ):
            break
        raw.extend(payload[1:])
        block_id = header[2]
        expect_seq += 1

    groups: List[List[WALRecord]] = []
    pending: List[Tuple] = []
    for record in raw:
        if not isinstance(record, tuple) or not record:
            break
        if record[0] == "OP" and len(record) == 4:
            pending.append(record)
        elif record[0] == "COMMIT" and len(record) == 3:
            _, marker_lsn, crc = record
            if (
                pending
                and marker_lsn == pending[-1][1]
                and crc == _group_crc(pending)
            ):
                if marker_lsn > after_lsn:
                    groups.append(
                        [
                            WALRecord(lsn, op, decode(enc))
                            for _, lsn, op, enc in pending
                            if lsn > after_lsn
                        ]
                    )
                pending = []
            else:
                # A commit marker that does not match its group means the
                # log is damaged beyond this point; stop conservatively.
                pending = []
                break
        else:
            break
    return groups, len(pending)


__all__ = [
    "WriteAheadLog",
    "WALRecord",
    "read_committed",
    "OP_INSERT",
    "OP_DELETE",
]
