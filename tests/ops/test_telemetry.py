"""TelemetryCollector: deltas, gauges, reset robustness, discovery."""

from repro.ops.telemetry import TelemetryCollector, _counter_delta
from repro.resilience.guard import HealthReport, HealthSummary

from ops_util import replicated_stack, sharded_stack


def report(**fields) -> HealthReport:
    fields.setdefault("attempts", 1)
    return HealthReport(**fields)


class TestCounterDelta:
    def test_monotone(self):
        assert _counter_delta(7, 3) == 4

    def test_reset_falls_back_to_current(self):
        # A reboot swaps in fresh stats; the delta must not go negative.
        assert _counter_delta(2, 10) == 2


class TestHealthSnapshotDelta:
    def test_delta_since_previous(self):
        health = HealthSummary()
        health.record(report())
        before = health.snapshot()
        health.record(report(transient_faults=1))
        delta = health.delta(before)
        assert delta["queries"] == 1
        assert delta["transient_faults"] == 1

    def test_delta_without_previous_is_totals(self):
        health = HealthSummary()
        health.record(report())
        assert health.delta(None)["queries"] == 1

    def test_delta_survives_reset(self):
        health = HealthSummary()
        health.record(report())
        health.record(report())
        before = health.snapshot()
        health.reset()
        health.record(report())
        # Totals went 2 -> 1; robust delta reports the post-reset count.
        assert health.delta(before)["queries"] == 1

    def test_snapshot_is_detached(self):
        health = HealthSummary()
        snap = health.snapshot()
        health.record(report())
        assert snap["queries"] == 0


class TestCollector:
    def test_discovers_cluster_from_guard(self):
        _, _, cluster, guard, _, _ = replicated_stack()
        collector = TelemetryCollector(guard=guard)
        assert collector.cluster is cluster
        sample = collector.collect(1)
        assert set(sample.machines) == {"replica-0", "replica-1", "replica-2"}
        assert sample.primary == "replica-0"
        assert all(sample.replicas_alive.values())

    def test_machine_counters_are_per_tick_deltas(self):
        elements, pool, cluster, guard, plan, probes = replicated_stack(
            read_fail_rate=0.5, write_fail_rate=0.5, seed=21,
            max_consecutive_faults=1000,
        )
        collector = TelemetryCollector(guard=guard)
        collector.collect(1)
        plan.arm()
        for element in pool[:4]:
            cluster.insert(element)
        faulted = collector.collect(2).machines["replica-0"].faults
        assert faulted > 0
        plan.disarm()
        # No I/O between samples: the delta returns to zero.
        assert collector.collect(3).machines["replica-0"].faults == 0

    def test_sharded_machines_are_labelled_by_shard(self):
        _, _, sharded, guard, _ = sharded_stack()
        collector = TelemetryCollector(guard=guard)
        assert collector.sharded is sharded
        sample = collector.collect(1)
        assert set(sample.machines) == set(sharded.router.shards)
        assert set(sample.shards_alive) == set(sharded.router.shards)
        assert not sample.topology_in_flux

    def test_durable_lag_gauge(self):
        elements, pool, cluster, guard, _, _ = replicated_stack()
        collector = TelemetryCollector(guard=guard)
        lag = collector.collect(1).replica_durable_lag
        assert set(lag) == {"replica-0", "replica-1", "replica-2"}
        assert all(value == 0 for value in lag.values())
