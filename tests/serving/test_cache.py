"""LSN/epoch-stamped result cache semantics (repro.serving.cache)."""

from __future__ import annotations

from repro.serving.cache import ResultCache


def put(cache, key, k, answer, epoch=0, lsn=0):
    cache.put(key, k, answer, epoch, lsn)


class TestHitAndPrefix:
    def test_fresh_hit_and_miss(self):
        cache = ResultCache(8)
        assert cache.get("p", 3, 0, 0) is None
        put(cache, "p", 3, ["a", "b", "c"])
        assert cache.get("p", 3, 0, 0) == ["a", "b", "c"]
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_prefix_served_from_larger_k(self):
        cache = ResultCache(8)
        put(cache, "p", 5, ["a", "b", "c", "d", "e"])
        assert cache.get("p", 2, 0, 0) == ["a", "b"]

    def test_smaller_k_entry_cannot_serve_larger_k(self):
        cache = ResultCache(8)
        put(cache, "p", 3, ["a", "b", "c"])
        assert cache.get("p", 5, 0, 0) is None
        assert cache.stats.short_misses == 1

    def test_exhausted_entry_covers_any_k(self):
        # Only 2 elements match: a k=5 answer of length 2 is the whole
        # result set, so it serves k=100 too.
        cache = ResultCache(8)
        put(cache, "p", 5, ["a", "b"])
        assert cache.get("p", 100, 0, 0) == ["a", "b"]

    def test_hit_returns_fresh_list(self):
        cache = ResultCache(8)
        put(cache, "p", 2, ["a", "b"])
        first = cache.get("p", 2, 0, 0)
        first.append("junk")
        assert cache.get("p", 2, 0, 0) == ["a", "b"]


class TestStalenessAndEpochs:
    def test_lsn_advance_within_bound_still_serves(self):
        cache = ResultCache(8)
        put(cache, "p", 2, ["a", "b"], epoch=0, lsn=10)
        assert cache.get("p", 2, 0, 12, max_staleness=2) == ["a", "b"]

    def test_lsn_advance_beyond_bound_invalidates(self):
        cache = ResultCache(8)
        put(cache, "p", 2, ["a", "b"], epoch=0, lsn=10)
        assert cache.get("p", 2, 0, 13, max_staleness=2) is None
        assert cache.stats.stale_misses == 1
        # The entry was dropped, not just skipped.
        assert cache.get("p", 2, 0, 10, max_staleness=0) is None

    def test_zero_staleness_requires_exact_lsn(self):
        cache = ResultCache(8)
        put(cache, "p", 2, ["a", "b"], epoch=0, lsn=10)
        assert cache.get("p", 2, 0, 11, max_staleness=0) is None

    def test_epoch_mismatch_invalidates_even_at_lower_lsn(self):
        # After a failover the new primary can sit at a LOWER LSN than
        # the stamp (the old primary's uncommitted tail died with it).
        # LSN arithmetic alone would call the entry "fresh from the
        # future"; the epoch catches it.
        cache = ResultCache(8)
        put(cache, "p", 2, ["a", "b"], epoch=0, lsn=10)
        assert cache.get("p", 2, 1, 7, max_staleness=1000) is None
        assert cache.stats.epoch_invalidations == 1

    def test_invalidate_clears_everything(self):
        cache = ResultCache(8)
        put(cache, "p", 2, ["a", "b"])
        put(cache, "q", 2, ["c", "d"])
        assert cache.invalidate() == 2
        assert cache.stats.invalidations == 2  # counts dropped entries
        assert cache.get("p", 2, 0, 0) is None
        assert cache.get("q", 2, 0, 0) is None


class TestReplacementPolicy:
    def test_lru_eviction_order(self):
        cache = ResultCache(2)
        put(cache, "a", 1, ["a"])
        put(cache, "b", 1, ["b"])
        assert cache.get("a", 1, 0, 0) == ["a"]  # refresh a
        put(cache, "c", 1, ["c"])                # evicts b
        assert cache.stats.evictions == 1
        assert cache.get("b", 1, 0, 0) is None
        assert cache.get("a", 1, 0, 0) == ["a"]
        assert cache.get("c", 1, 0, 0) == ["c"]

    def test_same_stamp_smaller_k_keeps_larger_entry(self):
        cache = ResultCache(8)
        put(cache, "p", 5, ["a", "b", "c", "d", "e"], lsn=4)
        put(cache, "p", 2, ["a", "b"], lsn=4)
        assert cache.get("p", 5, 0, 4) == ["a", "b", "c", "d", "e"]

    def test_newer_stamp_replaces(self):
        cache = ResultCache(8)
        put(cache, "p", 5, ["a", "b", "c", "d", "e"], lsn=4)
        put(cache, "p", 2, ["x", "y"], lsn=5)
        assert cache.get("p", 2, 0, 5) == ["x", "y"]
        assert cache.get("p", 5, 0, 5) is None  # larger answer gone

    def test_capacity_zero_disables(self):
        cache = ResultCache(0)
        assert not cache.enabled
        put(cache, "p", 1, ["a"])
        assert cache.get("p", 1, 0, 0) is None

    def test_hit_rate(self):
        cache = ResultCache(4)
        put(cache, "p", 1, ["a"])
        cache.get("p", 1, 0, 0)
        cache.get("q", 1, 0, 0)
        assert cache.stats.hit_rate == 0.5
