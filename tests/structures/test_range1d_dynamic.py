"""Tests for the dynamic weight-augmented range treap."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from oracles import oracle_max, oracle_prioritized, sorted_desc
from repro.core.problem import Element
from repro.structures.range1d import RangePredicate1D
from repro.structures.range1d_dynamic import DynamicRangeTreap


def make_points(n, seed=0, universe=4000):
    rng = random.Random(seed)
    weights = rng.sample(range(10 * n), n)
    coords = rng.sample(range(universe), n)
    return [Element(float(coords[i]), float(weights[i])) for i in range(n)]


def random_range(rng, universe=4000):
    a, b = sorted((rng.uniform(-10, universe + 10), rng.uniform(-10, universe + 10)))
    return RangePredicate1D(a, b)


class TestStaticQueries:
    def test_prioritized_matches_oracle(self):
        elements = make_points(300, 1)
        treap = DynamicRangeTreap(elements)
        rng = random.Random(2)
        for _ in range(80):
            p = random_range(rng)
            tau = rng.uniform(0, 3000)
            assert sorted_desc(treap.query(p, tau).elements) == oracle_prioritized(
                elements, p, tau
            )

    def test_max_matches_oracle(self):
        elements = make_points(300, 3)
        treap = DynamicRangeTreap(elements)
        rng = random.Random(4)
        for _ in range(100):
            p = random_range(rng)
            assert treap.query(p) == oracle_max(elements, p)

    def test_limit_truncation(self):
        elements = make_points(200, 5)
        treap = DynamicRangeTreap(elements)
        p = RangePredicate1D(-math.inf, math.inf)
        r = treap.query(p, -math.inf, limit=6)
        assert r.truncated and len(r.elements) == 7

    def test_empty(self):
        treap = DynamicRangeTreap()
        assert treap.n == 0
        assert treap.query(RangePredicate1D(0, 1), 0.0).elements == []
        assert treap.query(RangePredicate1D(0, 1)) is None

    def test_pruning_by_max_weight(self):
        """Subtrees below tau are never visited."""
        elements = make_points(2000, 6)
        treap = DynamicRangeTreap(elements)
        treap.ops.reset()
        top = max(e.weight for e in elements)
        result = treap.query(RangePredicate1D(-math.inf, math.inf), top - 0.5)
        assert len(result.elements) == 1
        assert treap.ops.node_visits <= 80  # << n


class TestUpdates:
    def test_insert_then_query(self):
        elements = make_points(200, 7)
        treap = DynamicRangeTreap(elements[:120], seed=1)
        current = elements[:120]
        for e in elements[120:]:
            treap.insert(e)
            current.append(e)
        rng = random.Random(8)
        for _ in range(40):
            p = random_range(rng)
            assert sorted_desc(treap.query(p, 0.0).elements) == oracle_prioritized(
                current, p, 0.0
            )
            assert treap.query(p) == oracle_max(current, p)

    def test_delete_then_query(self):
        elements = make_points(250, 9)
        treap = DynamicRangeTreap(elements, seed=2)
        current = list(elements)
        rng = random.Random(10)
        for _ in range(120):
            victim = current.pop(rng.randrange(len(current)))
            treap.delete(victim)
        assert treap.n == len(current)
        for _ in range(40):
            p = random_range(rng)
            assert treap.query(p) == oracle_max(current, p)

    def test_delete_missing_raises(self):
        treap = DynamicRangeTreap(make_points(20, 11))
        with pytest.raises(KeyError):
            treap.delete(Element(-123.0, 0.5))

    def test_size_tracks_updates(self):
        treap = DynamicRangeTreap()
        elements = make_points(60, 12)
        for i, e in enumerate(elements, 1):
            treap.insert(e)
            assert treap.n == i
        for i, e in enumerate(elements, 1):
            treap.delete(e)
            assert treap.n == 60 - i


class TestBalance:
    def test_expected_logarithmic_visits(self):
        elements = make_points(4000, 13)
        treap = DynamicRangeTreap(elements, seed=3)
        treap.ops.reset()
        treap.query(RangePredicate1D(1000.0, 1001.0), -math.inf)
        # A near-empty range costs two boundary paths.
        assert treap.ops.node_visits <= 8 * math.log2(4000)


@settings(max_examples=30, deadline=None)
@given(
    coords=st.lists(st.integers(0, 200), unique=True, min_size=1, max_size=60),
    a=st.integers(-5, 205),
    b=st.integers(-5, 205),
    tau_rank=st.floats(0, 1),
    seed=st.integers(0, 100),
)
def test_property_matches_oracles(coords, a, b, tau_rank, seed):
    rng = random.Random(seed)
    weights = rng.sample(range(10 * len(coords)), len(coords))
    elements = [Element(float(c), float(w)) for c, w in zip(coords, weights)]
    treap = DynamicRangeTreap(elements, seed=seed)
    p = RangePredicate1D(float(min(a, b)), float(max(a, b)))
    tau = tau_rank * 10 * len(coords)
    assert sorted_desc(treap.query(p, tau).elements) == oracle_prioritized(
        elements, p, tau
    )
    assert treap.query(p) == oracle_max(elements, p)
