"""One simulated machine of a replica set.

A :class:`Replica` owns the full vertical stack of an independent
machine: a private :class:`~repro.em.model.Disk` (labelled with the
replica's name), a :class:`~repro.resilience.faults.FaultPlan` scoped
to that disk, a :class:`~repro.durability.store.DurableStore` over a
fresh :class:`~repro.em.model.EMContext`, and a
:class:`~repro.durability.durable.DurableTopKIndex` wrapping the
in-memory index.  Nothing is shared between replicas — a fault plan
bound to one machine's disk can never fire on a sibling (the binding
is enforced by :meth:`FaultPlan.bind`), and each machine's I/O and
fault counters are attributed separately.

A replica is either the **primary** (accepts writes, ships its WAL) or
a **follower** (receives shipped groups, acknowledges with its own
durable commit, may defer the in-memory apply).  ``alive`` tracks
whether the machine is up; a dead machine's *disk* survives, which is
what the rebuild-from-durable-record rung and anti-entropy repair read.
"""

from __future__ import annotations

import zlib
from typing import Optional

from repro.core.interfaces import TopKIndex
from repro.durability.durable import DurableTopKIndex
from repro.durability.store import DurableStore
from repro.em.model import Disk, EMContext
from repro.resilience.errors import ReplicaUnavailable
from repro.resilience.faults import FaultPlan

ROLE_PRIMARY = "primary"
ROLE_FOLLOWER = "follower"


class Replica:
    """One machine: disk + fault plan + durable store + index.

    Parameters
    ----------
    name:
        The machine's label; also stamped on its disk and fault plan.
    inner:
        The in-memory index this machine serves.  All replicas of a set
        must be built *identically* (same elements, same seed) so their
        states stay bit-for-bit equal under op-lockstep replication.
    B / M:
        EM machine parameters of the durable store's context.
    commit_interval:
        Group-commit size of the machine's own WAL.
    fault_plan:
        The machine's chaos schedule; a disarmed plan labelled with the
        machine name is created when omitted.
    next_lsn:
        First LSN this machine's log will hand out — replicas joining
        an existing cluster (anti-entropy rebuilds) resume the cluster
        sequence instead of restarting at 1.
    """

    def __init__(
        self,
        name: str,
        inner: TopKIndex,
        B: int = 16,
        M: Optional[int] = None,
        commit_interval: int = 1,
        fault_plan: Optional[FaultPlan] = None,
        next_lsn: int = 1,
    ) -> None:
        self.name = name
        self.B = B
        self.M = M
        self.commit_interval = commit_interval
        if fault_plan is None:
            fault_plan = FaultPlan(armed=False, machine=name)
        elif not fault_plan.machine:
            fault_plan.machine = name
            fault_plan.stats.machine = name
        self.plan = fault_plan
        self.disk = Disk(label=name)
        ctx = EMContext(B=B, M=M, disk=self.disk, fault_plan=self.plan)
        self.store = DurableStore(ctx=ctx, B=B)
        self.durable = DurableTopKIndex(
            inner,
            store=self.store,
            commit_interval=commit_interval,
            next_lsn=next_lsn,
        )
        self.role = ROLE_FOLLOWER
        self.alive = True
        # Highest fencing epoch this machine has acknowledged.  A
        # fenced cluster stamps it on every accepted envelope; a
        # replica whose fence_epoch trails the cluster's commit epoch
        # has not yet rejoined the current regime and may neither serve
        # reads nor splice a divergent tail.
        self.fence_epoch = 0
        # Epoch of the last *log mutation* (ship, resync, promotion).
        # Distinct from fence_epoch on purpose: merely hearing the new
        # epoch (a lease heartbeat over a half-open link) proves
        # nothing about the log's content, and divergence decisions
        # must key off what the log actually received.
        self.log_epoch = 0

    # ------------------------------------------------------------------
    @classmethod
    def adopt(
        cls, name: str, durable: DurableTopKIndex, plan: Optional[FaultPlan] = None
    ) -> "Replica":
        """Wrap an already-built durable index (the reboot/recovery path).

        Used by the rebuild-from-durable-record rung: the durable index
        was produced by :meth:`DurableTopKIndex.recover` over a dead
        machine's surviving disk, and this constructor puts a fresh
        machine around it.  The old machine's fault plan died with the
        machine (a crashed plan refuses all further I/O); the new one is
        fresh and disarmed unless the caller supplies a schedule.
        """
        self = cls.__new__(cls)
        self.name = name
        self.B = durable.store.ctx.B
        self.M = durable.store.ctx.M
        self.commit_interval = durable.commit_interval
        self.plan = plan if plan is not None else FaultPlan(armed=False, machine=name)
        self.disk = durable.store.disk
        self.disk.label = name
        durable.store.ctx.attach_fault_plan(self.plan)
        self.store = durable.store
        self.durable = durable
        self.role = ROLE_FOLLOWER
        self.alive = True
        self.fence_epoch = 0
        self.log_epoch = 0
        return self

    # ------------------------------------------------------------------
    @property
    def is_primary(self) -> bool:
        return self.role == ROLE_PRIMARY

    @property
    def applied_lsn(self) -> int:
        """Highest LSN this machine's in-memory index has absorbed."""
        return self.durable.applied_lsn

    @property
    def durable_lsn(self) -> int:
        """Highest LSN durable on this machine's disk (its WAL ack)."""
        return self.durable.committed_lsn

    def require_alive(self) -> None:
        if not self.alive:
            raise ReplicaUnavailable(
                f"replica {self.name!r} is down", replica=self.name
            )

    def mark_dead(self) -> None:
        """Take the machine down (its disk survives for recovery)."""
        self.alive = False

    def state_digest(self) -> int:
        """CRC over the full in-memory state (RNG stream included).

        Replicas applying the same op sequence from the same build are
        bit-for-bit identical — queries never draw randomness, so the
        digest is stable across reads and only advances with updates.
        Anti-entropy compares digests *after* aligning applied LSNs.
        """
        state = self.durable.inner.snapshot_state()
        return zlib.crc32(repr(state).encode("utf-8", "backslashreplace"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Replica({self.name!r}, role={self.role}, alive={self.alive}, "
            f"applied={self.applied_lsn}, durable={self.durable_lsn})"
        )


__all__ = ["Replica", "ROLE_PRIMARY", "ROLE_FOLLOWER"]
