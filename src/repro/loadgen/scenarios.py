"""Scripted traffic scenarios, with and without the control plane.

Four scripts cover the overload families ROADMAP item 1 names, each a
:class:`LoadScenarioSpec` the :class:`LoadScenarioRunner` can build and
run end to end (sharded stack → engine → open-loop load → optional
operator ticking alongside):

``diurnal``
    A day/night sine around the base rate — the capacity-planning
    baseline; a correctly-sized static topology should hold its SLO
    through the peak.
``flash_crowd``
    The base rate spikes to a multiple for a window.  This is the
    autoscaling acceptance scenario: run it once with a static
    topology (p99 blows through the SLO while the crowd is in) and
    once with the operator's SLO rules + ``split_shard`` ladder armed
    (detection → scale-out → p99 back inside the SLO).
``hot_key_storm``
    Uniform traffic except a window where most requests collapse onto
    one predicate.  The result cache and batcher absorb almost all of
    it — the scenario that proves overload is about *distinct work*,
    not request count.
``fault_overlap``
    Constant rate while a shard machine's :class:`FaultPlan` injects
    read latency mid-run — a brownout *under load*.  The retry budget
    must keep shed-retry amplification bounded while the brownout
    ladder trades answer quality for capacity.

Every run is deterministic: seeded arrivals, seeded mixes, virtual-time
service (``pool_size=0`` engines), counted fault latency.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.problem import Element
from repro.loadgen.arrivals import (
    ConstantRate,
    DiurnalRate,
    FlashCrowdRate,
    OpenLoopSchedule,
)
from repro.loadgen.harness import LoadGenerator, LoadReport, ServiceModel
from repro.loadgen.workload import HotKeyStorm, ZipfMix
from repro.ops.detector import DetectorPolicy
from repro.ops.operator import Operator, OperatorPolicy
from repro.resilience.errors import InvalidConfiguration
from repro.resilience.guard import RetryBudget
from repro.serving.brownout import BrownoutPolicy
from repro.serving.engine import ServingEngine
from repro.sharding.sharded import sharded_index
from repro.structures.range1d import RangePredicate1D
from repro.structures.range1d_dynamic import DynamicRangeTreap

SHAPE_DIURNAL = "diurnal"
SHAPE_FLASH_CROWD = "flash_crowd"
SHAPE_HOT_KEY = "hot_key_storm"
SHAPE_FAULT_OVERLAP = "fault_overlap"

_SHAPES = (
    SHAPE_DIURNAL, SHAPE_FLASH_CROWD, SHAPE_HOT_KEY, SHAPE_FAULT_OVERLAP
)


@dataclass(frozen=True)
class LoadScenarioSpec:
    """One scripted load run (module docstring)."""

    name: str
    shape: str = SHAPE_FLASH_CROWD
    duration: float = 60.0
    tick: float = 1.0
    base_rate: float = 30.0
    spike: float = 5.0              # flash-crowd / storm multiplier
    window_start: float = 20.0      # crowd / storm / fault onset
    window_duration: float = 24.0
    deadline: Optional[float] = 2.0
    p99_slo: float = 1.0
    n_elements: int = 96
    num_shards: int = 2
    max_pending: int = 256
    max_batch: int = 32
    cache_capacity: int = 160
    pool_predicates: int = 96
    zipf_s: float = 0.9
    seed: int = 0
    # --- control-plane arms ---
    autoscale: bool = False         # operator with SLO rules + split ladder
    brownout: bool = False          # engine-side brownout ladder
    retry_ratio: Optional[float] = 0.1  # client retry budget (None: no retry)
    fault_latency: int = 6          # fault_overlap: injected read latency

    def __post_init__(self) -> None:
        if self.shape not in _SHAPES:
            raise InvalidConfiguration(
                f"shape must be one of {_SHAPES}, got {self.shape!r}"
            )
        if self.duration <= 0 or self.tick <= 0:
            raise InvalidConfiguration("duration and tick must be > 0")
        if self.num_shards < 1:
            raise InvalidConfiguration(
                f"num_shards must be >= 1, got {self.num_shards}"
            )


@dataclass
class LoadScenarioResult:
    """One run's report plus the control-plane trace."""

    spec: LoadScenarioSpec
    report: LoadReport
    levers: List[str] = field(default_factory=list)
    incidents: int = 0
    final_shards: int = 0
    brownout_escalations: int = 0

    @property
    def slo_met(self) -> bool:
        return self.report.latency.p99 <= self.spec.p99_slo

    def summary(self) -> Dict[str, float]:
        out = self.report.summary()
        out.update({
            "slo": self.spec.p99_slo,
            "slo_met": float(self.slo_met),
            "incidents": float(self.incidents),
            "levers": float(len(self.levers)),
            "final_shards": float(self.final_shards),
        })
        return out


class LoadScenarioRunner:
    """Build the stack a spec describes and run its traffic script."""

    #: Scenario-scale service model.  The result cache is keyed by
    #: predicate and prefix-closed, so a Zipf pool is fully cached
    #: after warmup — the scarce resource under load is per-request
    #: overhead (routing, scoring, serialization), which a hit still
    #: pays (``hit_cost``), with a backend scatter-gather traversal 5x
    #: dearer.  Calibrated so a 2-shard topology comfortably serves
    #: the default base rates but saturates well below the flash-crowd
    #: peak — the regime where admission, brownout, and scale-out have
    #: observable work to do.
    DEFAULT_MODEL_ARGS = dict(
        unit_time=0.01,
        traversal_cost=6.0,
        hit_cost=1.2,
        latency_unit_cost=0.25,
        batch_overhead=1.0,
    )

    def __init__(self, model: Optional[ServiceModel] = None) -> None:
        self.model = (
            model
            if model is not None
            else ServiceModel(**self.DEFAULT_MODEL_ARGS)
        )

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    @staticmethod
    def _make_elements(n: int, seed: int) -> List[Element]:
        rng = random.Random(seed)
        weights = rng.sample(range(10 * n), n)
        positions = rng.sample(range(10 * n), n)
        return [
            Element(float(positions[i]), float(weights[i])) for i in range(n)
        ]

    @staticmethod
    def _probe_pool(
        elements: List[Element], count: int, seed: int
    ) -> List[RangePredicate1D]:
        rng = random.Random(seed + 7)
        span = int(max(e.obj for e in elements)) + 10
        pool = []
        for _ in range(count):
            lo = rng.randrange(-5, span)
            hi = rng.randrange(lo, span + 5)
            pool.append(RangePredicate1D(float(lo), float(hi)))
        return pool

    def _schedule(self, spec: LoadScenarioSpec) -> OpenLoopSchedule:
        if spec.shape == SHAPE_DIURNAL:
            rate = DiurnalRate(
                base=spec.base_rate,
                amplitude=min(0.9, (spec.spike - 1.0) / (spec.spike + 1.0)),
                period=spec.duration,
            )
        elif spec.shape == SHAPE_FLASH_CROWD:
            rate = FlashCrowdRate(
                base=spec.base_rate, spike=spec.spike,
                start=spec.window_start, duration=spec.window_duration,
            )
        else:
            # Hot-key storms and fault overlaps stress the *service*,
            # not the arrival shape: constant offered rate.
            rate = ConstantRate(spec.base_rate)
        return OpenLoopSchedule(rate, seed=spec.seed, jitter=0.1)

    def _mix(self, spec: LoadScenarioSpec, pool: List[RangePredicate1D]):
        base = ZipfMix(pool, s=spec.zipf_s, k_range=(1, 8), seed=spec.seed)
        if spec.shape == SHAPE_HOT_KEY:
            return HotKeyStorm(
                base, hot=pool[0],
                start=spec.window_start, duration=spec.window_duration,
                hot_fraction=min(0.95, 1.0 - 1.0 / max(2.0, spec.spike)),
                seed=spec.seed,
            )
        return base

    def build(self, spec: LoadScenarioSpec):
        """The live stack: (elements, sharded, engine, loadgen, operator)."""
        elements = self._make_elements(spec.n_elements, spec.seed)
        pool = self._probe_pool(elements, spec.pool_predicates, spec.seed)
        sharded = sharded_index(
            elements, DynamicRangeTreap, DynamicRangeTreap,
            num_shards=spec.num_shards, strategy="range", seed=spec.seed,
        )
        brownout_policy = (
            BrownoutPolicy(
                queue_high=max(8, spec.max_pending // 8),
                queue_low=max(2, spec.max_pending // 32),
                sustain_drains=2,
                recover_drains=3,
                staleness_budget=64,
                k_cap=3,
            )
            if spec.brownout
            else None
        )
        engine = ServingEngine(
            sharded,
            cache_capacity=spec.cache_capacity,
            max_staleness=0,
            max_batch=spec.max_batch,
            max_pending=spec.max_pending,
            pool_size=0,               # serial dispatch: deterministic
            brownout=brownout_policy,
        )
        retry_budget = (
            RetryBudget(ratio=spec.retry_ratio, burst=8.0)
            if spec.retry_ratio is not None
            else None
        )
        loadgen = LoadGenerator(
            engine,
            schedule=self._schedule(spec),
            mix=self._mix(spec, pool),
            model=self.model,
            deadline=spec.deadline,
            retry_budget=retry_budget,
            elements=elements,
            exact_check_rate=0.2,
            seed=spec.seed,
            name=spec.name,
        )
        operator = None
        if spec.autoscale:
            probes = [
                (p, 1 + (i % 8)) for i, p in enumerate(pool)
            ]
            operator = Operator(
                sharded=sharded,
                engine=engine,
                probes=probes,
                elements=elements,
                policy=OperatorPolicy(
                    cooldown_ticks=1, clear_ticks=2, verify_probes=4,
                    max_rungs=8, seed=spec.seed,
                ),
                detector_policy=DetectorPolicy(
                    p99_slo=spec.p99_slo,
                    queue_growth_ticks=2,
                    queue_growth_min=max(8, spec.max_pending // 16),
                    shed_rate_ratio=0.05,
                    shed_rate_min_sheds=2,
                    queue_depth_max=spec.max_pending // 2,
                    # Wall-clock service latency is noise here — the
                    # virtual-time harness measures its own latency.
                    latency_floor=1e9,
                ),
                latency_source=loadgen.window_summary,
            )
        return elements, sharded, engine, loadgen, operator

    # ------------------------------------------------------------------
    def run(self, spec: LoadScenarioSpec) -> LoadScenarioResult:
        elements, sharded, engine, loadgen, operator = self.build(spec)
        fault_plan = None
        if spec.shape == SHAPE_FAULT_OVERLAP:
            # Arm injected read latency on the first shard's machine for
            # the scripted window: a brownout under sustained load.
            first = sorted(sharded.router.shards)[0]
            machine = sharded.router.shards[first].machine
            fault_plan = machine.plan if machine is not None else None

        def on_tick(point: Dict[str, float]) -> None:
            now = point["time"]
            if fault_plan is not None:
                in_window = (
                    spec.window_start
                    <= now
                    < spec.window_start + spec.window_duration
                )
                if in_window and not fault_plan.armed:
                    fault_plan.read_latency = spec.fault_latency
                    fault_plan.arm()
                elif not in_window and fault_plan.armed:
                    fault_plan.disarm()
                    fault_plan.read_latency = 0
            if operator is not None:
                operator.tick()

        report = loadgen.run(
            duration=spec.duration, tick=spec.tick, on_tick=on_tick
        )
        result = LoadScenarioResult(
            spec=spec,
            report=report,
            final_shards=sharded.router.num_shards,
        )
        if operator is not None:
            result.incidents = len(operator.log.incidents)
            result.levers = [
                m.lever
                for incident in operator.log.incidents
                for m in incident.mitigations
                if m.lever != "(deferred)"
            ]
        if engine.brownout is not None:
            result.brownout_escalations = engine.brownout.stats.escalations
        return result

    def flash_crowd_comparison(
        self, spec: LoadScenarioSpec
    ) -> Tuple[LoadScenarioResult, LoadScenarioResult]:
        """The acceptance pair: static topology vs autoscaled + brownout.

        Same seed, same arrivals, same mix — the only difference is the
        control plane (operator SLO rules + split ladder, engine
        brownout).  Returns ``(static, autoscaled)``.
        """
        from dataclasses import replace

        static = self.run(replace(
            spec, name=f"{spec.name}-static", autoscale=False, brownout=False,
        ))
        scaled = self.run(replace(
            spec, name=f"{spec.name}-autoscaled", autoscale=True, brownout=True,
        ))
        return static, scaled


DEFAULT_LOAD_SCENARIOS: Tuple[LoadScenarioSpec, ...] = (
    LoadScenarioSpec(
        name="diurnal-cycle", shape=SHAPE_DIURNAL,
        base_rate=20.0, spike=2.0, duration=60.0, seed=11,
    ),
    LoadScenarioSpec(
        name="flash-crowd", shape=SHAPE_FLASH_CROWD,
        base_rate=25.0, spike=8.0,
        window_start=10.0, window_duration=16.0,
        duration=40.0, tick=0.25, seed=22,
    ),
    LoadScenarioSpec(
        name="hot-key-storm", shape=SHAPE_HOT_KEY,
        base_rate=40.0, spike=5.0,
        window_start=20.0, window_duration=20.0,
        duration=56.0, seed=33,
    ),
    LoadScenarioSpec(
        name="fault-overlap", shape=SHAPE_FAULT_OVERLAP,
        base_rate=110.0, fault_latency=6,
        window_start=16.0, window_duration=24.0,
        duration=56.0, seed=44, brownout=True,
    ),
)


__all__ = [
    "LoadScenarioSpec",
    "LoadScenarioResult",
    "LoadScenarioRunner",
    "DEFAULT_LOAD_SCENARIOS",
    "SHAPE_DIURNAL",
    "SHAPE_FLASH_CROWD",
    "SHAPE_HOT_KEY",
    "SHAPE_FAULT_OVERLAP",
]
