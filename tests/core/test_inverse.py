"""Tests for the inverse reduction (prioritized from top-k)."""

import math
import random

from oracles import oracle_prioritized, sorted_desc
from repro.core.inverse import PrioritizedFromTopK
from repro.core.theorem2 import ExpectedTopKIndex
from toy import RangePredicate, ToyMax, ToyPrioritized, make_toy_elements


class ListTopK:
    """A minimal exact top-k index for driving the inverse reduction."""

    def __init__(self, elements):
        self._sorted = sorted(elements, key=lambda e: -e.weight)
        self.calls = 0

    @property
    def n(self):
        return len(self._sorted)

    def query(self, predicate, k):
        self.calls += 1
        out = []
        for element in self._sorted:
            if predicate.matches(element.obj):
                out.append(element)
                if len(out) == k:
                    break
        return out


def random_predicate(rng, n):
    a, b = sorted((rng.uniform(0, 10 * n), rng.uniform(0, 10 * n)))
    return RangePredicate(a, b)


class TestCorrectness:
    def test_matches_oracle(self):
        elements = make_toy_elements(300, 1)
        inv = PrioritizedFromTopK(ListTopK(elements))
        rng = random.Random(2)
        for _ in range(40):
            p = random_predicate(rng, 300)
            tau = rng.uniform(0, 3000)
            got = sorted_desc(inv.query(p, tau).elements)
            assert got == oracle_prioritized(elements, p, tau)

    def test_tau_minus_infinity_reports_all(self):
        elements = make_toy_elements(120, 3)
        inv = PrioritizedFromTopK(ListTopK(elements))
        p = RangePredicate(-1, math.inf)
        result = inv.query(p, -math.inf)
        assert len(result.elements) == 120

    def test_empty_match(self):
        elements = make_toy_elements(50, 4)
        inv = PrioritizedFromTopK(ListTopK(elements))
        result = inv.query(RangePredicate(-10, -5), 0.0)
        assert result.elements == [] and not result.truncated

    def test_limit_truncation(self):
        elements = make_toy_elements(200, 5)
        inv = PrioritizedFromTopK(ListTopK(elements))
        p = RangePredicate(-1, math.inf)
        result = inv.query(p, -math.inf, limit=7)
        assert result.truncated
        assert len(result.elements) == 8

    def test_doubling_call_count_is_logarithmic(self):
        elements = make_toy_elements(1000, 6)
        topk = ListTopK(elements)
        inv = PrioritizedFromTopK(topk, B=2)
        inv.query(RangePredicate(-1, math.inf), -math.inf)
        assert topk.calls <= math.ceil(math.log2(1000)) + 2


class TestRoundTrip:
    def test_topk_to_prioritized_to_equivalence(self):
        """Theorem 2 index -> inverse reduction == direct prioritized."""
        elements = make_toy_elements(250, 7)
        topk = ExpectedTopKIndex(elements, ToyPrioritized, ToyMax, seed=1)
        inv = PrioritizedFromTopK(topk)
        rng = random.Random(8)
        for _ in range(15):
            p = random_predicate(rng, 250)
            tau = rng.uniform(0, 2500)
            got = sorted_desc(inv.query(p, tau).elements)
            assert got == oracle_prioritized(elements, p, tau)
