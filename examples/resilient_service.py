"""A top-k query service that survives a misbehaving disk.

The EM machine is configured for chaos: 8% of block reads fail
transiently and 2% arrive corrupted (caught by per-block checksums).
:func:`repro.resilience.resilient_index` wraps the paper's reductions
in a degradation ladder — Theorem 2, then Theorem 1, then a host-memory
scan — with bounded retry and seeded answer spot-checks, so every query
still returns the *exact* top-k, and a :class:`HealthReport` says what
it took.

The second half makes the service *durable*: live offers are ingested
through a write-ahead log, a ``Ctrl-C`` (KeyboardInterrupt) triggers a
checkpoint-on-shutdown, and the "restarted" service recovers from the
surviving disk and proves it lost nothing.

Run:  python examples/resilient_service.py
"""

import random

from repro import Element, GuardPolicy, resilient_index
from repro.core.problem import top_k_of
from repro.core.theorem2 import ExpectedTopKIndex
from repro.durability import DurableTopKIndex
from repro.em.model import EMContext
from repro.geometry.primitives import Interval
from repro.resilience import FaultPlan
from repro.resilience.guard import ResilientTopKIndex
from repro.structures.interval_stabbing import (
    SegmentTreeIntervalPrioritized,
    StabbingPredicate,
    StaticIntervalStabbingMax,
)


def main(interrupt_after: int = 12) -> None:
    rng = random.Random(11)

    # Weighted intervals again: offers with scores, queried by a point.
    data = []
    for score in rng.sample(range(50_000), 2_000):
        center = rng.uniform(0, 1_000)
        half = rng.uniform(1, 60)
        data.append(Element(Interval(center - half, center + half), float(score)))

    # A chaos-configured EM machine.  Attaching a corrupting plan
    # auto-enables per-block checksums, so bad reads are *detected*
    # (CorruptBlockError) instead of silently served.
    ctx = EMContext(B=16, M=16 * 16)
    ctx.attach_fault_plan(FaultPlan(seed=3, read_fail_rate=0.08, corrupt_rate=0.02))

    guard = resilient_index(
        data,
        lambda subset: SegmentTreeIntervalPrioritized(subset, ctx=ctx),
        lambda subset: StaticIntervalStabbingMax(subset, ctx=ctx),
        policy=GuardPolicy(max_attempts=4, spot_check_rate=0.2, seed=1),
        ctx=ctx,
        B=ctx.B,
        seed=7,
    )
    print("Degradation ladder:", " -> ".join(guard.rung_names()))

    for x in (125.0, 500.0, 875.0):
        predicate = StabbingPredicate(x)
        answer, report = guard.query_with_report(predicate, 5)
        assert answer == top_k_of(data, predicate, 5)  # exact, despite chaos
        status = "degraded" if report.degraded else "healthy"
        print(
            f"x={x:5.0f}: top-5 scores {[int(e.weight) for e in answer]}  "
            f"[{status}: {report.attempts} attempt(s), "
            f"{report.transient_faults} fault(s), answered by {report.answered_by}]"
        )

    # A burst of queries, then the service health roll-up.
    for _ in range(60):
        predicate = StabbingPredicate(rng.uniform(0, 1_000))
        assert guard.query(predicate, 5) == top_k_of(data, predicate, 5)

    s = guard.health
    faults = ctx.fault_plan.stats
    print(
        f"\nServed {s.queries} queries over {faults.reads_seen} faulted-path reads:"
    )
    print(f"  transient faults survived : {s.transient_faults}")
    print(f"  corrupt blocks caught     : {s.corrupt_blocks}")
    print(f"  retries / backoff units   : {s.retries} / {s.backoff_units:.0f}")
    print(f"  spot-checks (failures)    : {s.spot_checks} ({s.spot_check_failures})")
    print(f"  degraded queries          : {s.degraded_queries} of {s.queries}")
    print("\nEvery answer matched the brute-force oracle. ✓")

    # ------------------------------------------------------------------
    # Part two: the durable service.  Same reduction, this time wrapped
    # in a DurableTopKIndex: every ingest is WAL-logged (group commit of
    # 4), and shutdown checkpoints whatever is still in flight.
    # ------------------------------------------------------------------
    # RAM-mode structures here: EM-mode segment trees are static, and
    # the ingest loop needs dynamic updates.  The durable bytes live on
    # the DurableStore's own simulated disk either way.
    def prioritized(subset):
        return SegmentTreeIntervalPrioritized(subset)

    def maxi(subset):
        return StaticIntervalStabbingMax(subset)

    service = DurableTopKIndex(
        ExpectedTopKIndex(data, prioritized, maxi, B=16, seed=7),
        commit_interval=4,
    )

    fresh = []
    for i, score in enumerate(rng.sample(range(50_000), 200)):
        center = rng.uniform(0, 1_000)
        half = rng.uniform(1, 60)
        fresh.append(Element(Interval(center - half, center + half), score + 0.5))

    ingested = 0
    try:
        for offer in fresh:
            service.insert(offer)
            ingested += 1
            if ingested == interrupt_after:
                # A real Ctrl-C during the loop lands in the same handler.
                raise KeyboardInterrupt
    except KeyboardInterrupt:
        # Graceful shutdown: commit the pending WAL group and snapshot,
        # so the uncommitted tail of the last group is not lost either.
        service.checkpoint()
        print(
            f"\nInterrupted after {ingested} ingests — checkpointed on "
            f"shutdown (snapshot #{service.store.snapshots[0].snapshot_id}, "
            f"WAL retired)."
        )

    # "Restart": recover the service from the surviving disk alone.
    revived = DurableTopKIndex.recover(
        service.store.disk,
        restore_fn=lambda state: ExpectedTopKIndex.restore(state, prioritized, maxi),
        build_fn=lambda elems: ExpectedTopKIndex(
            elems, prioritized, maxi, B=16, seed=7
        ),
    )
    catalogue = data + fresh[:ingested]
    for x in (125.0, 500.0, 875.0):
        predicate = StabbingPredicate(x)
        assert revived.query(predicate, 5) == top_k_of(catalogue, predicate, 5)

    guard2 = ResilientTopKIndex(revived, elements=catalogue)
    print(
        f"Recovered from disk: {revived.n} offers "
        f"(snapshot #{revived.recovery.snapshot_id}, "
        f"{revived.recovery.wal_records_replayed} WAL records replayed, "
        f"audit {'ok' if revived.recovery.audit.ok else 'FAILED'}; "
        f"health reports {guard2.health.recoveries} recovery)."
    )
    print("The restarted service lost nothing. ✓")


if __name__ == "__main__":
    main()
