"""LSN-versioned result cache: hot answers become O(1), never stale-unsafe.

Every cached answer is stamped with the **read stamp** current when it
was computed: ``(commit_epoch, applied LSN)`` of the serving backend
(see :meth:`repro.durability.durable.DurableTopKIndex.read_stamp` and
:meth:`repro.replication.cluster.ReplicaSet.read_stamp`).  A lookup
carries the *current* stamp plus the caller's staleness budget, and an
entry may serve only when

* its epoch equals the current epoch — a failover promotion or a
  rebuild-from-durable-record bumps the epoch, because a new primary
  may never have seen updates the old one had applied (uncommitted
  tail loss), so pre-promotion answers cannot be trusted at *any* LSN
  comparison; and
* ``current_lsn - entry_lsn <= max_staleness`` — the same contract the
  replication read modes give a lagging follower, now applied to a
  cached answer.  ``max_staleness=0`` means cached answers are exactly
  as fresh as the primary's applied state.

Entries are keyed by predicate (via
:func:`repro.serving.batch.predicate_key`) and store the answer of the
largest ``k`` served so far.  Because top-k answers are prefix-closed,
one entry serves every smaller ``k`` by slicing; a request for a larger
``k`` is a miss unless the entry is *exhausted* (the predicate has
fewer matches than the entry's ``k``, so the entry already holds the
complete match list).  Eviction is LRU with a bounded capacity.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, List, Optional

from repro.core.problem import Element


@dataclass
class CacheStats:
    """Counters for hit-rate and invalidation accounting."""

    lookups: int = 0
    hits: int = 0
    misses: int = 0
    stale_misses: int = 0        # right epoch, LSN beyond the staleness bound
    epoch_invalidations: int = 0  # entry from a pre-promotion epoch
    short_misses: int = 0        # entry too small for the requested k
    insertions: int = 0
    evictions: int = 0
    invalidations: int = 0       # entries dropped by invalidate()

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass
class _Entry:
    epoch: int
    lsn: int
    k: int                      # the k the answer was computed for
    answer: List[Element]       # heaviest first; len < k means exhausted

    @property
    def exhausted(self) -> bool:
        return len(self.answer) < self.k

    def covers(self, k: int) -> bool:
        return k <= self.k or self.exhausted


class ResultCache:
    """Bounded LRU of LSN-stamped top-k answers (module docstring)."""

    def __init__(self, capacity: int = 1024) -> None:
        self.capacity = max(0, capacity)
        self._entries: "OrderedDict[Hashable, _Entry]" = OrderedDict()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    # ------------------------------------------------------------------
    def get(
        self,
        key: Hashable,
        k: int,
        epoch: int,
        current_lsn: int,
        max_staleness: int = 0,
    ) -> Optional[List[Element]]:
        """The cached top-``k`` answer, or ``None`` on any miss.

        A hit is returned as a fresh list (prefix of the stored
        answer); the stored entry is never aliased to callers.
        """
        self.stats.lookups += 1
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        if entry.epoch != epoch:
            # Pre-promotion answers are unconditionally untrusted.
            del self._entries[key]
            self.stats.epoch_invalidations += 1
            self.stats.misses += 1
            return None
        if current_lsn - entry.lsn > max_staleness:
            del self._entries[key]
            self.stats.stale_misses += 1
            self.stats.misses += 1
            return None
        if not entry.covers(k):
            self.stats.short_misses += 1
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry.answer[:k]

    def put(
        self,
        key: Hashable,
        k: int,
        answer: List[Element],
        epoch: int,
        lsn: int,
    ) -> None:
        """Stamp and store one answer; keeps the most useful entry per key.

        A fresher stamp always replaces an older one.  At an equal
        stamp the larger-``k`` answer wins (it serves strictly more
        future requests by prefix).
        """
        if not self.enabled or k <= 0:
            return
        existing = self._entries.get(key)
        if existing is not None:
            same_stamp = (existing.epoch, existing.lsn) == (epoch, lsn)
            if same_stamp and existing.covers(k):
                self._entries.move_to_end(key)
                return
        self._entries[key] = _Entry(epoch=epoch, lsn=lsn, k=k, answer=list(answer))
        self._entries.move_to_end(key)
        self.stats.insertions += 1
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def invalidate(self) -> int:
        """Drop everything (manual epoch change, schema change...)."""
        dropped = len(self._entries)
        self._entries.clear()
        self.stats.invalidations += dropped
        return dropped


__all__ = ["ResultCache", "CacheStats"]
