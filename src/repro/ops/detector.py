"""Streaming anomaly detection over the telemetry time series.

The :class:`AnomalyDetector` consumes one :class:`TelemetrySample` per
tick and emits :class:`Anomaly` records.  Every rule is deterministic —
fixed thresholds plus EWMA baselines over simulated ticks, no wall
clock, no RNG — so a fixed (workload, fault plan) pair reproduces the
identical anomaly stream.  The rule set mirrors the failure modes PRs
1–5 made injectable:

``fault_spike``
    A machine's per-tick fault delta exceeds both an absolute floor and
    a multiple of its EWMA baseline — the signature of a fault storm.
``corruption_drip``
    A machine's corruption count over a sliding window of ticks crosses
    a cumulative floor, with fresh corruption this tick — slow-drip bit
    rot that per-tick thresholds would never see.
``machine_crash``
    A machine recorded a crash this tick.
``replica_down`` / ``shard_down``
    Aliveness gauges: a cluster replica or a shard machine is dead.
``lag_growth``
    A replica's *durable* lag (missed ships — unlike applied lag this
    is zero for a healthy lazy follower) is over bound and has not
    shrunk for a configurable number of ticks.
``rung_burst``
    The guard fell past its primary rung (``rung_unavailable`` /
    ``degraded_queries``) more than the floor allows in one tick.
``staleness_suspect``
    Failed contract spot-checks this tick — the one symptom whose
    mitigation is serving-side (flush suspect cached answers).
``shed_spike`` / ``queue_depth`` / ``latency_regression``
    Serving-side pressure: load sheds this tick, queue depth over
    bound, or average latency over both an absolute floor and a
    multiple of its EWMA baseline.
``hot_shard``
    One shard holds more than ``imbalance_ratio`` times the mean shard
    size — the rebalance trigger.
``slo_breach``
    The client-observed p99 latency gauge (loadgen-fed; includes
    queueing delay the server-side mean cannot see) exceeds the
    configured SLO.  Disabled while ``p99_slo`` is 0.
``queue_growth``
    The pending-queue gauge has *strictly grown* for
    ``queue_growth_ticks`` consecutive ticks above a floor — the
    open-loop signature of offered load exceeding capacity, visible
    well before ``queue_depth``'s absolute bound trips.
``shed_rate_spike``
    Sheds as a fraction of offered work this tick (sheds / (sheds +
    served)) crossed ``shed_rate_ratio`` with at least
    ``shed_rate_min_sheds`` absolute sheds — admission control doing
    so much turning-away that capacity, not noise, is the story.
``ack_timeout_spike``
    WAL-ship transport timeouts this tick crossed the floor — the
    network-partition signature that is *not* a machine fault (ship
    timeouts feed no failure-detector streak), so nothing else fires.
``epoch_reject_spike``
    Stale-epoch envelopes rejected this tick — a deposed primary (or a
    partition-stranded client of one) is still talking.  The fencing
    *worked*; the anomaly is that it had to.
``write_amp_spike``
    The flash-backed store's per-tick write amplification (device page
    programs per logical host write, over this tick's deltas) crossed
    ``write_amp_max`` with at least ``write_amp_min_writes`` host
    writes behind it — garbage collection is churning relocations
    because the log-structured store has accumulated dead segments.
    The remedy is the ``compact_store`` lever.
``wear_imbalance``
    The most-erased flash block's wear exceeds
    ``wear_imbalance_ratio`` times the mean (once the mean is past a
    floor) — erase load is concentrating instead of leveling.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro.ops.telemetry import TelemetrySample

Scope = Tuple[str, str]  # (scope type, identifier)

SCOPE_MACHINE = "machine"
SCOPE_REPLICA = "replica"
SCOPE_SHARD = "shard"
SCOPE_SUBSYSTEM = "subsystem"


@dataclass(frozen=True)
class DetectorPolicy:
    """Thresholds and baselines for every rule (module docstring)."""

    ewma_alpha: float = 0.3          # EWMA smoothing for baselines
    warmup_ticks: int = 2            # EWMA rules stay silent this long
    fault_spike_min: int = 3         # absolute per-tick fault floor
    fault_spike_factor: float = 4.0  # ... and this multiple of baseline
    corruption_min: int = 3          # window total to call it a drip
    corruption_window: int = 10      # sliding window length, in ticks
    lag_bound: int = 5               # durable-lag LSNs before suspicion
    lag_flat_ticks: int = 2          # ...held or growing this long
    rung_burst_min: int = 2          # degradations per tick
    latency_units_min: int = 12      # injected latency units per tick
    shed_min: int = 1                # load sheds per tick
    queue_depth_max: int = 256      # pending requests gauge
    latency_floor: float = 0.05      # seconds; absolute p99-proxy floor
    latency_factor: float = 3.0      # ... and this multiple of baseline
    imbalance_ratio: float = 4.0     # max shard size over mean
    p99_slo: float = 0.0             # client p99 SLO (same units as the
                                     # latency source feed); 0 disables
    queue_growth_ticks: int = 3      # consecutive strictly-growing ticks
    queue_growth_min: int = 16       # ...once depth is past this floor
    shed_rate_ratio: float = 0.1     # sheds / (sheds + served) per tick
    shed_rate_min_sheds: int = 4     # absolute shed floor for the ratio
    ack_timeout_min: int = 2         # ship transport timeouts per tick
    epoch_reject_min: int = 1        # stale-epoch rejects per tick
    write_amp_max: float = 2.0       # per-tick device/host writes; 0 disables
    write_amp_min_writes: int = 32   # host-write floor before WA is judged
    wear_imbalance_ratio: float = 3.0  # max/mean block wear; 0 disables
    wear_mean_floor: float = 2.0     # mean erases/block before wear is judged


@dataclass(frozen=True)
class Anomaly:
    """One rule firing on one tick."""

    tick: int
    kind: str
    scope: Scope
    metric: str
    value: float
    threshold: float
    detail: str = ""


class _Ewma:
    def __init__(self, alpha: float) -> None:
        self.alpha = alpha
        self.value: Optional[float] = None

    def update(self, x: float) -> float:
        """Fold ``x`` in; returns the baseline *before* this update."""
        before = self.value if self.value is not None else 0.0
        if self.value is None:
            self.value = float(x)
        else:
            self.value = self.alpha * x + (1 - self.alpha) * self.value
        return before


class AnomalyDetector:
    """Stateful, deterministic rule engine over telemetry samples."""

    def __init__(self, policy: Optional[DetectorPolicy] = None) -> None:
        self.policy = policy if policy is not None else DetectorPolicy()
        self._ticks_seen = 0
        self._fault_baseline: Dict[str, _Ewma] = {}
        self._corruption_window: Dict[str, Deque[int]] = {}
        self._lag_history: Dict[str, Deque[int]] = {}
        self._latency_baseline = _Ewma(self.policy.ewma_alpha)
        self._queue_history: Deque[int] = deque(
            maxlen=self.policy.queue_growth_ticks + 1
        )

    # ------------------------------------------------------------------
    def observe(self, sample: TelemetrySample) -> List[Anomaly]:
        """Fold one sample in; returns every anomaly it triggers."""
        policy = self.policy
        self._ticks_seen += 1
        warm = self._ticks_seen > policy.warmup_ticks
        out: List[Anomaly] = []

        def flag(kind: str, scope: Scope, metric: str, value: float,
                 threshold: float, detail: str = "") -> None:
            out.append(Anomaly(
                tick=sample.tick, kind=kind, scope=scope, metric=metric,
                value=float(value), threshold=float(threshold), detail=detail,
            ))

        # --- per-machine fault plans -----------------------------------
        for label in sorted(sample.machines):
            delta = sample.machines[label]
            baseline = self._fault_baseline.setdefault(
                label, _Ewma(policy.ewma_alpha)
            ).update(delta.faults)
            spike_bar = max(
                policy.fault_spike_min, policy.fault_spike_factor * baseline
            )
            if warm and delta.faults >= spike_bar:
                flag(
                    "fault_spike", (SCOPE_MACHINE, label), "machine_faults",
                    delta.faults, spike_bar,
                    f"ewma baseline {baseline:.2f}",
                )
            window = self._corruption_window.setdefault(
                label, deque(maxlen=policy.corruption_window)
            )
            window.append(delta.corruptions)
            if delta.corruptions > 0 and sum(window) >= policy.corruption_min:
                flag(
                    "corruption_drip", (SCOPE_MACHINE, label),
                    "machine_corruptions", sum(window), policy.corruption_min,
                    f"{delta.corruptions} fresh this tick",
                )
            if delta.crashes > 0:
                flag(
                    "machine_crash", (SCOPE_MACHINE, label),
                    "machine_crashes", delta.crashes, 1,
                )
            if delta.latency_units >= policy.latency_units_min:
                # A brownout raises nothing the streak policy can see —
                # counted latency is the only trace it leaves.
                flag(
                    "latency_storm", (SCOPE_MACHINE, label),
                    "machine_latency_units", delta.latency_units,
                    policy.latency_units_min,
                )

        # --- replication gauges ----------------------------------------
        for name in sorted(sample.replicas_alive):
            if not sample.replicas_alive[name]:
                flag("replica_down", (SCOPE_REPLICA, name), "replica_alive", 0, 1)
        for name in sorted(sample.replica_durable_lag):
            lag = sample.replica_durable_lag[name]
            history = self._lag_history.setdefault(
                name, deque(maxlen=policy.lag_flat_ticks + 1)
            )
            history.append(lag)
            if (
                lag >= policy.lag_bound
                and len(history) > policy.lag_flat_ticks
                and all(
                    later >= earlier
                    for earlier, later in zip(history, list(history)[1:])
                )
            ):
                flag(
                    "lag_growth", (SCOPE_REPLICA, name), "durable_lag",
                    lag, policy.lag_bound,
                    f"not shrinking for {policy.lag_flat_ticks} ticks",
                )

        # --- network / fencing -----------------------------------------
        if sample.ship_timeouts >= policy.ack_timeout_min:
            flag(
                "ack_timeout_spike", (SCOPE_SUBSYSTEM, "network"),
                "ship_timeouts", sample.ship_timeouts,
                policy.ack_timeout_min,
                f"{sample.partitions_active} partitioned links",
            )
        if sample.fenced_rejects >= policy.epoch_reject_min:
            flag(
                "epoch_reject_spike", (SCOPE_SUBSYSTEM, "network"),
                "fenced_rejects", sample.fenced_rejects,
                policy.epoch_reject_min,
                f"{sample.lease_expirations} lease expirations this tick",
            )

        # --- flash-backed durable storage ------------------------------
        if (
            policy.write_amp_max > 0.0
            and sample.flash_host_writes >= policy.write_amp_min_writes
            and sample.storage_write_amp >= policy.write_amp_max
        ):
            flag(
                "write_amp_spike", (SCOPE_SUBSYSTEM, "storage"),
                "storage_write_amp", sample.storage_write_amp,
                policy.write_amp_max,
                f"{sample.flash_device_writes} device / "
                f"{sample.flash_host_writes} host writes this tick",
            )
        if (
            policy.wear_imbalance_ratio > 0.0
            and sample.flash_mean_wear >= policy.wear_mean_floor
            and sample.flash_max_wear
            >= policy.wear_imbalance_ratio * sample.flash_mean_wear
        ):
            flag(
                "wear_imbalance", (SCOPE_SUBSYSTEM, "storage"),
                "flash_max_wear", sample.flash_max_wear,
                policy.wear_imbalance_ratio * sample.flash_mean_wear,
                f"mean wear {sample.flash_mean_wear:.2f} erases/block",
            )

        # --- query path -------------------------------------------------
        degradations = sample.rung_unavailable + sample.degraded_queries
        if degradations >= policy.rung_burst_min:
            flag(
                "rung_burst", (SCOPE_SUBSYSTEM, "query"), "degradations",
                degradations, policy.rung_burst_min,
            )
        if sample.spot_check_failures > 0:
            flag(
                "staleness_suspect", (SCOPE_SUBSYSTEM, "serving"),
                "spot_check_failures", sample.spot_check_failures, 1,
            )

        # --- sharding gauges -------------------------------------------
        for name in sorted(sample.shards_alive):
            if not sample.shards_alive[name]:
                flag("shard_down", (SCOPE_SHARD, name), "shard_alive", 0, 1)
        if len(sample.shard_sizes) >= 2:
            sizes = sample.shard_sizes
            mean = sum(sizes.values()) / len(sizes)
            hottest = max(sorted(sizes), key=lambda name: sizes[name])
            if mean > 0 and sizes[hottest] >= policy.imbalance_ratio * mean:
                flag(
                    "hot_shard", (SCOPE_SHARD, hottest), "shard_size",
                    sizes[hottest], policy.imbalance_ratio * mean,
                    f"mean {mean:.1f}",
                )

        # --- serving pressure ------------------------------------------
        if sample.load_sheds >= policy.shed_min:
            flag(
                "shed_spike", (SCOPE_SUBSYSTEM, "serving"), "load_sheds",
                sample.load_sheds, policy.shed_min,
            )
        if sample.queue_depth > policy.queue_depth_max:
            flag(
                "queue_depth", (SCOPE_SUBSYSTEM, "serving"), "queue_depth",
                sample.queue_depth, policy.queue_depth_max,
            )
        latency_baseline = self._latency_baseline.update(
            sample.serving_avg_latency
        )
        latency_bar = max(
            policy.latency_floor, policy.latency_factor * latency_baseline
        )
        if warm and sample.serving_avg_latency >= latency_bar:
            flag(
                "latency_regression", (SCOPE_SUBSYSTEM, "serving"),
                "avg_latency", sample.serving_avg_latency, latency_bar,
                f"ewma baseline {latency_baseline:.4f}s",
            )

        # --- SLO rules (loadgen-fed overload signatures) ----------------
        if policy.p99_slo > 0.0 and sample.p99_latency > policy.p99_slo:
            flag(
                "slo_breach", (SCOPE_SUBSYSTEM, "serving"), "p99_latency",
                sample.p99_latency, policy.p99_slo,
                f"p50 {sample.p50_latency:.4g}, p999 {sample.p999_latency:.4g}",
            )
        self._queue_history.append(sample.queue_depth)
        history = list(self._queue_history)
        if (
            len(history) > policy.queue_growth_ticks
            and sample.queue_depth >= policy.queue_growth_min
            and all(
                later > earlier
                for earlier, later in zip(history, history[1:])
            )
        ):
            flag(
                "queue_growth", (SCOPE_SUBSYSTEM, "serving"), "queue_depth",
                sample.queue_depth, history[0],
                f"strictly growing for {policy.queue_growth_ticks} ticks",
            )
        offered = sample.load_sheds + sample.served_queries
        if (
            offered > 0
            and sample.load_sheds >= policy.shed_rate_min_sheds
            and sample.load_sheds / offered >= policy.shed_rate_ratio
        ):
            flag(
                "shed_rate_spike", (SCOPE_SUBSYSTEM, "serving"), "shed_rate",
                sample.load_sheds / offered, policy.shed_rate_ratio,
                f"{sample.load_sheds} sheds / {offered} offered",
            )

        return out


__all__ = [
    "AnomalyDetector",
    "DetectorPolicy",
    "Anomaly",
    "Scope",
    "SCOPE_MACHINE",
    "SCOPE_REPLICA",
    "SCOPE_SHARD",
    "SCOPE_SUBSYSTEM",
]
