"""A flash-backed durable top-k service that compacts itself.

A Theorem 2 index persists through the log-structured store onto a
simulated flash device (``repro.flash``): logical pages live on erase
blocks, overwrites go to fresh pages, and a garbage collector relocates
live data when the free pool runs dry.  The store never overwrites in
place — commits append manifest blocks, and only compaction folds the
manifest and returns dead blocks to the device with TRIM.

That design has a failure mode this script makes visible: under steady
churn the manifest accretes, the fixed flash pool fills, and the FTL
starts relocating live pages on every reclaim — *write amplification*
climbs, wearing out the device and stealing bandwidth.  The ops control
plane watches the device/host write ratio in telemetry; when the
``write_amp_spike`` rule trips, the operator opens an incident, pulls
the ``compact_store`` lever, verifies answers against the oracle, and
closes the incident once telemetry stays quiet.

Watch the timeline: write amplification ratchets up tick by tick, the
incident fires, one compaction trims the dead blocks, and the ratio
falls back to 1.0 — until the garbage accretes again and the loop
repeats.

Run:  python examples/flash_service.py
"""

import random

from repro.core.problem import Element, top_k_of
from repro.core.theorem2 import ExpectedTopKIndex
from repro.durability.durable import DurableTopKIndex
from repro.durability.logstore import LogStructuredStore
from repro.em.model import EMContext
from repro.flash.disk import FlashDisk
from repro.flash.ftl import FlashConfig
from repro.ops import Operator
from repro.ops.detector import DetectorPolicy
from repro.ops.operator import OperatorPolicy
from repro.resilience.guard import ResilientTopKIndex
from repro.structures.range1d import RangePredicate1D
from repro.structures.range1d_dynamic import DynamicRangeTreap


def main() -> None:
    rng = random.Random(42)

    # Products with distinct popularity scores, indexed by price.
    n = 24
    churn_total = 12 * 80
    prices = rng.sample(range(100_000), n + churn_total)
    scores = rng.sample(range(1_000_000), n + churn_total)
    catalog = [Element(float(prices[i]), float(scores[i])) for i in range(n)]
    restock = [
        Element(float(prices[i]), float(scores[i]))
        for i in range(n, n + churn_total)
    ]

    # A small flash device: 8-page erase blocks, a 112-page logical
    # pool, 10% over-provisioning.  Tight on purpose — a real fleet
    # sizes stores to their data, not to their garbage.
    disk = FlashDisk(config=FlashConfig(
        pages_per_block=8, capacity_pages=112, overprovision=0.1,
    ))
    ctx = EMContext(B=8, disk=disk)
    store = LogStructuredStore(ctx=ctx, B=8)
    inner = ExpectedTopKIndex(
        catalog, DynamicRangeTreap, DynamicRangeTreap, seed=3
    )
    durable = DurableTopKIndex(inner, store=store, commit_interval=4)
    guard = ResilientTopKIndex(durable)

    probes = [
        (RangePredicate1D(float(lo), float(lo + 40_000)), k)
        for lo in range(0, 60_001, 15_000)
        for k in (3, 5)
    ]
    operator = Operator(
        guard=guard,
        policy=OperatorPolicy(cooldown_ticks=1, clear_ticks=2),
        detector_policy=DetectorPolicy(
            write_amp_max=1.5, write_amp_min_writes=8,
        ),
        probes=probes,
    )

    live = list(catalog)
    supply = iter(restock)
    print("tick |  WA/tick  wear(max/mean) | event")
    print("-----+-------------------------+------------------------------------")
    for tick in range(1, 81):
        # Steady churn: a dozen delist/restock pairs, then a checkpoint.
        for _ in range(12):
            gone = live.pop(0)
            durable.delete(gone)
            fresh = next(supply)
            durable.insert(fresh)
            live.append(fresh)
        durable.checkpoint()
        top = guard.query(RangePredicate1D(0.0, 100_000.0), 5)
        assert top == top_k_of(live, RangePredicate1D(0.0, 100_000.0), 5)

        report = operator.tick()
        sample = report.sample
        events = []
        for incident in report.opened:
            events.append(f"!! incident opened: {incident.kind}")
        for action in report.actions:
            events.append(f"-> {action.lever}: {action.outcome}"
                          + (" (verified)" if action.verified else ""))
        for incident in report.resolved:
            events.append(f"ok incident resolved: {incident.kind}")
        if events or sample.storage_write_amp >= 1.2:
            wear = f"{sample.flash_max_wear}/{sample.flash_mean_wear:.1f}"
            first = events[0] if events else ""
            print(f"{tick:4d} |  {sample.storage_write_amp:7.2f}  "
                  f"{wear:>14s} | {first}")
            for extra in events[1:]:
                print(f"     |                         | {extra}")

    stats = disk.ftl.stats
    print()
    print(f"device totals: {stats.host_writes} host writes, "
          f"{stats.device_writes} device writes "
          f"(lifetime WA {stats.write_amplification:.3f}), "
          f"{stats.erases} erases, {stats.trims} trims, "
          f"{store.compactions} compactions")
    incidents = operator.log.incidents
    print(f"incidents: {len(incidents)} opened, "
          f"{sum(1 for i in incidents if i.resolved_at) } resolved")
    final = guard.query(RangePredicate1D(0.0, 100_000.0), 10)
    oracle = top_k_of(live, RangePredicate1D(0.0, 100_000.0), 10)
    print(f"final answers oracle-exact: {final == oracle}")


if __name__ == "__main__":
    main()
