"""SLO rules in the detector, scale-out levers in the planner."""

from __future__ import annotations

from ops_util import sample, sharded_stack

from repro.ops.detector import AnomalyDetector, DetectorPolicy
from repro.ops.incidents import Incident
from repro.ops.localizer import FaultLocalizer
from repro.ops.mitigation import (
    LEVER_FLUSH_CACHE,
    LEVER_REBALANCE,
    LEVER_SPLIT_SHARD,
    MitigationPlanner,
)


def make_detector(**overrides):
    defaults = dict(
        p99_slo=1.0, queue_growth_ticks=3, queue_growth_min=16,
        shed_rate_ratio=0.1, shed_rate_min_sheds=4,
    )
    defaults.update(overrides)
    return AnomalyDetector(DetectorPolicy(**defaults))


def kinds(anomalies):
    return {a.kind for a in anomalies}


class TestSLOBreachRule:
    def test_p99_over_slo_flags(self):
        detector = make_detector()
        found = detector.observe(sample(tick=1, p99_latency=1.5))
        assert "slo_breach" in kinds(found)

    def test_p99_under_slo_quiet(self):
        detector = make_detector()
        assert "slo_breach" not in kinds(
            detector.observe(sample(tick=1, p99_latency=0.9))
        )

    def test_zero_slo_disables_the_rule(self):
        detector = make_detector(p99_slo=0.0)
        assert "slo_breach" not in kinds(
            detector.observe(sample(tick=1, p99_latency=99.0))
        )


class TestQueueGrowthRule:
    def test_strictly_growing_queue_flags(self):
        detector = make_detector()
        found = []
        for tick, depth in enumerate((20, 40, 80, 160), start=1):
            found = detector.observe(sample(tick=tick, queue_depth=depth))
        assert "queue_growth" in kinds(found)

    def test_plateau_does_not_flag(self):
        detector = make_detector()
        found = []
        for tick, depth in enumerate((20, 40, 40, 40), start=1):
            found = detector.observe(sample(tick=tick, queue_depth=depth))
        assert "queue_growth" not in kinds(found)

    def test_growth_below_floor_ignored(self):
        # A queue crawling from 1 to 4 is noise, not collapse.
        detector = make_detector()
        found = []
        for tick, depth in enumerate((1, 2, 3, 4), start=1):
            found = detector.observe(sample(tick=tick, queue_depth=depth))
        assert "queue_growth" not in kinds(found)


class TestShedRateRule:
    def test_shed_spike_relative_to_offered_flags(self):
        detector = make_detector()
        detector.observe(sample(tick=1, load_sheds=0, served_queries=100))
        found = detector.observe(
            sample(tick=2, load_sheds=30, served_queries=190)
        )
        assert "shed_rate_spike" in kinds(found)

    def test_small_absolute_sheds_ignored(self):
        detector = make_detector(shed_rate_min_sheds=10)
        detector.observe(sample(tick=1))
        found = detector.observe(sample(tick=2, load_sheds=3, served_queries=3))
        assert "shed_rate_spike" not in kinds(found)


class TestOverloadLadder:
    @staticmethod
    def overload_incident(kind="slo_breach"):
        detector = make_detector()
        anomalies = detector.observe(sample(tick=1, p99_latency=5.0))
        assert anomalies
        return Incident(
            id=1, scope=("subsystem", "serving"), kind=kind,
            anomalies=[a for a in anomalies], opened_at=1,
        )

    def test_overload_prefers_split_shard_over_flush(self):
        _, _, sharded, _, _ = sharded_stack()
        planner = MitigationPlanner(sharded=sharded, engine=object())
        action = planner.plan(self.overload_incident())
        assert action.lever == LEVER_SPLIT_SHARD

    def test_flush_cache_never_on_the_overload_ladder(self):
        """Walk the whole ladder to exhaustion: flush never appears."""
        _, _, sharded, _, _ = sharded_stack()
        planner = MitigationPlanner(sharded=sharded, engine=object())
        incident = self.overload_incident()
        seen = []
        for _ in range(3):
            action = planner.plan(incident)
            seen.append(action.lever)
            incident.mitigations.append(
                type("R", (), {"lever": action.lever})()
            )
        assert seen == [LEVER_SPLIT_SHARD] * 3  # repeatable while splittable

        # Once nothing is splittable, the ladder falls to rebalance —
        # and then exhausts rather than reaching for the cache.
        sharded.splittable_shard = lambda: None
        action = planner.plan(incident)
        assert action.lever == LEVER_REBALANCE
        incident.mitigations.append(type("R", (), {"lever": action.lever})())
        assert planner.plan(incident) is None
        assert LEVER_FLUSH_CACHE not in seen

    def test_split_shard_is_repeatable_while_splittable(self):
        _, _, sharded, _, _ = sharded_stack()
        planner = MitigationPlanner(sharded=sharded)
        incident = self.overload_incident()
        first = planner.plan(incident)
        assert first.lever == LEVER_SPLIT_SHARD
        first.apply()
        incident.mitigations.append(type("R", (), {"lever": first.lever})())
        second = planner.plan(incident)
        assert second.lever == LEVER_SPLIT_SHARD  # still first choice

    def test_split_lever_actually_grows_topology(self):
        _, _, sharded, _, _ = sharded_stack()
        planner = MitigationPlanner(sharded=sharded)
        before = sharded.router.num_shards
        action = planner.plan(self.overload_incident())
        outcome = action.apply()
        assert sharded.router.num_shards == before + 1
        assert "+1 server" in outcome

    def test_non_overload_incident_keeps_flush_ladder(self):
        planner = MitigationPlanner(engine=object())
        incident = Incident(
            id=2, scope=("subsystem", "serving"), kind="cache_stale",
            anomalies=[], opened_at=1,
        )
        action = planner.plan(incident)
        assert action.lever == LEVER_FLUSH_CACHE


class TestLocalizerSeverity:
    def test_slo_breach_outranks_legacy_shed_spike(self):
        from repro.ops.localizer import _SEVERITY

        assert _SEVERITY.index("slo_breach") < _SEVERITY.index("shed_spike")
        assert _SEVERITY.index("queue_growth") < _SEVERITY.index("queue_depth")

    def test_blame_lands_on_serving_subsystem(self):
        detector = make_detector()
        anomalies = detector.observe(sample(tick=1, p99_latency=3.0))
        localizer = FaultLocalizer()
        blames = localizer.localize(anomalies, sample(tick=1))
        assert any(b.scope == ("subsystem", "serving") for b in blames)
