"""Shared builders for replication tests: canonical deterministic sets."""

from __future__ import annotations

import pytest

from repro.core.problem import Element
from repro.core.theorem2 import ExpectedTopKIndex
from repro.replication import ReplicaSet
from toy import ToyMax, ToyPrioritized


def elem(i: int) -> Element:
    return Element(i, 1000.0 + i)


def build_fn(elements):
    # The seed is pinned: every replica must build bit-for-bit alike.
    return ExpectedTopKIndex(elements, ToyPrioritized, ToyMax, B=2, seed=3)


def restore_fn(state):
    return ExpectedTopKIndex.restore(state, ToyPrioritized, ToyMax)


def make_cluster(n=40, num_replicas=3, **kwargs) -> ReplicaSet:
    kwargs.setdefault("B", 8)
    return ReplicaSet(
        [elem(i) for i in range(n)],
        build_fn,
        restore_fn,
        num_replicas=num_replicas,
        **kwargs,
    )


@pytest.fixture
def cluster() -> ReplicaSet:
    return make_cluster()
