"""The open-loop load harness: real engine, virtual clock.

The harness drives a **real** :class:`~repro.serving.engine.ServingEngine`
(real cache, real batching, real sharded scatter-gather — answers are
genuinely computed and oracle-checkable) under a **virtual** clock, in
the repo's counted-not-slept tradition: service time is derived from
the work the engine *measurably did* (traversals executed, cache hits
served, injected fault latency units absorbed) through a
:class:`ServiceModel`, never from wall time.  That keeps every run —
queueing collapse included — bit-for-bit reproducible in CI, while the
queueing dynamics stay honest:

* arrivals come from an :class:`~repro.loadgen.arrivals.OpenLoopSchedule`
  — they never wait for completions;
* each tick the server drains only what its modelled capacity affords
  (``drain(limit=...)`` while the busy pointer is inside the tick);
  unserved requests stay queued, so backlog, queue-full sheds, and
  deadline sheds emerge rather than being scripted;
* capacity scales with the number of live servers (alive shards, or
  serving replicas), so the operator's ``split_shard`` lever genuinely
  buys throughput and a ``FaultPlan`` brownout genuinely costs it;
* clients resubmit shed requests only while the shared
  :class:`~repro.resilience.guard.RetryBudget` grants it, so retry
  amplification is measured *and bounded*.

Latency is recorded per request from its **original arrival** to its
batch's completion — queueing delay included, the part server-side
means never see — into full :class:`LatencyHistogram` distributions.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.problem import top_k_of
from repro.loadgen.histogram import LatencyHistogram
from repro.resilience.errors import AdmissionRejected, InvalidConfiguration
from repro.resilience.guard import RetryBudget


class ServiceModel:
    """Engine work deltas -> virtual service seconds for one batch.

    ``unit_time`` converts abstract service units into the schedule's
    time units; one backend traversal costs ``traversal_cost`` units, a
    cache hit ``hit_cost`` (orders cheaper — that is the cache's whole
    point), and each injected
    :class:`~repro.resilience.faults.FaultPlan` latency unit
    ``latency_unit_cost`` (how brownouts slow the service).  A batch
    additionally pays ``batch_overhead`` once.  The total is divided by
    the number of live servers: scatter-gather work is spread across
    shards, so scale-out is faster service, and dead servers are lost
    capacity.
    """

    def __init__(
        self,
        unit_time: float = 0.01,
        traversal_cost: float = 1.0,
        hit_cost: float = 0.02,
        latency_unit_cost: float = 0.25,
        batch_overhead: float = 0.5,
    ) -> None:
        if unit_time <= 0.0:
            raise InvalidConfiguration(
                f"unit_time must be > 0, got {unit_time}"
            )
        self.unit_time = unit_time
        self.traversal_cost = traversal_cost
        self.hit_cost = hit_cost
        self.latency_unit_cost = latency_unit_cost
        self.batch_overhead = batch_overhead

    def batch_time(
        self,
        traversals: int,
        cache_hits: int,
        latency_units: int,
        servers: float,
    ) -> float:
        units = (
            self.batch_overhead
            + self.traversal_cost * traversals
            + self.hit_cost * cache_hits
            + self.latency_unit_cost * latency_units
        )
        # ``servers`` is effective healthy-server units and may dip
        # below 1.0 when every machine is degraded; floor it so a fully
        # browned-out fleet is very slow, not infinitely slow.
        return units * self.unit_time / max(0.1, servers)


@dataclass
class _InFlight:
    """One admitted request waiting in the engine's queue."""

    arrival: float           # original arrival (latency measures from here)
    deadline: Optional[float]
    predicate: Any
    k: int


@dataclass
class LoadReport:
    """Everything one load run produced, distributions included."""

    name: str = ""
    duration: float = 0.0
    ticks: int = 0
    # --- offered load ---
    fresh_arrivals: int = 0
    submits: int = 0            # fresh + retries actually offered
    retries: int = 0
    retries_denied: int = 0     # retry budget said no
    retries_abandoned: int = 0  # scheduled past the run's end
    # --- outcomes ---
    served: int = 0
    queue_sheds: int = 0
    deadline_sheds: int = 0
    dropped: int = 0            # shed and not resubmitted
    deadline_misses: int = 0    # served, but after their deadline
    backlog: int = 0            # still queued when the run ended
    # --- answer quality ---
    reduced_k_served: int = 0
    partial_served: int = 0
    exact_checked: int = 0
    exact_ok: int = 0
    # --- latency ---
    latency: LatencyHistogram = field(default_factory=LatencyHistogram)
    # --- per-tick time series (for plots / telemetry assertions) ---
    series: List[Dict[str, float]] = field(default_factory=list)

    @property
    def sheds(self) -> int:
        return self.queue_sheds + self.deadline_sheds

    @property
    def amplification(self) -> float:
        """Offered submits per fresh arrival; 1.0 = no retry inflation."""
        return (
            self.submits / self.fresh_arrivals if self.fresh_arrivals else 0.0
        )

    @property
    def goodput(self) -> float:
        """Served-on-time fraction of fresh arrivals."""
        if not self.fresh_arrivals:
            return 0.0
        return (self.served - self.deadline_misses) / self.fresh_arrivals

    def summary(self) -> Dict[str, float]:
        return {
            "fresh": float(self.fresh_arrivals),
            "served": float(self.served),
            "sheds": float(self.sheds),
            "deadline_misses": float(self.deadline_misses),
            "backlog": float(self.backlog),
            "amplification": self.amplification,
            "goodput": self.goodput,
            "p50": self.latency.p50,
            "p99": self.latency.p99,
            "p999": self.latency.p999,
        }


class LoadGenerator:
    """Replay an open-loop schedule against a serving engine.

    Parameters
    ----------
    engine:
        The :class:`ServingEngine` under test.  Build it with
        ``pool_size=0`` for fully deterministic runs (serial dispatch
        keeps every stats delta thread-order-free).
    schedule / mix:
        Arrival timestamps and the requests they carry.
    model:
        The :class:`ServiceModel` converting engine work into virtual
        time.
    deadline:
        Per-request deadline budget (arrival + deadline), or ``None``
        for deadline-free traffic.
    retry_budget:
        A shared :class:`RetryBudget`; shed requests are resubmitted
        (once per shed, at ``retry_after``) only while it grants.
        ``None`` disables client retries entirely.
    elements / exact_check_rate:
        With a live element list, a seeded fraction of non-degraded
        answers is compared against the :func:`top_k_of` oracle
        (assumes the element set is static for the run's duration).
    """

    def __init__(
        self,
        engine,
        schedule,
        mix,
        model: Optional[ServiceModel] = None,
        deadline: Optional[float] = None,
        retry_budget: Optional[RetryBudget] = None,
        elements: Optional[List] = None,
        exact_check_rate: float = 0.05,
        seed: int = 0,
        name: str = "load",
    ) -> None:
        if deadline is not None and deadline <= 0.0:
            raise InvalidConfiguration(
                f"deadline budget must be > 0, got {deadline}"
            )
        if not 0.0 <= exact_check_rate <= 1.0:
            raise InvalidConfiguration(
                f"exact_check_rate must be in [0, 1], got {exact_check_rate}"
            )
        self.engine = engine
        self.schedule = schedule
        self.mix = mix
        self.model = model if model is not None else ServiceModel()
        self.deadline = deadline
        self.retry_budget = retry_budget
        self.elements = elements
        self.exact_check_rate = exact_check_rate
        self._rng = random.Random(f"loadgen-{seed}")
        self.report = LoadReport(name=name)
        # Virtual time: where the server's busy pointer has reached.
        self.busy_until = 0.0
        self._inflight: List[_InFlight] = []
        self._retry_heap: List[Tuple[float, int, Any, int, float]] = []
        self._retry_seq = 0
        self._service_estimate = 0.0
        self._window = LatencyHistogram()
        self._last_window_summary: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # Capacity inputs
    # ------------------------------------------------------------------
    @staticmethod
    def _machine_speed(plan) -> float:
        """One machine's service speed: 1.0 healthy, less when browned.

        An armed :class:`~repro.resilience.faults.FaultPlan` injecting
        ``read_latency`` units slows every operation on that machine;
        in virtual time the machine serves at ``1 / (1 + read_latency)``
        of healthy speed.  (The query path never touches the EM disk,
        so the plan's per-transfer charge cannot express this itself.)
        """
        if plan is None or not plan.armed:
            return 1.0
        return 1.0 / (1.0 + max(0, plan.read_latency))

    def _servers(self) -> float:
        """Effective parallel service capacity, in healthy-server units.

        Alive machines count at their speed (degraded machines serve,
        just slower), dead machines not at all — so a ``split_shard``
        genuinely adds capacity and an armed latency plan genuinely
        removes it.
        """
        sharded = getattr(self.engine, "_sharded", None)
        if sharded is not None:
            total = 0.0
            for shard in sharded.router.shards.values():
                if not shard.alive:
                    continue
                machine = shard.machine
                plan = machine.plan if machine is not None else None
                total += self._machine_speed(plan)
            return max(0.1, total)
        cluster = getattr(self.engine, "_cluster", None)
        if cluster is not None:
            total = sum(
                self._machine_speed(r.plan)
                for r in cluster.replicas
                if r.alive
            )
            return max(0.1, total)
        return 1.0

    def _latency_units(self) -> int:
        """Total injected latency units across every reachable machine."""
        total = 0
        sharded = getattr(self.engine, "_sharded", None)
        if sharded is not None:
            for shard in sharded.router.shards.values():
                machine = shard.machine
                if machine is not None and machine.plan is not None:
                    total += machine.plan.stats.latency_units
        cluster = getattr(self.engine, "_cluster", None)
        if cluster is not None:
            for replica in cluster.replicas:
                if replica.plan is not None:
                    total += replica.plan.stats.latency_units
        return total

    # ------------------------------------------------------------------
    # Telemetry feed
    # ------------------------------------------------------------------
    def window_summary(self) -> Dict[str, float]:
        """Last tick's client-side latency gauges (the SLO feed).

        When a tick completes nothing while requests wait, the oldest
        waiting request's age is reported as the p99/p999 floor — under
        full collapse the truthful latency signal is "still rising",
        not "no data".
        """
        return dict(self._last_window_summary)

    def _close_window(self, now: float) -> Dict[str, float]:
        summary = self._window.summary()
        if self._inflight:
            oldest_age = now - self._inflight[0].arrival
            for key in ("p99", "p999", "max"):
                summary[key] = max(summary[key], oldest_age)
            if summary["p50"] == 0.0 and self._window.count == 0:
                summary["p50"] = oldest_age
        self._last_window_summary = summary
        self._window = LatencyHistogram()
        return summary

    # ------------------------------------------------------------------
    # One tick
    # ------------------------------------------------------------------
    def _submit_one(
        self, at: float, predicate, k: int, arrival: float, is_retry: bool
    ) -> None:
        report = self.report
        report.submits += 1
        deadline = (
            arrival + self.deadline if self.deadline is not None else None
        )
        try:
            self.engine.submit(predicate, k, deadline=deadline, now=at)
        except AdmissionRejected as rejection:
            if rejection.reason == AdmissionRejected.REASON_DEADLINE:
                report.deadline_sheds += 1
            else:
                report.queue_sheds += 1
            if not is_retry and self.retry_budget is not None:
                if self.retry_budget.try_spend():
                    retry_at = at + max(
                        rejection.retry_after, self.model.unit_time
                    )
                    self._retry_seq += 1
                    heapq.heappush(
                        self._retry_heap,
                        (retry_at, self._retry_seq, predicate, k, arrival),
                    )
                    return
                report.retries_denied += 1
            report.dropped += 1
        else:
            self._inflight.append(
                _InFlight(
                    arrival=arrival, deadline=deadline,
                    predicate=predicate, k=k,
                )
            )

    def _check_exact(self, record: _InFlight, answer, meta) -> None:
        if self.elements is None or self.exact_check_rate <= 0.0:
            return
        if meta is not None and meta.degraded:
            return  # flagged answers are checked by their own rules
        if (
            self.exact_check_rate < 1.0
            and self._rng.random() >= self.exact_check_rate
        ):
            return
        report = self.report
        report.exact_checked += 1
        expected = top_k_of(self.elements, record.predicate, record.k)
        if answer == expected:
            report.exact_ok += 1

    def run_tick(
        self, arrivals: List[float], tick_start: float, tick_end: float
    ) -> Dict[str, float]:
        """Submit this window's arrivals, then serve within capacity."""
        report = self.report
        engine = self.engine
        # 1. Client side: merge fresh arrivals with due retries, in
        #    time order (an open-loop client never reorders itself).
        events: List[Tuple[float, int, Any, int, float, bool]] = []
        for at in arrivals:
            predicate, k = self.mix.request(at)
            report.fresh_arrivals += 1
            if self.retry_budget is not None:
                self.retry_budget.deposit()
            events.append((at, 0, predicate, k, at, False))
        while self._retry_heap and self._retry_heap[0][0] < tick_end:
            retry_at, seq, predicate, k, arrival = heapq.heappop(
                self._retry_heap
            )
            report.retries += 1
            events.append(
                (max(retry_at, tick_start), 1, predicate, k, arrival, True)
            )
        events.sort(key=lambda e: (e[0], e[1]))
        for at, _, predicate, k, arrival, is_retry in events:
            self._submit_one(at, predicate, k, arrival, is_retry)

        # 2. Server side: drain batch-by-batch while the busy pointer
        #    stays inside this tick; leftovers stay queued.
        served_this_tick = 0
        cache_stats = engine.cache.stats
        while engine.pending > 0:
            start = max(self.busy_until, tick_start)
            if start >= tick_end:
                break
            traversals_before = engine.stats.traversals
            hits_before = cache_stats.hits
            latency_before = self._latency_units()
            answers = engine.drain(limit=engine.max_batch)
            if not answers:
                break
            metas = list(engine.last_drain_meta)
            batch_time = self.model.batch_time(
                traversals=engine.stats.traversals - traversals_before,
                cache_hits=cache_stats.hits - hits_before,
                latency_units=self._latency_units() - latency_before,
                servers=self._servers(),
            )
            done = start + batch_time
            self.busy_until = done
            records = self._inflight[:len(answers)]
            del self._inflight[:len(answers)]
            for position, (record, answer) in enumerate(zip(records, answers)):
                meta = metas[position] if position < len(metas) else None
                # A request arriving mid-batch (tick granularity) is
                # effectively served on arrival: clamp at zero.
                latency = max(0.0, done - record.arrival)
                report.served += 1
                served_this_tick += 1
                report.latency.record(latency)
                self._window.record(latency)
                if record.deadline is not None and done > record.deadline:
                    report.deadline_misses += 1
                if meta is not None:
                    if meta.reduced_k:
                        report.reduced_k_served += 1
                    if meta.partial_suspect:
                        report.partial_served += 1
                self._check_exact(record, answer, meta)
            # Teach admission the modelled service time (EWMA, same
            # units as arrivals and deadlines).
            per_request = batch_time / len(answers)
            if self._service_estimate > 0.0:
                self._service_estimate += 0.3 * (
                    per_request - self._service_estimate
                )
            else:
                self._service_estimate = per_request
            engine.note_service_time(self._service_estimate)

        report.ticks += 1
        window = self._close_window(tick_end)
        point = {
            "tick": float(report.ticks),
            "time": tick_end,
            "arrivals": float(len(arrivals)),
            "served": float(served_this_tick),
            "queue_depth": float(engine.pending),
            "sheds": float(report.sheds),
            "p99_window": window.get("p99", 0.0),
            "servers": float(self._servers()),
            "brownout_level": float(
                engine.brownout.level if engine.brownout is not None else 0
            ),
        }
        report.series.append(point)
        return point

    # ------------------------------------------------------------------
    def run(
        self,
        duration: float,
        tick: float = 1.0,
        start: float = 0.0,
        on_tick=None,
    ) -> LoadReport:
        """The whole scenario: every window, in order.

        ``on_tick(point)`` — an optional per-tick hook, called after
        each window with its series point; scenario runners use it to
        interleave :meth:`Operator.tick` control intervals with load.
        """
        if duration <= 0.0:
            raise InvalidConfiguration(
                f"duration must be > 0, got {duration}"
            )
        self.busy_until = start
        tick_start = start
        for window in self.schedule.windows(start, start + duration, tick):
            point = self.run_tick(window, tick_start, tick_start + tick)
            tick_start += tick
            if on_tick is not None:
                on_tick(point)
        self.report.duration = duration
        self.report.backlog = self.engine.pending
        self.report.retries_abandoned = len(self._retry_heap)
        return self.report


__all__ = ["LoadGenerator", "LoadReport", "ServiceModel"]
