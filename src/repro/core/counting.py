"""The Section 2 reduction: top-k from counting + conventional reporting.

Besides the reduction giving eqs. (1)-(2), Rahul–Janardan [28] showed —
and the paper's Section 2 sharpens to *approximate* counting — that a
reporting structure plus a counting structure yield a top-k structure:

    S_top(n) = O((S_rep(n) + S_cnt(n)) * log2 n)
    Q_top(n) = O((Q_rep(n) + Q_cnt(n)) * log2 n)        (+ O(k/B))

Construction: a balanced binary tree over the elements in descending
weight order; every node carries a reporting structure and a counting
structure over its subtree.  A top-k query descends from the root
maintaining a residual budget: at each node it counts the matches in
the heavier child; if the budget fits inside, descend there, otherwise
take the heavier child *whole* (a canonical node) and continue into the
lighter child with the reduced budget.  The canonical nodes collected
this way are strictly ordered by weight, so reporting them in order and
stopping at ``k`` accumulated matches keeps the output term ``O(c*k)``
even with a ``c``-approximate counter.

With approximate counts the residual budget is reduced by the *lower*
bound ``ceil(count / c)`` — never more than the true count — so the
fetched set always contains the true top-k; k-selection then returns
the exact answer.  (This is the sense in which approximate counting
suffices; the paper contrasts this with [28], which required exact
counts.)

This module completes the repository's coverage of every reduction the
paper discusses, and bench E11 compares all four on one substrate.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.interfaces import (
    CountingFactory,
    CountingIndex,
    OpCounter,
    PrioritizedFactory,
    TopKIndex,
)
from repro.core.problem import Element, Predicate
from repro.core.theorem1 import ReductionStats
from repro.em.selection import select_top_k


class CountingTopKIndex(TopKIndex):
    """Top-k via counting-guided descent over a weight tree (Section 2).

    Parameters
    ----------
    elements:
        The input set ``D``.
    reporting_factory:
        Builds the (unweighted) reporting black box per tree node.  Any
        :class:`PrioritizedIndex` serves: reporting = prioritized with
        ``tau = -inf``.
    counting_factory:
        Builds the counting black box per tree node.  Its
        ``approximation_factor`` (``c >= 1``) governs the budget
        arithmetic; exact counters (``c = 1``) reproduce [28].
    leaf_size:
        Subtrees of at most this many elements are scanned directly.
    """

    def __init__(
        self,
        elements: Sequence[Element],
        reporting_factory: PrioritizedFactory,
        counting_factory: CountingFactory,
        leaf_size: int = 4,
    ) -> None:
        self.stats = ReductionStats()
        self.ops = OpCounter()
        self._leaf_size = max(1, leaf_size)
        # Descending weight order: node (a, b) covers ranks a..b-1.
        self._by_weight: List[Element] = sorted(elements, key=lambda e: -e.weight)
        self._reporters: Dict[Tuple[int, int], object] = {}
        self._counters: Dict[Tuple[int, int], CountingIndex] = {}
        self._c = 1.0
        if self._by_weight:
            self._build(0, len(self._by_weight), reporting_factory, counting_factory)

    def _build(self, a: int, b: int, reporting_factory, counting_factory) -> None:
        subtree = self._by_weight[a:b]
        self._reporters[(a, b)] = reporting_factory(subtree)
        counter = counting_factory(subtree)
        self._counters[(a, b)] = counter
        self._c = max(self._c, counter.approximation_factor)
        if b - a > self._leaf_size:
            mid = (a + b) // 2
            self._build(a, mid, reporting_factory, counting_factory)
            self._build(mid, b, reporting_factory, counting_factory)

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return len(self._by_weight)

    def query(self, predicate: Predicate, k: int) -> List[Element]:
        """Exact top-k, heaviest first."""
        self.stats.queries += 1
        if k <= 0 or not self._by_weight:
            return []
        canonical: List[Tuple[int, int]] = []
        node = (0, len(self._by_weight))
        remaining = float(k)
        while node[1] - node[0] > self._leaf_size:
            a, b = node
            mid = (a + b) // 2
            heavy = (a, mid)
            self.stats.monitored_probes += 1
            approx = self._counters[heavy].count(predicate)
            if remaining <= approx / self._c:
                # Even the pessimistic true count covers the budget:
                # the k-th heaviest match lies inside the heavy child.
                node = heavy
                continue
            # Take the heavy child whole (always sound) and continue
            # into the light child.  The budget shrinks by approx/c — a
            # lower bound on the true count — so the light side is
            # still asked for at least as much as it must supply.
            canonical.append(heavy)
            remaining -= approx / self._c
            node = (mid, b)
        canonical.append(node)

        # Canonical nodes are strictly weight-ordered (each later one is
        # lighter than everything in the earlier ones), so report in
        # order and stop once k matches have accumulated.
        out: List[Element] = []
        for a, b in canonical:
            self.stats.threshold_fetches += 1
            out.extend(self._report(a, b, predicate))
            if len(out) >= k:
                break
        return select_top_k(out, k)

    def _report(self, a: int, b: int, predicate: Predicate) -> List[Element]:
        if b - a <= self._leaf_size:
            self.ops.scanned += b - a
            return [e for e in self._by_weight[a:b] if predicate.matches(e.obj)]
        result = self._reporters[(a, b)].query(predicate, -math.inf)
        return result.elements

    def space_units(self) -> int:
        """``O((S_rep + S_cnt) log n)`` — summed over every tree node."""
        total = 0
        for reporter in self._reporters.values():
            total += reporter.space_units()
        for counter in self._counters.values():
            total += counter.space_units()
        return total


class InflatedCounter(CountingIndex):
    """A test/ablation wrapper that degrades an exact counter to c-approx.

    Returns a deterministic value in ``[true, c * true]`` (pseudo-random
    in the query, reproducible per instance), exercising the reduction's
    approximate-budget arithmetic.
    """

    def __init__(self, inner: CountingIndex, c: float, salt: int = 0) -> None:
        if c < 1.0:
            raise ValueError(f"approximation factor must be >= 1, got {c}")
        if inner.approximation_factor != 1.0:
            raise ValueError("InflatedCounter wraps exact counters only")
        self._inner = inner
        self._c = c
        self._salt = salt
        self.ops = inner.ops

    @property
    def n(self) -> int:
        return self._inner.n

    @property
    def approximation_factor(self) -> float:
        return self._c

    def count(self, predicate: Predicate) -> int:
        true = self._inner.count(predicate)
        if true == 0:
            return 0
        # Deterministic inflation in [1, c], varying with the predicate.
        wobble = (hash((repr(predicate), self._salt)) % 1000) / 1000.0
        factor = 1.0 + (self._c - 1.0) * wobble
        return min(int(self._c * true), max(true, int(factor * true)))

    def space_units(self) -> int:
        return self._inner.space_units()
