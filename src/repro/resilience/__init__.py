"""Fault injection, structured errors, and graceful degradation.

Three layers (see DESIGN.md / docs/API.md "Failure model"):

* :mod:`repro.resilience.errors` — the structured exception taxonomy
  every ``repro`` component raises (transient vs contract vs budget).
* :mod:`repro.resilience.faults` — :class:`FaultPlan`, the seeded
  chaos schedule the EM machine consults on every block transfer.
* :mod:`repro.resilience.guard` — :class:`ResilientTopKIndex`, the
  retry / spot-check / degradation-ladder wrapper that turns any
  top-k index into one that always answers correctly and reports its
  own health.

``errors`` and ``faults`` are dependency-free and imported eagerly;
``guard`` (which depends on :mod:`repro.core`) is exposed lazily so
core modules can import the taxonomy without a cycle.
"""

from repro.resilience.errors import (
    AdmissionRejected,
    BlockOverflowError,
    ContractViolation,
    CorruptBlockError,
    DegradedAnswer,
    ElementMembershipError,
    InvalidConfiguration,
    RecoveryError,
    ReproError,
    RetryBudgetExhausted,
    SerializationError,
    SimulatedCrash,
    SnapshotIntegrityError,
    StaticStructureError,
    TransientIOError,
    ValidationFailure,
)
from repro.resilience.faults import FaultPlan, FaultStats

_GUARD_EXPORTS = (
    "GuardPolicy",
    "HealthReport",
    "HealthSummary",
    "ResilientTopKIndex",
    "RetryBudget",
    "resilient_index",
)

__all__ = [
    "ReproError",
    "TransientIOError",
    "CorruptBlockError",
    "ContractViolation",
    "ValidationFailure",
    "ElementMembershipError",
    "StaticStructureError",
    "BlockOverflowError",
    "InvalidConfiguration",
    "SerializationError",
    "SnapshotIntegrityError",
    "RecoveryError",
    "SimulatedCrash",
    "AdmissionRejected",
    "RetryBudgetExhausted",
    "DegradedAnswer",
    "FaultPlan",
    "FaultStats",
    *_GUARD_EXPORTS,
]


def __getattr__(name):
    # PEP 562 lazy loading: guard pulls in repro.core, which itself
    # imports this package's errors — eager import here would cycle.
    if name in _GUARD_EXPORTS:
        from repro.resilience import guard

        return getattr(guard, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(__all__)
