"""ChaosScenarioRunner: the graded acceptance suite, run end to end."""

import pytest

from repro.ops.mitigation import (
    LEVER_FAILOVER,
    LEVER_REBOOT,
    LEVER_RECOVER_SHARD,
    LEVER_SCRUB,
)
from repro.ops.scenarios import (
    ChaosScenarioRunner,
    DEFAULT_SCENARIOS,
    grade_suite,
)


@pytest.fixture(scope="module")
def suite():
    runner = ChaosScenarioRunner()
    results = runner.run_suite()
    return {result.spec.name: result for result in results}


class TestAcceptance:
    def test_localization_accuracy_floor(self, suite):
        grade = grade_suite(list(suite.values()))
        assert grade["localization_accuracy"] >= 0.9

    def test_every_incident_mitigated_with_existing_levers(self, suite):
        known = {LEVER_FAILOVER, LEVER_REBOOT, LEVER_RECOVER_SHARD,
                 LEVER_SCRUB, "rebalance", "flush_cache"}
        for result in suite.values():
            assert result.mitigated, result.timeline
            assert set(result.levers) <= known

    def test_all_answers_oracle_exact(self, suite):
        for result in suite.values():
            assert result.answers > 0
            assert result.answers_exact == result.answers
            assert result.post_probes_exact

    def test_detection_is_prompt(self, suite):
        for result in suite.values():
            assert result.detection_latency is not None
            assert result.detection_latency <= 4, result.spec.name


class TestScenarioStories:
    def test_storm_rebuilds_redundancy_after_reactive_condemnation(self, suite):
        result = suite["storm-on-primary"]
        assert result.localized_to == "replica-0"
        assert LEVER_REBOOT in result.levers

    def test_brownout_is_the_forced_failover_path(self, suite):
        # Latency raises no faults: only the control plane can act, and
        # its first rung on an alive primary is the gentle failover.
        result = suite["brownout-on-primary"]
        assert result.levers[0] == LEVER_FAILOVER

    def test_condemned_follower_is_rebooted(self, suite):
        result = suite["condemned-follower"]
        assert result.localized_to == "replica-1"
        assert LEVER_REBOOT in result.levers

    def test_shard_loss_is_detected_by_gauge(self, suite):
        result = suite["shard-machine-loss"]
        assert result.detection_latency == 0  # aliveness gauge, not telemetry lag
        assert result.levers == [LEVER_RECOVER_SHARD]

    def test_drip_corruption_escalates_scrub_to_reboot(self, suite):
        result = suite["drip-corruption"]
        assert result.levers[0] == LEVER_SCRUB
        assert LEVER_REBOOT in result.levers

    def test_suite_is_deterministic(self):
        timelines = [
            [r.timeline for r in ChaosScenarioRunner().run_suite()]
            for _ in range(2)
        ]
        assert timelines[0] == timelines[1]


def test_default_scenarios_cover_four_failure_families():
    assert len(DEFAULT_SCENARIOS) >= 4
    assert len({spec.kind for spec in DEFAULT_SCENARIOS}) >= 4
