"""Shared builders for the network/fencing test suite.

Mirrors ``tests/replication/conftest.py`` — toy-backed clusters — but
every builder threads a caller-supplied :class:`NetworkFabric` and
(optionally) a lease TTL through, since that is the whole point here.
(Named ``net_util`` rather than living in the conftest so the import
cannot collide with other suites' conftests under rootdir collection.)
"""

from __future__ import annotations

from repro.core.problem import Element
from repro.core.theorem2 import ExpectedTopKIndex
from repro.net import NetworkFabric
from repro.replication import ReplicaSet
from toy import ToyMax, ToyPrioritized

LEASE_TTL = 48


def elem(i: int) -> Element:
    return Element(i, 1000.0 + i)


def build_fn(elements):
    # The seed is pinned: every replica must build bit-for-bit alike.
    return ExpectedTopKIndex(elements, ToyPrioritized, ToyMax, B=2, seed=3)


def restore_fn(state):
    return ExpectedTopKIndex.restore(state, ToyPrioritized, ToyMax)


def make_cluster(
    n=40, num_replicas=3, fabric=None, lease_ttl=0, **kwargs
) -> ReplicaSet:
    kwargs.setdefault("B", 8)
    return ReplicaSet(
        [elem(i) for i in range(n)],
        build_fn,
        restore_fn,
        num_replicas=num_replicas,
        fabric=fabric,
        lease_ttl=lease_ttl,
        **kwargs,
    )


def make_fenced(n=40, num_replicas=3, seed=0, **kwargs):
    """A fenced cluster plus its fabric (most tests want both)."""
    fabric = NetworkFabric(seed=seed)
    cluster = make_cluster(
        n=n, num_replicas=num_replicas, fabric=fabric,
        lease_ttl=LEASE_TTL, **kwargs,
    )
    return cluster, fabric
