"""A fully persistent balanced search tree (path-copying treap).

Sarnak and Tarjan's planar point location [31] — the structure the
paper plugs into its Section 5.4 max reporting — rests on a *partially
persistent* balanced BST: the plane-sweep updates the tree at every
slab boundary, and a query searches the version that was current at
its slab.  Path copying gives full persistence at ``O(log n)`` extra
space per update, which is all the sweep needs.

The tree is a treap with deterministic per-key priorities (so rebuilds
are reproducible), ordered by a caller-supplied comparator — the
segment ordering of :mod:`repro.structures.point_location` compares
two non-crossing segments at an interior point of their common
x-range, which is globally consistent.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, List, Optional, Tuple

Comparator = Callable[[Any, Any], int]


class _Node:
    """An immutable treap node (never mutated after construction)."""

    __slots__ = ("item", "priority", "left", "right", "size")

    def __init__(self, item, priority, left, right) -> None:
        self.item = item
        self.priority = priority
        self.left = left
        self.right = right
        self.size = 1 + _size(left) + _size(right)


def _size(node: Optional[_Node]) -> int:
    return node.size if node is not None else 0


def _priority_of(item: Any) -> int:
    # Deterministic pseudo-random priority (reproducible across runs):
    # a multiplicative scramble of the item's repr hash.
    return (hash(repr(item)) * 2654435761) & 0xFFFFFFFF


class PersistentTreap:
    """One *version* of the treap; every update returns a new version.

    Versions share structure: an update copies only the search path.
    The empty version is ``PersistentTreap(comparator)``.
    """

    __slots__ = ("_cmp", "_root")

    def __init__(self, comparator: Comparator, _root: Optional[_Node] = None) -> None:
        self._cmp = comparator
        self._root = _root

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return _size(self._root)

    def insert(self, item: Any) -> "PersistentTreap":
        """A new version containing ``item`` (duplicates rejected)."""
        root = self._insert(self._root, item, _priority_of(item))
        return PersistentTreap(self._cmp, root)

    def delete(self, item: Any) -> "PersistentTreap":
        """A new version without ``item``; raises ``KeyError`` if absent."""
        found, root = self._delete(self._root, item)
        if not found:
            raise KeyError(f"item not in treap: {item!r}")
        return PersistentTreap(self._cmp, root)

    def items(self) -> Iterator[Any]:
        """In-order iteration (ascending by the comparator)."""
        stack: List[Tuple[Optional[_Node], bool]] = [(self._root, False)]
        while stack:
            node, expanded = stack.pop()
            if node is None:
                continue
            if expanded:
                yield node.item
            else:
                stack.append((node.right, False))
                stack.append((node, True))
                stack.append((node.left, False))

    def iter_from(self, goes_right: Callable[[Any], bool]) -> Iterator[Any]:
        """In-order iteration starting at the first item failing ``goes_right``.

        ``goes_right`` must be (weakly) monotone along the order — True
        on a prefix.  Yields the suffix of items in ascending order;
        consuming ``t`` items costs ``O(log n + t)``.
        """
        stack: List[_Node] = []
        node = self._root
        while node is not None:
            if goes_right(node.item):
                node = node.right
            else:
                stack.append(node)
                node = node.left
        while stack:
            node = stack.pop()
            yield node.item
            child = node.right
            while child is not None:
                stack.append(child)
                child = child.left

    def first_satisfying(self, goes_right: Callable[[Any], bool]) -> Optional[Any]:
        """The smallest item for which ``goes_right(item)`` is False.

        ``goes_right`` must be monotone along the order: True for a
        prefix of items, False for the suffix; the first False item is
        returned (``None`` when every item is True).  This is the
        "lowest segment above the query point" search of the
        point-location sweep.
        """
        node = self._root
        answer = None
        while node is not None:
            if goes_right(node.item):
                node = node.right
            else:
                answer = node.item
                node = node.left
        return answer

    # ------------------------------------------------------------------
    # Internals (all path-copying)
    # ------------------------------------------------------------------
    def _insert(self, node: Optional[_Node], item, priority) -> _Node:
        if node is None:
            return _Node(item, priority, None, None)
        order = self._cmp(item, node.item)
        if order == 0:
            raise KeyError(f"duplicate item: {item!r}")
        if order < 0:
            left = self._insert(node.left, item, priority)
            candidate = _Node(node.item, node.priority, left, node.right)
            if left.priority > candidate.priority:
                return _rotate_right(candidate)
            return candidate
        right = self._insert(node.right, item, priority)
        candidate = _Node(node.item, node.priority, node.left, right)
        if right.priority > candidate.priority:
            return _rotate_left(candidate)
        return candidate

    def _delete(self, node: Optional[_Node], item) -> Tuple[bool, Optional[_Node]]:
        if node is None:
            return False, None
        order = self._cmp(item, node.item)
        if order < 0:
            found, left = self._delete(node.left, item)
            if not found:
                return False, node
            return True, _Node(node.item, node.priority, left, node.right)
        if order > 0:
            found, right = self._delete(node.right, item)
            if not found:
                return False, node
            return True, _Node(node.item, node.priority, node.left, right)
        return True, _merge(node.left, node.right)


def _rotate_right(node: _Node) -> _Node:
    left = node.left
    return _Node(
        left.item,
        left.priority,
        left.left,
        _Node(node.item, node.priority, left.right, node.right),
    )


def _rotate_left(node: _Node) -> _Node:
    right = node.right
    return _Node(
        right.item,
        right.priority,
        _Node(node.item, node.priority, node.left, right.left),
        right.right,
    )


def _merge(left: Optional[_Node], right: Optional[_Node]) -> Optional[_Node]:
    if left is None:
        return right
    if right is None:
        return left
    if left.priority > right.priority:
        return _Node(left.item, left.priority, left.left, _merge(left.right, right))
    return _Node(right.item, right.priority, _merge(left, right.left), right.right)
