"""Tests for line envelopes against pointwise min/max scans."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.envelope import LowerEnvelope, UpperEnvelope
from repro.geometry.primitives import Line2D

slope = st.floats(-20, 20, allow_nan=False)
intercept = st.floats(-100, 100, allow_nan=False)
lines_strategy = st.lists(
    st.builds(Line2D, slope, intercept), min_size=0, max_size=40
)


class TestEmptyAndSingle:
    def test_empty(self):
        assert LowerEnvelope([]).value_at(0) is None
        assert UpperEnvelope([]).line_at(0) is None
        assert len(LowerEnvelope([])) == 0

    def test_single_line(self):
        env = LowerEnvelope([Line2D(2, 1)])
        assert env.value_at(3) == 7
        assert env.line_at(3) == Line2D(2, 1)


class TestParallelDedup:
    def test_lower_keeps_lowest_parallel(self):
        env = LowerEnvelope([Line2D(1, 5), Line2D(1, 2), Line2D(1, 9)])
        assert len(env) == 1
        assert env.value_at(0) == 2

    def test_upper_keeps_highest_parallel(self):
        env = UpperEnvelope([Line2D(1, 5), Line2D(1, 2), Line2D(1, 9)])
        assert env.value_at(0) == 9


class TestKnownShapes:
    def test_v_shape_lower(self):
        env = LowerEnvelope([Line2D(1, 0), Line2D(-1, 0)])
        assert env.value_at(-2) == -2  # slope 1 wins left
        assert env.value_at(2) == -2  # slope -1 wins right
        assert env.value_at(0) == 0

    def test_middle_line_hidden(self):
        # y = 0x + 10 never attains the minimum of the other two.
        env = LowerEnvelope([Line2D(1, 0), Line2D(-1, 0), Line2D(0, 10)])
        assert len(env) == 2


@settings(max_examples=60, deadline=None)
@given(lines=lines_strategy, xs=st.lists(st.floats(-50, 50, allow_nan=False), min_size=1, max_size=10))
def test_lower_matches_pointwise_min(lines, xs):
    env = LowerEnvelope(lines)
    for x in xs:
        expected = min((l.at(x) for l in lines), default=None)
        got = env.value_at(x)
        if expected is None:
            assert got is None
        else:
            assert abs(got - expected) < 1e-6


@settings(max_examples=60, deadline=None)
@given(lines=lines_strategy, xs=st.lists(st.floats(-50, 50, allow_nan=False), min_size=1, max_size=10))
def test_upper_matches_pointwise_max(lines, xs):
    env = UpperEnvelope(lines)
    for x in xs:
        expected = max((l.at(x) for l in lines), default=None)
        got = env.value_at(x)
        if expected is None:
            assert got is None
        else:
            assert abs(got - expected) < 1e-6
