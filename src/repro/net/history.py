"""Jepsen-style operation history recording and offline checking.

Every update and query against the cluster is recorded as an
**invoke** followed by exactly one completion verdict:

* **ok** — the operation was acknowledged (a write reached a quorum; a
  read returned an answer);
* **fail** — the operation *definitely* did not happen (the cluster
  refused it, or rolled it back before acknowledging failure);
* **info** — indeterminate: the caller saw a failure but the effect
  may exist (a timeout after the message may have been delivered; a
  crash mid-rollback).

The offline :func:`check_history` replays the (sequential) history and
asserts the three properties the tentpole promises:

1. **no acknowledged write is lost** — every ok-insert's element must
   appear in any later read it qualifies for (weight above the read's
   cut-off), forever, until an ok-delete removes it;
2. **no unacknowledged write is visible** — an element whose insert
   *failed* may never appear in a read; an element whose insert was
   *indeterminate* may appear or not, but must do so **consistently**:
   the first read that could have shown it resolves the ambiguity, and
   later reads must agree;
3. **every read is a legal top-k** — sorted strictly descending by
   weight, no duplicates, and exactly the k heaviest matching elements
   of the resolved state at the read's linearization point.

The checker is deliberately model-free: it needs only the initial
element set and the recorded events, so the same checker audits the
replication driver, the sharded driver, and the deliberately-unfenced
ablation (where it must *catch* the split-brain write loss).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.core.problem import Element, Predicate

INVOKE = "invoke"
OK = "ok"
FAIL = "fail"
INFO = "info"

OP_INSERT = "insert"
OP_DELETE = "delete"
OP_QUERY = "query"

# Violation kinds.
LOST_ACK_WRITE = "lost_acknowledged_write"
UNACKED_VISIBLE = "unacked_write_visible"
INCONSISTENT_READ = "inconsistent_read"
MALFORMED_ANSWER = "malformed_answer"
MALFORMED_HISTORY = "malformed_history"


@dataclass(frozen=True)
class HistoryEvent:
    """One line of the history: an invocation or its completion."""

    op_id: int
    phase: str            # invoke | ok | fail | info
    op: str               # insert | delete | query
    element: Optional[Element] = None
    predicate: Optional[Predicate] = None
    k: int = 0
    answer: Optional[tuple] = None


class HistoryRecorder:
    """Appends invoke/ok/fail/info events for the offline checker."""

    def __init__(self) -> None:
        self.events: List[HistoryEvent] = []
        self._next_id = 0
        self._open: Dict[int, HistoryEvent] = {}

    def _invoke(self, event: HistoryEvent) -> int:
        self.events.append(event)
        self._open[event.op_id] = event
        return event.op_id

    def invoke_insert(self, element: Element) -> int:
        op_id, self._next_id = self._next_id, self._next_id + 1
        return self._invoke(
            HistoryEvent(op_id=op_id, phase=INVOKE, op=OP_INSERT, element=element)
        )

    def invoke_delete(self, element: Element) -> int:
        op_id, self._next_id = self._next_id, self._next_id + 1
        return self._invoke(
            HistoryEvent(op_id=op_id, phase=INVOKE, op=OP_DELETE, element=element)
        )

    def invoke_query(self, predicate: Predicate, k: int) -> int:
        op_id, self._next_id = self._next_id, self._next_id + 1
        return self._invoke(
            HistoryEvent(
                op_id=op_id, phase=INVOKE, op=OP_QUERY, predicate=predicate, k=k
            )
        )

    def _complete(self, op_id: int, phase: str, answer: Optional[tuple]) -> None:
        invoked = self._open.pop(op_id)
        self.events.append(
            HistoryEvent(
                op_id=op_id,
                phase=phase,
                op=invoked.op,
                element=invoked.element,
                predicate=invoked.predicate,
                k=invoked.k,
                answer=answer,
            )
        )

    def ok(self, op_id: int, answer: Optional[Sequence[Element]] = None) -> None:
        self._complete(
            op_id, OK, tuple(answer) if answer is not None else None
        )

    def fail(self, op_id: int) -> None:
        self._complete(op_id, FAIL, None)

    def info(self, op_id: int) -> None:
        self._complete(op_id, INFO, None)


@dataclass(frozen=True)
class Violation:
    kind: str
    op_id: int
    detail: str


@dataclass
class CheckResult:
    """The checker's verdict plus audit counters."""

    ok: bool = True
    violations: List[Violation] = field(default_factory=list)
    ops: int = 0
    reads_checked: int = 0
    exact_reads: int = 0
    ok_writes: int = 0
    failed_writes: int = 0
    indeterminate_writes: int = 0
    resolved_applied: int = 0
    resolved_unapplied: int = 0

    def kinds(self) -> List[str]:
        return sorted({v.kind for v in self.violations})


class _CheckerState:
    """Resolved world-state as the history replays."""

    def __init__(self, initial: Sequence[Element]) -> None:
        # weight -> Element.  Weights are globally distinct (the
        # repo-wide precondition), so they are the identity.
        self.present: Dict[float, Element] = {e.weight: e for e in initial}
        self.maybe_in: Dict[float, Element] = {}   # indeterminate inserts
        self.maybe_out: Dict[float, Element] = {}  # indeterminate deletes
        self.never: Dict[float, int] = {}  # weight -> op_id proven unapplied


def check_history(
    events: Sequence[HistoryEvent], initial: Sequence[Element]
) -> CheckResult:
    """Replay a sequential history; return violations + audit counters."""
    state = _CheckerState(initial)
    result = CheckResult()
    for event in events:
        if event.phase == INVOKE:
            result.ops += 1
            continue
        if event.op == OP_INSERT:
            _complete_insert(event, state, result)
        elif event.op == OP_DELETE:
            _complete_delete(event, state, result)
        elif event.op == OP_QUERY:
            _complete_query(event, state, result)
        else:
            _flag(result, MALFORMED_HISTORY, event.op_id, f"unknown op {event.op!r}")
    result.ok = not result.violations
    return result


def _flag(result: CheckResult, kind: str, op_id: int, detail: str) -> None:
    result.violations.append(Violation(kind=kind, op_id=op_id, detail=detail))


def _complete_insert(
    event: HistoryEvent, state: _CheckerState, result: CheckResult
) -> None:
    weight = event.element.weight
    if event.phase == OK:
        result.ok_writes += 1
        state.present[weight] = event.element
        state.maybe_in.pop(weight, None)
        state.never.pop(weight, None)
    elif event.phase == FAIL:
        result.failed_writes += 1
        state.never[weight] = event.op_id
    else:  # INFO
        result.indeterminate_writes += 1
        state.maybe_in[weight] = event.element


def _complete_delete(
    event: HistoryEvent, state: _CheckerState, result: CheckResult
) -> None:
    weight = event.element.weight
    if event.phase == OK:
        result.ok_writes += 1
        state.present.pop(weight, None)
        state.maybe_out.pop(weight, None)
    elif event.phase == FAIL:
        result.failed_writes += 1
        # The delete definitely did not happen; the element stays.
    else:  # INFO
        result.indeterminate_writes += 1
        if weight in state.present:
            state.maybe_out[weight] = state.present.pop(weight)


def _complete_query(
    event: HistoryEvent, state: _CheckerState, result: CheckResult
) -> None:
    if event.phase != OK:
        return  # a failed/indeterminate read constrains nothing
    result.reads_checked += 1
    answer = list(event.answer or ())
    predicate, k = event.predicate, event.k
    # -- shape: strictly descending weights, no duplicates, length <= k.
    weights = [e.weight for e in answer]
    if len(answer) > k or any(
        b >= a for a, b in zip(weights, weights[1:])
    ):
        _flag(
            result, MALFORMED_ANSWER, event.op_id,
            f"answer of size {len(answer)} for k={k} not strictly "
            f"descending: {weights}",
        )
        return
    answer_weights = set(weights)
    cutoff = weights[-1] if len(answer) == k else float("-inf")
    # -- phase 1: every answered element must be explainable.
    for element in answer:
        w = element.weight
        if not predicate.matches(element.obj):
            _flag(
                result, MALFORMED_ANSWER, event.op_id,
                f"element {element} does not match the read's predicate",
            )
        elif w in state.present:
            pass
        elif w in state.maybe_in:
            # Ambiguity resolved: the indeterminate insert DID apply.
            state.present[w] = state.maybe_in.pop(w)
            result.resolved_applied += 1
        elif w in state.maybe_out:
            # The indeterminate delete did NOT apply.
            state.present[w] = state.maybe_out.pop(w)
            result.resolved_unapplied += 1
        elif w in state.never:
            _flag(
                result, UNACKED_VISIBLE, event.op_id,
                f"element {element} from failed/unapplied op "
                f"{state.never[w]} is visible in a read",
            )
        else:
            _flag(
                result, UNACKED_VISIBLE, event.op_id,
                f"element {element} was never written",
            )
    # -- phase 2: resolve maybes the answer proves absent.
    for pool, applied in ((state.maybe_in, False), (state.maybe_out, True)):
        doomed = [
            w for w, e in pool.items()
            if w not in answer_weights
            and predicate.matches(e.obj)
            and (w > cutoff)
        ]
        for w in doomed:
            element = pool.pop(w)
            if applied:
                # maybe_out element absent above the cut-off: the
                # indeterminate delete DID apply; it is gone for good.
                state.never[w] = event.op_id
                result.resolved_applied += 1
            else:
                # maybe_in element absent above the cut-off: the
                # indeterminate insert never applied.
                state.never[w] = event.op_id
                result.resolved_unapplied += 1
    # -- phase 3: completeness — no acknowledged write may be missing.
    missing = [
        e for w, e in state.present.items()
        if w not in answer_weights
        and predicate.matches(e.obj)
        and w > cutoff
    ]
    if missing:
        worst = max(missing, key=lambda e: e.weight)
        _flag(
            result, LOST_ACK_WRITE, event.op_id,
            f"{len(missing)} acknowledged element(s) above the cut-off "
            f"missing from the answer (e.g. {worst}, cut-off {cutoff})",
        )
        return
    # -- phase 4: with every relevant ambiguity resolved, the answer
    # must be *exactly* the top-k of the resolved state.
    expected = sorted(
        (e for e in state.present.values() if predicate.matches(e.obj)),
        key=lambda e: -e.weight,
    )[:k]
    if [e.weight for e in expected] != weights:
        _flag(
            result, INCONSISTENT_READ, event.op_id,
            f"answer {weights} != resolved top-k "
            f"{[e.weight for e in expected]}",
        )
    else:
        result.exact_reads += 1


__all__ = [
    "HistoryEvent",
    "HistoryRecorder",
    "Violation",
    "CheckResult",
    "check_history",
    "INVOKE",
    "OK",
    "FAIL",
    "INFO",
    "LOST_ACK_WRITE",
    "UNACKED_VISIBLE",
    "INCONSISTENT_READ",
    "MALFORMED_ANSWER",
    "MALFORMED_HISTORY",
]
