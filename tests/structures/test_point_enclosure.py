"""Tests for 2D point enclosure structures."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from oracles import oracle_max, oracle_prioritized, sorted_desc
from repro.core.problem import Element
from repro.geometry.primitives import Rect
from repro.structures.point_enclosure import (
    CascadedRectangleStabbingMax,
    EnclosurePredicate,
    RectanglePrioritized,
    RectangleStabbingMax,
)


def make_rects(n, seed=0, universe=100.0):
    rng = random.Random(seed)
    weights = rng.sample(range(10 * n), n)
    out = []
    for i in range(n):
        x1, x2 = sorted((rng.uniform(0, universe), rng.uniform(0, universe)))
        y1, y2 = sorted((rng.uniform(0, universe), rng.uniform(0, universe)))
        out.append(Element(Rect(x1, x2, y1, y2), float(weights[i]), payload=i))
    return out


def query_points(elements, rng, count):
    """Query points biased onto rectangle corners/edges."""
    points = []
    for _ in range(count):
        if rng.random() < 0.4 and elements:
            e = rng.choice(elements)
            points.append(
                (rng.choice([e.obj.x1, e.obj.x2]), rng.choice([e.obj.y1, e.obj.y2]))
            )
        else:
            points.append((rng.uniform(-10, 110), rng.uniform(-10, 110)))
    return points


class TestPredicate:
    def test_closed_boundary(self):
        p = EnclosurePredicate((5.0, 5.0))
        assert p.matches(Rect(5, 9, 0, 5))
        assert not p.matches(Rect(5.01, 9, 0, 5))


class TestPrioritized:
    def test_matches_oracle(self):
        elements = make_rects(200, 1)
        index = RectanglePrioritized(elements)
        rng = random.Random(2)
        for q in query_points(elements, rng, 60):
            tau = rng.uniform(0, 2000)
            p = EnclosurePredicate(q)
            assert sorted_desc(index.query(p, tau).elements) == oracle_prioritized(
                elements, p, tau
            )

    def test_limit_truncation(self):
        elements = make_rects(300, 3)
        index = RectanglePrioritized(elements)
        p = EnclosurePredicate((50.0, 50.0))
        full = index.query(p, -math.inf)
        if len(full.elements) > 4:
            r = index.query(p, -math.inf, limit=4)
            assert r.truncated and len(r.elements) == 5

    def test_empty(self):
        index = RectanglePrioritized([])
        assert index.query(EnclosurePredicate((0.0, 0.0)), 0.0).elements == []

    def test_degenerate_rectangles(self):
        elements = [
            Element(Rect(5, 5, 5, 5), 1.0),  # a point
            Element(Rect(0, 10, 5, 5), 2.0),  # a horizontal segment
            Element(Rect(5, 5, 0, 10), 3.0),  # a vertical segment
        ]
        index = RectanglePrioritized(elements)
        got = index.query(EnclosurePredicate((5.0, 5.0)), -math.inf)
        assert len(got.elements) == 3

    def test_query_cost_bound(self):
        elements = make_rects(256, 4)
        index = RectanglePrioritized(elements)
        assert index.query_cost_bound() == pytest.approx(64.0)  # log^2


class TestMaxStructures:
    @pytest.mark.parametrize("cls", [RectangleStabbingMax, CascadedRectangleStabbingMax])
    def test_matches_oracle(self, cls):
        elements = make_rects(200, 5)
        index = cls(elements)
        rng = random.Random(6)
        for q in query_points(elements, rng, 80):
            p = EnclosurePredicate(q)
            assert index.query(p) == oracle_max(elements, p)

    @pytest.mark.parametrize("cls", [RectangleStabbingMax, CascadedRectangleStabbingMax])
    def test_empty(self, cls):
        assert cls([]).query(EnclosurePredicate((0.0, 0.0))) is None

    def test_cascaded_agrees_with_plain(self):
        elements = make_rects(300, 7)
        plain = RectangleStabbingMax(elements)
        cascaded = CascadedRectangleStabbingMax(elements)
        rng = random.Random(8)
        for q in query_points(elements, rng, 80):
            p = EnclosurePredicate(q)
            assert plain.query(p) == cascaded.query(p)

    def test_cascaded_cost_bound_is_single_log(self):
        elements = make_rects(256, 9)
        assert CascadedRectangleStabbingMax(elements).query_cost_bound() == pytest.approx(8.0)
        assert RectangleStabbingMax(elements).query_cost_bound() == pytest.approx(64.0)

    def test_dating_site_semantics(self):
        """The paper's example: heaviest (salary) box containing (age, height)."""
        gentlemen = [
            Element(Rect(25, 35, 160, 175), 90_000.0, payload="alex"),
            Element(Rect(20, 30, 150, 170), 120_000.0, payload="blake"),
            Element(Rect(30, 40, 165, 180), 150_000.0, payload="casey"),
        ]
        index = CascadedRectangleStabbingMax(gentlemen)
        hit = index.query(EnclosurePredicate((28.0, 168.0)))
        assert hit.payload == "blake"  # casey's age range starts at 30
        hit = index.query(EnclosurePredicate((32.0, 170.0)))
        assert hit.payload == "casey"


rect_strategy = st.builds(
    lambda x1, x2, y1, y2: Rect(min(x1, x2), max(x1, x2), min(y1, y2), max(y1, y2)),
    st.integers(0, 30),
    st.integers(0, 30),
    st.integers(0, 30),
    st.integers(0, 30),
)


@settings(max_examples=25, deadline=None)
@given(
    objs=st.lists(rect_strategy, min_size=1, max_size=40),
    qx=st.integers(-2, 32),
    qy=st.integers(-2, 32),
    seed=st.integers(0, 100),
)
def test_property_all_three_structures(objs, qx, qy, seed):
    rng = random.Random(seed)
    weights = rng.sample(range(10 * len(objs)), len(objs))
    elements = [Element(o, float(w)) for o, w in zip(objs, weights)]
    p = EnclosurePredicate((float(qx), float(qy)))
    index = RectanglePrioritized(elements)
    assert sorted_desc(index.query(p, -math.inf).elements) == oracle_prioritized(
        elements, p, -math.inf
    )
    expected_max = oracle_max(elements, p)
    assert RectangleStabbingMax(elements).query(p) == expected_max
    assert CascadedRectangleStabbingMax(elements).query(p) == expected_max
