"""Tests for convex hulls, layers, and prepared extreme-vertex search."""

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.convexhull import PreparedHull, convex_hull, convex_layers
from repro.geometry.primitives import cross

coord = st.integers(-50, 50)
point = st.tuples(coord, coord)


class TestConvexHull:
    def test_empty_and_tiny(self):
        assert convex_hull([]) == []
        assert convex_hull([(1, 2)]) == [(1, 2)]
        assert convex_hull([(1, 2), (3, 4)]) == [(1, 2), (3, 4)]

    def test_duplicates_collapse(self):
        assert convex_hull([(0, 0), (0, 0), (1, 1)]) == [(0, 0), (1, 1)]

    def test_square(self):
        pts = [(0, 0), (1, 0), (1, 1), (0, 1), (0.5, 0.5)]
        hull = convex_hull(pts)
        assert set(hull) == {(0, 0), (1, 0), (1, 1), (0, 1)}

    def test_collinear_interior_dropped(self):
        hull = convex_hull([(0, 0), (1, 0), (2, 0), (1, 1)])
        assert (1, 0) not in hull

    def test_ccw_orientation(self):
        hull = convex_hull([(0, 0), (4, 0), (4, 4), (0, 4), (2, 2)])
        area2 = sum(cross((0, 0), hull[i], hull[(i + 1) % len(hull)]) for i in range(len(hull)))
        assert area2 > 0

    @settings(max_examples=40, deadline=None)
    @given(points=st.lists(point, min_size=3, max_size=60))
    def test_all_points_inside_hull(self, points):
        hull = convex_hull(points)
        if len(hull) < 3:
            return
        for p in points:
            for i in range(len(hull)):
                a, b = hull[i], hull[(i + 1) % len(hull)]
                assert cross(a, b, p) >= 0  # on or left of every CCW edge


class TestConvexLayers:
    def test_partition_property(self):
        rng = random.Random(2)
        points = [(rng.uniform(0, 1), rng.uniform(0, 1)) for _ in range(100)]
        layers = convex_layers(points)
        flat = [p for layer in layers for p in layer]
        assert sorted(flat) == sorted(set(points))

    def test_layers_are_nested(self):
        rng = random.Random(3)
        points = [(rng.gauss(0, 1), rng.gauss(0, 1)) for _ in range(80)]
        layers = convex_layers(points)
        for outer, inner in zip(layers, layers[1:]):
            hull = outer
            for p in inner:
                for i in range(len(hull)):
                    a, b = hull[i], hull[(i + 1) % len(hull)]
                    if len(hull) >= 3:
                        assert cross(a, b, p) >= 0

    def test_empty(self):
        assert convex_layers([]) == []


class TestPreparedHull:
    @settings(max_examples=50, deadline=None)
    @given(
        points=st.lists(point, min_size=1, max_size=80),
        angle=st.floats(0, 2 * math.pi, allow_nan=False),
    )
    def test_extreme_matches_linear_scan(self, points, angle):
        hull = PreparedHull(convex_hull(points))
        d = (math.cos(angle), math.sin(angle))
        index = hull.extreme_index(d)
        got = hull.hull[index][0] * d[0] + hull.hull[index][1] * d[1]
        best = max(p[0] * d[0] + p[1] * d[1] for p in points)
        assert got >= best - 1e-9

    def test_axis_directions_on_square(self):
        hull = PreparedHull(convex_hull([(0, 0), (2, 0), (2, 2), (0, 2)]))
        assert hull.hull[hull.extreme_index((1, 0))][0] == 2
        assert hull.hull[hull.extreme_index((-1, 0))][0] == 0
        assert hull.hull[hull.extreme_index((0, 1))][1] == 2
        assert hull.hull[hull.extreme_index((0, -1))][1] == 0

    def test_len(self):
        assert len(PreparedHull([(0, 0), (1, 0), (0, 1)])) == 3
