"""Point/line duality and the lifting map.

Two classical transforms the paper leans on:

* **Duality** (Section 5.4, max reporting): the standard map sends the
  point ``p = (px, py)`` to the line ``y = px * x - py`` and the line
  ``y = a x + b`` to the point ``(a, -b)``.  It preserves
  above/below-ness: ``p`` lies above line ``l`` iff the dual point of
  ``l`` lies above the dual line of ``p``.  Max-weight halfplane
  *containment* queries thus become max-weight point-below-line
  queries on dual lines.
* **Lifting** (Corollary 1): the map ``x -> (x, |x|^2)`` onto the unit
  paraboloid turns a ball in ``R^d`` into a halfspace in ``R^{d+1}``:
  ``|x - q|^2 <= r^2`` iff the lifted point lies below the hyperplane
  ``2 q . x - z >= |q|^2 - r^2`` — so top-k circular reporting reduces
  to top-k halfspace reporting one dimension up.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.geometry.primitives import Ball, Halfplane, Line2D, Point


def dual_line_of_point(point: Point) -> Line2D:
    """Dual of the point ``(px, py)``: the line ``y = px * x - py``."""
    return Line2D(point[0], -point[1])


def dual_point_of_line(line: Line2D) -> Point:
    """Dual of the line ``y = a x + b``: the point ``(a, -b)``."""
    return (line.a, -line.b)


def lift_point(point: Sequence[float]) -> Tuple[float, ...]:
    """Lift ``x in R^d`` to ``(x, |x|^2) in R^{d+1}`` on the paraboloid."""
    return tuple(point) + (sum(c * c for c in point),)


def lift_ball_to_halfspace(ball: Ball) -> Halfplane:
    """The halfspace in ``R^{d+1}`` whose lifted members are the ball's.

    ``|x - q|^2 <= r^2``
    ``<=> |x|^2 - 2 q.x + |q|^2 <= r^2``
    ``<=> 2 q.x - z >= |q|^2 - r^2``   (with ``z = |x|^2`` the lift)

    so the halfspace has normal ``(2 q, -1)`` and offset
    ``|q|^2 - r^2``.
    """
    q = ball.center
    normal = tuple(2.0 * c for c in q) + (-1.0,)
    offset = sum(c * c for c in q) - ball.radius**2
    return Halfplane(normal, offset)
