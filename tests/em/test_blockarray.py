"""Unit + property tests for BlockArray."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.em.blockarray import BlockArray
from repro.em.model import EMContext


def ctx(B=4, M=8) -> EMContext:
    return EMContext(B=B, M=M)


class TestConstruction:
    def test_empty(self):
        arr = BlockArray(ctx())
        assert len(arr) == 0
        assert arr.num_blocks == 0
        assert list(arr.scan()) == []

    def test_partial_tail_block(self):
        arr = BlockArray(ctx(), range(6))
        assert len(arr) == 6
        assert arr.num_blocks == 2

    def test_extend_fills_tail_before_allocating(self):
        arr = BlockArray(ctx(), range(3))
        arr.extend(range(3, 6))
        assert len(arr) == 6
        assert arr.num_blocks == 2
        assert arr.to_list() == list(range(6))

    def test_extend_exact_block_boundary(self):
        arr = BlockArray(ctx(), range(4))
        arr.extend(range(4, 8))
        assert arr.num_blocks == 2
        assert arr.to_list() == list(range(8))


class TestAccess:
    def test_random_access(self):
        arr = BlockArray(ctx(), range(25))
        for i in (0, 3, 4, 12, 24):
            assert arr.get(i) == i
            assert arr[i] == i

    def test_out_of_range_raises(self):
        arr = BlockArray(ctx(), range(5))
        with pytest.raises(IndexError):
            arr.get(5)
        with pytest.raises(IndexError):
            arr.get(-1)

    def test_scan_range(self):
        arr = BlockArray(ctx(), range(20))
        assert list(arr.scan(5, 13)) == list(range(5, 13))

    def test_scan_clamps_stop(self):
        arr = BlockArray(ctx(), range(5))
        assert list(arr.scan(2, 100)) == [2, 3, 4]

    def test_scan_invalid_range_raises(self):
        arr = BlockArray(ctx(), range(5))
        with pytest.raises(IndexError):
            list(arr.scan(4, 2))

    def test_scan_until_stops_at_first_failure(self):
        arr = BlockArray(ctx(), [5, 4, 3, 2, 1])
        assert list(arr.scan_until(lambda v: v >= 3)) == [5, 4, 3]

    def test_scan_until_empty_prefix(self):
        arr = BlockArray(ctx(), [1, 2, 3])
        assert list(arr.scan_until(lambda v: v > 10)) == []


class TestIOCost:
    def test_full_scan_costs_ceil_n_over_b(self):
        context = ctx(B=4, M=8)
        arr = BlockArray(context, range(10))  # 3 blocks
        context.drop_cache()
        context.stats.reset()
        list(arr.scan())
        assert context.stats.reads == 3

    def test_prefix_scan_reads_only_covering_blocks(self):
        context = ctx(B=4, M=8)
        arr = BlockArray(context, range(40))
        context.drop_cache()
        context.stats.reset()
        list(arr.scan(0, 4))
        assert context.stats.reads == 1

    def test_random_access_is_one_block(self):
        context = ctx(B=4, M=8)
        arr = BlockArray(context, range(40))
        context.drop_cache()
        context.stats.reset()
        arr.get(17)
        assert context.stats.reads == 1


class TestBisect:
    def test_bisect_left_on_sorted(self):
        arr = BlockArray(ctx(), [1, 3, 3, 5, 9])
        assert arr.bisect_left(0) == 0
        assert arr.bisect_left(3) == 1
        assert arr.bisect_left(4) == 3
        assert arr.bisect_left(10) == 5

    def test_bisect_with_key(self):
        arr = BlockArray(ctx(), [(1, "a"), (5, "b"), (9, "c")])
        assert arr.bisect_left(5, key=lambda r: r[0]) == 1


@settings(max_examples=40, deadline=None)
@given(data=st.lists(st.integers(), max_size=120), B=st.integers(2, 9))
def test_roundtrip_matches_list(data, B):
    arr = BlockArray(EMContext(B=B, M=4 * B), data)
    assert arr.to_list() == data
    assert len(arr) == len(data)
    expected_blocks = (len(data) + B - 1) // B
    assert arr.num_blocks == expected_blocks


@settings(max_examples=30, deadline=None)
@given(
    data=st.lists(st.integers(), min_size=1, max_size=80),
    B=st.integers(2, 7),
    st_data=st.data(),
)
def test_scan_slice_matches_list_slice(data, B, st_data):
    arr = BlockArray(EMContext(B=B, M=4 * B), data)
    start = st_data.draw(st.integers(0, len(data)))
    stop = st_data.draw(st.integers(start, len(data)))
    assert list(arr.scan(start, stop)) == data[start:stop]
