"""The three structure contracts that the reductions compose.

The paper treats structures as black boxes characterised by their space
and query costs:

* a **prioritized** structure answers ``(q, tau)`` in
  ``Q_pri(n) + O(t/B)``;
* a **max** structure answers ``q`` (top-1) in ``Q_max(n)``;
* a **top-k** structure answers ``(q, k)`` in ``Q_top(n) + O(k/B)``.

Two details of the contracts matter to the reductions and are encoded
here explicitly:

1. **Cost monitoring** (Section 3.2): the reductions issue prioritized
   queries that they may terminate "as soon as ``4f + 1`` elements have
   been reported".  :meth:`PrioritizedIndex.query` therefore accepts a
   ``limit`` and reports whether it stopped by itself or was cut off —
   the ``truncated`` flag of :class:`PrioritizedResult`.
2. **Cost bounds as data**: Theorem 1 needs ``Q_pri(n)`` itself (to set
   ``f = 12*lambda*B*Q_pri(n)``), and Theorem 2 needs ``Q_max(n)`` (to
   set ``K_i = B*Q_max(n)*(1+sigma)^{i-1}``).  Each structure exposes
   its own bound via :meth:`query_cost_bound`.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.core.problem import Element, Predicate


@dataclass
class PrioritizedResult:
    """Outcome of a (possibly cost-monitored) prioritized query.

    ``truncated`` is ``True`` when the query was terminated manually
    after reaching its ``limit`` — the caller then knows only that
    *more than* ``limit`` elements match, which is exactly the bit of
    information the reductions' round logic consumes.
    """

    elements: List[Element]
    truncated: bool = False

    def __len__(self) -> int:
        return len(self.elements)


@dataclass
class OpCounter:
    """Cheap operation counters for RAM-model structures.

    The EM structures count I/Os through their context; RAM structures
    count node visits and scanned records here so benches can verify
    asymptotic shapes without relying on noisy wall-clock numbers.
    """

    node_visits: int = 0
    scanned: int = 0

    def reset(self) -> None:
        self.node_visits = 0
        self.scanned = 0

    @property
    def total(self) -> int:
        return self.node_visits + self.scanned


class PrioritizedIndex(ABC):
    """A structure answering prioritized queries ``(q, tau)``.

    Implementations must report *every* matching element with weight
    ``>= tau`` when ``limit`` is ``None``, and may stop early (setting
    ``truncated``) once strictly more than ``limit`` elements have been
    produced.  Elements are reported in arbitrary order unless the
    implementation documents otherwise.
    """

    ops: OpCounter

    @property
    @abstractmethod
    def n(self) -> int:
        """Number of indexed elements."""

    @abstractmethod
    def query(
        self, predicate: Predicate, tau: float, limit: Optional[int] = None
    ) -> PrioritizedResult:
        """Report matches with weight >= tau, cost-monitored at ``limit``."""

    def query_cost_bound(self) -> float:
        """An estimate of ``Q_pri(n)`` — the search term of one query.

        Defaults to ``log2(n)``; structures with different bounds
        override this.  The reductions only use it to size internal
        parameters, never for correctness.
        """
        return max(1.0, math.log2(max(2, self.n)))

    def space_units(self) -> int:
        """Space in the structure's native units (blocks in EM, words in RAM)."""
        return self.n


class MaxIndex(ABC):
    """A structure answering max (top-1) queries."""

    ops: OpCounter

    @property
    @abstractmethod
    def n(self) -> int:
        """Number of indexed elements."""

    @abstractmethod
    def query(self, predicate: Predicate) -> Optional[Element]:
        """The matching element of maximum weight, or ``None``."""

    def query_cost_bound(self) -> float:
        """An estimate of ``Q_max(n)``; defaults to ``log2(n)``."""
        return max(1.0, math.log2(max(2, self.n)))

    def space_units(self) -> int:
        """Space in native units."""
        return self.n


class TopKIndex(ABC):
    """A structure answering top-k queries — what the reductions produce."""

    @property
    @abstractmethod
    def n(self) -> int:
        """Number of indexed elements."""

    @abstractmethod
    def query(self, predicate: Predicate, k: int) -> List[Element]:
        """The ``k`` heaviest matches, heaviest first (all of them if fewer)."""

    def query_topk_batch(self, requests, **kwargs) -> List[List[Element]]:
        """Answer a batch of ``(predicate, k)`` requests, in request order.

        The default plan (:func:`repro.serving.batch.execute_batch`)
        groups requests by predicate shape and pays one traversal per
        group at the group's largest ``k`` — exact for every member
        because top-k answers are prefix-closed under the distinct
        total weight order.  Subclasses override to share more work
        (the reductions additionally memoize sub-probes for the batch's
        duration); every override must return exactly what serial
        :meth:`query` calls would have.
        """
        from repro.serving.batch import execute_batch

        return execute_batch(self, requests, **kwargs)

    def space_units(self) -> int:
        """Space usage in machine units (defaults to one per element).

        Composite indexes (durable wrappers, replica sets, sharded
        deployments) override this to sum their parts.
        """
        return self.n


class CountingIndex(ABC):
    """A structure answering (approximate) counting queries.

    Section 2's reduction consumes counting structures whose answer is
    guaranteed to lie in ``[|q(D)|, c * |q(D)|]`` for a constant
    ``c >= 1`` fixed for all queries (``c = 1`` means exact).  The
    paper notes its discussion *improves* [28] by tolerating
    approximate counts; :class:`repro.core.counting.CountingTopKIndex`
    implements both regimes.
    """

    ops: OpCounter

    @property
    @abstractmethod
    def n(self) -> int:
        """Number of indexed elements."""

    @property
    def approximation_factor(self) -> float:
        """The guarantee constant ``c`` (1.0 for exact counters)."""
        return 1.0

    @abstractmethod
    def count(self, predicate: Predicate) -> int:
        """A value in ``[|q(D)|, c * |q(D)|]``."""

    def query_cost_bound(self) -> float:
        """An estimate of ``Q_cnt(n)``; defaults to ``log2(n)``."""
        return max(1.0, math.log2(max(2, self.n)))

    def space_units(self) -> int:
        """Space in native units."""
        return self.n


class DynamicPrioritizedIndex(PrioritizedIndex):
    """A prioritized structure supporting insertions and deletions."""

    @abstractmethod
    def insert(self, element: Element) -> None:
        """Add ``element`` to the indexed set."""

    @abstractmethod
    def delete(self, element: Element) -> None:
        """Remove ``element``; raises ``KeyError`` if absent."""


class DynamicMaxIndex(MaxIndex):
    """A max structure supporting insertions and deletions."""

    @abstractmethod
    def insert(self, element: Element) -> None:
        """Add ``element`` to the indexed set."""

    @abstractmethod
    def delete(self, element: Element) -> None:
        """Remove ``element``; raises ``KeyError`` if absent."""


# Factories: the reductions build structures over subsets of D (core-sets
# in Theorem 1, Bernoulli samples in Theorem 2, weight classes in the
# counting reduction), so they are handed constructors rather than
# instances.
PrioritizedFactory = Callable[[Sequence[Element]], PrioritizedIndex]
MaxFactory = Callable[[Sequence[Element]], MaxIndex]
CountingFactory = Callable[[Sequence[Element]], CountingIndex]
DynamicPrioritizedFactory = Callable[[Sequence[Element]], DynamicPrioritizedIndex]
DynamicMaxFactory = Callable[[Sequence[Element]], DynamicMaxIndex]
