"""Deterministic failover: crash sweeps, promotion, idempotent retries."""

import pytest

from conftest import build_fn, elem, make_cluster, restore_fn
from repro.core.problem import top_k_of
from repro.replication import FailoverController, FailoverPolicy, ReplicaSet
from repro.resilience.errors import SimulatedCrash, TransientIOError
from toy import RangePredicate


def run_workload(crash_at=None, num_replicas=3, read_mode="quorum"):
    """A fixed mixed insert/delete/query script; returns every answer.

    With ``crash_at`` set, the primary machine dies at that I/O
    transfer; the script never knows — answers must match the
    never-crashed run bit-for-bit.
    """
    cluster = make_cluster(
        n=30, num_replicas=num_replicas, read_mode=read_mode
    )
    if crash_at is not None:
        cluster.primary.plan.schedule_crash(at_io=crash_at)
    answers = []
    nxt = 30
    for step in range(18):
        cluster.insert(elem(nxt))
        nxt += 1
        if step % 3 == 2:
            cluster.delete(elem(step))
        if step % 4 == 3:
            answers.append(cluster.query(RangePredicate(0, 10_000), 8))
    answers.append(cluster.query(RangePredicate(0, 10_000), 12))
    return answers, cluster


class TestCrashSweep:
    ORACLE = None

    def oracle(self):
        if TestCrashSweep.ORACLE is None:
            TestCrashSweep.ORACLE = run_workload(None)[0]
        return TestCrashSweep.ORACLE

    @pytest.mark.parametrize("crash_at", list(range(1, 46, 3)))
    def test_answers_match_never_crashed_oracle(self, crash_at):
        answers, cluster = run_workload(crash_at)
        assert answers == self.oracle()
        # The schedule either fired (and exactly one failover happened)
        # or fell past the end of the workload's primary I/O stream.
        if cluster.stats.primary_crashes:
            assert cluster.stats.primary_crashes == 1
            assert cluster.stats.promotions == 1
            assert cluster.primary.alive

    def test_sweep_hits_crashes(self):
        crashed = sum(
            1
            for crash_at in range(1, 46, 3)
            if run_workload(crash_at)[1].stats.primary_crashes
        )
        assert crashed >= 10  # the sweep genuinely exercises failover


class TestPromotion:
    def test_promotion_replays_the_unapplied_tail(self, cluster):
        for i in range(40, 60):
            cluster.insert(elem(i))
        followers = [r for r in cluster.replicas if not r.is_primary]
        assert all(r.applied_lsn == 0 for r in followers)  # lazy
        cluster.primary.plan.schedule_crash(at_io=1)
        cluster.insert(elem(60))
        assert cluster.stats.promotions == 1
        # The 20 committed-but-unapplied records were replayed before
        # the retried insert landed on the new primary.
        assert cluster.stats.failover_records_replayed == 20
        assert cluster.primary.applied_lsn == cluster.primary.durable_lsn == 21
        assert cluster.primary.durable.inner.n == 61

    def test_successor_is_the_highest_durable_lsn(self):
        controller = FailoverController()
        cluster = make_cluster(n=10)
        a, b = [r for r in cluster.replicas if not r.is_primary]
        for i in range(10, 15):
            cluster.insert(elem(i))
        # Starve b of the last two ships by hand: rewind is impossible,
        # so build the asymmetry with a fresh cluster instead.
        assert a.durable_lsn == b.durable_lsn
        winner = controller.pick_successor([a, b])
        assert winner.name == min(a.name, b.name)  # tie: smallest name

    def test_ties_break_deterministically_by_name(self):
        cluster = make_cluster(n=10)
        followers = [r for r in cluster.replicas if not r.is_primary]
        winner = FailoverController().pick_successor(followers)
        assert winner.name == sorted(r.name for r in followers)[0]

    def test_streak_of_faults_condemns_a_machine(self):
        controller = FailoverController(FailoverPolicy(max_consecutive_faults=3))
        err = TransientIOError("flaky")
        assert not controller.note_fault("m", err)
        assert not controller.note_fault("m", err)
        assert controller.note_fault("m", err)

    def test_success_resets_the_streak(self):
        controller = FailoverController(FailoverPolicy(max_consecutive_faults=2))
        err = TransientIOError("flaky")
        assert not controller.note_fault("m", err)
        controller.note_success("m")
        assert not controller.note_fault("m", err)

    def test_crash_is_immediately_fatal(self):
        controller = FailoverController(FailoverPolicy(max_consecutive_faults=99))
        assert controller.note_fault("m", SimulatedCrash("dead"))


class TestRetrySemantics:
    def test_interrupted_insert_lands_exactly_once(self, cluster):
        """Whatever I/O the crash lands on, the in-flight insert must
        end up applied exactly once on the promoted primary."""
        for i in range(40, 50):
            cluster.insert(elem(i))
        cluster.primary.plan.schedule_crash(at_io=4)
        cluster.insert(elem(50))
        assert elem(50) in cluster.primary.durable.inner
        sizes = {cluster.primary.durable.inner.n}
        assert sizes == {51}

    def test_double_crash_falls_through_to_the_last_replica(self, cluster):
        for i in range(40, 45):
            cluster.insert(elem(i))
        first, second = [r for r in cluster.replicas if not r.is_primary]
        cluster.primary.plan.schedule_crash(at_io=1)
        # The successor dies during its very first post-promotion write.
        expected_successor = min(first.name, second.name)
        for replica in (first, second):
            if replica.name == expected_successor:
                replica.plan.schedule_crash(at_io=30)
        cluster.insert(elem(45))
        cluster.insert(elem(46))
        cluster.insert(elem(47))
        assert cluster.stats.primary_crashes == 2
        assert cluster.stats.promotions == 2
        answer = cluster.query(RangePredicate(0, 10_000), 3, mode="primary")
        assert [e.obj for e in answer] == [47, 46, 45]


class TestRebuildRung:
    def test_all_dead_rebuilds_from_the_best_disk(self, cluster):
        for i in range(40, 55):
            cluster.insert(elem(i))
        expected = top_k_of(
            [elem(i) for i in range(55)], RangePredicate(0, 10_000), 10
        )
        for replica in cluster.replicas:
            replica.mark_dead()
        answer = cluster.query(RangePredicate(0, 10_000), 10)
        assert answer == expected
        assert cluster.stats.rebuilds == 1
        assert cluster.primary.alive
        # The reborn primary accepts writes and keeps LSNs monotone.
        lsn_before = cluster.primary.durable_lsn
        cluster.insert(elem(55))
        assert cluster.primary.durable_lsn == lsn_before + 1
        assert cluster.primary.durable.inner.n == 56

    def test_rebuild_resumes_the_lsn_sequence(self, cluster):
        for i in range(40, 50):
            cluster.insert(elem(i))
        committed = cluster.primary.durable_lsn
        for replica in cluster.replicas:
            replica.mark_dead()
        cluster.query(RangePredicate(0, 10_000), 3)
        assert cluster.primary.durable_lsn >= committed
