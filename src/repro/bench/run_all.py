"""Standalone experiment runner: ``python -m repro.bench.run_all``.

Regenerates a compact version of the claim-validation tables without
pytest — useful for quick eyeballing after a change.  The full
experiment suite (with assertions and pytest-benchmark timings) lives
in ``benchmarks/``; this runner reuses the same library pieces at
smaller sizes.

Options::

    python -m repro.bench.run_all            # default sizes
    python -m repro.bench.run_all --quick    # tiny sizes, seconds
"""

from __future__ import annotations

import argparse
import math
import time
from typing import List

from repro.bench.runner import fit_loglog_slope
from repro.bench.tables import render_table
from repro.bench.workloads import bounded_predicates, make_problem
from repro.core.baseline import BinarySearchTopKIndex
from repro.core.counting import CountingTopKIndex
from repro.core.theorem1 import WorstCaseTopKIndex
from repro.core.theorem2 import ExpectedTopKIndex
from repro.structures.range1d import RangeTree1DCounter


def _wall(run, queries) -> float:
    start = time.perf_counter()
    for predicate in queries:
        run(predicate)
    return 1e6 * (time.perf_counter() - start) / max(1, len(queries))


def reduction_comparison(n: int, ks: List[int], query_count: int) -> str:
    """The E11-style all-reductions table on 1D range reporting."""
    problem = make_problem("range1d", n, seed=11)
    contenders = {
        "Thm1": WorstCaseTopKIndex(problem.elements, problem.prioritized_factory, seed=1),
        "Thm2": ExpectedTopKIndex(
            problem.elements, problem.prioritized_factory, problem.max_factory, seed=2
        ),
        "Counting": CountingTopKIndex(
            problem.elements, problem.prioritized_factory, RangeTree1DCounter
        ),
        "Baseline": BinarySearchTopKIndex(problem.elements, problem.prioritized_factory),
    }
    queries = problem.predicates(query_count, seed=4)
    rows = []
    for k in ks:
        row: List[object] = [k]
        for index in contenders.values():
            row.append(round(_wall(lambda p: index.query(p, k), queries), 1))
        rows.append(row)
    return render_table(
        f"All reductions on 1D range reporting (n={n}), us/query",
        ["k", *contenders.keys()],
        rows,
    )


def scaling_table(problem_name: str, sizes: List[int], k: int, query_count: int) -> str:
    """Query-time scaling of the Theorem 2 index on one problem."""
    rows = []
    costs = []
    for n in sizes:
        problem = make_problem(problem_name, n, seed=7)
        index = ExpectedTopKIndex(
            problem.elements, problem.prioritized_factory, problem.max_factory, seed=9
        )
        # Bounded result sizes isolate the search term (see workloads).
        # A small target stays reachable at every size in the sweep.
        queries = bounded_predicates(problem, query_count, target=15, seed=n)
        wall = _wall(lambda p: index.query(p, k), queries)
        rows.append([n, wall])
        costs.append(wall)
    slope = fit_loglog_slope([float(s) for s in sizes], costs)
    return render_table(
        f"Theorem 2 on {problem_name} (k={k}), us/query",
        ["n", "query us"],
        rows,
        note=f"log-log slope {slope:.3f}",
    )


def main(argv=None) -> int:
    """CLI entry point (see the module docstring for options)."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="tiny sizes, finishes in seconds")
    args = parser.parse_args(argv)

    if args.quick:
        sizes, n_cmp, ks, queries = [250, 500, 1000], 1000, [1, 8, 64], 8
    else:
        sizes, n_cmp, ks, queries = [500, 1000, 2000, 4000], 4000, [1, 8, 64, 512], 16

    print(reduction_comparison(n_cmp, ks, queries))
    print()
    for name in ("range1d", "interval_stabbing", "dominance3d", "halfplane2d"):
        print(scaling_table(name, sizes, k=10, query_count=queries))
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
