"""Integration: every reduction must be exact on every registered problem.

This is the repository's strongest correctness statement: the reductions
are genuinely black-box — the same code paths produce exact top-k
answers over five different geometric problems (eight instantiations),
matched against brute force with distinct weights (unique answers).
"""

import random

import pytest

from oracles import oracle_max, oracle_prioritized, oracle_top_k, sorted_desc
from repro.core.baseline import BinarySearchTopKIndex
from repro.core.inverse import PrioritizedFromTopK
from repro.core.params import TuningParams
from repro.core.theorem1 import WorstCaseTopKIndex
from repro.core.theorem2 import ExpectedTopKIndex

K_VALUES = (1, 2, 7, 25, 90, 10_000)


class TestBlackBoxContracts:
    """The factories themselves must honour the structure contracts."""

    def test_prioritized_factory_contract(self, problem):
        index = problem.prioritized_factory(problem.elements)
        rng = random.Random(1)
        for p in problem.predicates(10, seed=1):
            tau = rng.uniform(0, 10 * len(problem.elements))
            got = sorted_desc(index.query(p, tau).elements)
            assert got == oracle_prioritized(problem.elements, p, tau)

    def test_prioritized_cost_monitoring_contract(self, problem):
        index = problem.prioritized_factory(problem.elements)
        for p in problem.predicates(10, seed=2):
            full = index.query(p, -float("inf"))
            assert not full.truncated
            if len(full.elements) >= 5:
                monitored = index.query(p, -float("inf"), limit=3)
                assert monitored.truncated
                assert len(monitored.elements) >= 4

    def test_max_factory_contract(self, problem):
        index = problem.max_factory(problem.elements)
        for p in problem.predicates(15, seed=3):
            assert index.query(p) == oracle_max(problem.elements, p)


class TestTheorem1:
    def test_exact_on_all_problems(self, problem):
        index = WorstCaseTopKIndex(problem.elements, problem.prioritized_factory, seed=4)
        for p in problem.predicates(8, seed=4):
            for k in K_VALUES:
                assert index.query(p, k) == oracle_top_k(problem.elements, p, k)

    def test_space_bounded_by_ground(self, problem):
        index = WorstCaseTopKIndex(problem.elements, problem.prioritized_factory, seed=5)
        assert index.space_units() <= 12 * index.ground_space_units()


class TestTheorem2:
    def test_exact_on_all_problems(self, problem):
        index = ExpectedTopKIndex(
            problem.elements, problem.prioritized_factory, problem.max_factory, seed=6
        )
        for p in problem.predicates(8, seed=6):
            for k in K_VALUES:
                assert index.query(p, k) == oracle_top_k(problem.elements, p, k)

    def test_paper_faithful_params(self, problem):
        index = ExpectedTopKIndex(
            problem.elements,
            problem.prioritized_factory,
            problem.max_factory,
            params=TuningParams.paper_faithful(),
            seed=7,
        )
        for p in problem.predicates(4, seed=7):
            for k in (1, 10):
                assert index.query(p, k) == oracle_top_k(problem.elements, p, k)


class TestBaseline:
    def test_exact_on_all_problems(self, problem):
        index = BinarySearchTopKIndex(problem.elements, problem.prioritized_factory)
        for p in problem.predicates(6, seed=8):
            for k in (1, 7, 60):
                assert index.query(p, k) == oracle_top_k(problem.elements, p, k)


class TestInverse:
    def test_prioritized_recovered_from_topk(self, problem):
        topk = ExpectedTopKIndex(
            problem.elements, problem.prioritized_factory, problem.max_factory, seed=9
        )
        inverse = PrioritizedFromTopK(topk)
        rng = random.Random(10)
        for p in problem.predicates(5, seed=10):
            tau = rng.uniform(0, 10 * len(problem.elements))
            got = sorted_desc(inverse.query(p, tau).elements)
            assert got == oracle_prioritized(problem.elements, p, tau)


class TestUpdatesWhereSupported:
    def test_dynamic_problem_updates(self, problem):
        if not problem.supports_updates:
            pytest.skip("problem registered as static")
        index = ExpectedTopKIndex(
            problem.elements, problem.prioritized_factory, problem.max_factory, seed=11
        )
        rng = random.Random(12)
        current = list(problem.elements)
        top_weight = max(e.weight for e in current)
        for step in range(60):
            new = problem.element_gen(rng, top_weight + 1.0 + step)
            index.insert(new)
            current.append(new)
            if step % 2 == 0:
                victim = current.pop(rng.randrange(len(current)))
                index.delete(victim)
        for p in problem.predicates(6, seed=13):
            for k in (1, 5, 40):
                assert index.query(p, k) == oracle_top_k(current, p, k)
