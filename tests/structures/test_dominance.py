"""Tests for 3D dominance structures."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from oracles import oracle_max, oracle_prioritized, sorted_desc
from repro.core.problem import Element
from repro.structures.dominance import DominanceMax, DominancePredicate, DominancePrioritized


def make_points(n, seed=0, universe=100.0):
    rng = random.Random(seed)
    weights = rng.sample(range(10 * n), n)
    return [
        Element(
            (rng.uniform(0, universe), rng.uniform(0, universe), rng.uniform(0, universe)),
            float(weights[i]),
            payload=i,
        )
        for i in range(n)
    ]


def corners(elements, rng, count):
    out = []
    for _ in range(count):
        if rng.random() < 0.3 and elements:
            e = rng.choice(elements)
            out.append(e.obj)  # exactly on a point: closed comparisons
        else:
            out.append(tuple(rng.uniform(-5, 110) for _ in range(3)))
    return out


class TestPredicate:
    def test_closed_dominance(self):
        p = DominancePredicate((5.0, 5.0, 5.0))
        assert p.matches((5.0, 5.0, 5.0))
        assert p.matches((1.0, 2.0, 3.0))
        assert not p.matches((5.0, 5.0, 5.0001))


class TestPrioritized:
    def test_matches_oracle(self):
        elements = make_points(250, 1)
        index = DominancePrioritized(elements)
        rng = random.Random(2)
        for q in corners(elements, rng, 60):
            tau = rng.uniform(0, 2500)
            p = DominancePredicate(q)
            assert sorted_desc(index.query(p, tau).elements) == oracle_prioritized(
                elements, p, tau
            )

    def test_limit_truncation(self):
        elements = make_points(300, 3)
        index = DominancePrioritized(elements)
        p = DominancePredicate((200.0, 200.0, 200.0))
        r = index.query(p, -math.inf, limit=5)
        assert r.truncated and len(r.elements) == 6

    def test_empty_structure(self):
        index = DominancePrioritized([])
        assert index.query(DominancePredicate((1, 1, 1)), 0.0).elements == []

    def test_corner_below_everything(self):
        elements = make_points(100, 4)
        index = DominancePrioritized(elements)
        p = DominancePredicate((-1.0, -1.0, -1.0))
        assert index.query(p, -math.inf).elements == []

    def test_duplicate_coordinates(self):
        elements = [
            Element((5.0, 5.0, 5.0), 1.0),
            Element((5.0, 5.0, 5.0), 2.0),
            Element((5.0, 1.0, 5.0), 3.0),
        ]
        index = DominancePrioritized(elements)
        got = index.query(DominancePredicate((5.0, 5.0, 5.0)), -math.inf)
        assert len(got.elements) == 3


class TestMax:
    def test_matches_oracle(self):
        elements = make_points(250, 5)
        index = DominanceMax(elements)
        rng = random.Random(6)
        for q in corners(elements, rng, 80):
            p = DominancePredicate(q)
            assert index.query(p) == oracle_max(elements, p)

    def test_empty(self):
        assert DominanceMax([]).query(DominancePredicate((1, 1, 1))) is None

    def test_hotel_semantics(self):
        """The paper's example: best-rated hotel under price/distance caps."""
        hotels = [
            Element((120.0, 2.0, -3.0), 4.1, payload="inn"),  # (price, km, -rating_req)
            Element((300.0, 0.5, -5.0), 4.9, payload="plaza"),
            Element((80.0, 5.0, -2.0), 3.7, payload="hostel"),
        ]
        index = DominanceMax(hotels)
        # Price <= 150, distance <= 3km, security rating >= 2 (z <= -2).
        hit = index.query(DominancePredicate((150.0, 3.0, -2.0)))
        assert hit.payload == "inn"


coordinate = st.integers(0, 20)
point3 = st.tuples(coordinate, coordinate, coordinate)


@settings(max_examples=30, deadline=None)
@given(
    objs=st.lists(point3, min_size=1, max_size=50),
    q=st.tuples(st.integers(-2, 22), st.integers(-2, 22), st.integers(-2, 22)),
    seed=st.integers(0, 100),
)
def test_property_prioritized_and_max(objs, q, seed):
    rng = random.Random(seed)
    weights = rng.sample(range(10 * len(objs)), len(objs))
    elements = [
        Element(tuple(float(c) for c in o), float(w)) for o, w in zip(objs, weights)
    ]
    p = DominancePredicate(tuple(float(c) for c in q))
    index = DominancePrioritized(elements)
    assert sorted_desc(index.query(p, -math.inf).elements) == oracle_prioritized(
        elements, p, -math.inf
    )
    assert DominanceMax(elements).query(p) == oracle_max(elements, p)
